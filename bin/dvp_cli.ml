(* dvp-cli: run DvP / baseline systems against workloads from the shell.

     dvp-cli run --system dvp --workload airline --sites 8 --rate 100 \
                 --duration 20 --partition 5:10 --seed 7
     dvp-cli run --trace-out t.json --trace-format chrome   # perfetto trace
     dvp-cli run --json                                     # outcome as JSON
     dvp-cli analyze trace.jsonl                            # span statistics
     dvp-cli demo
     dvp-cli info

   The `run` command builds the requested system, drives it with the chosen
   workload preset (optionally under a partition window and/or a crash
   cycle), and prints the outcome summary and metric table — or, with
   [--json], the whole outcome as one JSON object.  With [--trace-out] a
   DvP run records every typed trace event and writes them out as JSONL or
   as a Chrome trace_event file loadable in ui.perfetto.dev.

   The `analyze` command folds a JSONL trace dump (from run --trace-out, a
   crashdump directory, or examples/trace_tour) into transaction spans and
   Vm lifecycles and prints the latency breakdowns, the Vm lifecycle table,
   and a per-site activity timeline. *)

open Cmdliner
module Spec = Dvp.Spec
module Setup = Dvp.Setup
module Runner = Dvp.Runner
module Faultplan = Dvp.Faultplan
module Trace = Dvp.Trace
module Spans = Dvp.Obs.Spans
module Telemetry = Dvp.Obs.Telemetry
module Flight = Dvp.Obs.Flight

type system_kind = Dvp_sys | Two_pc | Three_pc | Quorum

let system_conv =
  let parse = function
    | "dvp" -> Ok Dvp_sys
    | "2pc" -> Ok Two_pc
    | "3pc" -> Ok Three_pc
    | "quorum" -> Ok Quorum
    | s -> Error (`Msg (Printf.sprintf "unknown system %S (dvp|2pc|3pc|quorum)" s))
  in
  let print ppf k =
    Format.pp_print_string ppf
      (match k with Dvp_sys -> "dvp" | Two_pc -> "2pc" | Three_pc -> "3pc" | Quorum -> "quorum")
  in
  Arg.conv (parse, print)

let workload_conv =
  let parse s =
    match Spec.preset_of_string s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown workload %S (%s)" s
             (String.concat "|" (List.map fst Spec.presets))))
  in
  Arg.conv ((fun s -> parse s), fun ppf p -> Format.pp_print_string ppf (Spec.preset_label p))

type trace_format = Jsonl | Chrome

let trace_format_conv =
  let parse = function
    | "jsonl" -> Ok Jsonl
    | "chrome" -> Ok Chrome
    | s -> Error (`Msg (Printf.sprintf "unknown trace format %S (jsonl|chrome)" s))
  in
  let print ppf f =
    Format.pp_print_string ppf (match f with Jsonl -> "jsonl" | Chrome -> "chrome")
  in
  Arg.conv (parse, print)

let window_conv =
  (* "start:len" in seconds *)
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> (
      match (float_of_string_opt a, float_of_string_opt b) with
      | Some start, Some len -> Ok (start, len)
      | _ -> Error (`Msg "expected start:len"))
    | _ -> Error (`Msg "expected start:len")
  in
  Arg.conv (parse, fun ppf (a, b) -> Format.fprintf ppf "%g:%g" a b)

let build_spec workload sites rate duration seed =
  Spec.with_seed (Spec.of_preset ~sites ~rate ~duration workload) seed

let build_driver kind spec =
  match kind with
  | Dvp_sys -> Setup.dvp ~name:"dvp" spec
  | Two_pc -> Setup.trad ~name:"2pc" spec
  | Three_pc ->
    Setup.trad ~name:"3pc"
      ~config:
        {
          Dvp.Baseline.Trad_site.default_config with
          Dvp.Baseline.Trad_site.protocol = Dvp.Baseline.Trad_site.Three_phase;
        }
      spec
  | Quorum ->
    Setup.trad ~name:"quorum"
      ~config:
        {
          Dvp.Baseline.Trad_site.default_config with
          Dvp.Baseline.Trad_site.placement = Dvp.Baseline.Trad_site.Replicated;
        }
      spec

let split_groups n =
  (* Cut the site set in half for partition windows. *)
  let half = n / 2 in
  [ List.init half (fun i -> i); List.init (n - half) (fun i -> half + i) ]

let print_latency_histogram m =
  let samples = Dvp.Metrics.latency_samples m in
  if Array.length samples > 1 then begin
    let hi = Float.max 0.001 (Dvp.Metrics.latency_p99 m *. 1.1) in
    let h = Dvp.Util.Dstats.Histogram.create ~lo:0.0 ~hi ~buckets:12 in
    Array.iter (Dvp.Util.Dstats.Histogram.add h) samples;
    print_endline "commit latency histogram (seconds):";
    print_string (Dvp.Util.Dstats.Histogram.render h ~width:40)
  end

let run_cmd system workload sites rate duration seed partition crash export_dir trace_out
    trace_format json =
  let spec = build_spec workload sites rate duration seed in
  let driver = build_driver system spec in
  let faults =
    let p =
      match partition with
      | Some (start, len) -> Faultplan.partition_window ~start ~len (split_groups sites)
      | None -> Faultplan.empty
    in
    let c =
      match crash with
      | Some (start, len) -> Faultplan.crash_cycle ~site:(sites - 1) ~first:start ~downtime:len
      | None -> Faultplan.empty
    in
    Faultplan.merge p c
  in
  (* Only the DvP stack is instrumented with typed trace events. *)
  let trace =
    match (trace_out, system) with
    | Some _, Dvp_sys -> Some (Trace.create ~capacity:262_144 ())
    | Some _, _ ->
      prerr_endline "(--trace-out only applies to --system dvp; skipped)";
      None
    | None, _ -> None
  in
  (* For DvP we keep the system handle so the run can be exported. *)
  let dvp_sys =
    match system with
    | Dvp_sys ->
      let sys = Setup.dvp_system ?trace spec in
      Some sys
    | _ -> None
  in
  let driver =
    match dvp_sys with Some sys -> Dvp.Driver.of_dvp ~name:"dvp" sys | None -> driver
  in
  (* DvP runs carry telemetry; traced runs also carry a flight recorder, so
     a conservation failure leaves a crashdump next to its error message. *)
  let telemetry = Option.map Telemetry.of_system dvp_sys in
  let flight =
    match (trace, dvp_sys) with
    | Some tr, Some _ ->
      let fl = Flight.create tr in
      (match telemetry with
      | Some tel -> Flight.set_telemetry fl (fun () -> Telemetry.to_json tel)
      | None -> ());
      Some fl
    | _ -> None
  in
  let o = Runner.run driver spec ~faults ?telemetry ?flight () in
  if json then print_endline (Dvp.Util.Json.to_string_pretty (Runner.outcome_to_json o))
  else begin
    Format.printf "%a@." Runner.pp_outcome o;
    let m = o.Runner.metrics in
    print_newline ();
    List.iter
      (fun (k, v) -> Printf.printf "  %-20s %s\n" k v)
      (Dvp.Metrics.summary_rows m);
    List.iter
      (fun reason ->
        let n = Dvp.Metrics.aborted_by m reason in
        if n > 0 then
          Printf.printf "  aborts/%-13s %d\n" (Dvp.Metrics.abort_reason_label reason) n)
      Dvp.Metrics.all_abort_reasons;
    print_newline ();
    print_latency_histogram m
  end;
  (match (trace, trace_out) with
  | Some tr, Some file ->
    let data = match trace_format with Jsonl -> Trace.to_jsonl tr | Chrome -> Trace.to_chrome tr in
    let oc = open_out file in
    output_string oc data;
    close_out oc;
    if not json then begin
      Printf.printf "wrote %d trace events to %s (%s)\n" (List.length (Trace.events tr)) file
        (match trace_format with Jsonl -> "jsonl" | Chrome -> "chrome trace_event");
      if Trace.drop_count tr > 0 then
        Printf.printf "  (ring buffer overflowed: %d oldest events dropped)\n"
          (Trace.drop_count tr)
    end
  | _ -> ());
  (match (dvp_sys, export_dir) with
  | Some sys, Some dir ->
    let n = Dvp.Backup.export_system sys ~dir in
    if not json then begin
      Printf.printf "exported %d stable log records to %s\n" n dir;
      Printf.printf "conservation check: %b\n" (Dvp.System.conserved_all sys)
    end
  | _, Some _ ->
    print_endline "(--export only applies to --system dvp; skipped)"
  | _, None -> ());
  if not json then begin
    print_newline ();
    print_endline "availability timeline:";
    List.iter
      (fun (t_end, ratio) ->
        if not (Float.is_nan ratio) then
          Printf.printf "  t<%5.1f %s %3.0f%%\n" t_end
            (String.make (int_of_float (ratio *. 40.0)) '#')
            (100.0 *. ratio))
      o.Runner.timeline;
    match telemetry with
    | Some tel when Telemetry.attached tel ->
      print_newline ();
      print_string (Telemetry.render tel)
    | _ -> ()
  end;
  (* The end-of-run conservation check is load-bearing: a run that lost or
     duplicated value must fail the shell, not just print a summary.  The
     runner has already dumped the flight recorder when one was wired. *)
  match o.Runner.conserved with
  | Some false ->
    prerr_endline "ERROR: conservation violated at end of run (N <> sum fragments + in-flight)";
    (match o.Runner.crashdump with
    | Some path -> Printf.eprintf "crashdump written to %s\n" path
    | None -> ());
    exit 1
  | _ -> ()

let demo_cmd () =
  print_endline "Running the airline workload on DvP with a partition window...";
  run_cmd Dvp_sys Spec.Airline 6 80.0 15.0 7 (Some (5.0, 5.0)) None None None Jsonl false

let restore_cmd workload sites dir =
  (* Rebuild an installation from exported logs: the spec supplies the same
     item registry the exporting run used; everything else comes from the
     logs themselves. *)
  let spec = build_spec workload sites 0.0 0.0 0 in
  let sys = Setup.dvp_system spec in
  match Dvp.Backup.restore_system sys ~dir with
  | Error e ->
    Printf.eprintf "restore failed: %s\n" e;
    exit 1
  | Ok n ->
    Printf.printf "restored %d stable log records from %s\n" n dir;
    List.iter
      (fun item ->
        let frags = Dvp.System.fragments sys ~item in
        Printf.printf "  item %-3d total %-8d fragments [%s]\n" item
          (Dvp.System.total_at_sites sys ~item)
          (String.concat "; " (Array.to_list (Array.map string_of_int frags))))
      (Dvp.System.items sys);
    Printf.printf "conservation: %b\n" (Dvp.System.conserved_all sys)

let print_fragments sys =
  List.iter
    (fun item ->
      let frags = Dvp.System.fragments sys ~item in
      Printf.printf "  item %-3d total %-8d fragments [%s]\n" item
        (Dvp.System.total_at_sites sys ~item)
        (String.concat "; " (Array.to_list (Array.map string_of_int frags))))
    (Dvp.System.items sys)

let evacuate_cmd workload sites rate duration seed kill_at victim force json =
  (* Operator drill for degraded-mode recovery: run a workload with the
     failure detector armed, permanently kill one site partway through, let
     the survivors condemn it, then evacuate its fragments and verify
     conservation end to end. *)
  let victim = match victim with Some v -> v | None -> sites - 1 in
  if victim < 0 || victim >= sites then begin
    Printf.eprintf "evacuate: victim %d out of range for %d sites\n" victim sites;
    exit 2
  end;
  let spec = build_spec workload sites rate duration seed in
  let config =
    { Dvp.Config.default with Dvp.Config.health = Some Dvp.Health.default_config }
  in
  let sys = Setup.dvp_system ~config spec in
  let driver = Dvp.Driver.of_dvp ~name:"dvp" sys in
  let faults = [ Faultplan.at kill_at (Faultplan.Kill_forever victim) ] in
  let o = Runner.run driver spec ~faults () in
  let verdicts =
    List.filter_map
      (fun p ->
        if p = victim || not (Dvp.System.site_up sys p) then None
        else
          Some
            (Printf.sprintf "site %d: %s" p
               (Dvp.Health.state_to_string
                  (Dvp.System.health_state sys ~observer:p ~peer:victim))))
      (List.init sites Fun.id)
  in
  if not json then begin
    Format.printf "%a@." Runner.pp_outcome o;
    Printf.printf "\nsite %d killed at t=%g; survivor verdicts: %s\n" victim kill_at
      (String.concat ", " verdicts);
    print_endline "fragments before evacuation:";
    print_fragments sys
  end;
  match Dvp.System.evacuate ~force sys ~site:victim () with
  | Error e ->
    Printf.eprintf "evacuate: %s\n" e;
    exit 1
  | Ok r ->
    let conserved = Dvp.System.conserved_all sys in
    if json then
      print_endline
        (Dvp.Util.Json.to_string_pretty
           (Dvp.Util.Json.Obj
              [
                ("site", Dvp.Util.Json.Int r.Dvp.System.evac_site);
                ("value_moved", Dvp.Util.Json.Int r.Dvp.System.value_moved);
                ("vms_delivered", Dvp.Util.Json.Int r.Dvp.System.vms_delivered);
                ("stranded", Dvp.Util.Json.Int r.Dvp.System.stranded);
                ("conserved", Dvp.Util.Json.Bool conserved);
              ]))
    else begin
      Printf.printf
        "\nevacuated site %d: %d units re-homed, %d vm(s) delivered, %d stranded\n"
        r.Dvp.System.evac_site r.Dvp.System.value_moved r.Dvp.System.vms_delivered
        r.Dvp.System.stranded;
      print_endline "fragments after evacuation:";
      print_fragments sys;
      Printf.printf "conservation: %b\n" conserved
    end;
    if not conserved then begin
      prerr_endline "ERROR: conservation violated after evacuation";
      exit 1
    end

let membership_line sys sites capacity =
  String.concat ", "
    (List.map
       (fun i ->
         Printf.sprintf "site %d: %s" i
           (Dvp.Membership.to_string (Dvp.System.member_state sys i)))
       (List.init (max sites capacity) Fun.id))

let join_cmd workload sites rate duration seed join_at json =
  (* Operator drill for elastic scale-out: run a workload on [sites]
     members plus one detached spare, bring the spare online mid-run
     through the membership handshake, and verify it ends up a seeded,
     transaction-serving member with conservation intact. *)
  let spec = build_spec workload sites rate duration seed in
  let config =
    { Dvp.Config.default with Dvp.Config.health = Some Dvp.Health.default_config }
  in
  let sys = Setup.dvp_system ~config ~capacity:(sites + 1) spec in
  let driver = Dvp.Driver.of_dvp ~name:"dvp" sys in
  let joiner = sites in
  let faults = [ Faultplan.at join_at (Faultplan.Join joiner) ] in
  let o = Runner.run driver spec ~faults () in
  let state = Dvp.System.member_state sys joiner in
  let joined = state = Dvp.Membership.Member in
  let conserved = Dvp.System.conserved_all sys in
  if json then
    print_endline
      (Dvp.Util.Json.to_string_pretty
         (Dvp.Util.Json.Obj
            [
              ("joiner", Dvp.Util.Json.Int joiner);
              ("state", Dvp.Util.Json.String (Dvp.Membership.to_string state));
              ("epoch", Dvp.Util.Json.Int (Dvp.System.epoch sys));
              ("conserved", Dvp.Util.Json.Bool conserved);
            ]))
  else begin
    Format.printf "%a@." Runner.pp_outcome o;
    Printf.printf "\nsite %d joined at t=%g; %s; epoch %d\n" joiner join_at
      (membership_line sys sites (sites + 1))
      (Dvp.System.epoch sys);
    print_endline "fragments after the join:";
    print_fragments sys;
    Printf.printf "conservation: %b\n" conserved
  end;
  if not joined then begin
    Printf.eprintf "ERROR: joiner ended as %s, not a member\n"
      (Dvp.Membership.to_string state);
    exit 1
  end;
  if not conserved then begin
    prerr_endline "ERROR: conservation violated after the join";
    exit 1
  end

let leave_cmd workload sites rate duration seed leave_at leaver json =
  (* Operator drill for graceful scale-in: a member drains and detaches
     mid-run; its fragments must end up shed onto the survivors with
     conservation intact. *)
  let leaver = match leaver with Some s -> s | None -> sites - 1 in
  if leaver < 0 || leaver >= sites then begin
    Printf.eprintf "leave: leaver %d out of range for %d sites\n" leaver sites;
    exit 2
  end;
  let spec = build_spec workload sites rate duration seed in
  let config =
    { Dvp.Config.default with Dvp.Config.health = Some Dvp.Health.default_config }
  in
  let sys = Setup.dvp_system ~config spec in
  let driver = Dvp.Driver.of_dvp ~name:"dvp" sys in
  let faults = [ Faultplan.at leave_at (Faultplan.Leave leaver) ] in
  let o = Runner.run driver spec ~faults () in
  let state = Dvp.System.member_state sys leaver in
  let left = state = Dvp.Membership.Detached in
  let conserved = Dvp.System.conserved_all sys in
  if json then
    print_endline
      (Dvp.Util.Json.to_string_pretty
         (Dvp.Util.Json.Obj
            [
              ("leaver", Dvp.Util.Json.Int leaver);
              ("state", Dvp.Util.Json.String (Dvp.Membership.to_string state));
              ("epoch", Dvp.Util.Json.Int (Dvp.System.epoch sys));
              ("conserved", Dvp.Util.Json.Bool conserved);
            ]))
  else begin
    Format.printf "%a@." Runner.pp_outcome o;
    Printf.printf "\nsite %d left at t=%g; %s; epoch %d\n" leaver leave_at
      (membership_line sys sites sites)
      (Dvp.System.epoch sys);
    print_endline "fragments after the leave:";
    print_fragments sys;
    Printf.printf "conservation: %b\n" conserved
  end;
  if not left then begin
    Printf.eprintf "ERROR: leaver ended as %s, not detached\n"
      (Dvp.Membership.to_string state);
    exit 1
  end;
  if not conserved then begin
    prerr_endline "ERROR: conservation violated after the leave";
    exit 1
  end

let rebalance_cmd sites total slack json =
  (* Operator drill for load leveling: start with all of one item's value
     on site 0, run one rebalance pass, and verify the fragments even out
     with conservation intact. *)
  let sys = Dvp.System.create ~seed:1 ~n:sites () in
  Dvp.System.add_item sys ~item:0 ~total
    ~split:(`Explicit (total :: List.init (sites - 1) (fun _ -> 0)))
    ();
  if not json then begin
    print_endline "fragments before rebalancing:";
    print_fragments sys
  end;
  let moved = Dvp.System.rebalance ~slack sys in
  Dvp.System.run_for sys 2.0;
  let conserved = Dvp.System.conserved_all sys in
  if json then
    print_endline
      (Dvp.Util.Json.to_string_pretty
         (Dvp.Util.Json.Obj
            [
              ("moved", Dvp.Util.Json.Int moved);
              ("conserved", Dvp.Util.Json.Bool conserved);
            ]))
  else begin
    Printf.printf "rebalance pass moved %d unit(s)\n" moved;
    print_endline "fragments after rebalancing:";
    print_fragments sys;
    Printf.printf "conservation: %b\n" conserved
  end;
  if not conserved then begin
    prerr_endline "ERROR: conservation violated after rebalancing";
    exit 1
  end

(* `chaos --wall` targets the multicore runtime: real domain kills, on-disk
   WAL recovery, wall-clock fault plans — the DES fuzzer's sibling. *)
let wall_chaos_cmd seeds first_seed profile_name crashdumps json =
  match Dvp.Chaos.Wall.profile_of_string profile_name with
  | None ->
    Printf.eprintf "unknown wall chaos profile %S (bounded|default|killer)\n"
      profile_name;
    exit 2
  | Some profile ->
    let report = Dvp.Chaos.Wall.run ~profile ~seeds ~first_seed ?crashdumps () in
    if json then
      print_endline
        (Dvp.Util.Json.to_string_pretty (Dvp.Chaos.Wall.report_to_json report))
    else Format.printf "%a@." Dvp.Chaos.Wall.pp_report report;
    if not (Dvp.Chaos.Wall.ok report) then exit 1

let chaos_cmd wall seeds first_seed profile_name crashdumps json =
  if wall then wall_chaos_cmd seeds first_seed profile_name crashdumps json
  else
    match Dvp.Chaos.Profile.of_string profile_name with
    | None ->
      Printf.eprintf "unknown chaos profile %S (%s)\n" profile_name
        (String.concat "|" Dvp.Chaos.Profile.names);
      exit 2
    | Some profile ->
      let report = Dvp.Chaos.Harness.run ~first_seed ~seeds ~profile ?crashdumps () in
      if json then
        print_endline
          (Dvp.Util.Json.to_string_pretty (Dvp.Chaos.Harness.report_to_json report))
      else Format.printf "%a@." Dvp.Chaos.Harness.pp_report report;
      if report.Dvp.Chaos.Harness.failures <> [] then exit 1

let analyze_cmd file json =
  if not (Sys.file_exists file) then begin
    Printf.eprintf "analyze: no such file: %s\n" file;
    exit 2
  end;
  let contents =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* of_jsonl_stats tolerates a clipped final line (crash- or kill-truncated
     dump): unparseable lines count as dropped events, not a hard error. *)
  let events, malformed = Trace.of_jsonl_stats contents in
  if events = [] then begin
    Printf.eprintf "analyze: no trace events found in %s\n" file;
    exit 1
  end;
  if malformed > 0 then
    Printf.eprintf "analyze: %d truncated/unparseable line(s) counted as dropped\n"
      malformed;
  let dropped =
    malformed
    +
    match Trace.meta_of_jsonl contents with
    | Some m -> m.Trace.dropped
    | None -> 0
  in
  let spans = Spans.of_events ~dropped events in
  let tl = Spans.timeline events in
  if json then begin
    let j =
      match Spans.to_json spans with
      | Dvp.Util.Json.Obj fields ->
        Dvp.Util.Json.Obj (fields @ [ ("timeline", Spans.timeline_to_json tl) ])
      | other -> other
    in
    print_endline (Dvp.Util.Json.to_string_pretty j)
  end
  else begin
    Format.printf "%a@.@." Spans.pp_summary spans;
    print_string (Spans.render_vm_table spans);
    print_newline ();
    print_string (Spans.render_timeline tl)
  end

let info_cmd () =
  print_endline
    "dvp-cli: Data-value Partitioning and Virtual Messages (Soparkar &\n\
     Silberschatz, PODS 1990) — reproduction harness.\n\n\
     Systems:\n\
    \  dvp     data-value partitioning with virtual messages (the paper)\n\
    \  2pc     traditional single-copy placement, two-phase commit\n\
    \  3pc     same, three-phase commit with the termination rule\n\
    \  quorum  full replication with majority quorums over 2PC\n\n\
     Workloads: airline, banking, inventory, default.\n\
     Analyze a trace dump with `dvp-cli analyze trace.jsonl`.\n\
     See bench/main.exe for the full experiment suite (E1-E21)."

(* ------------------------------------------------- multicore runtime *)

(* One item per slot, equal totals: the shape both wall-clock commands
   install.  Cross-site behaviour comes from the protocol, not the layout. *)
let cluster_items ~items ~total = List.init items (fun i -> (i, total))

let print_cluster_state c =
  List.iter
    (fun item ->
      let frags = Dvp.Cluster.fragments c ~item in
      Printf.printf "  item %-3d total %-8d fragments [%s]\n" item
        (Array.fold_left ( + ) 0 frags)
        (String.concat "; " (Array.to_list (Array.map string_of_int frags))))
    (Dvp.Cluster.items c)

let write_text_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let bench_cmd wall domains duration transport trace_out stats_out watchdog json =
  if not wall then begin
    Printf.eprintf
      "dvp-cli bench: only the wall-clock mode lives here (pass --wall).\n\
       The DES experiment suite is `dune exec bench/main.exe` (E1-E21).\n";
    exit 2
  end;
  let config = { Dvp.Config.default with Dvp.Config.transport = transport } in
  let tracing = trace_out <> None in
  let c =
    (* Generous per-shard rings when a dump was asked for: the closed loop
       emits a handful of events per commit, and a clipped window would make
       the span-derived commit count disagree with Metrics. *)
    Dvp.Cluster.create ~seed:42 ~config ~tracing ~trace_capacity:(1 lsl 21) ~n:domains
      ~items:[ (0, 1_000_000) ] ()
  in
  let observer =
    if stats_out <> None || watchdog then
      Some (Dvp.Observer.start ?stats_out ~watchdog c)
    else None
  in
  let committed = Dvp.Cluster.run_load c ~duration ~item:0 () in
  let quiesced = Dvp.Cluster.quiesce c in
  let conserved = quiesced && Dvp.Cluster.conserved_all c in
  (match observer with Some o -> Dvp.Observer.stop o | None -> ());
  let alarms =
    match observer with Some o -> List.length (Dvp.Observer.alarms o) | None -> 0
  in
  let trace_jsonl = Dvp.Cluster.trace_jsonl c in
  Dvp.Cluster.stop c;
  (match (trace_out, trace_jsonl) with
  | Some path, Some jsonl -> write_text_file path jsonl
  | _ -> ());
  let rate = float_of_int committed /. duration in
  if json then
    print_endline
      (Dvp.Util.Json.to_string
         (Dvp.Util.Json.Obj
            [
              ("domains", Dvp.Util.Json.Int domains);
              ("cores", Dvp.Util.Json.Int (Domain.recommended_domain_count ()));
              ("duration", Dvp.Util.Json.Float duration);
              ("committed", Dvp.Util.Json.Int committed);
              ("throughput", Dvp.Util.Json.Float rate);
              ("conserved", Dvp.Util.Json.Bool conserved);
              ("tracing", Dvp.Util.Json.Bool tracing);
              ("watchdog_alarms", Dvp.Util.Json.Int alarms);
            ]))
  else begin
    Printf.printf "%d domain(s): %d committed in %.2f s wall — %.0f txns/s, conserved: %b\n"
      domains committed duration rate conserved;
    if watchdog then
      Printf.printf "watchdog: %s\n"
        (if alarms = 0 then "every cut conserved"
         else Printf.sprintf "%d alarm(s) — see crashdump" alarms)
  end;
  if (not conserved) || alarms > 0 then exit 1

let serve_cmd domains items total transport =
  let config = { Dvp.Config.default with Dvp.Config.transport = transport } in
  (* File-backed WALs so `kill` is survivable: `revive` replays the on-disk
     frame prefix through real crash recovery. *)
  let wal_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dvp-serve-%d" (Unix.getpid ()))
  in
  Unix.mkdir wal_dir 0o700;
  let c =
    Dvp.Cluster.create ~seed:42 ~config ~wal_dir ~n:domains
      ~items:(cluster_items ~items ~total) ()
  in
  let sup = Dvp.Supervisor.create c in
  Printf.printf
    "serving %d site domain(s), %d item(s) of %d each; WALs in %s\n\
     commands:\n\
    \  incr <site> <item> <amount>      local escrow increment\n\
    \  decr <site> <item> <amount>      decrement (pulls value, retries)\n\
    \  push <src> <dst> <item> <amount> explicit redistribution\n\
    \  load <seconds> <item>            closed-loop increments on every site\n\
    \  kill <site>                      hard-kill the site's domain (volatile state lost)\n\
    \  revive <site>                    respawn it from its on-disk WAL\n\
    \  report                           fragments and conservation at quiesce\n\
    \  stats                            live per-site telemetry (no quiesce)\n\
    \  quit\n"
    domains items total wal_dir;
  let outcome_line = function
    | Dvp.Txn.Committed { reads = [] } -> "committed"
    | Dvp.Txn.Committed { reads } ->
      "committed: "
      ^ String.concat ", "
          (List.map (fun (i, v) -> Printf.sprintf "item %d = %d" i v) reads)
    | Dvp.Txn.Aborted reason ->
      Printf.sprintf "aborted (%s)" (Dvp.Metrics.abort_reason_label reason)
  in
  let stop () =
    Dvp.Cluster.stop c;
    (try
       Array.iter
         (fun f -> try Sys.remove (Filename.concat wal_dir f) with _ -> ())
         (Sys.readdir wal_dir);
       Unix.rmdir wal_dir
     with _ -> ());
    print_endline "bye"
  in
  let rec loop () =
    print_string "dvp> ";
    match input_line stdin with
    | exception End_of_file -> stop ()
    | line ->
      (try
         match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
      | [] -> ()
      | [ "quit" ] | [ "exit" ] -> raise Exit
      | [ "report" ] ->
        if not (Dvp.Cluster.quiesce c) then print_endline "  (did not quiesce in time)";
        print_cluster_state c;
        Printf.printf "  conservation: %b\n" (Dvp.Cluster.conserved_all c)
      | [ "stats" ] ->
        (* Live snapshot, no quiesce: each site answers from its own loop. *)
        Printf.printf "  %-5s %9s %8s %8s %8s %6s %7s %6s %6s\n" "site" "committed"
          "aborted" "p99ms" "mailbox" "outbox" "wal" "epoch" "active";
        Array.iteri
          (fun i st ->
            let m = st.Dvp.Cluster.st_metrics in
            let p99 = Dvp.Metrics.latency_p99 m *. 1000.0 in
            Printf.printf "  %-5d %9d %8d %8s %8d %6d %7d %6d %6d\n" i
              (Dvp.Metrics.committed m) (Dvp.Metrics.aborted m)
              (if Float.is_nan p99 then "-" else Printf.sprintf "%.2f" p99)
              (Dvp.Cluster.mailbox_depth c i)
              st.Dvp.Cluster.st_outbox st.Dvp.Cluster.st_wal st.Dvp.Cluster.st_epoch
              st.Dvp.Cluster.st_active)
          (Dvp.Cluster.stats c)
      | [ "incr"; s; i; a ] ->
        print_endline
          (outcome_line
             (Dvp.Cluster.exec c
                (Dvp.Txn.write ~site:(int_of_string s)
                   [ (int_of_string i, Dvp.Op.Incr (int_of_string a)) ])))
      | [ "decr"; s; i; a ] ->
        print_endline
          (outcome_line
             (Dvp.Cluster.exec c
                (Dvp.Txn.with_retry
                   (Dvp.Txn.write ~site:(int_of_string s)
                      [ (int_of_string i, Dvp.Op.Decr (int_of_string a)) ]))))
      | [ "push"; s; d; i; a ] ->
        let ok =
          Dvp.Cluster.push_value c ~src:(int_of_string s) ~dst:(int_of_string d)
            ~item:(int_of_string i) ~amount:(int_of_string a)
        in
        print_endline (if ok then "pushed" else "refused (insufficient fragment)")
      | [ "load"; secs; i ] ->
        let n =
          Dvp.Cluster.run_load c ~duration:(float_of_string secs) ~item:(int_of_string i) ()
        in
        Printf.printf "committed %d increments\n" n
      | [ "kill"; s ] ->
        let i = int_of_string s in
        if Dvp.Supervisor.kill sup i then
          Printf.printf "site %d killed — volatile state gone, log survives\n" i
        else print_endline "already dead"
      | [ "revive"; s ] ->
        let i = int_of_string s in
        if Dvp.Supervisor.breaker_tripped sup i then Dvp.Supervisor.reset_breaker sup i;
        (match Dvp.Supervisor.revive sup i with
        | Some n -> Printf.printf "site %d recovered: %d record(s) replayed\n" i n
        | None -> print_endline "already alive")
         | _ ->
           print_endline
             "unknown command (incr/decr/push/load/kill/revive/report/stats/quit)"
       with
      (* The REPL must survive any malformed input — bad integers,
         out-of-range sites, whatever — with an error line, never a raise
         that tears down the live domains.  Exit is the quit path. *)
      | Exit -> raise Exit
      | Failure _ | Invalid_argument _ -> print_endline "bad argument"
      | e -> Printf.printf "error: %s\n" (Printexc.to_string e));
      loop ()
  in
  (try loop () with Exit -> stop ())

(* `dvp-cli top`: spin a cluster under the closed-loop load and let an
   observer paint one aggregated telemetry row per sampling tick while the
   main thread sits in run_load.  Printing happens on the observer domain —
   the site domains never block on the terminal. *)
let top_cmd domains duration every watchdog transport =
  let config = { Dvp.Config.default with Dvp.Config.transport = transport } in
  let c = Dvp.Cluster.create ~seed:42 ~config ~n:domains ~items:[ (0, 1_000_000) ] () in
  Printf.printf "%d domain(s), %.1f s load, sampling every %.2f s%s\n" domains duration
    every
    (if watchdog then ", conservation watchdog armed" else "");
  Printf.printf "%8s %9s %9s %8s %8s %8s %9s %s\n" "t(s)" "commit/s" "committed"
    "aborted" "p99ms" "mailbox" "in-flight" (if watchdog then "conserved" else "");
  let prev = ref (0.0, 0) in
  let on_sample stats cut =
    let now = Dvp.Cluster.now c in
    let committed =
      Array.fold_left
        (fun acc st -> acc + Dvp.Metrics.committed st.Dvp.Cluster.st_metrics)
        0 stats
    in
    let aborted =
      Array.fold_left
        (fun acc st -> acc + Dvp.Metrics.aborted st.Dvp.Cluster.st_metrics)
        0 stats
    in
    let p99 =
      Array.fold_left
        (fun acc st ->
          let p = Dvp.Metrics.latency_p99 st.Dvp.Cluster.st_metrics *. 1000.0 in
          if Float.is_nan acc then p
          else if Float.is_nan p then acc
          else Float.max acc p)
        nan stats
    in
    let mailbox = ref 0 in
    for i = 0 to domains - 1 do
      mailbox := !mailbox + Dvp.Cluster.mailbox_depth c i
    done;
    let in_flight =
      Array.fold_left
        (fun acc st ->
          let sum l = List.fold_left (fun a (_, v) -> a + v) 0 l in
          acc + sum st.Dvp.Cluster.st_sent - sum st.Dvp.Cluster.st_recv)
        0 stats
    in
    let t0, c0 = !prev in
    prev := (now, committed);
    let rate = float_of_int (committed - c0) /. Float.max 1e-9 (now -. t0) in
    Printf.printf "%8.2f %9.0f %9d %8d %8s %8d %9d %s\n%!" now rate committed aborted
      (if Float.is_nan p99 then "-" else Printf.sprintf "%.2f" p99)
      !mailbox in_flight
      (match cut with
      | Some cut -> if Dvp.Cluster.cut_ok cut then "ok" else "VIOLATED"
      | None -> "")
  in
  let observer = Dvp.Observer.start ~every ~watchdog ~on_sample c in
  let committed = Dvp.Cluster.run_load c ~duration ~item:0 () in
  let quiesced = Dvp.Cluster.quiesce c in
  Dvp.Observer.stop observer;
  let alarms = List.length (Dvp.Observer.alarms observer) in
  let conserved = quiesced && Dvp.Cluster.conserved_all c in
  Dvp.Cluster.stop c;
  Printf.printf "total: %d committed (%.0f txns/s), conserved: %b, watchdog alarms: %d\n"
    committed
    (float_of_int committed /. duration)
    conserved alarms;
  if (not conserved) || alarms > 0 then exit 1

(* ------------------------------------------------------------ cmdliner *)

let system_arg =
  Arg.(value & opt system_conv Dvp_sys & info [ "system"; "s" ] ~doc:"System under test.")

let workload_arg =
  Arg.(value & opt workload_conv Spec.Default & info [ "workload"; "w" ] ~doc:"Workload preset.")

let sites_arg = Arg.(value & opt int 6 & info [ "sites"; "n" ] ~doc:"Number of sites.")

let rate_arg = Arg.(value & opt float 80.0 & info [ "rate"; "r" ] ~doc:"Arrivals per second.")

let duration_arg = Arg.(value & opt float 15.0 & info [ "duration"; "d" ] ~doc:"Seconds of load.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.")

let partition_arg =
  Arg.(
    value
    & opt (some window_conv) None
    & info [ "partition"; "p" ] ~doc:"Partition window start:len (halves the sites).")

let crash_arg =
  Arg.(
    value
    & opt (some window_conv) None
    & info [ "crash" ] ~doc:"Crash window start:len for the last site.")

let export_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "export" ] ~doc:"Export the run's stable logs to this directory (dvp only).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE" ~doc:"Write the run's trace events to FILE (dvp only).")

let trace_format_arg =
  Arg.(
    value
    & opt trace_format_conv Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:"Trace file format: jsonl (one event per line) or chrome (trace_event JSON \
              for ui.perfetto.dev).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Print the outcome as one JSON object.")

let run_term =
  Term.(
    const run_cmd $ system_arg $ workload_arg $ sites_arg $ rate_arg $ duration_arg
    $ seed_arg $ partition_arg $ crash_arg $ export_arg $ trace_out_arg $ trace_format_arg
    $ json_arg)

let dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~doc:"Directory of exported site logs (from run --export).")

let restore_term = Term.(const restore_cmd $ workload_arg $ sites_arg $ dir_arg)

let kill_at_arg =
  Arg.(
    value
    & opt float 3.0
    & info [ "kill-at" ] ~doc:"Simulated time at which the victim dies forever.")

let victim_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "victim" ] ~doc:"Site to kill and evacuate (default: the last site).")

let force_arg =
  Arg.(
    value & flag
    & info [ "force" ]
        ~doc:"Evacuate even if no surviving site has condemned the victim yet.")

let evacuate_term =
  Term.(
    const evacuate_cmd $ workload_arg $ sites_arg $ rate_arg $ duration_arg $ seed_arg
    $ kill_at_arg $ victim_arg $ force_arg $ json_arg)

let join_at_arg =
  Arg.(
    value
    & opt float 3.0
    & info [ "join-at" ] ~doc:"Simulated time at which the spare site joins.")

let join_term =
  Term.(
    const join_cmd $ workload_arg $ sites_arg $ rate_arg $ duration_arg $ seed_arg
    $ join_at_arg $ json_arg)

let leave_at_arg =
  Arg.(
    value
    & opt float 3.0
    & info [ "leave-at" ] ~doc:"Simulated time at which the leaver starts its drain.")

let leaver_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "leaver" ] ~doc:"Site that leaves (default: the last site).")

let leave_term =
  Term.(
    const leave_cmd $ workload_arg $ sites_arg $ rate_arg $ duration_arg $ seed_arg
    $ leave_at_arg $ leaver_arg $ json_arg)

let slack_arg =
  Arg.(
    value
    & opt int Dvp.Config.default_rebalance.Dvp.Config.slack
    & info [ "slack" ] ~doc:"Per-item imbalance tolerated before value moves.")

let rebalance_total_arg =
  Arg.(
    value & opt int 1000
    & info [ "total" ] ~doc:"Initial aggregate value of the drill item.")

let rebalance_term =
  Term.(const rebalance_cmd $ sites_arg $ rebalance_total_arg $ slack_arg $ json_arg)

let seeds_arg =
  Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"Number of consecutive seeds to fuzz.")

let first_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"First seed of the range.")

let profile_arg =
  Arg.(
    value
    & opt string "bounded"
    & info [ "profile" ]
        ~doc:
          "Chaos profile: bounded, default, heavy, killer, or churn (DES); with \
           $(b,--wall): bounded, default, or killer.")

let chaos_wall_arg =
  Arg.(
    value & flag
    & info [ "wall" ]
        ~doc:
          "Fuzz the multicore wall-clock runtime instead of the DES: hard domain \
           kills mid-traffic, file-backed WAL recovery (torn tails repaired for \
           real), link storms, forced-write faults — audited by freeze-barrier \
           conservation cuts and an offline replay of the on-disk logs.")

let crashdumps_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "crashdumps" ] ~docv:"DIR"
        ~doc:
          "Record a trace + telemetry per seed and write a crashdump directory under DIR \
           for every failing seed (trace.jsonl, telemetry.json, verdict.json).")

let chaos_term =
  Term.(
    const chaos_cmd $ chaos_wall_arg $ seeds_arg $ first_seed_arg $ profile_arg
    $ crashdumps_arg $ json_arg)

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE.jsonl" ~doc:"JSONL trace dump to analyze.")

let analyze_term = Term.(const analyze_cmd $ trace_file_arg $ json_arg)

(* Flat transport flags, folded into the grouped record the substrates read
   (Config.Transport.of_flat validates the combination). *)
let transport_term =
  let d = Dvp.Config.Transport.default in
  let vm_retransmit =
    Arg.(
      value
      & opt float d.Dvp.Config.Transport.vm_retransmit
      & info [ "vm-retransmit" ] ~doc:"Vm retransmission period (seconds).")
  in
  let ack_delay =
    Arg.(
      value
      & opt float d.Dvp.Config.Transport.ack_delay
      & info [ "ack-delay" ] ~doc:"Acknowledgement piggyback window (seconds).")
  in
  let no_vm_batch =
    Arg.(value & flag & info [ "no-vm-batch" ] ~doc:"One real message per Vm (no batching).")
  in
  let probe_every =
    Arg.(
      value
      & opt float d.Dvp.Config.Transport.probe_every
      & info [ "probe-every" ] ~doc:"Failure-detector scan period (seconds).")
  in
  let probe_idle =
    Arg.(
      value
      & opt float d.Dvp.Config.Transport.probe_idle
      & info [ "probe-idle" ] ~doc:"Silence before probing an idle peer (seconds).")
  in
  let build vm_retransmit ack_delay no_vm_batch probe_every probe_idle =
    Dvp.Config.Transport.of_flat ~vm_retransmit ~ack_delay ~vm_batch:(not no_vm_batch)
      ~vm_backoff_mult:d.Dvp.Config.Transport.vm_backoff_mult
      ~vm_backoff_max:(Float.max d.Dvp.Config.Transport.vm_backoff_max (4.0 *. vm_retransmit))
      ~probe_every ~probe_idle
  in
  Term.(const build $ vm_retransmit $ ack_delay $ no_vm_batch $ probe_every $ probe_idle)

let domains_arg =
  Arg.(value & opt int 4 & info [ "domains" ] ~doc:"Site domains to spawn (one per site).")

let wall_arg =
  Arg.(
    value & flag
    & info [ "wall" ]
        ~doc:"Run on the multicore wall-clock runtime (required; the DES suite lives in \
              bench/main.exe).")

let wall_duration_arg =
  Arg.(value & opt float 2.0 & info [ "duration"; "d" ] ~doc:"Seconds of wall-clock load.")

let items_count_arg =
  Arg.(value & opt int 1 & info [ "items" ] ~doc:"Number of escrow items to install.")

let total_arg =
  Arg.(value & opt int 1000 & info [ "total" ] ~doc:"Initial aggregate value per item.")

let bench_trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ]
        ~doc:"Write the merged per-domain trace (totally ordered JSONL, analyze-able with \
              `dvp-cli analyze`) to this file.")

let stats_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-out" ]
        ~doc:"Append one JSON object per sampling tick (live telemetry feed) to this file.")

let watchdog_arg =
  Arg.(
    value & flag
    & info [ "watchdog" ]
        ~doc:"Arm the conservation watchdog: epoch-consistent cuts over fragments plus \
              in-flight Vm value; any drift from the expected aggregate alarms, dumps a \
              crash-dump, and fails the run.")

let every_arg =
  Arg.(value & opt float 0.25 & info [ "every" ] ~doc:"Observer sampling period (seconds).")

let bench_term =
  Term.(
    const bench_cmd $ wall_arg $ domains_arg $ wall_duration_arg $ transport_term
    $ bench_trace_out_arg $ stats_out_arg $ watchdog_arg $ json_arg)

let serve_term =
  Term.(const serve_cmd $ domains_arg $ items_count_arg $ total_arg $ transport_term)

let top_term =
  Term.(
    const top_cmd $ domains_arg $ wall_duration_arg $ every_arg $ watchdog_arg
    $ transport_term)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a workload against a system") run_term;
    Cmd.v
      (Cmd.info "restore" ~doc:"Rebuild an installation from exported stable logs")
      restore_term;
    Cmd.v
      (Cmd.info "evacuate"
         ~doc:
           "Degraded-mode drill: kill one site permanently mid-run, let the failure \
            detector condemn it, then evacuate its fragments onto the survivors and \
            verify value conservation")
      evacuate_term;
    Cmd.v
      (Cmd.info "join"
         ~doc:
           "Elasticity drill: run a workload on n members plus one detached spare, \
            bring the spare online mid-run through the membership handshake, and \
            verify it ends up a seeded member with value conservation intact")
      join_term;
    Cmd.v
      (Cmd.info "leave"
         ~doc:
           "Elasticity drill: a member gracefully drains, sheds its fragments onto \
            the survivors, and detaches mid-run; verifies the epoch bump and value \
            conservation")
      leave_term;
    Cmd.v
      (Cmd.info "rebalance"
         ~doc:
           "Elasticity drill: start with all value on one hot site, run a rebalance \
            pass, and verify the fragments even out with value conservation intact")
      rebalance_term;
    Cmd.v
      (Cmd.info "chaos"
         ~doc:
           "Fuzz the DvP protocol with seeded fault schedules and check every invariant \
            after each recovery; nonzero exit and a shrunk reproducing schedule on any \
            violation")
      chaos_term;
    Cmd.v
      (Cmd.info "analyze"
         ~doc:
           "Reconstruct transaction spans and Vm lifecycles from a JSONL trace dump and \
            print latency breakdowns, the Vm lifecycle table, and a per-site activity \
            timeline")
      analyze_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Run a live multicore installation (one OCaml domain per site, wall-clock \
            timers) and drive it from an interactive prompt")
      serve_term;
    Cmd.v
      (Cmd.info "bench"
         ~doc:
           "Wall-clock throughput of the multicore runtime: a closed loop of escrow \
            increments on every site domain (--wall required)")
      bench_term;
    Cmd.v
      (Cmd.info "top"
         ~doc:
           "Live telemetry over a multicore cluster under closed-loop load: one \
            aggregated row per sampling tick (commit rate, p99 latency, mailbox/Vm \
            depths), optionally with the conservation watchdog armed")
      top_term;
    Cmd.v (Cmd.info "demo" ~doc:"A canned partition demo") Term.(const demo_cmd $ const ());
    Cmd.v (Cmd.info "info" ~doc:"Describe the systems and workloads") Term.(const info_cmd $ const ());
  ]

let () =
  let doc = "Data-value Partitioning and Virtual Messages reproduction" in
  exit (Cmd.eval (Cmd.group (Cmd.info "dvp-cli" ~doc) cmds))
