(** Simulated write-ahead log on stable storage.

    The paper's protocols hinge on the distinction between what survives a
    site crash (the stable log) and what does not (the in-memory database,
    lock table, and timers).  This module models exactly that boundary:

    - {!append} places a record in a volatile buffer;
    - {!force} pushes the buffer to stable storage (counted, because forced
      writes are the expensive operation a real system pays for);
    - {!crash} discards the volatile buffer — stable records survive;
    - {!records} scans the stable prefix, which is what recovery replays.

    [append ~forced:true] (the default) models the paper's "write one log
    record to stable storage" steps.  Tests inject crashes between append and
    force to check that the protocols only depend on forced records.

    {2 Storage faults}

    Every stable record carries a checksum.  A {!fault} armed with
    {!inject_fault} fires at the next {!crash} and models a flush interrupted
    mid-write: a prefix of the {e unforced} buffer reaches stable storage with
    the last written record corrupt.  Records that were already forced are
    never at risk — that durability is the contract the protocols buy with
    each force.  Readers ({!records}, {!iter}, {!fold}) stop at the first bad
    checksum, so replay never sees garbage; {!repair} truncates the corrupt
    tail physically so the log can grow again after recovery. *)

type 'r t

val create : unit -> 'r t

val append : ?forced:bool -> 'r t -> 'r -> unit
(** Append a record.  With [forced = true] (default) the record and any
    earlier buffered records hit stable storage atomically. *)

val force : 'r t -> unit
(** Flush the volatile buffer to stable storage. *)

val set_force_sink : 'r t -> ('r list -> unit) -> unit
(** Install a durability hook: on every {!force} that stabilises at least one
    record, the sink receives the newly-stable records in log order, after
    they have moved to the stable region.  Runtimes use this to back the
    stable region with a real file (write + flush per force); the in-memory
    log stays authoritative for recovery and the oracles.  At most one sink;
    a second call replaces the first. *)

(** A sink failure surfaced by {!force}: [at_force] is the force counter at
    the time of the failure, [message] the printed exception (ENOSPC, EIO,
    ...).  The failing batch is retained and re-offered on the next force, so
    a transient mirror fault heals without a gap in file coverage. *)
type force_error = { at_force : int; message : string }

val set_on_force_error : 'r t -> (force_error -> unit) -> unit
(** Called from within {!force} whenever the sink raises.  The runtime uses
    this to count the fault in [Metrics] and emit a [Storage_fault] trace
    event; the exception itself never escapes into the caller's event loop. *)

val force_errors : 'r t -> int
(** Total sink failures observed on this log. *)

val last_force_error : 'r t -> force_error option

val sink_pending : 'r t -> int
(** Records stabilised in memory but not yet accepted by the sink (non-zero
    only after a sink failure, until a later force re-offers them). *)

val crash : 'r t -> unit
(** Lose the volatile buffer (site crash).  If a {!fault} is armed it is
    applied first (and disarmed): part of the buffer may reach stable storage
    with a corrupt trailing record. *)

(** A storage failure mode applied at the next {!crash}:

    - [Torn { persist }]: the interrupted flush persisted only the oldest
      [persist] buffered records, the last of them corrupt (clamped to the
      buffer length; no-op on an empty buffer);
    - [Corrupt_tail]: the whole buffer reached stable storage but the final
      record is corrupt. *)
type fault = Torn of { persist : int } | Corrupt_tail

val inject_fault : 'r t -> fault -> unit
(** Arm [fault] for the next {!crash}.  A later injection replaces an armed
    one; recovery does not clear it (only {!crash} consumes it). *)

val pending_fault : 'r t -> fault option

val corrupt_tail : 'r t -> int
(** Number of trailing stable records with bad checksums (0 on a healthy
    log). *)

val repair : 'r t -> int
(** Drop the corrupt tail from stable storage, returning how many records
    were discarded.  Recovery must call this before appending anything new,
    or fresh records would land beyond the bad tail and be invisible to
    {!records}. *)

val repairs : 'r t -> int
(** Number of {!repair} calls that actually dropped records. *)

val repaired_records : 'r t -> int
(** Total corrupt records dropped by {!repair} over this log's lifetime. *)

val records : 'r t -> 'r list
(** Stable records, oldest first, up to the first corrupt record.
    Buffered-but-unforced records are not included. *)

val buffered : 'r t -> int
(** Records appended but not yet forced. *)

val stable_length : 'r t -> int
(** Physical stable length, corrupt tail included. *)

val forces : 'r t -> int
(** Number of force operations performed (metric: log-force cost). *)

val appended : 'r t -> int
(** Total records ever appended (including any later lost to crashes). *)

val iter : 'r t -> ('r -> unit) -> unit
(** Iterate stable records oldest-first (valid prefix only). *)

val fold : 'r t -> init:'a -> f:('a -> 'r -> 'a) -> 'a

val iter_from : 'r t -> from:int -> ('r -> unit) -> unit
(** Iterate stable records oldest-first starting at absolute index [from]
    (valid prefix only).  Indices below {!val-records}' current base are
    skipped; incremental replay after a checkpoint uses this to avoid
    rescanning the whole log. *)

val end_index : 'r t -> int
(** Absolute index one past the newest stable record (monotone across
    truncations). *)

val version : 'r t -> int
(** A counter bumped whenever the stable contents change (a force that moved
    records, a faulty crash, a repair, a truncation).  Oracles that replay
    the log cache their view keyed on this, so repeated conservation checks
    over a quiet log cost O(1) instead of a replay each. *)

val truncate_before : 'r t -> keep_from:int -> unit
(** Checkpointing support: drop stable records with index < [keep_from].
    Subsequent {!records} still yields oldest-first with original order. *)
