(* Each stable record carries a checksum computed at append time.  A healthy
   log has every checksum valid; the fault injector (see {!fault}) can leave a
   corrupt record at the stable tail, which readers detect and stop at. *)
type 'r entry = { payload : 'r; sum : int }

type fault = Torn of { persist : int } | Corrupt_tail

type 'r t = {
  mutable stable : 'r entry list; (* newest first *)
  mutable stable_len : int;
  mutable buffer : 'r entry list; (* newest first *)
  mutable buffer_len : int;
  mutable force_count : int;
  mutable append_count : int;
  mutable base_index : int; (* index of the oldest retained stable record *)
  mutable pending_fault : fault option;
  mutable repair_count : int;
  mutable repaired_count : int;
}

let checksum payload = Hashtbl.hash payload

let entry payload = { payload; sum = checksum payload }

let valid e = e.sum = checksum e.payload

let create () =
  {
    stable = [];
    stable_len = 0;
    buffer = [];
    buffer_len = 0;
    force_count = 0;
    append_count = 0;
    base_index = 0;
    pending_fault = None;
    repair_count = 0;
    repaired_count = 0;
  }

let force t =
  if t.buffer_len > 0 then begin
    (* Both lists are newest-first, so the flushed log is buffer @ stable. *)
    t.stable <- t.buffer @ t.stable;
    t.stable_len <- t.stable_len + t.buffer_len;
    t.buffer <- [];
    t.buffer_len <- 0
  end;
  t.force_count <- t.force_count + 1

let append ?(forced = true) t r =
  t.buffer <- entry r :: t.buffer;
  t.buffer_len <- t.buffer_len + 1;
  t.append_count <- t.append_count + 1;
  if forced then force t

let inject_fault t f = t.pending_fault <- Some f

let pending_fault t = t.pending_fault

(* Persist the oldest [persist] buffered records, flipping the checksum of the
   newest persisted one — the picture a torn background flush leaves behind.
   Only the unforced buffer is at risk: records already forced were durable
   before the crash, which is exactly the guarantee the protocols pay for. *)
let apply_fault t f =
  let persist =
    match f with
    | Torn { persist } -> min (max persist 0) t.buffer_len
    | Corrupt_tail -> t.buffer_len
  in
  if persist > 0 then begin
    (* buffer is newest-first: the oldest [persist] records are its tail. *)
    let surviving = List.filteri (fun i _ -> i >= t.buffer_len - persist) t.buffer in
    let corrupted =
      match surviving with
      | newest :: rest -> { newest with sum = lnot newest.sum } :: rest
      | [] -> []
    in
    t.stable <- corrupted @ t.stable;
    t.stable_len <- t.stable_len + persist
  end

let crash t =
  (match t.pending_fault with Some f -> apply_fault t f | None -> ());
  t.pending_fault <- None;
  t.buffer <- [];
  t.buffer_len <- 0

(* The valid prefix: oldest-first up to (excluding) the first bad checksum.
   Recovery and the stable-state oracles only ever see this view, so a torn
   tail can never be replayed as if it were committed state. *)
let valid_entries t =
  let rec take acc = function
    | e :: rest when valid e -> take (e :: acc) rest
    | _ -> List.rev acc
  in
  take [] (List.rev t.stable)

let records t = List.map (fun e -> e.payload) (valid_entries t)

let buffered t = t.buffer_len

let stable_length t = t.stable_len

let corrupt_tail t = t.stable_len - List.length (valid_entries t)

let repair t =
  let bad = corrupt_tail t in
  if bad > 0 then begin
    (* stable is newest-first: the corrupt tail is its head. *)
    let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r in
    t.stable <- drop bad t.stable;
    t.stable_len <- t.stable_len - bad;
    t.repair_count <- t.repair_count + 1;
    t.repaired_count <- t.repaired_count + bad
  end;
  bad

let repairs t = t.repair_count

let repaired_records t = t.repaired_count

let forces t = t.force_count

let appended t = t.append_count

let iter t f = List.iter f (records t)

let fold t ~init ~f = List.fold_left f init (records t)

let end_index t = t.base_index + t.stable_len

let truncate_before t ~keep_from =
  let drop = keep_from - t.base_index in
  if drop > 0 then begin
    let keep = max 0 (t.stable_len - drop) in
    (* stable is newest-first; keep the newest [keep] records. *)
    let rec take n l acc =
      if n = 0 then List.rev acc
      else match l with [] -> List.rev acc | x :: rest -> take (n - 1) rest (x :: acc)
    in
    t.stable <- take keep t.stable [];
    t.stable_len <- keep;
    t.base_index <- keep_from
  end
