(* Each stable record carries a checksum computed at append time.  A healthy
   log has every checksum valid; the fault injector (see {!fault}) can leave a
   corrupt record at the stable tail, which readers detect and stop at.

   Storage layout: both the stable log and the unforced buffer are growable
   arrays, oldest-first, so append and force are O(1) amortised and the read
   paths are cache-friendly index loops instead of list walks.  The length of
   the valid prefix is cached ([valid_len]) and only invalidated by the fault
   injector — ordinary reads never re-checksum the log, which is what makes
   the recovery/oracle hot paths O(1) per call instead of O(log length). *)

type 'r entry = { payload : 'r; sum : int }

type fault = Torn of { persist : int } | Corrupt_tail

(* A minimal growable array ("dynarray"): OCaml 5.1 has none in the stdlib.
   Slots at index >= len hold stale entries from earlier growth; they are
   never read. *)
type 'r vec = { mutable arr : 'r entry array; mutable len : int }

let vec_create () = { arr = [||]; len = 0 }

let vec_push v e =
  let cap = Array.length v.arr in
  if v.len = cap then begin
    let grown = Array.make (if cap = 0 then 16 else 2 * cap) e in
    Array.blit v.arr 0 grown 0 v.len;
    v.arr <- grown
  end;
  v.arr.(v.len) <- e;
  v.len <- v.len + 1

type 'r t = {
  stable : 'r vec; (* oldest first *)
  buffer : 'r vec; (* oldest first *)
  mutable force_count : int;
  mutable append_count : int;
  mutable base_index : int; (* absolute index of the oldest retained stable record *)
  mutable pending_fault : fault option;
  mutable repair_count : int;
  mutable repaired_count : int;
  (* Cached length of the valid stable prefix.  Maintained incrementally by
     append/force/truncate; only a fault application marks it dirty, so the
     first read after a faulty crash rescans once and every read before the
     next fault is O(1). *)
  mutable valid_len : int;
  mutable valid_dirty : bool;
  (* Bumped whenever the *stable* contents change (force, faulty crash,
     repair, truncation).  Readers that cache a replayed view key it on this
     and skip the replay while the counter stands still. *)
  mutable version : int;
  mutable force_sink : ('r list -> unit) option;
      (* runtime hook: newly-stabilised records on each force *)
  (* Sink failures (ENOSPC/EIO from the backing file) must not corrupt the
     in-memory stable region — which is authoritative — nor escape as raw
     exceptions into a site's event loop.  Failed batches are retained here
     and re-offered on the next force, so a transient mirror fault heals
     without losing file coverage of any stable record. *)
  mutable sink_pending : 'r list; (* oldest first, not yet accepted by the sink *)
  mutable sink_error_count : int;
  mutable last_sink_error : force_error option;
  mutable on_force_error : (force_error -> unit) option;
}

and force_error = { at_force : int; message : string }

let checksum payload = Hashtbl.hash payload

let entry payload = { payload; sum = checksum payload }

let valid e = e.sum = checksum e.payload

let create () =
  {
    stable = vec_create ();
    buffer = vec_create ();
    force_count = 0;
    append_count = 0;
    base_index = 0;
    pending_fault = None;
    repair_count = 0;
    repaired_count = 0;
    valid_len = 0;
    valid_dirty = false;
    version = 0;
    force_sink = None;
    sink_pending = [];
    sink_error_count = 0;
    last_sink_error = None;
    on_force_error = None;
  }

let version t = t.version

(* Length of the valid prefix, recomputing from the cache point if a fault
   invalidated it.  Faults only ever touch records at or beyond the old
   valid prefix, so the rescan starts there, not at zero. *)
let valid_length t =
  if t.valid_dirty then begin
    let n = t.stable.len in
    let i = ref (min t.valid_len n) in
    while !i < n && valid t.stable.arr.(!i) do
      incr i
    done;
    t.valid_len <- !i;
    t.valid_dirty <- false
  end;
  t.valid_len

let set_force_sink t sink = t.force_sink <- Some sink

let set_on_force_error t f = t.on_force_error <- Some f

(* Offer [recs] (plus any earlier failed batches) to the sink.  A sink
   exception is converted into a typed, counted {!force_error}: the records
   stay queued in [sink_pending] and are re-offered on the next force, and the
   in-memory stable region — which recovery and the oracles read — was already
   extended by the caller, so durability bookkeeping is unaffected. *)
let offer_sink t recs =
  match t.force_sink with
  | None -> ()
  | Some sink -> (
    let batch =
      match t.sink_pending with [] -> recs | pending -> pending @ recs
    in
    t.sink_pending <- [];
    match batch with
    | [] -> ()
    | batch -> (
      try sink batch
      with exn ->
        t.sink_pending <- batch;
        t.sink_error_count <- t.sink_error_count + 1;
        let err =
          { at_force = t.force_count; message = Printexc.to_string exn }
        in
        t.last_sink_error <- Some err;
        (match t.on_force_error with Some f -> f err | None -> ())))

let force t =
  if t.buffer.len > 0 then begin
    t.version <- t.version + 1;
    let clean_before = (not t.valid_dirty) && t.valid_len = t.stable.len in
    for i = 0 to t.buffer.len - 1 do
      vec_push t.stable t.buffer.arr.(i)
    done;
    (* Freshly forced records are valid by construction: the prefix cache
       extends unless a corrupt tail already hides them. *)
    if clean_before then t.valid_len <- t.stable.len;
    let recs = ref [] in
    for i = t.buffer.len - 1 downto 0 do
      recs := t.buffer.arr.(i).payload :: !recs
    done;
    t.buffer.len <- 0;
    offer_sink t !recs
  end
  else if t.sink_pending <> [] then offer_sink t [];
  t.force_count <- t.force_count + 1

let append ?(forced = true) t r =
  vec_push t.buffer (entry r);
  t.append_count <- t.append_count + 1;
  if forced then force t

let inject_fault t f = t.pending_fault <- Some f

let pending_fault t = t.pending_fault

(* Persist the oldest [persist] buffered records, flipping the checksum of the
   newest persisted one — the picture a torn background flush leaves behind.
   Only the unforced buffer is at risk: records already forced were durable
   before the crash, which is exactly the guarantee the protocols pay for. *)
let apply_fault t f =
  let persist =
    match f with
    | Torn { persist } -> min (max persist 0) t.buffer.len
    | Corrupt_tail -> t.buffer.len
  in
  if persist > 0 then begin
    t.version <- t.version + 1;
    for i = 0 to persist - 1 do
      let e = t.buffer.arr.(i) in
      vec_push t.stable (if i = persist - 1 then { e with sum = lnot e.sum } else e)
    done;
    t.valid_dirty <- true
  end

let crash t =
  (match t.pending_fault with Some f -> apply_fault t f | None -> ());
  t.pending_fault <- None;
  t.buffer.len <- 0

(* The valid prefix: oldest-first up to (excluding) the first bad checksum.
   Recovery and the stable-state oracles only ever see this view, so a torn
   tail can never be replayed as if it were committed state. *)
let records t = List.init (valid_length t) (fun i -> t.stable.arr.(i).payload)

let buffered t = t.buffer.len

let stable_length t = t.stable.len

let corrupt_tail t = t.stable.len - valid_length t

let repair t =
  let bad = corrupt_tail t in
  if bad > 0 then begin
    t.version <- t.version + 1;
    t.stable.len <- valid_length t;
    t.repair_count <- t.repair_count + 1;
    t.repaired_count <- t.repaired_count + bad
  end;
  bad

let repairs t = t.repair_count

let repaired_records t = t.repaired_count

let forces t = t.force_count

let force_errors t = t.sink_error_count

let last_force_error t = t.last_sink_error

let sink_pending t = List.length t.sink_pending

let appended t = t.append_count

let iter t f =
  let n = valid_length t in
  for i = 0 to n - 1 do
    f t.stable.arr.(i).payload
  done

let fold t ~init ~f =
  let n = valid_length t in
  let acc = ref init in
  for i = 0 to n - 1 do
    acc := f !acc t.stable.arr.(i).payload
  done;
  !acc

let end_index t = t.base_index + t.stable.len

let iter_from t ~from f =
  let n = valid_length t in
  let start = max 0 (from - t.base_index) in
  for i = start to n - 1 do
    f t.stable.arr.(i).payload
  done

let truncate_before t ~keep_from =
  let drop = keep_from - t.base_index in
  if drop > 0 then begin
    t.version <- t.version + 1;
    let keep = max 0 (t.stable.len - drop) in
    if keep > 0 then Array.blit t.stable.arr drop t.stable.arr 0 keep;
    t.stable.len <- keep;
    t.base_index <- keep_from;
    (* Dropping a prefix shifts the cached valid-prefix point down with it.
       If the drop reached past the first-invalid boundary, the boundary
       record itself is gone — records beyond it (invisible until now, e.g.
       forced after an unrepaired fault) may be valid, so the cache must be
       rebuilt from the new front. *)
    if drop > t.valid_len then begin
      t.valid_len <- 0;
      t.valid_dirty <- true
    end
    else t.valid_len <- t.valid_len - drop
  end
