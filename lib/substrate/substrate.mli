(** The execution substrate: what the protocol core needs from its runtime.

    The DvP protocol logic ({!Dvp_core.Site}, {!Dvp_core.Vm}, the failure
    detector, the message fabric) is pure message-passing state-machine code.
    Everything it needs from the world fits in a small capability record:

    - a {b clock} ([now]) and {b timers} ([schedule], [schedule_at],
      cancellable);
    - a {b transport}, injected as a [send] closure at construction time
      (sites never name their runtime — they are handed
      [send : dst:site -> Proto.t -> unit] and an inbound
      [handle_message] is called on them);
    - {b stable storage}, injected as a {!Dvp_storage.Wal.t} whose [force]
      the runtime may back with a real file (see
      {!Dvp_storage.Wal.set_force_sink});
    - {b randomness}, injected as a {!Dvp_util.Rng.t} split deterministically
      by the composition root.

    Only the clock/timer surface needs dynamic dispatch — transport, storage
    and RNG are already first-class values — so this module is exactly that
    surface.  Two implementations exist:

    - {!Dvp_sim.Substrate_des} wraps the deterministic discrete-event
      {!Dvp_sim.Engine}: virtual time, byte-identical traces, the substrate
      under every test, chaos run and E1–E19 bench;
    - [Dvp_runtime.Cluster] gives each site its own OCaml 5 domain with
      wall-clock timers and mailbox transport.

    Invariants every implementation must uphold (the protocol depends on
    them):

    + [now] is monotonically non-decreasing within a site's callbacks.
    + A timer scheduled for the past (or with a negative delay) still fires,
      promptly, and never before the current callback returns.
    + Callbacks of one site are never run concurrently with each other:
      whatever thread/domain structure the runtime has, each site observes a
      serial execution of its own message handlers and timer callbacks.
    + [cancel] of an already-fired or already-cancelled timer is a no-op
      returning [false]. *)

type timer
(** A cancellable pending callback.  Cancellation travels with the timer, so
    holders need not keep the substrate at hand. *)

type t = {
  label : string;  (** ["des"] / ["domains"] — for traces and diagnostics *)
  now : unit -> float;  (** seconds; virtual (DES) or wall since start *)
  schedule : delay:float -> (unit -> unit) -> timer;
  schedule_at : at:float -> (unit -> unit) -> timer;
  trace : Dvp_trace.Trace.t option;
      (** the substrate's trace sink, if it carries one — in the multicore
          runtime this is the calling domain's own shard
          ({!Dvp_trace.Shards}); protocol components created without an
          explicit [?trace] default to it, so the same core code emits
          events unchanged on both substrates *)
}

val make :
  ?trace:Dvp_trace.Trace.t ->
  label:string ->
  now:(unit -> float) ->
  schedule:(delay:float -> (unit -> unit) -> timer) ->
  schedule_at:(at:float -> (unit -> unit) -> timer) ->
  unit ->
  t

val timer_of_thunk : (unit -> bool) -> timer
(** Wrap an implementation's cancellation thunk (returning whether anything
    was actually descheduled) as an opaque {!timer}. *)

val label : t -> string

val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** Run the callback [delay] seconds from [now].  Negative delays clamp to
    "as soon as possible". *)

val schedule_at : t -> at:float -> (unit -> unit) -> timer

val trace : t -> Dvp_trace.Trace.t option
(** The substrate-carried trace sink ([None] unless the composition root
    installed one at {!make} time). *)

val cancel : timer -> bool
(** Deschedule a pending timer; [false] if it already fired or was already
    cancelled. *)
