type timer = { cancel_thunk : unit -> bool }

type t = {
  label : string;
  now : unit -> float;
  schedule : delay:float -> (unit -> unit) -> timer;
  schedule_at : at:float -> (unit -> unit) -> timer;
  trace : Dvp_trace.Trace.t option;
}

let make ?trace ~label ~now ~schedule ~schedule_at () =
  { label; now; schedule; schedule_at; trace }

let timer_of_thunk cancel_thunk = { cancel_thunk }

let label t = t.label

let now t = t.now ()

let schedule t ~delay f = t.schedule ~delay f

let schedule_at t ~at f = t.schedule_at ~at f

let trace t = t.trace

let cancel timer = timer.cancel_thunk ()
