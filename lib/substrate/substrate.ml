type timer = { cancel_thunk : unit -> bool }

type t = {
  label : string;
  now : unit -> float;
  schedule : delay:float -> (unit -> unit) -> timer;
  schedule_at : at:float -> (unit -> unit) -> timer;
}

let make ~label ~now ~schedule ~schedule_at () = { label; now; schedule; schedule_at }

let timer_of_thunk cancel_thunk = { cancel_thunk }

let label t = t.label

let now t = t.now ()

let schedule t ~delay f = t.schedule ~delay f

let schedule_at t ~at f = t.schedule_at ~at f

let cancel timer = timer.cancel_thunk ()
