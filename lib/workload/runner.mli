(** Drive a system-under-test with a workload spec and a fault plan; collect
    the outcome the experiment tables report. *)

type outcome = {
  label : string;
  metrics : Dvp_core.Metrics.t;
  duration : float;
  submitted : int;
  committed : int;
  aborted : int;
  throughput : float;  (** commits per second of load *)
  availability : float;  (** committed / submitted *)
  per_site_committed : int array;
  per_site_submitted : int array;
  timeline : (float * float) list;
      (** (bucket end time, commit ratio within the bucket) — the
          availability-over-time series of experiments E1/E3 *)
  timeline_bucket : float;
  bucket_committed : int array;
  bucket_submitted : int array;
      (** raw per-bucket counts behind [timeline], for experiments that
          compare throughput over a sub-window (e.g. E19's post-detection
          recovery) *)
  conserved : bool option;
      (** end-of-run conservation verdict; [None] for systems without the
          invariant (baselines) *)
  crashdump : string option;
      (** set when conservation failed and a flight recorder was wired: the
          crashdump directory holding the trace window that led up to it *)
}

val run :
  Driver.t ->
  Spec.t ->
  ?faults:Faultplan.t ->
  ?timeline_bucket:float ->
  ?drain:float ->
  ?telemetry:Dvp_obs.Telemetry.t ->
  ?flight:Dvp_obs.Flight.t ->
  unit ->
  outcome
(** Generate Poisson arrivals per the spec on the driver's engine, install
    the fault plan, run until [spec.duration +. drain] (default drain 5 s,
    letting in-flight work settle), then finalize and summarise.

    When [telemetry] is given it is attached to the engine (period =
    [timeline_bucket]) unless the caller attached it already, and at end of
    run it is stopped {e after one final out-of-cadence sample}, so the last
    partial window appears in the series.  When [flight] is given and the
    driver's end-of-run conservation check fails, a crashdump is written and
    its path lands in [outcome.crashdump] (and in {!pp_outcome}'s output). *)

val run_closed :
  Driver.t ->
  Spec.t ->
  clients:int ->
  ?think:float ->
  ?faults:Faultplan.t ->
  ?timeline_bucket:float ->
  ?drain:float ->
  ?telemetry:Dvp_obs.Telemetry.t ->
  ?flight:Dvp_obs.Flight.t ->
  unit ->
  outcome
(** Closed-loop variant: [clients] concurrent clients, each submitting its
    next transaction [think] seconds (default 1 ms, clamped to ≥ 0.1 ms so
    simulated time always advances) after the previous one completes.
    [spec.arrival_rate] is ignored; [spec.duration] still bounds the load
    phase.  Use for saturation studies where open-loop arrivals would queue
    unboundedly. *)

val pp_outcome : Format.formatter -> outcome -> unit

val outcome_to_json : outcome -> Dvp_util.Json.t
(** The whole outcome as one JSON object: the scalar totals, per-site
    arrays, the availability timeline as [{t, commit_ratio}] pairs, the
    conservation verdict and crashdump path (both [null] when absent), and
    the full {!Dvp_core.Metrics.to_json} under ["metrics"] (so throughput,
    availability, latency percentiles, and the per-commit message/force
    overheads all appear machine-readably).  Non-finite floats serialize as
    [null]. *)
