module Rng = Dvp_util.Rng

type action =
  | Partition of Dvp_core.Ids.site list list
  | Heal
  | Crash of Dvp_core.Ids.site
  | Recover of Dvp_core.Ids.site
  | Kill_forever of Dvp_core.Ids.site
  | Set_links of Dvp_net.Linkstate.params
  | Checkpoint of Dvp_core.Ids.site
  | Storage_fault of Dvp_core.Ids.site * Dvp_storage.Wal.fault
  | Join of Dvp_core.Ids.site
  | Leave of Dvp_core.Ids.site

type event = { at : float; action : action }

type t = event list

let empty = []

let at time action = { at = time; action }

let partition_window ~start ~len groups =
  [ at start (Partition groups); at (start +. len) Heal ]

let repeated_partitions ~period ~len ~until groups =
  let rec go start acc =
    if start >= until then List.rev acc
    else
      go (start +. period)
        (at (start +. len) Heal :: at start (Partition groups) :: acc)
  in
  go period []

let crash_cycle ~site ~first ~downtime =
  [ at first (Crash site); at (first +. downtime) (Recover site) ]

let lossy_window ~start ~len ~loss =
  [
    at start (Set_links (Dvp_net.Linkstate.lossy loss));
    at (start +. len) (Set_links Dvp_net.Linkstate.default);
  ]

(* Stable sort: events at equal times keep their relative order, so a
   generator can place a [Storage_fault] immediately before its [Crash] at
   the same instant and rely on that ordering surviving any merge. *)
let merge a b = List.stable_sort (fun x y -> compare x.at y.at) (a @ b)

(* ------------------------------------------------------ random schedules *)

(* Crash/recover cycles as a Poisson process over [start, until): sites are
   picked uniformly, a site already down is left alone (no double crash), and
   downtimes are exponential.  Shared by [random] and [crash_storm]. *)
let poisson_crashes ~rng ~n_sites ~start ~until ~rate ~mean_downtime =
  let up_after = Array.make n_sites neg_infinity in
  let rec go time acc =
    let time = time +. Rng.exponential rng (1.0 /. rate) in
    if time >= until then List.rev acc
    else begin
      let site = Rng.int rng n_sites in
      if time < up_after.(site) then go time acc
      else begin
        let downtime = Float.max 0.05 (Rng.exponential rng mean_downtime) in
        up_after.(site) <- time +. downtime;
        go time (at (time +. downtime) (Recover site) :: at time (Crash site) :: acc)
      end
    end
  in
  if rate <= 0.0 then [] else merge (go start []) []

let crash_storm ~rng ~n_sites ?(mean_downtime = 0.5) ~start ~len ~rate () =
  poisson_crashes ~rng ~n_sites ~start ~until:(start +. len) ~rate ~mean_downtime

let random_groups rng n_sites =
  (* A random binary split with both halves non-empty. *)
  let rec draw () =
    let mask = Array.init n_sites (fun _ -> Rng.bool rng) in
    let a = ref [] and b = ref [] in
    Array.iteri (fun i g -> if g then a := i :: !a else b := i :: !b) mask;
    match (!a, !b) with
    | [], _ | _, [] -> draw ()
    | a, b -> [ List.rev a; List.rev b ]
  in
  if n_sites < 2 then [ List.init n_sites Fun.id ] else draw ()

let random ~rng ~n_sites ~until ?(start = 0.0) ?(crash_rate = 0.0)
    ?(mean_downtime = 0.5) ?(partition_rate = 0.0) ?(mean_partition_len = 1.0)
    ?(loss_rate = 0.0) ?(mean_loss_len = 1.0) ?(max_loss = 0.5) () =
  let windows rate mean_len mk =
    if rate <= 0.0 then []
    else begin
      let rec go time acc =
        let time = time +. Rng.exponential rng (1.0 /. rate) in
        if time >= until then acc
        else begin
          let len = Float.max 0.05 (Rng.exponential rng mean_len) in
          go time (List.rev_append (mk ~start:time ~len) acc)
        end
      in
      List.rev (go start [])
    end
  in
  let crashes =
    poisson_crashes ~rng ~n_sites ~start ~until ~rate:crash_rate ~mean_downtime
  in
  let partitions =
    windows partition_rate mean_partition_len (fun ~start ~len ->
        [ at start (Partition (random_groups rng n_sites)); at (start +. len) Heal ])
  in
  let losses =
    windows loss_rate mean_loss_len (fun ~start ~len ->
        lossy_window ~start ~len ~loss:(Rng.float rng max_loss))
  in
  merge crashes (merge partitions losses)

(* ------------------------------------------------------------ application *)

let apply (d : Driver.t) = function
  | Partition groups -> d.Driver.partition groups
  | Heal -> d.Driver.heal ()
  | Crash s -> d.Driver.crash s
  | Recover s -> d.Driver.recover s
  | Kill_forever s -> d.Driver.kill_forever s
  | Set_links p -> d.Driver.set_links p
  | Checkpoint s -> d.Driver.checkpoint s
  | Storage_fault (s, f) -> d.Driver.inject_storage_fault s f
  | Join s -> d.Driver.join s
  | Leave s -> d.Driver.leave s

let schedule d plan =
  List.iter
    (fun { at = time; action } ->
      ignore
        (Dvp_substrate.Substrate.schedule_at d.Driver.sub ~at:time (fun () -> apply d action)))
    plan

(* -------------------------------------------------------------- printing *)

let action_label = function
  | Partition groups ->
    Printf.sprintf "partition %s"
      (String.concat " | "
         (List.map
            (fun g -> "[" ^ String.concat " " (List.map string_of_int g) ^ "]")
            groups))
  | Heal -> "heal"
  | Crash s -> Printf.sprintf "crash site %d" s
  | Recover s -> Printf.sprintf "recover site %d" s
  | Kill_forever s -> Printf.sprintf "kill site %d forever" s
  | Set_links p ->
    Printf.sprintf "set-links loss=%.2f dup=%.2f" p.Dvp_net.Linkstate.loss_prob
      p.Dvp_net.Linkstate.dup_prob
  | Checkpoint s -> Printf.sprintf "checkpoint site %d" s
  | Storage_fault (s, Dvp_storage.Wal.Torn { persist }) ->
    Printf.sprintf "storage-fault site %d: torn flush (persist %d)" s persist
  | Storage_fault (s, Dvp_storage.Wal.Corrupt_tail) ->
    Printf.sprintf "storage-fault site %d: corrupt tail" s
  | Join s -> Printf.sprintf "join site %d" s
  | Leave s -> Printf.sprintf "leave site %d" s

let pp_event ppf e = Format.fprintf ppf "[%8.4f] %s" e.at (action_label e.action)

let pp ppf plan =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp_event ppf e)
    plan;
  Format.pp_close_box ppf ()

let to_json plan =
  let module Json = Dvp_util.Json in
  Json.List
    (List.map
       (fun e ->
         Json.Obj [ ("at", Json.Float e.at); ("action", Json.String (action_label e.action)) ])
       plan)
