let dvp_system ?config ?link ?trace ?capacity (spec : Spec.t) =
  let sys =
    Dvp_core.System.create ?config ?link ?trace ?capacity ~seed:spec.Spec.seed
      ~n:spec.Spec.n_sites ()
  in
  List.iter (fun (item, total) -> Dvp_core.System.add_item sys ~item ~total ()) spec.Spec.items;
  sys

let dvp ?config ?link ?trace ?capacity ?(name = "dvp") spec =
  Driver.of_dvp ~name (dvp_system ?config ?link ?trace ?capacity spec)

let trad ?config ?link ?(name = "trad") (spec : Spec.t) =
  let sys =
    Dvp_baseline.Trad_system.create ?config ?link ~seed:spec.Spec.seed ~n:spec.Spec.n_sites ()
  in
  List.iter
    (fun (item, total) -> Dvp_baseline.Trad_system.add_item sys ~item ~total)
    spec.Spec.items;
  Driver.of_trad ~name sys
