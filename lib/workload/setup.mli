(** Construct ready-to-run systems from a workload spec. *)

val dvp :
  ?config:Dvp_core.Config.t ->
  ?link:Dvp_net.Linkstate.params ->
  ?trace:Dvp_sim.Trace.t ->
  ?capacity:int ->
  ?name:string ->
  Spec.t ->
  Driver.t
(** A DvP installation with the spec's items split evenly across sites.
    With [trace], every site, the Vm engines, and the network emit typed
    events into it (see {!Dvp_sim.Trace}).  [capacity] (default
    [spec.n_sites]) adds detached spare slots beyond the initial members
    (see {!Dvp_core.System.create}). *)

val dvp_system :
  ?config:Dvp_core.Config.t ->
  ?link:Dvp_net.Linkstate.params ->
  ?trace:Dvp_sim.Trace.t ->
  ?capacity:int ->
  Spec.t ->
  Dvp_core.System.t
(** The underlying system, when the caller needs invariant checks too. *)

val trad :
  ?config:Dvp_baseline.Trad_site.config ->
  ?link:Dvp_net.Linkstate.params ->
  ?name:string ->
  Spec.t ->
  Driver.t
(** A traditional installation (2PC single-copy by default; pass a config for
    3PC or quorum replication). *)
