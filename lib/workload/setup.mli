(** Construct ready-to-run systems from a workload spec. *)

val dvp :
  ?config:Dvp_core.Config.t ->
  ?link:Dvp_net.Linkstate.params ->
  ?trace:Dvp_sim.Trace.t ->
  ?name:string ->
  Spec.t ->
  Driver.t
(** A DvP installation with the spec's items split evenly across sites.
    With [trace], every site, the Vm engines, and the network emit typed
    events into it (see {!Dvp_sim.Trace}). *)

val dvp_system :
  ?config:Dvp_core.Config.t ->
  ?link:Dvp_net.Linkstate.params ->
  ?trace:Dvp_sim.Trace.t ->
  Spec.t ->
  Dvp_core.System.t
(** The underlying system, when the caller needs invariant checks too. *)

val trad :
  ?config:Dvp_baseline.Trad_site.config ->
  ?link:Dvp_net.Linkstate.params ->
  ?name:string ->
  Spec.t ->
  Driver.t
(** A traditional installation (2PC single-copy by default; pass a config for
    3PC or quorum replication). *)
