(** A uniform handle over "a transactional system under test".

    Both the DvP system and the traditional baselines implement the same
    operations (submit / read / fault injection / metrics), so the workload
    generator, fault planner and runner are written once against this record
    and every experiment drives all systems identically. *)

type t = {
  name : string;
  engine : Dvp_sim.Engine.t;
  n_sites : int;
  submit :
    site:Dvp.Ids.site ->
    ops:(Dvp.Ids.item * Dvp.Op.t) list ->
    on_done:(Dvp.Site.txn_result -> unit) ->
    unit;
  submit_read :
    site:Dvp.Ids.site -> item:Dvp.Ids.item -> on_done:(Dvp.Site.txn_result -> unit) -> unit;
  partition : Dvp.Ids.site list list -> unit;
  heal : unit -> unit;
  crash : Dvp.Ids.site -> unit;
  recover : Dvp.Ids.site -> unit;
  kill_forever : Dvp.Ids.site -> unit;
      (** permanent crash: the site never recovers for the rest of the run
          (baselines degrade this to a plain crash) *)
  set_links : Dvp_net.Linkstate.params -> unit;
  checkpoint : Dvp.Ids.site -> unit;
      (** checkpoint one site (no-op for baselines and while crashed) *)
  inject_storage_fault : Dvp.Ids.site -> Dvp_storage.Wal.fault -> unit;
      (** arm a WAL fault applied at the site's next crash (no-op for
          baselines, which do not model torn writes) *)
  finalize : unit -> unit;
      (** end-of-run accounting hook (e.g. close still-blocked episodes) *)
  metrics : unit -> Dvp.Metrics.t;
  conserved : unit -> bool option;
      (** the value-conservation invariant N = Σᵢ Nᵢ + N_M, evaluated now;
          [None] for systems that have no such invariant (the baselines) *)
  trace : unit -> Dvp_sim.Trace.t option;
      (** the structured trace the system writes into, if it was created
          with one — the flight recorder wraps this same ring *)
}

val of_dvp : ?name:string -> Dvp.System.t -> t

val of_trad : ?name:string -> Dvp_baseline.Trad_system.t -> t

val of_hybrid : ?name:string -> Dvp.System.t -> Dvp.Hybrid.t -> t
(** Routes submissions through the hybrid mode manager; fault injection and
    metrics go to the underlying system. *)
