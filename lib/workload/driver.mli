(** A uniform handle over "a transactional system under test".

    Both the DvP system and the traditional baselines implement the same
    operations (submit / read / fault injection / metrics), so the workload
    generator, fault planner and runner are written once against this record
    and every experiment drives all systems identically. *)

type t = {
  name : string;
  engine : Dvp_sim.Engine.t;
      (** the DES driver: runners advance simulated time through it *)
  sub : Dvp_substrate.Substrate.t;
      (** the substrate every scheduled activity (arrivals, fault plans,
          telemetry) goes through *)
  n_sites : int;
  submit :
    site:Dvp_core.Ids.site ->
    ops:(Dvp_core.Ids.item * Dvp_core.Op.t) list ->
    on_done:(Dvp_core.Site.txn_result -> unit) ->
    unit;
  submit_read :
    site:Dvp_core.Ids.site -> item:Dvp_core.Ids.item -> on_done:(Dvp_core.Site.txn_result -> unit) -> unit;
  partition : Dvp_core.Ids.site list list -> unit;
  heal : unit -> unit;
  crash : Dvp_core.Ids.site -> unit;
  recover : Dvp_core.Ids.site -> unit;
  kill_forever : Dvp_core.Ids.site -> unit;
      (** permanent crash: the site never recovers for the rest of the run
          (baselines degrade this to a plain crash) *)
  set_links : Dvp_net.Linkstate.params -> unit;
  checkpoint : Dvp_core.Ids.site -> unit;
      (** checkpoint one site (no-op for baselines and while crashed) *)
  inject_storage_fault : Dvp_core.Ids.site -> Dvp_storage.Wal.fault -> unit;
      (** arm a WAL fault applied at the site's next crash (no-op for
          baselines, which do not model torn writes) *)
  join : Dvp_core.Ids.site -> unit;
      (** start the membership join handshake for a detached spare slot;
          refusals are swallowed (no-op for baselines) *)
  leave : Dvp_core.Ids.site -> unit;
      (** start a graceful voluntary leave of a member; refusals are
          swallowed (no-op for baselines) *)
  finalize : unit -> unit;
      (** end-of-run accounting hook (e.g. close still-blocked episodes) *)
  metrics : unit -> Dvp_core.Metrics.t;
  conserved : unit -> bool option;
      (** the value-conservation invariant N = Σᵢ Nᵢ + N_M, evaluated now;
          [None] for systems that have no such invariant (the baselines) *)
  trace : unit -> Dvp_sim.Trace.t option;
      (** the structured trace the system writes into, if it was created
          with one — the flight recorder wraps this same ring *)
}

val of_dvp : ?name:string -> Dvp_core.System.t -> t

val of_trad : ?name:string -> Dvp_baseline.Trad_system.t -> t

val of_hybrid : ?name:string -> Dvp_core.System.t -> Dvp_core.Hybrid.t -> t
(** Routes submissions through the hybrid mode manager; fault injection and
    metrics go to the underlying system. *)
