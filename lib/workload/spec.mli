(** Workload descriptions.

    A spec captures the paper's three motivating application domains as
    parameterised synthetic workloads: how many sites, which items with what
    aggregate totals, the arrival process, the operation mix and sizes, and
    the access skew. *)

type t = {
  label : string;
  n_sites : int;
  items : (Dvp_core.Ids.item * int) list;  (** (item, initial aggregate value) *)
  arrival_rate : float;  (** transactions per second, whole system *)
  duration : float;  (** seconds of open-loop load *)
  read_fraction : float;  (** drain reads (DvP) / quorum reads (baselines) *)
  incr_fraction : float;
      (** of the non-read transactions, how many add value back
          (cancellations, restocks, deposits) *)
  transfer_fraction : float;
      (** of the non-read transactions, how many touch two items *)
  op_min : int;
  op_max : int;  (** operation sizes drawn uniformly from [op_min, op_max] *)
  zipf_s : float;  (** item-choice skew; 0 = uniform *)
  seed : int;
}

val default : t

val airline : ?sites:int -> ?rate:float -> ?duration:float -> unit -> t
(** Seat reservations on a handful of flights: decrement-heavy with ~15%
    cancellations, occasional flight changes (transfers), rare full reads. *)

val banking : ?sites:int -> ?rate:float -> ?duration:float -> unit -> t
(** Account debits/credits over many accounts: balanced mix, frequent
    transfers, no global reads in steady state. *)

val inventory : ?sites:int -> ?rate:float -> ?duration:float -> unit -> t
(** One hot aggregate item plus a cold tail (Zipf 1.2): the Section 8
    hot-spot scenario. *)

(** {2 Presets}

    The named workloads as a closed variant, so callers (the CLI in
    particular) dispatch on a type instead of matching strings. *)

type preset = Default | Airline | Banking | Inventory

val presets : (string * preset) list
(** Every preset with its canonical name. *)

val preset_label : preset -> string

val preset_of_string : string -> preset option
(** Case-insensitive lookup in {!presets}. *)

val of_preset : ?sites:int -> ?rate:float -> ?duration:float -> preset -> t
(** Build the preset's spec.  [Airline]/[Banking]/[Inventory] delegate to
    the constructors above; [Default] is {!default} scaled to [sites] with
    one 4000-unit item per site. *)

val scale_rate : t -> float -> t

val with_seed : t -> int -> t

val total_expected_txns : t -> float
