(** Declarative fault schedules.

    A plan is a list of timed actions applied to a {!Driver.t}; experiments
    build plans with the combinators below and hand them to {!Runner.run}.
    Beyond the curated combinators, {!random} draws a whole schedule from a
    seeded {!Dvp_util.Rng.t} so experiments (and the chaos harness) can mix
    hand-written and randomized faults via {!merge}. *)

type action =
  | Partition of Dvp_core.Ids.site list list
  | Heal
  | Crash of Dvp_core.Ids.site
  | Recover of Dvp_core.Ids.site
  | Kill_forever of Dvp_core.Ids.site
      (** permanent crash: the site stays dead for the rest of the run *)
  | Set_links of Dvp_net.Linkstate.params
  | Checkpoint of Dvp_core.Ids.site
      (** force a snapshot record and truncate the site's log *)
  | Storage_fault of Dvp_core.Ids.site * Dvp_storage.Wal.fault
      (** arm a WAL fault, applied at the site's next crash *)
  | Join of Dvp_core.Ids.site
      (** bring a detached spare slot online through the membership
          handshake (no-op for baselines, which have a fixed roster) *)
  | Leave of Dvp_core.Ids.site
      (** start a graceful voluntary leave of a member (no-op for
          baselines) *)

type event = { at : float; action : action }

type t = event list

val empty : t

val at : float -> action -> event

val partition_window : start:float -> len:float -> Dvp_core.Ids.site list list -> t
(** One partition episode: split at [start], heal at [start +. len]. *)

val repeated_partitions :
  period:float -> len:float -> until:float -> Dvp_core.Ids.site list list -> t
(** A partition of length [len] at the start of every [period], up to
    [until] — "flapping" connectivity. *)

val crash_cycle : site:Dvp_core.Ids.site -> first:float -> downtime:float -> t
(** Crash the site at [first], recover it [downtime] later. *)

val lossy_window : start:float -> len:float -> loss:float -> t
(** Degrade every link to the given loss probability for a window, then
    restore defaults. *)

val crash_storm :
  rng:Dvp_util.Rng.t ->
  n_sites:int ->
  ?mean_downtime:float ->
  start:float ->
  len:float ->
  rate:float ->
  unit ->
  t
(** A burst of crash/recover cycles: a Poisson process at [rate] crashes per
    second over [start, start +. len), uniformly random victims (a site
    already down is skipped), exponential downtimes with the given mean
    (default 0.5 s, floored at 0.05 s). *)

val random :
  rng:Dvp_util.Rng.t ->
  n_sites:int ->
  until:float ->
  ?start:float ->
  ?crash_rate:float ->
  ?mean_downtime:float ->
  ?partition_rate:float ->
  ?mean_partition_len:float ->
  ?loss_rate:float ->
  ?mean_loss_len:float ->
  ?max_loss:float ->
  unit ->
  t
(** Draw a whole random fault schedule over [start, until): crash/recover
    cycles (as {!crash_storm}), random binary partitions with exponential
    lengths, and link-loss windows with loss drawn uniformly from
    [0, max_loss).  All rates default to 0 (contribute nothing), so callers
    enable exactly the fault classes they want.  Deterministic in the [rng]
    state; the result is already time-sorted and {!merge}s cleanly with
    curated plans. *)

val merge : t -> t -> t
(** Time-sorted union.  The sort is stable: events at equal times keep their
    relative order, so a [Storage_fault] placed before its [Crash] at the
    same instant stays before it. *)

val schedule : Driver.t -> t -> unit
(** Install every event on the driver's engine. *)

(** {2 Printing} *)

val action_label : action -> string

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
(** One event per line — the format chaos-violation reports print shrunk
    schedules in. *)

val to_json : t -> Dvp_util.Json.t
(** [[{"at": t, "action": "<label>"}, ...]]. *)
