type t = {
  name : string;
  engine : Dvp_sim.Engine.t;
  n_sites : int;
  submit :
    site:Dvp.Ids.site ->
    ops:(Dvp.Ids.item * Dvp.Op.t) list ->
    on_done:(Dvp.Site.txn_result -> unit) ->
    unit;
  submit_read :
    site:Dvp.Ids.site -> item:Dvp.Ids.item -> on_done:(Dvp.Site.txn_result -> unit) -> unit;
  partition : Dvp.Ids.site list list -> unit;
  heal : unit -> unit;
  crash : Dvp.Ids.site -> unit;
  recover : Dvp.Ids.site -> unit;
  kill_forever : Dvp.Ids.site -> unit;
  set_links : Dvp_net.Linkstate.params -> unit;
  checkpoint : Dvp.Ids.site -> unit;
  inject_storage_fault : Dvp.Ids.site -> Dvp_storage.Wal.fault -> unit;
  finalize : unit -> unit;
  metrics : unit -> Dvp.Metrics.t;
  conserved : unit -> bool option;
      (* end-of-run value-conservation verdict; None when the system has no
         such invariant (baselines) *)
  trace : unit -> Dvp_sim.Trace.t option;
}

let of_dvp ?(name = "dvp") sys =
  {
    name;
    engine = Dvp.System.engine sys;
    n_sites = Dvp.System.n_sites sys;
    submit =
      (fun ~site ~ops ~on_done ->
        Dvp.System.exec sys (Dvp.Txn.write ~site ops) ~on_done:(fun o ->
            on_done (Dvp.Txn.to_result o)));
    submit_read =
      (fun ~site ~item ~on_done ->
        Dvp.System.exec sys (Dvp.Txn.read ~site item) ~on_done:(fun o ->
            on_done (Dvp.Txn.to_result o)));
    partition = (fun groups -> Dvp.System.partition sys groups);
    heal = (fun () -> Dvp.System.heal sys);
    crash = (fun s -> Dvp.System.crash_site sys s);
    recover = (fun s -> Dvp.System.recover_site sys s);
    kill_forever = (fun s -> Dvp.System.kill_forever sys s);
    set_links = (fun p -> Dvp.System.set_all_links sys p);
    checkpoint = (fun s -> Dvp.System.checkpoint_site sys s);
    inject_storage_fault = (fun s f -> Dvp.System.inject_wal_fault sys s f);
    finalize = (fun () -> ());
    metrics = (fun () -> Dvp.System.metrics sys);
    conserved = (fun () -> Some (Dvp.System.conserved_all sys));
    trace = (fun () -> Dvp.System.trace sys);
  }

let of_trad ?(name = "trad") sys =
  let module T = Dvp_baseline.Trad_system in
  {
    name;
    engine = T.engine sys;
    n_sites = T.n_sites sys;
    submit = (fun ~site ~ops ~on_done -> T.submit sys ~site ~ops ~on_done);
    submit_read = (fun ~site ~item ~on_done -> T.submit_read sys ~site ~item ~on_done);
    partition = (fun groups -> T.partition sys groups);
    heal = (fun () -> T.heal sys);
    crash = (fun s -> T.crash_site sys s);
    recover = (fun s -> T.recover_site sys s);
    (* The baselines have no permanent-death notion: a killed site is simply
       crashed and never recovered (the plan generator filters its Recovers). *)
    kill_forever = (fun s -> T.crash_site sys s);
    set_links =
      (fun _ ->
        (* Baseline network parameters are fixed at creation; experiments
           that sweep link quality construct fresh systems instead. *)
        ());
    checkpoint = (fun _ -> ());
    inject_storage_fault =
      (fun _ _ ->
        (* The baselines model neither checkpointing nor torn writes; chaos
           schedules degrade gracefully to their network/site faults. *)
        ());
    finalize = (fun () -> T.flush_blocked sys);
    metrics = (fun () -> T.metrics sys);
    conserved = (fun () -> None);
    trace = (fun () -> None);
  }

let of_hybrid ?(name = "hybrid") sys hybrid =
  let base = of_dvp ~name sys in
  {
    base with
    submit = (fun ~site ~ops ~on_done -> Dvp.Hybrid.submit hybrid ~site ~ops ~on_done);
    submit_read =
      (fun ~site ~item ~on_done -> Dvp.Hybrid.submit_read hybrid ~site ~item ~on_done);
  }
