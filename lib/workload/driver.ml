type t = {
  name : string;
  engine : Dvp_sim.Engine.t;
      (* the DES driver: Runner advances simulated time through it *)
  sub : Dvp_substrate.Substrate.t;
      (* scheduling interface for arrivals, telemetry and fault plans *)
  n_sites : int;
  submit :
    site:Dvp_core.Ids.site ->
    ops:(Dvp_core.Ids.item * Dvp_core.Op.t) list ->
    on_done:(Dvp_core.Site.txn_result -> unit) ->
    unit;
  submit_read :
    site:Dvp_core.Ids.site -> item:Dvp_core.Ids.item -> on_done:(Dvp_core.Site.txn_result -> unit) -> unit;
  partition : Dvp_core.Ids.site list list -> unit;
  heal : unit -> unit;
  crash : Dvp_core.Ids.site -> unit;
  recover : Dvp_core.Ids.site -> unit;
  kill_forever : Dvp_core.Ids.site -> unit;
  set_links : Dvp_net.Linkstate.params -> unit;
  checkpoint : Dvp_core.Ids.site -> unit;
  inject_storage_fault : Dvp_core.Ids.site -> Dvp_storage.Wal.fault -> unit;
  join : Dvp_core.Ids.site -> unit;
  leave : Dvp_core.Ids.site -> unit;
  finalize : unit -> unit;
  metrics : unit -> Dvp_core.Metrics.t;
  conserved : unit -> bool option;
      (* end-of-run value-conservation verdict; None when the system has no
         such invariant (baselines) *)
  trace : unit -> Dvp_sim.Trace.t option;
}

let of_dvp ?(name = "dvp") sys =
  {
    name;
    engine = Dvp_core.System.engine sys;
    sub = Dvp_core.System.sub sys;
    n_sites = Dvp_core.System.n_sites sys;
    submit =
      (fun ~site ~ops ~on_done ->
        Dvp_core.System.exec sys (Dvp_core.Txn.write ~site ops) ~on_done:(fun o ->
            on_done (Dvp_core.Txn.to_result o)));
    submit_read =
      (fun ~site ~item ~on_done ->
        Dvp_core.System.exec sys (Dvp_core.Txn.read ~site item) ~on_done:(fun o ->
            on_done (Dvp_core.Txn.to_result o)));
    partition = (fun groups -> Dvp_core.System.partition sys groups);
    heal = (fun () -> Dvp_core.System.heal sys);
    crash = (fun s -> Dvp_core.System.crash_site sys s);
    recover = (fun s -> Dvp_core.System.recover_site sys s);
    kill_forever = (fun s -> Dvp_core.System.kill_forever sys s);
    set_links = (fun p -> Dvp_core.System.set_all_links sys p);
    checkpoint = (fun s -> Dvp_core.System.checkpoint_site sys s);
    inject_storage_fault = (fun s f -> Dvp_core.System.inject_wal_fault sys s f);
    (* Chaos schedules fire joins and leaves blind — the system's own
       refusals (slot not detached, too few members, site down) are the
       membership policy, not errors worth aborting a run over. *)
    join = (fun s -> ignore (Dvp_core.System.join sys s));
    leave = (fun s -> ignore (Dvp_core.System.leave sys s));
    finalize = (fun () -> ());
    metrics = (fun () -> Dvp_core.System.metrics sys);
    conserved = (fun () -> Some (Dvp_core.System.conserved_all sys));
    trace = (fun () -> Dvp_core.System.trace sys);
  }

let of_trad ?(name = "trad") sys =
  let module T = Dvp_baseline.Trad_system in
  {
    name;
    engine = T.engine sys;
    sub = Dvp_sim.Substrate_des.of_engine (T.engine sys);
    n_sites = T.n_sites sys;
    submit = (fun ~site ~ops ~on_done -> T.submit sys ~site ~ops ~on_done);
    submit_read = (fun ~site ~item ~on_done -> T.submit_read sys ~site ~item ~on_done);
    partition = (fun groups -> T.partition sys groups);
    heal = (fun () -> T.heal sys);
    crash = (fun s -> T.crash_site sys s);
    recover = (fun s -> T.recover_site sys s);
    (* The baselines have no permanent-death notion: a killed site is simply
       crashed and never recovered (the plan generator filters its Recovers). *)
    kill_forever = (fun s -> T.crash_site sys s);
    set_links =
      (fun _ ->
        (* Baseline network parameters are fixed at creation; experiments
           that sweep link quality construct fresh systems instead. *)
        ());
    checkpoint = (fun _ -> ());
    inject_storage_fault =
      (fun _ _ ->
        (* The baselines model neither checkpointing nor torn writes; chaos
           schedules degrade gracefully to their network/site faults. *)
        ());
    (* Fixed roster: the baselines have no elastic membership. *)
    join = (fun _ -> ());
    leave = (fun _ -> ());
    finalize = (fun () -> T.flush_blocked sys);
    metrics = (fun () -> T.metrics sys);
    conserved = (fun () -> None);
    trace = (fun () -> None);
  }

let of_hybrid ?(name = "hybrid") sys hybrid =
  let base = of_dvp ~name sys in
  {
    base with
    submit = (fun ~site ~ops ~on_done -> Dvp_core.Hybrid.submit hybrid ~site ~ops ~on_done);
    submit_read =
      (fun ~site ~item ~on_done -> Dvp_core.Hybrid.submit_read hybrid ~site ~item ~on_done);
  }
