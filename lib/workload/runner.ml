module Rng = Dvp_util.Rng
module Engine = Dvp_sim.Engine
module Substrate = Dvp_substrate.Substrate

type outcome = {
  label : string;
  metrics : Dvp_core.Metrics.t;
  duration : float;
  submitted : int;
  committed : int;
  aborted : int;
  throughput : float;
  availability : float;
  per_site_committed : int array;
  per_site_submitted : int array;
  timeline : (float * float) list;
  timeline_bucket : float;
  bucket_committed : int array;
  bucket_submitted : int array;
  conserved : bool option;
  crashdump : string option;
}

(* Attach the telemetry registry to the run's engine unless the caller
   already did; default cadence is the timeline bucket so both views line
   up. *)
let start_observers (d : Driver.t) ?telemetry ~timeline_bucket () =
  match telemetry with
  | Some tel when not (Dvp_obs.Telemetry.attached tel) ->
    Dvp_obs.Telemetry.attach tel d.Driver.engine ~period:timeline_bucket
  | _ -> ()

(* End-of-run epilogue shared by the open- and closed-loop runners: stop the
   probes (with one final sample), evaluate the conservation invariant, and
   — when it fails and a flight recorder is wired — dump a crashdump whose
   path the outcome (and hence every report) carries. *)
let finish_observers (d : Driver.t) ?telemetry ?flight () =
  (match telemetry with Some tel -> Dvp_obs.Telemetry.stop tel | None -> ());
  let conserved = d.Driver.conserved () in
  let crashdump =
    match (conserved, flight) with
    | Some false, Some fl ->
      let module Json = Dvp_util.Json in
      let verdict =
        Json.Obj
          [
            ("check", Json.String "conservation");
            ( "detail",
              Json.String
                (Printf.sprintf
                   "%s: end-of-run conservation check failed (N <> sum_i N_i + N_M)"
                   d.Driver.name) );
          ]
      in
      Some (Dvp_obs.Flight.dump fl ~label:(d.Driver.name ^ "-conservation") ~verdict)
    | _ -> None
  in
  (conserved, crashdump)

(* One generated transaction: where it starts and what it does. *)
let generate_txn rng (spec : Spec.t) =
  let site = Rng.int rng spec.Spec.n_sites in
  let items = Array.of_list (List.map fst spec.Spec.items) in
  let pick_item () = items.(Rng.zipf rng (Array.length items) spec.Spec.zipf_s - 1) in
  let u = Rng.float rng 1.0 in
  if u < spec.Spec.read_fraction then `Read (site, pick_item ())
  else begin
    let amount = Rng.int_in rng spec.Spec.op_min spec.Spec.op_max in
    let u2 = Rng.float rng 1.0 in
    if u2 < spec.Spec.transfer_fraction && Array.length items > 1 then begin
      (* Move value between two distinct items (flight change, account
         transfer): decrement one, increment the other. *)
      let a = pick_item () in
      let rec other () =
        let b = pick_item () in
        if b = a then other () else b
      in
      let b = other () in
      `Txn (site, [ (a, Dvp_core.Op.Decr amount); (b, Dvp_core.Op.Incr amount) ])
    end
    else if u2 < spec.Spec.transfer_fraction +. spec.Spec.incr_fraction then
      `Txn (site, [ (pick_item (), Dvp_core.Op.Incr amount) ])
    else `Txn (site, [ (pick_item (), Dvp_core.Op.Decr amount) ])
  end

let run (d : Driver.t) (spec : Spec.t) ?(faults = Faultplan.empty) ?(timeline_bucket = 1.0)
    ?(drain = 5.0) ?telemetry ?flight () =
  let rng = Rng.create spec.Spec.seed in
  let submitted = ref 0 and committed = ref 0 and aborted = ref 0 in
  let per_site_committed = Array.make d.Driver.n_sites 0 in
  let per_site_submitted = Array.make d.Driver.n_sites 0 in
  let buckets = max 1 (int_of_float (ceil (spec.Spec.duration /. timeline_bucket))) in
  let bucket_committed = Array.make buckets 0 and bucket_submitted = Array.make buckets 0 in
  let engine = d.Driver.engine in
  let sub = d.Driver.sub in
  let record_result ~site ~bucket result =
    match result with
    | Dvp_core.Site.Committed _ ->
      incr committed;
      per_site_committed.(site) <- per_site_committed.(site) + 1;
      if bucket >= 0 && bucket < buckets then
        bucket_committed.(bucket) <- bucket_committed.(bucket) + 1
    | Dvp_core.Site.Aborted _ -> incr aborted
  in
  let submit_one () =
    match generate_txn rng spec with
    | `Read (site, item) ->
      incr submitted;
      per_site_submitted.(site) <- per_site_submitted.(site) + 1;
      let bucket = int_of_float (Substrate.now sub /. timeline_bucket) in
      if bucket >= 0 && bucket < buckets then
        bucket_submitted.(bucket) <- bucket_submitted.(bucket) + 1;
      d.Driver.submit_read ~site ~item ~on_done:(record_result ~site ~bucket)
    | `Txn (site, ops) ->
      incr submitted;
      per_site_submitted.(site) <- per_site_submitted.(site) + 1;
      let bucket = int_of_float (Substrate.now sub /. timeline_bucket) in
      if bucket >= 0 && bucket < buckets then
        bucket_submitted.(bucket) <- bucket_submitted.(bucket) + 1;
      d.Driver.submit ~site ~ops ~on_done:(record_result ~site ~bucket)
  in
  (* Open-loop Poisson arrivals. *)
  let rec arrival_loop () =
    if Substrate.now sub < spec.Spec.duration then begin
      submit_one ();
      let gap = Rng.exponential rng (1.0 /. spec.Spec.arrival_rate) in
      ignore (Substrate.schedule sub ~delay:gap arrival_loop)
    end
  in
  ignore
    (Substrate.schedule_at sub
       ~at:(Rng.exponential rng (1.0 /. spec.Spec.arrival_rate))
       arrival_loop);
  Faultplan.schedule d faults;
  start_observers d ?telemetry ~timeline_bucket ();
  Engine.run_until engine (spec.Spec.duration +. drain);
  d.Driver.finalize ();
  let conserved, crashdump = finish_observers d ?telemetry ?flight () in
  let timeline =
    List.init buckets (fun i ->
        let t_end = float_of_int (i + 1) *. timeline_bucket in
        let s = bucket_submitted.(i) in
        let ratio = if s = 0 then nan else float_of_int bucket_committed.(i) /. float_of_int s in
        (t_end, ratio))
  in
  {
    label = d.Driver.name;
    metrics = d.Driver.metrics ();
    duration = spec.Spec.duration;
    submitted = !submitted;
    committed = !committed;
    aborted = !aborted;
    throughput = float_of_int !committed /. spec.Spec.duration;
    availability =
      (if !submitted = 0 then nan else float_of_int !committed /. float_of_int !submitted);
    per_site_committed;
    per_site_submitted;
    timeline;
    timeline_bucket;
    bucket_committed;
    bucket_submitted;
    conserved;
    crashdump;
  }

let run_closed (d : Driver.t) (spec : Spec.t) ~clients ?(think = 0.001)
    ?(faults = Faultplan.empty) ?(timeline_bucket = 1.0) ?(drain = 5.0) ?telemetry ?flight
    () =
  (* A zero think time would never advance simulated time when commits are
     synchronous (local DvP commits are): clamp to a small positive gap. *)
  let think = Float.max think 1e-4 in
  let rng = Rng.create spec.Spec.seed in
  let submitted = ref 0 and committed = ref 0 and aborted = ref 0 in
  let per_site_committed = Array.make d.Driver.n_sites 0 in
  let per_site_submitted = Array.make d.Driver.n_sites 0 in
  let buckets = max 1 (int_of_float (ceil (spec.Spec.duration /. timeline_bucket))) in
  let bucket_committed = Array.make buckets 0 and bucket_submitted = Array.make buckets 0 in
  let engine = d.Driver.engine in
  let sub = d.Driver.sub in
  let rec client_loop () =
    if Substrate.now sub < spec.Spec.duration then begin
      let bucket = int_of_float (Substrate.now sub /. timeline_bucket) in
      let record result =
        (match result with
        | Dvp_core.Site.Committed _ ->
          incr committed;
          if bucket >= 0 && bucket < buckets then
            bucket_committed.(bucket) <- bucket_committed.(bucket) + 1
        | Dvp_core.Site.Aborted _ -> incr aborted);
        ignore (Substrate.schedule sub ~delay:think client_loop)
      in
      match generate_txn rng spec with
      | `Read (site, item) ->
        incr submitted;
        per_site_submitted.(site) <- per_site_submitted.(site) + 1;
        if bucket >= 0 && bucket < buckets then
          bucket_submitted.(bucket) <- bucket_submitted.(bucket) + 1;
        d.Driver.submit_read ~site ~item ~on_done:(fun r ->
            (match r with
            | Dvp_core.Site.Committed _ -> per_site_committed.(site) <- per_site_committed.(site) + 1
            | Dvp_core.Site.Aborted _ -> ());
            record r)
      | `Txn (site, ops) ->
        incr submitted;
        per_site_submitted.(site) <- per_site_submitted.(site) + 1;
        if bucket >= 0 && bucket < buckets then
          bucket_submitted.(bucket) <- bucket_submitted.(bucket) + 1;
        d.Driver.submit ~site ~ops ~on_done:(fun r ->
            (match r with
            | Dvp_core.Site.Committed _ -> per_site_committed.(site) <- per_site_committed.(site) + 1
            | Dvp_core.Site.Aborted _ -> ());
            record r)
    end
  in
  for _ = 1 to clients do
    ignore (Substrate.schedule sub ~delay:(Rng.float rng 0.01) client_loop)
  done;
  Faultplan.schedule d faults;
  start_observers d ?telemetry ~timeline_bucket ();
  Engine.run_until engine (spec.Spec.duration +. drain);
  d.Driver.finalize ();
  let conserved, crashdump = finish_observers d ?telemetry ?flight () in
  let timeline =
    List.init buckets (fun i ->
        let t_end = float_of_int (i + 1) *. timeline_bucket in
        let s = bucket_submitted.(i) in
        let ratio = if s = 0 then nan else float_of_int bucket_committed.(i) /. float_of_int s in
        (t_end, ratio))
  in
  {
    label = d.Driver.name;
    metrics = d.Driver.metrics ();
    duration = spec.Spec.duration;
    submitted = !submitted;
    committed = !committed;
    aborted = !aborted;
    throughput = float_of_int !committed /. spec.Spec.duration;
    availability =
      (if !submitted = 0 then nan else float_of_int !committed /. float_of_int !submitted);
    per_site_committed;
    per_site_submitted;
    timeline;
    timeline_bucket;
    bucket_committed;
    bucket_submitted;
    conserved;
    crashdump;
  }

let outcome_to_json o =
  let module Json = Dvp_util.Json in
  let num f = if Float.is_finite f then Json.Float f else Json.Null in
  let ints a = Json.List (Array.to_list (Array.map (fun v -> Json.Int v) a)) in
  Json.Obj
    [
      ("label", Json.String o.label);
      ("duration", num o.duration);
      ("submitted", Json.Int o.submitted);
      ("committed", Json.Int o.committed);
      ("aborted", Json.Int o.aborted);
      ("throughput", num o.throughput);
      ("availability", num o.availability);
      ("per_site_committed", ints o.per_site_committed);
      ("per_site_submitted", ints o.per_site_submitted);
      ("timeline_bucket", num o.timeline_bucket);
      ("bucket_committed", ints o.bucket_committed);
      ("bucket_submitted", ints o.bucket_submitted);
      ( "conserved",
        match o.conserved with Some b -> Json.Bool b | None -> Json.Null );
      ( "crashdump",
        match o.crashdump with Some p -> Json.String p | None -> Json.Null );
      ( "timeline",
        Json.List
          (List.map
             (fun (t, ratio) ->
               Json.Obj [ ("t", num t); ("commit_ratio", num ratio) ])
             o.timeline) );
      ("metrics", Dvp_core.Metrics.to_json o.metrics);
    ]

let pp_outcome ppf o =
  Format.fprintf ppf
    "%s: %d submitted, %d committed (%.1f%%), %.1f txn/s, p50=%.1f ms p99=%.1f ms"
    o.label o.submitted o.committed (100.0 *. o.availability) o.throughput
    (1000.0 *. Dvp_core.Metrics.latency_p50 o.metrics)
    (1000.0 *. Dvp_core.Metrics.latency_p99 o.metrics);
  match (o.conserved, o.crashdump) with
  | Some false, Some path ->
    Format.fprintf ppf "@,CONSERVATION VIOLATED — crashdump written to %s" path
  | Some false, None -> Format.fprintf ppf "@,CONSERVATION VIOLATED"
  | _ -> ()
