type t = {
  label : string;
  n_sites : int;
  items : (Dvp_core.Ids.item * int) list;
  arrival_rate : float;
  duration : float;
  read_fraction : float;
  incr_fraction : float;
  transfer_fraction : float;
  op_min : int;
  op_max : int;
  zipf_s : float;
  seed : int;
}

let default =
  {
    label = "default";
    n_sites = 4;
    (* Provisioned so a balanced random-walk demand rarely exhausts it. *)
    items = [ (0, 4000) ];
    arrival_rate = 50.0;
    duration = 20.0;
    read_fraction = 0.0;
    incr_fraction = 0.45;
    transfer_fraction = 0.0;
    op_min = 1;
    op_max = 4;
    zipf_s = 0.0;
    seed = 1;
  }

let airline ?(sites = 8) ?(rate = 100.0) ?(duration = 20.0) () =
  {
    label = "airline";
    n_sites = sites;
    (* Four flights with healthy seat pools relative to the demand rate. *)
    items = [ (0, 2000); (1, 1500); (2, 1000); (3, 800) ];
    arrival_rate = rate;
    duration;
    read_fraction = 0.01;
    incr_fraction = 0.15;
    transfer_fraction = 0.05;
    op_min = 1;
    op_max = 4;
    zipf_s = 0.6;
    seed = 1;
  }

let banking ?(sites = 8) ?(rate = 100.0) ?(duration = 20.0) () =
  {
    label = "banking";
    n_sites = sites;
    items = List.init 32 (fun i -> (i, 1000));
    arrival_rate = rate;
    duration;
    read_fraction = 0.0;
    incr_fraction = 0.5;
    transfer_fraction = 0.25;
    op_min = 1;
    op_max = 20;
    zipf_s = 0.8;
    seed = 2;
  }

let inventory ?(sites = 8) ?(rate = 150.0) ?(duration = 20.0) () =
  {
    label = "inventory";
    n_sites = sites;
    (* Item 0 is the hot aggregate; a cold tail absorbs the rest. *)
    items = (0, 20_000) :: List.init 15 (fun i -> (i + 1, 2000));
    arrival_rate = rate;
    duration;
    read_fraction = 0.005;
    incr_fraction = 0.3;
    transfer_fraction = 0.0;
    op_min = 1;
    op_max = 3;
    zipf_s = 1.2;
    seed = 3;
  }

type preset = Default | Airline | Banking | Inventory

let presets =
  [ ("default", Default); ("airline", Airline); ("banking", Banking); ("inventory", Inventory) ]

let preset_label = function
  | Default -> "default"
  | Airline -> "airline"
  | Banking -> "banking"
  | Inventory -> "inventory"

let preset_of_string s = List.assoc_opt (String.lowercase_ascii s) presets

let of_preset ?sites ?rate ?duration preset =
  match preset with
  | Airline -> airline ?sites ?rate ?duration ()
  | Banking -> banking ?sites ?rate ?duration ()
  | Inventory -> inventory ?sites ?rate ?duration ()
  | Default ->
    let sites = Option.value ~default:default.n_sites sites in
    {
      default with
      n_sites = sites;
      (* One well-provisioned item per site, the shape ad-hoc runs expect. *)
      items = List.init sites (fun i -> (i, 4000));
      arrival_rate = Option.value ~default:default.arrival_rate rate;
      duration = Option.value ~default:default.duration duration;
    }

let scale_rate t f = { t with arrival_rate = t.arrival_rate *. f }

let with_seed t seed = { t with seed }

let total_expected_txns t = t.arrival_rate *. t.duration
