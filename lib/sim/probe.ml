type 'a t = {
  engine : Engine.t;
  period : float;
  sample : float -> 'a;
  mutable series : (float * 'a) list; (* newest first *)
  mutable n : int;
  mutable running : bool;
}

let rec tick t () =
  if t.running then begin
    let now = Engine.now t.engine in
    t.series <- (now, t.sample now) :: t.series;
    t.n <- t.n + 1;
    ignore (Engine.schedule t.engine ~delay:t.period (tick t))
  end

let start engine ~period ~sample =
  if period <= 0.0 then invalid_arg "Probe.start: period must be positive";
  let t = { engine; period; sample; series = []; n = 0; running = true } in
  ignore (Engine.schedule engine ~delay:period (tick t));
  t

let sample_now t =
  let now = Engine.now t.engine in
  t.series <- (now, t.sample now) :: t.series;
  t.n <- t.n + 1

let stop t = t.running <- false

let period t = t.period

let series t = List.rev t.series

let length t = t.n
