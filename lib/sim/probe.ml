(* Time comes either from the engine (scheduled, self-rescheduling ticks) or
   from a caller-supplied clock (manual mode: the caller drives sampling,
   e.g. a wall-clock observer domain). *)
type clock = Engine_clock of Engine.t | Manual_clock of (unit -> float)

type 'a t = {
  clock : clock;
  period : float;
  sample : float -> 'a;
  mutable series : (float * 'a) list; (* newest first *)
  mutable n : int;
  mutable running : bool;
}

let now t =
  match t.clock with Engine_clock e -> Engine.now e | Manual_clock f -> f ()

let rec tick t () =
  if t.running then begin
    match t.clock with
    | Manual_clock _ -> ()
    | Engine_clock engine ->
      let now = Engine.now engine in
      t.series <- (now, t.sample now) :: t.series;
      t.n <- t.n + 1;
      ignore (Engine.schedule engine ~delay:t.period (tick t))
  end

let start engine ~period ~sample =
  if period <= 0.0 then invalid_arg "Probe.start: period must be positive";
  let t =
    { clock = Engine_clock engine; period; sample; series = []; n = 0; running = true }
  in
  ignore (Engine.schedule engine ~delay:period (tick t));
  t

let manual ~clock ~period ~sample =
  if period <= 0.0 then invalid_arg "Probe.manual: period must be positive";
  { clock = Manual_clock clock; period; sample; series = []; n = 0; running = true }

let sample_now t =
  let now = now t in
  t.series <- (now, t.sample now) :: t.series;
  t.n <- t.n + 1

let stop t = t.running <- false

let period t = t.period

let series t = List.rev t.series

let length t = t.n
