module Substrate = Dvp_substrate.Substrate

let of_engine ?trace e =
  Substrate.make ?trace ~label:"des"
    ~now:(fun () -> Engine.now e)
    ~schedule:(fun ~delay f ->
      let h = Engine.schedule e ~delay f in
      Substrate.timer_of_thunk (fun () -> Engine.cancel e h))
    ~schedule_at:(fun ~at f ->
      let h = Engine.schedule_at e ~at f in
      Substrate.timer_of_thunk (fun () -> Engine.cancel e h))
    ()
