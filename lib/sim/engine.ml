type queue =
  | Wheel of (unit -> unit) Dvp_util.Timer_wheel.t
  | Heap_ref of (unit -> unit) Dvp_util.Heap.t

type timer =
  | Twheel of (unit -> unit) Dvp_util.Timer_wheel.handle
  | Theap of Dvp_util.Heap.handle

type t = {
  queue : queue;
  (* One-element float array: flat storage, so advancing the clock on every
     event does not box a float. *)
  clock : float array;
  mutable stopping : bool;
  mutable events : int;
}

exception Stopped

let create ?(queue = `Wheel) () =
  let queue =
    match queue with
    | `Wheel -> Wheel (Dvp_util.Timer_wheel.create ())
    | `Heap_reference -> Heap_ref (Dvp_util.Heap.create ())
  in
  { queue; clock = [| 0.0 |]; stopping = false; events = 0 }

let now t = t.clock.(0)

let events t = t.events

let schedule_at t ~at f =
  let at = if at < t.clock.(0) then t.clock.(0) else at in
  match t.queue with
  | Wheel w -> Twheel (Dvp_util.Timer_wheel.add w ~priority:at f)
  | Heap_ref h -> Theap (Dvp_util.Heap.add h ~priority:at f)

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~at:(t.clock.(0) +. delay) f

let cancel t timer =
  match (t.queue, timer) with
  | Wheel w, Twheel h -> Dvp_util.Timer_wheel.cancel w h
  | Heap_ref q, Theap h -> Dvp_util.Heap.cancel q h
  | _ -> false (* timer from a different queue flavour: never pending here *)

let pending t =
  match t.queue with
  | Wheel w -> Dvp_util.Timer_wheel.length w
  | Heap_ref h -> Dvp_util.Heap.length h

let step t =
  match t.queue with
  | Wheel w ->
    if Dvp_util.Timer_wheel.is_empty w then false
    else begin
      let at = Dvp_util.Timer_wheel.next_at w in
      let f = Dvp_util.Timer_wheel.pop_min w in
      t.clock.(0) <- at;
      t.events <- t.events + 1;
      f ();
      true
    end
  | Heap_ref h -> (
    match Dvp_util.Heap.pop h with
    | None -> false
    | Some (at, f) ->
      t.clock.(0) <- at;
      t.events <- t.events + 1;
      f ();
      true)

(* Whether the next event is due at or before [horizon], without allocating
   (the wheel path boxes nothing; the heap reference path keeps the old
   peek-an-option behaviour). *)
let due t horizon =
  match t.queue with
  | Wheel w -> Dvp_util.Timer_wheel.has_due w ~horizon
  | Heap_ref h -> (
    match Dvp_util.Heap.peek h with
    | Some (at, _) -> at <= horizon
    | None -> false)

let run_until t horizon =
  let rec loop () =
    if t.stopping then t.stopping <- false
    else if due t horizon then begin
      ignore (step t);
      loop ()
    end
    else if t.clock.(0) < horizon then t.clock.(0) <- horizon
  in
  loop ()

let run t =
  let rec loop () =
    if t.stopping then t.stopping <- false else if step t then loop ()
  in
  loop ()

let stop t = t.stopping <- true
