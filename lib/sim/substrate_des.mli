(** The deterministic discrete-event substrate: {!Engine} behind the
    {!Dvp_substrate.Substrate} interface.

    [of_engine e] delegates [now]/[schedule]/[schedule_at]/cancel straight to
    the engine — same floats, same heap, same tie-breaking — so a system
    composed over this substrate behaves {e byte-identically} (traces
    included) to one calling the engine directly.  All tests, the chaos
    harness and benches E1–E19 run on this substrate. *)

val of_engine : ?trace:Trace.t -> Engine.t -> Dvp_substrate.Substrate.t
(** [?trace] installs a substrate-carried trace sink
    ({!Dvp_substrate.Substrate.trace}); components created without an
    explicit trace inherit it. *)
