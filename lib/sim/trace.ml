(* Compatibility re-export: the trace lives in [Dvp_trace] (below the
   substrate, so both execution substrates can carry a sink), but the whole
   codebase and test suite address it as [Dvp_sim.Trace].  A plain [include]
   keeps every type equal to the original. *)
include Dvp_trace.Trace
