(** Deterministic discrete-event simulation engine.

    Everything in the reproduction — message delivery, transaction timeouts,
    retransmission timers, crash and recovery faults, workload arrivals — runs
    as events on one of these engines.  Events scheduled for the same instant
    fire in scheduling order, so a run is a pure function of the seed.

    Time is a float in simulated seconds, starting at [0.]. *)

type t

type timer
(** A cancellable handle for a scheduled event. *)

val create : ?queue:[ `Wheel | `Heap_reference ] -> unit -> t
(** [`Wheel] (the default) backs the engine with the calendar-queue timer
    wheel ({!Dvp_util.Timer_wheel}); [`Heap_reference] keeps the original
    binary heap ({!Dvp_util.Heap}).  Both implement the same total order —
    (time, scheduling order) — so same-seed runs produce byte-identical
    traces on either; the reference flavour exists for the equivalence and
    trace-regression suites. *)

val now : t -> float
(** Current simulated time. *)

val events : t -> int
(** Total events fired so far (throughput accounting for scale benches). *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at [now t +. delay].  Negative delays are
    clamped to zero (fire "immediately", after currently-due events). *)

val schedule_at : t -> at:float -> (unit -> unit) -> timer
(** Absolute-time variant; times in the past are clamped to [now]. *)

val cancel : t -> timer -> bool
(** Cancel a pending event; returns [false] if it already fired or was
    cancelled. *)

val pending : t -> int
(** Number of events still queued. *)

val step : t -> bool
(** Fire the single next event.  Returns [false] if the queue is empty. *)

val run_until : t -> float -> unit
(** Fire events in order until the queue is empty or the next event lies
    strictly beyond the horizon.  Afterwards [now t] equals the horizon (or
    the time of the last fired event if that is later — which cannot happen
    with a correct queue). *)

val run : t -> unit
(** Drain the queue completely.  Beware of self-perpetuating event chains. *)

exception Stopped

val stop : t -> unit
(** Request that [run]/[run_until] return after the current event.  Used by
    tests that wait for a condition. *)
