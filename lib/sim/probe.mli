(** Periodic state sampling.

    A probe runs a sampling function on a fixed simulated-time period and
    accumulates the resulting time series.  The sample type is polymorphic:
    the core library wires a probe that captures per-item fragment vectors,
    in-flight Vm value, active transaction counts and log lengths
    ([Dvp.System.start_probe]); tests use simple counters.

    Sampling happens as ordinary engine events, so a probe observes the
    system between events — exactly when the paper's invariants are
    meaningful. *)

type 'a t

val start : Engine.t -> period:float -> sample:(float -> 'a) -> 'a t
(** Begin sampling: the first sample fires one [period] from now, then every
    [period] until {!stop}.  The sampler receives the current simulated
    time. *)

val manual : clock:(unit -> float) -> period:float -> sample:(float -> 'a) -> 'a t
(** A probe with no engine: nothing is scheduled, the caller drives
    sampling by calling {!sample_now} on its own cadence (nominally every
    [period]) and timestamps come from [clock].  This is how the wall-clock
    observer reuses the telemetry machinery outside the DES. *)

val sample_now : 'a t -> unit
(** Take one sample immediately, at the current clock time, outside the
    periodic cadence.  Used at end of run so the last partial window is not
    silently lost (call it just before {!stop}) — and as the {e only}
    sampling path of a {!manual} probe. *)

val stop : 'a t -> unit

val period : 'a t -> float

val series : 'a t -> (float * 'a) list
(** All (time, sample) pairs so far, oldest first. *)

val length : 'a t -> int
