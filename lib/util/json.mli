(** Minimal JSON values: emission for the observability exporters and a small
    parser so tests (and the check script) can validate what we emit without
    an external dependency.

    Numbers are split into [Int] and [Float] so counters round-trip exactly;
    non-finite floats serialise as [null] (strict JSON has no NaN). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read by humans. *)

val parse : string -> (t, string) result
(** Strict-enough JSON parser: objects, arrays, strings (with escapes),
    numbers, booleans, null.  Numbers without [.], [e] or [E] parse as
    [Int]. *)

(** {2 Accessors} — total functions for picking results apart in tests. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else or a missing key. *)

val to_list : t -> t list
(** Elements of a [List]; [[]] on anything else. *)

val to_float : t -> float option
(** Numeric value of [Int] or [Float]. *)

val to_int : t -> int option

val to_str : t -> string option
