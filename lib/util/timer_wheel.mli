(** Calendar-queue timer wheel: the scalable event queue behind the simulator.

    Drop-in ordering-compatible replacement for {!Heap}: entries are ordered
    by a float priority with an integer sequence number as tie-breaker, so two
    entries with equal priority pop in insertion order and a pop stream from
    this structure is byte-for-byte identical to one from {!Heap} fed the same
    operations (the QCheck equivalence suite in [test/test_util.ml] pins
    this).

    Internally, priorities are bucketed into integer ticks
    ([floor (priority / width)]) across a power-of-two ring of slots.  Each
    slot holds a small binary heap ordered by (priority, seq); entries whose
    tick lies beyond one ring revolution share slots with nearer entries and
    are told apart by their stored tick.  Because a slot's priority order
    coincides with its tick order, the slot top always carries the slot's
    earliest tick, and a cursor sweep over non-empty slots (tracked in a
    bitmap) finds the global minimum without touching empty buckets.

    Cancellation is lazy: [cancel] flips a tombstone flag on the entry —
    O(1), no position table — and dead entries are purged when they surface
    at a slot top, with a global compaction once tombstones outnumber live
    entries.  This removes the per-sift [Hashtbl] traffic that made
    {!Heap} the bottleneck at thousands of sites. *)

type 'a t

type 'a handle
(** A ticket identifying an inserted element.  Handles are never reused. *)

val create : ?slots:int -> ?width:float -> unit -> 'a t
(** [create ?slots ?width ()] makes an empty wheel with [slots] buckets
    (rounded up to a power of two, default 1024) of [width] priority units
    each (default [1e-3], i.e. millisecond ticks for second-denominated
    simulation time). *)

val length : 'a t -> int
(** Live (not cancelled, not popped) entries. *)

val is_empty : 'a t -> bool

val add : 'a t -> priority:float -> 'a -> 'a handle
(** Insert an element; smaller priorities pop first, ties pop in insertion
    order.  Priorities below the last popped priority's tick are clamped
    into the current tick (they fire "immediately"), matching the engine's
    no-scheduling-into-the-past contract. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element with its priority. *)

val peek : 'a t -> (float * 'a) option

val next_at : 'a t -> float
(** Priority of the minimum element, or [infinity] when empty.  Unlike
    {!peek} this allocates no option/tuple (at most a float box). *)

val has_due : 'a t -> horizon:float -> bool
(** [has_due t ~horizon] is [next_at t <= horizon] without any allocation —
    the hot-loop test for {!Engine.run_until}. *)

val pop_min : 'a t -> 'a
(** Remove the minimum element and return its value without allocating a
    tuple.  Read {!next_at} first for its priority (the repeated lookup is
    O(1): the cursor already sits on the minimum).  @raise Invalid_argument
    when empty. *)

val cancel : 'a t -> 'a handle -> bool
(** Tombstone the element named by the handle if it is still queued.
    Returns [true] if something was cancelled.  O(1). *)

val mem : 'a t -> 'a handle -> bool
(** Whether the handle still names a queued element. *)

val clear : 'a t -> unit

val to_list : 'a t -> (float * 'a) list
(** Snapshot in pop order (non-destructive; O(n log n)). *)
