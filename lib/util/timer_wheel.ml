(* Calendar-queue timer wheel.  See the .mli for the design; the key
   invariants maintained here are:

   - [cur <= h_tick] for every live entry (adds clamp their tick up to the
     cursor, pops advance the cursor to the popped tick);
   - within a slot, (prio, seq) order implies tick order, so the slot-heap
     top carries the slot's earliest tick;
   - the occupancy bitmap has a bit set exactly for slots with [size > 0]
     (tombstones included until purged).

   Together these make the cursor sweep in [find_min_slot] return the entry
   with the globally smallest (prio, seq) — the same total order as
   [Heap] — for arbitrary priority sequences, not just monotone ones. *)

type 'a handle = {
  h_prio : float;
  h_seq : int;
  h_value : 'a;
  h_tick : int;
  mutable h_live : bool;
}

type 'a slot = {
  (* data.(0 .. size-1) is a binary heap ordered by (h_prio, h_seq). *)
  mutable data : 'a handle array;
  mutable size : int;
}

type 'a t = {
  slots : 'a slot array;
  mask : int;
  inv_width : float;
  mutable cur : int; (* absolute tick; no live entry sits before it *)
  mutable live : int;
  mutable dead : int; (* tombstones still buried in slots *)
  mutable next_seq : int;
  occ : int array; (* 32 occupancy bits per word *)
}

(* Headroom so [cur + offset] arithmetic can never overflow. *)
let max_tick = max_int / 4

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let create ?(slots = 1024) ?(width = 1e-3) () =
  if width <= 0.0 then invalid_arg "Timer_wheel.create: width must be positive";
  let n = pow2_at_least (max 1 slots) 1 in
  {
    slots = Array.init n (fun _ -> { data = [||]; size = 0 });
    mask = n - 1;
    inv_width = 1.0 /. width;
    cur = 0;
    live = 0;
    dead = 0;
    next_seq = 0;
    occ = Array.make ((n + 31) / 32) 0;
  }

let length t = t.live

let is_empty t = t.live = 0

let less a b = a.h_prio < b.h_prio || (a.h_prio = b.h_prio && a.h_seq < b.h_seq)

(* --- per-slot binary heap ------------------------------------------------ *)

let rec sift_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less s.data.(i) s.data.(parent) then begin
      let a = s.data.(i) and b = s.data.(parent) in
      s.data.(i) <- b;
      s.data.(parent) <- a;
      sift_up s parent
    end
  end

let rec sift_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < s.size && less s.data.(l) s.data.(!smallest) then smallest := l;
  if r < s.size && less s.data.(r) s.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let a = s.data.(i) and b = s.data.(!smallest) in
    s.data.(i) <- b;
    s.data.(!smallest) <- a;
    sift_down s !smallest
  end

let slot_push s e =
  let cap = Array.length s.data in
  if s.size = cap then begin
    let fresh = Array.make (if cap = 0 then 4 else 2 * cap) e in
    Array.blit s.data 0 fresh 0 s.size;
    s.data <- fresh
  end;
  s.data.(s.size) <- e;
  s.size <- s.size + 1;
  sift_up s (s.size - 1)

(* Remove and return the slot top.  The caller keeps [occ] in sync. *)
let slot_pop s =
  let top = s.data.(0) in
  s.size <- s.size - 1;
  if s.size > 0 then begin
    s.data.(0) <- s.data.(s.size);
    sift_down s 0
  end;
  top

(* --- occupancy bitmap ---------------------------------------------------- *)

let occ_set t idx = t.occ.(idx lsr 5) <- t.occ.(idx lsr 5) lor (1 lsl (idx land 31))

let occ_clear t idx =
  t.occ.(idx lsr 5) <- t.occ.(idx lsr 5) land lnot (1 lsl (idx land 31))

let occ_get t idx = t.occ.(idx lsr 5) land (1 lsl (idx land 31)) <> 0

(* --- insertion ----------------------------------------------------------- *)

let tick_of_prio t prio =
  let f = Float.floor (prio *. t.inv_width) in
  if f >= float_of_int max_tick then max_tick
  else if f <= 0.0 then 0
  else int_of_float f

let add t ~priority value =
  let tick =
    let k = tick_of_prio t priority in
    if k < t.cur then t.cur else k
  in
  let e =
    { h_prio = priority; h_seq = t.next_seq; h_value = value; h_tick = tick; h_live = true }
  in
  t.next_seq <- t.next_seq + 1;
  let idx = tick land t.mask in
  slot_push t.slots.(idx) e;
  occ_set t idx;
  t.live <- t.live + 1;
  e

(* --- minimum lookup ------------------------------------------------------ *)

(* Discard tombstones sitting at the slot top; clears the occupancy bit if
   the slot empties. *)
let purge_dead t idx =
  let s = t.slots.(idx) in
  while s.size > 0 && not s.data.(0).h_live do
    ignore (slot_pop s);
    t.dead <- t.dead - 1
  done;
  if s.size = 0 then occ_clear t idx

(* Find the slot whose top is the global minimum, advancing [cur] to its
   tick.  Precondition: [t.live > 0] (so a live top exists somewhere). *)
let find_min_slot t =
  let rec scan off =
    if off > t.mask then jump ()
    else begin
      let idx = (t.cur + off) land t.mask in
      if t.occ.(idx lsr 5) = 0 then
        (* Whole 32-slot word empty: hop to its end. *)
        scan (off + 32 - (idx land 31))
      else if not (occ_get t idx) then scan (off + 1)
      else begin
        purge_dead t idx;
        let s = t.slots.(idx) in
        if s.size = 0 then scan (off + 1)
        else if s.data.(0).h_tick = t.cur + off then begin
          t.cur <- t.cur + off;
          idx
        end
        else scan (off + 1) (* occupied, but only by later revolutions *)
      end
    end
  and jump () =
    (* A full revolution found nothing due: every live entry lies at least
       one revolution out.  Leap the cursor to the earliest live tick. *)
    let best = ref max_int in
    for idx = 0 to t.mask do
      if occ_get t idx then begin
        purge_dead t idx;
        let s = t.slots.(idx) in
        if s.size > 0 && s.data.(0).h_tick < !best then best := s.data.(0).h_tick
      end
    done;
    t.cur <- !best;
    scan 0
  in
  scan 0

let next_at t = if t.live = 0 then infinity else (t.slots.(find_min_slot t)).data.(0).h_prio

let has_due t ~horizon =
  t.live > 0 && (t.slots.(find_min_slot t)).data.(0).h_prio <= horizon

let pop t =
  if t.live = 0 then None
  else begin
    let idx = find_min_slot t in
    let s = t.slots.(idx) in
    let e = slot_pop s in
    if s.size = 0 then occ_clear t idx;
    e.h_live <- false;
    t.live <- t.live - 1;
    Some (e.h_prio, e.h_value)
  end

let pop_min t =
  if t.live = 0 then invalid_arg "Timer_wheel.pop_min: empty";
  let idx = find_min_slot t in
  let s = t.slots.(idx) in
  let e = slot_pop s in
  if s.size = 0 then occ_clear t idx;
  e.h_live <- false;
  t.live <- t.live - 1;
  e.h_value

let peek t =
  if t.live = 0 then None
  else
    let top = (t.slots.(find_min_slot t)).data.(0) in
    Some (top.h_prio, top.h_value)

(* --- cancellation -------------------------------------------------------- *)

(* Rebuild every slot without its tombstones.  Entries never change slot
   (ticks are immutable), so this is a per-slot filter + heapify. *)
let compact t =
  for idx = 0 to t.mask do
    let s = t.slots.(idx) in
    if s.size > 0 then begin
      let kept = ref 0 in
      for i = 0 to s.size - 1 do
        let e = s.data.(i) in
        if e.h_live then begin
          s.data.(!kept) <- e;
          incr kept
        end
      done;
      s.size <- !kept;
      for i = (s.size / 2) - 1 downto 0 do
        sift_down s i
      done;
      if s.size = 0 then occ_clear t idx
    end
  done;
  t.dead <- 0

let cancel t h =
  if h.h_live then begin
    h.h_live <- false;
    t.live <- t.live - 1;
    t.dead <- t.dead + 1;
    if t.dead > 64 && t.dead > t.live then compact t;
    true
  end
  else false

let mem _t h = h.h_live

let clear t =
  for idx = 0 to t.mask do
    let s = t.slots.(idx) in
    for i = 0 to s.size - 1 do
      s.data.(i).h_live <- false
    done;
    s.size <- 0;
    s.data <- [||]
  done;
  Array.fill t.occ 0 (Array.length t.occ) 0;
  t.live <- 0;
  t.dead <- 0

let to_list t =
  let acc = ref [] in
  for idx = 0 to t.mask do
    let s = t.slots.(idx) in
    for i = 0 to s.size - 1 do
      let e = s.data.(i) in
      if e.h_live then acc := e :: !acc
    done
  done;
  let sorted = List.sort (fun a b -> if less a b then -1 else 1) !acc in
  List.map (fun e -> (e.h_prio, e.h_value)) sorted
