type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----------------------------------------------------------- emission *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let rec write_pretty buf indent = function
  | List (_ :: _ as xs) ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        write_pretty buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj (_ :: _ as fields) ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        escape_string buf k;
        Buffer.add_string buf ": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'
  | v -> write buf v

let to_string_pretty v =
  let buf = Buffer.create 256 in
  write_pretty buf 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------ parsing *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "bad \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> fail "bad \\u escape"
               in
               (* Re-encode the BMP code point as UTF-8. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end;
               pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          loop ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* ----------------------------------------------------------- accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> xs | _ -> []

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_str = function String s -> Some s | _ -> None
