(** Go-back-N sliding-window reliable channel.

    This is the "common scheme used in computer network applications
    [Tanenbaum 1981]" that Section 4.2 of the paper presumes underneath
    virtual messages: unique in-order sequence numbers, piggybacked cumulative
    acknowledgements, retransmission on timeout, and duplicate discard.

    An {!endpoint} is one half of a bidirectional channel.  It is
    transport-agnostic: you give it a [send] function for raw frames and call
    {!handle_frame} with whatever arrives (possibly lost, duplicated or
    reordered upstream); it calls [deliver] with application payloads exactly
    once each, in submission order.

    Note the endpoint state is volatile — a crashed site loses it.  The Vm
    layer in [lib/core] adds the stable-log persistence that turns this into
    the paper's never-lost virtual message. *)

type 'p frame =
  | Data of { seq : int; ack : int; payload : 'p }
      (** [ack] piggybacks the cumulative acknowledgement: all frames up to
          and including [ack] from the peer have been delivered. *)
  | Ack of { ack : int }

type 'p endpoint

val create :
  Dvp_substrate.Substrate.t ->
  send:('p frame -> unit) ->
  deliver:('p -> unit) ->
  ?window:int ->
  ?rto:float ->
  unit ->
  'p endpoint
(** [window] is the maximum number of unacknowledged frames in flight
    (default 8); [rto] the retransmission timeout (default 50 ms). *)

val submit : 'p endpoint -> 'p -> unit
(** Queue a payload for reliable in-order delivery to the peer.  Sends
    immediately if the window has room. *)

val handle_frame : 'p endpoint -> 'p frame -> unit
(** Feed a frame received from the transport. *)

val unacked : 'p endpoint -> int
(** Frames sent but not yet cumulatively acknowledged. *)

val backlog : 'p endpoint -> int
(** Payloads submitted but not yet transmitted (window full). *)

val idle : 'p endpoint -> bool
(** No unacked frames and no backlog. *)

val frames_sent : 'p endpoint -> int
(** Total frame transmissions including retransmissions (for overhead
    accounting). *)
