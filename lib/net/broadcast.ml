module Substrate = Dvp_substrate.Substrate

type 'p t = {
  sub : Substrate.t;
  n : int;
  delay : float;
  handlers : (src:int -> seq:int -> 'p -> unit) option array;
  mutable next_seq : int;
  mutable sent : int;
}

let create sub ~n ?(delay = 0.005) () =
  { sub; n; delay; handlers = Array.make n None; next_seq = 0; sent = 0 }

let set_handler t i h =
  if i < 0 || i >= t.n then invalid_arg "Broadcast.set_handler: site out of range";
  t.handlers.(i) <- Some h

let broadcast t ~src payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  for dst = 0 to t.n - 1 do
    t.sent <- t.sent + 1;
    ignore
      (Substrate.schedule t.sub ~delay:t.delay (fun () ->
           match t.handlers.(dst) with
           | Some h -> h ~src ~seq payload
           | None -> ()))
  done;
  seq

let messages_sent t = t.sent
