type 'p frame =
  | Data of { seq : int; ack : int; payload : 'p }
  | Ack of { ack : int }

module Substrate = Dvp_substrate.Substrate

type 'p endpoint = {
  sub : Substrate.t;
  send : 'p frame -> unit;
  deliver : 'p -> unit;
  window : int;
  rto : float;
  (* Sender side. *)
  mutable base : int; (* oldest unacked sequence number *)
  mutable next_seq : int;
  unacked_buf : (int, 'p) Hashtbl.t; (* seq -> payload, for retransmission *)
  pending : 'p Queue.t; (* submitted beyond the window *)
  mutable timer : Substrate.timer option;
  mutable sent_count : int;
  (* Receiver side. *)
  mutable expected : int; (* next in-order seq we will accept *)
}

let create sub ~send ~deliver ?(window = 8) ?(rto = 0.05) () =
  if window <= 0 then invalid_arg "Window.create: window must be positive";
  {
    sub;
    send;
    deliver;
    window;
    rto;
    base = 0;
    next_seq = 0;
    unacked_buf = Hashtbl.create 16;
    pending = Queue.create ();
    timer = None;
    sent_count = 0;
    expected = 0;
  }

let unacked t = t.next_seq - t.base

let backlog t = Queue.length t.pending

let idle t = unacked t = 0 && backlog t = 0

let frames_sent t = t.sent_count

(* Cumulative ack carried on every outgoing frame: highest in-order seq
   delivered so far. *)
let current_ack t = t.expected - 1

let stop_timer t =
  match t.timer with
  | Some h ->
    ignore (Substrate.cancel h);
    t.timer <- None
  | None -> ()

let rec arm_timer t =
  stop_timer t;
  if unacked t > 0 then
    t.timer <- Some (Substrate.schedule t.sub ~delay:t.rto (fun () -> on_timeout t))

(* Go-back-N: on timeout retransmit every unacked frame, then re-arm. *)
and on_timeout t =
  t.timer <- None;
  for seq = t.base to t.next_seq - 1 do
    match Hashtbl.find_opt t.unacked_buf seq with
    | Some payload ->
      t.sent_count <- t.sent_count + 1;
      t.send (Data { seq; ack = current_ack t; payload })
    | None -> ()
  done;
  arm_timer t

let transmit t payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Hashtbl.replace t.unacked_buf seq payload;
  t.sent_count <- t.sent_count + 1;
  t.send (Data { seq; ack = current_ack t; payload });
  if t.timer = None then arm_timer t

let submit t payload =
  if unacked t < t.window then transmit t payload else Queue.add payload t.pending

let drain_pending t =
  while unacked t < t.window && not (Queue.is_empty t.pending) do
    transmit t (Queue.pop t.pending)
  done

let process_ack t ack =
  if ack >= t.base then begin
    for seq = t.base to ack do
      Hashtbl.remove t.unacked_buf seq
    done;
    t.base <- ack + 1;
    (* Fresh progress: restart (or clear) the retransmission clock. *)
    arm_timer t;
    drain_pending t
  end

let handle_frame t frame =
  match frame with
  | Ack { ack } -> process_ack t ack
  | Data { seq; ack; payload } ->
    process_ack t ack;
    if seq = t.expected then begin
      t.expected <- t.expected + 1;
      t.deliver payload;
      (* Acknowledge promptly; with no reverse data this is a bare ack.  (A
         real stack would delay it hoping to piggyback; correctness is the
         same and the simulator counts frames either way.) *)
      t.send (Ack { ack = current_ack t })
    end
    else if seq < t.expected then
      (* Duplicate of something already delivered: discard, but re-ack so the
         peer can advance if our previous ack was lost. *)
      t.send (Ack { ack = current_ack t })
    else
      (* Out-of-order beyond the gap: go-back-N receivers drop it; the ack
         tells the sender where we are. *)
      t.send (Ack { ack = current_ack t })
