type params = {
  delay_mean : float;
  delay_jitter : float;
  loss_prob : float;
  dup_prob : float;
}

let default =
  { delay_mean = 0.005; delay_jitter = 0.002; loss_prob = 0.0; dup_prob = 0.0 }

let lossy p = { default with loss_prob = p }

type t = { mutable p : params; mutable up : bool }

let create p = { p; up = true }

let params t = t.p

let set_params t p = t.p <- p

let is_up t = t.up

let set_up t v = t.up <- v

(* Params-level sampling: the network keeps links as a flat params array (no
   per-link object), so the draw logic lives here at the params level and the
   [t]-level functions below are thin wrappers.  The conditional draws
   (jitter, duplication) and the [up] short-circuit are load-bearing — they
   fix the RNG consumption sequence that same-seed traces depend on. *)

let sample_delay_p p rng =
  let jitter =
    if p.delay_jitter <= 0.0 then 0.0 else Dvp_util.Rng.float rng p.delay_jitter
  in
  Float.max 1e-6 (p.delay_mean +. jitter)

let drops_p p ~up rng = (not up) || Dvp_util.Rng.bernoulli rng p.loss_prob

let duplicates_p p rng = p.dup_prob > 0.0 && Dvp_util.Rng.bernoulli rng p.dup_prob

let sample_delay t rng = sample_delay_p t.p rng

let drops t rng = drops_p t.p ~up:t.up rng

let duplicates t rng = duplicates_p t.p rng
