type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_loss : int;
  mutable dropped_partition : int;
  mutable dropped_down : int;
  mutable dropped_membership : int;
  mutable dropped_inflight : int;
  mutable duplicated : int;
}

let dropped s =
  s.dropped_loss + s.dropped_partition + s.dropped_down + s.dropped_membership
  + s.dropped_inflight

module Substrate = Dvp_substrate.Substrate

type 'p t = {
  sub : Substrate.t;
  rng : Dvp_util.Rng.t;
  n : int;
  link_params : Linkstate.params array;
      (* flat n*n, row-major [(src * n) + dst].  Immutable records, so the
         whole table can share one params value until a link is overridden —
         a 1024-site fabric costs one word per link, not one object. *)
  link_up : Bytes.t; (* n*n up flags, '\001' = up *)
  handlers : (src:int -> 'p -> unit) option array;
  up : bool array;
  member : bool array;
      (* elastic membership: a detached slot neither sends nor receives;
         flipped by the system layer on join/leave *)
  group_of : int array; (* partition group id per site *)
  stats : stats;
  trace : Dvp_sim.Trace.t option;
  mutable observer : (src:int -> dst:int -> unit) option;
}

let create sub ~rng ~n ?(default = Linkstate.default) ?trace () =
  (* No explicit sink: inherit the substrate's (see Substrate.trace). *)
  let trace = match trace with Some _ -> trace | None -> Dvp_substrate.Substrate.trace sub in
  {
    sub;
    rng;
    n;
    link_params = Array.make (n * n) default;
    link_up = Bytes.make (n * n) '\001';
    handlers = Array.make n None;
    up = Array.make n true;
    member = Array.make n true;
    group_of = Array.make n 0;
    stats =
      {
        sent = 0;
        delivered = 0;
        dropped_loss = 0;
        dropped_partition = 0;
        dropped_down = 0;
        dropped_membership = 0;
        dropped_inflight = 0;
        duplicated = 0;
      };
    trace;
    observer = None;
  }

let emit t ev =
  match t.trace with
  | Some tr -> Dvp_sim.Trace.emit tr ~time:(Substrate.now t.sub) ev
  | None -> ()

let size t = t.n

let sub t = t.sub

let check_site t i =
  if i < 0 || i >= t.n then invalid_arg "Network: site index out of range"

let set_handler t i h =
  check_site t i;
  t.handlers.(i) <- Some h

let set_observer t obs = t.observer <- Some obs

let link_index t ~src ~dst =
  check_site t src;
  check_site t dst;
  (src * t.n) + dst

let link_params t ~src ~dst = t.link_params.(link_index t ~src ~dst)

let set_link_params t ~src ~dst p = t.link_params.(link_index t ~src ~dst) <- p

let link_is_up t ~src ~dst =
  Bytes.get t.link_up (link_index t ~src ~dst) <> '\000'

let set_link_up t ~src ~dst v =
  Bytes.set t.link_up (link_index t ~src ~dst) (if v then '\001' else '\000')

let set_all_links t params =
  Array.fill t.link_params 0 (Array.length t.link_params) params

let site_up t i =
  check_site t i;
  t.up.(i)

let set_site_up t i v =
  check_site t i;
  t.up.(i) <- v

let is_member t i =
  check_site t i;
  t.member.(i)

let set_member t i v =
  check_site t i;
  t.member.(i) <- v

let set_partition t groups =
  (* Unmentioned sites each get a singleton group. *)
  Array.iteri (fun i _ -> t.group_of.(i) <- -(i + 1)) t.group_of;
  List.iteri
    (fun gid members ->
      List.iter
        (fun m ->
          check_site t m;
          t.group_of.(m) <- gid)
        members)
    groups

let heal_partition t = Array.fill t.group_of 0 t.n 0

let partitioned t ~src ~dst =
  check_site t src;
  check_site t dst;
  t.group_of.(src) <> t.group_of.(dst)

let deliver t ~src ~dst payload =
  (* Delivery-time checks: destination must be up and still reachable.  Every
     loss here is an in-flight discard — the message left the sender before
     the world changed underneath it. *)
  if t.up.(dst) && t.member.(src) && t.member.(dst) && not (partitioned t ~src ~dst)
  then begin
    match t.handlers.(dst) with
    | Some h ->
      t.stats.delivered <- t.stats.delivered + 1;
      (match t.observer with Some obs -> obs ~src ~dst | None -> ());
      h ~src payload
    | None ->
      t.stats.dropped_inflight <- t.stats.dropped_inflight + 1;
      emit t (Dvp_sim.Trace.Net_drop { src; dst })
  end
  else begin
    t.stats.dropped_inflight <- t.stats.dropped_inflight + 1;
    emit t (Dvp_sim.Trace.Net_drop { src; dst })
  end

let send t ~src ~dst payload =
  check_site t src;
  check_site t dst;
  if src = dst then begin
    (* Local hand-off: immediate, reliable, not counted as network traffic. *)
    match t.handlers.(dst) with Some h -> h ~src payload | None -> ()
  end
  else begin
    t.stats.sent <- t.stats.sent + 1;
    emit t (Dvp_sim.Trace.Net_send { src; dst });
    let li = (src * t.n) + dst in
    let p = t.link_params.(li) in
    let lup = Bytes.unsafe_get t.link_up li <> '\000' in
    (* Classify the send-time loss by its cause; the checks short-circuit in
       the same order as before so the RNG draw sequence is unchanged. *)
    let cause =
      if not t.up.(src) then Some `Down
      else if (not t.member.(src)) || not t.member.(dst) then Some `Membership
      else if partitioned t ~src ~dst then Some `Partition
      else if Linkstate.drops_p p ~up:lup t.rng then Some `Loss
      else None
    in
    match cause with
    | Some c ->
      (match c with
      | `Down -> t.stats.dropped_down <- t.stats.dropped_down + 1
      | `Membership -> t.stats.dropped_membership <- t.stats.dropped_membership + 1
      | `Partition -> t.stats.dropped_partition <- t.stats.dropped_partition + 1
      | `Loss -> t.stats.dropped_loss <- t.stats.dropped_loss + 1);
      emit t (Dvp_sim.Trace.Net_drop { src; dst })
    | None -> begin
      let schedule_copy () =
        let delay = Linkstate.sample_delay_p p t.rng in
        ignore (Substrate.schedule t.sub ~delay (fun () -> deliver t ~src ~dst payload))
      in
      schedule_copy ();
      if Linkstate.duplicates_p p t.rng then begin
        t.stats.duplicated <- t.stats.duplicated + 1;
        schedule_copy ()
      end
    end
  end

let stats t = t.stats

let reset_stats t =
  t.stats.sent <- 0;
  t.stats.delivered <- 0;
  t.stats.dropped_loss <- 0;
  t.stats.dropped_partition <- 0;
  t.stats.dropped_down <- 0;
  t.stats.dropped_membership <- 0;
  t.stats.dropped_inflight <- 0;
  t.stats.duplicated <- 0
