(** The message fabric connecting the simulated sites.

    A network owns {!Linkstate.params} plus an up flag per directed site
    pair (stored flat — one word and one byte per link), a partition
    state (sites are grouped; messages between groups are dropped), and
    per-site up/down flags (messages to or from a crashed site are lost, which
    is exactly the failure model of the paper: links "may lose, delay,
    duplicate messages or just fail").

    Payloads are polymorphic; each protocol stack instantiates its own
    network.  Delivery happens through per-site handlers registered with
    {!set_handler}; handlers run as simulator events. *)

type 'p t

type stats = {
  mutable sent : int;  (** transmissions attempted *)
  mutable delivered : int;  (** handler invocations *)
  mutable dropped_loss : int;  (** lost to per-link loss probability *)
  mutable dropped_partition : int;  (** refused at send time by a partition *)
  mutable dropped_down : int;  (** sender was down at send time *)
  mutable dropped_membership : int;
      (** sender or destination was a non-member (detached slot) at send
          time — elastic membership's fence at the fabric level *)
  mutable dropped_inflight : int;
      (** discarded at delivery time: destination down, partitioned away, or
          handler-less by the time the message arrived *)
  mutable duplicated : int;
}

val dropped : stats -> int
(** Total losses across all five cause buckets. *)

val create :
  Dvp_substrate.Substrate.t ->
  rng:Dvp_util.Rng.t ->
  n:int ->
  ?default:Linkstate.params ->
  ?trace:Dvp_sim.Trace.t ->
  unit ->
  'p t
(** [create sub ~rng ~n ()] builds a fully-connected [n]-site network over
    an execution substrate (deliveries are substrate timer callbacks).
    With [trace], every real transmission emits a {!Dvp_sim.Trace.Net_send}
    event and every loss (link drop, partition, down site) a [Net_drop]. *)

val size : 'p t -> int

val sub : 'p t -> Dvp_substrate.Substrate.t

val set_handler : 'p t -> int -> (src:int -> 'p -> unit) -> unit
(** Install site [i]'s receive handler.  Must be set before traffic flows to
    [i]. *)

val set_observer : 'p t -> (src:int -> dst:int -> unit) -> unit
(** Install a delivery observer, called just before the destination handler
    on every successful cross-site delivery.  This is the failure detector's
    piggyback tap: each delivery is free evidence that [src] was alive when
    it sent.  Self-sends and drops are not observed.  At most one observer;
    a second call replaces the first. *)

val send : 'p t -> src:int -> dst:int -> 'p -> unit
(** Transmit one real message.  Self-sends ([src = dst]) are delivered
    immediately with no loss (local computation, not a network hop) and do not
    count in {!stats}. *)

val link_params : 'p t -> src:int -> dst:int -> Linkstate.params
(** The directed link's current parameters.  Links are stored as a flat
    [n²] params table (no per-link object), so reads and writes go through
    these accessors rather than a mutable link handle. *)

val set_link_params : 'p t -> src:int -> dst:int -> Linkstate.params -> unit

val link_is_up : 'p t -> src:int -> dst:int -> bool

val set_link_up : 'p t -> src:int -> dst:int -> bool -> unit
(** A downed link drops everything sent over it (without consuming an RNG
    draw) — link-failure experiments independent of whole-network
    partitions or site crashes. *)

val set_all_links : 'p t -> Linkstate.params -> unit

val site_up : 'p t -> int -> bool

val set_site_up : 'p t -> int -> bool -> unit
(** Downing a site makes it drop all traffic in both directions.  In-flight
    messages destined to it are discarded at delivery time. *)

val is_member : 'p t -> int -> bool

val set_member : 'p t -> int -> bool -> unit
(** Elastic membership: a non-member (detached) slot neither sends nor
    receives — traffic touching it is dropped at send time
    ([dropped_membership]) or discarded in flight.  All slots start as
    members; the system layer flips this on join/leave. *)

val set_partition : 'p t -> int list list -> unit
(** [set_partition t groups] installs a partition: messages flow only within
    a group.  Sites not mentioned form an implicit extra group each (fully
    isolated).  In-flight cross-group messages are discarded at delivery
    time. *)

val heal_partition : 'p t -> unit

val partitioned : 'p t -> src:int -> dst:int -> bool
(** Whether the current partition separates the two sites. *)

val stats : 'p t -> stats

val reset_stats : 'p t -> unit
