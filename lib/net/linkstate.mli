(** Per-link failure and timing model.

    Every directed site pair has a link with these parameters.  The defaults
    model a healthy LAN; experiments override them to inject loss, delay
    inflation, duplication, or hard link failure. *)

type params = {
  delay_mean : float;  (** mean one-way latency (seconds) *)
  delay_jitter : float;
      (** uniform jitter added to each delivery, in [0, delay_jitter) *)
  loss_prob : float;  (** probability a given real message is dropped *)
  dup_prob : float;  (** probability a message is delivered twice *)
}

val default : params
(** 5 ms mean delay, 2 ms jitter, no loss, no duplication. *)

val lossy : float -> params
(** [lossy p] is {!default} with loss probability [p]. *)

type t

val create : params -> t

val params : t -> params

val set_params : t -> params -> unit

val is_up : t -> bool

val set_up : t -> bool -> unit
(** A downed link drops everything; used for link-failure experiments
    independent of whole-network partitions. *)

val sample_delay : t -> Dvp_util.Rng.t -> float
(** Draw a delivery latency. *)

val drops : t -> Dvp_util.Rng.t -> bool
(** Decide whether this transmission is lost (link down counts as lost). *)

val duplicates : t -> Dvp_util.Rng.t -> bool

(** {2 Params-level sampling}

    The same draws without a [t]: the network stores its [n²] links as a
    flat {!params} array plus an up-flag byte per link (no per-link heap
    object), and samples through these.  Each function consumes exactly the
    same RNG draws as its [t]-level counterpart, so flattening the link
    table cannot perturb a seeded run. *)

val sample_delay_p : params -> Dvp_util.Rng.t -> float

val drops_p : params -> up:bool -> Dvp_util.Rng.t -> bool
(** A downed link loses everything without consuming a draw (mirrors
    {!drops}'s short-circuit). *)

val duplicates_p : params -> Dvp_util.Rng.t -> bool
