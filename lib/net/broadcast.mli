(** Totally-ordered reliable broadcast.

    Section 6.2 (Conc2) assumes a network with message-order synchronicity and
    failure-free broadcast: if two sites each broadcast a set of messages,
    every receiver sees the two broadcasts in the same relative order.  This
    module realises that abstraction directly — a global sequencer stamps
    every broadcast, and deliveries are scheduled so each site observes
    broadcasts in stamp order.

    This is deliberately an idealised primitive: Conc2's correctness argument
    is conditional on these system characteristics, and the experiments use
    this module only for Conc2 runs. *)

type 'p t

val create : Dvp_substrate.Substrate.t -> n:int -> ?delay:float -> unit -> 'p t
(** [delay] is the uniform delivery latency (default 5 ms).  Uniform latency
    plus deterministic FIFO ties in the engine yields total order. *)

val set_handler : 'p t -> int -> (src:int -> seq:int -> 'p -> unit) -> unit

val broadcast : 'p t -> src:int -> 'p -> int
(** Deliver the payload to every site (including the sender) in global stamp
    order; returns the stamp. *)

val messages_sent : 'p t -> int
(** Total point deliveries scheduled (n per broadcast). *)
