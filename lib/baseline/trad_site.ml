module Engine = Dvp_sim.Engine
module Wal = Dvp_storage.Wal
module Ids = Dvp_core.Ids
module Op = Dvp_core.Op
module Metrics = Dvp_core.Metrics

type protocol = Two_phase | Three_phase

type placement = Single_copy | Primary_copy of Ids.site | Replicated

type config = {
  protocol : protocol;
  placement : placement;
  txn_timeout : float;
  lock_timeout : float;
  poll_interval : float;
  termination_timeout : float;
}

let default_config =
  {
    protocol = Two_phase;
    placement = Single_copy;
    txn_timeout = 0.5;
    lock_timeout = 0.25;
    poll_interval = 0.2;
    termination_timeout = 1.0;
  }

let home config ~n ~item =
  match config.placement with
  | Single_copy -> item mod n
  | Primary_copy s -> ignore item; s
  | Replicated -> invalid_arg "Trad_site.home: replicated items have no home"

(* Stable log records of a traditional site. *)
type log_record =
  | L_value of { item : Ids.item; value : int; version : int }
  | L_prepared of { txn : Ids.txn; coordinator : Ids.site; writes : Trad_msg.write list }
  | L_decision of { txn : Ids.txn; commit : bool }

(* ------------------------------------------------------------ replicas *)

type replica = { mutable value : int; mutable version : int }

(* ----------------------------------------------------- participant side *)

type part_phase = P_locked | P_prepared | P_precommitted

type participant_txn = {
  p_txn : Ids.txn;
  p_coord : Ids.site;
  p_items : Ids.item list;
  mutable p_lock_time : float;
  mutable p_writes : Trad_msg.write list;
  mutable p_phase : part_phase;
  mutable p_prepare_time : float;
  mutable p_poll : Engine.timer option;
  mutable p_ttl : Engine.timer option;
  mutable p_term : Engine.timer option;
}

(* ----------------------------------------------------- coordinator side *)

type coord_phase = C_exec | C_vote | C_precommit

type coord_txn = {
  c_txn : Ids.txn;
  c_ops : (Ids.item * Op.t) list;
  c_participants : Ids.site list;
  c_threshold : int;
  c_started : float;
  c_is_read : bool;
  c_acks : (Ids.site, Trad_msg.read_result list) Hashtbl.t;
  mutable c_quorum : Ids.site list;
  mutable c_read_value : int option;
  mutable c_votes : Ids.site list;
  mutable c_pre_acks : Ids.site list;
  mutable c_phase : coord_phase;
  mutable c_timer : Engine.timer option;
  c_on_done : Dvp_core.Site.txn_result -> unit;
}

type t = {
  engine : Engine.t;
  self : Ids.site;
  n : int;
  send : dst:Ids.site -> Trad_msg.t -> unit;
  cfg : config;
  on_unilateral : Ids.txn -> bool -> unit;
  wal : log_record Wal.t;
  db : (Ids.item, replica) Hashtbl.t;
  locks : Lock_mgr.t;
  clock : Ids.Clock.t;
  metrics : Metrics.t;
  parts : (Ids.txn, participant_txn) Hashtbl.t;
  coords : (Ids.txn, coord_txn) Hashtbl.t;
  decisions : (Ids.txn, bool) Hashtbl.t; (* coordinator decision table *)
  mutable up : bool;
}

let create engine ~self ~n ~send ~config ~on_unilateral () =
  {
    engine;
    self;
    n;
    send;
    cfg = config;
    on_unilateral;
    wal = Wal.create ();
    db = Hashtbl.create 32;
    locks = Lock_mgr.create engine;
    clock = Ids.Clock.create self;
    metrics = Metrics.create ();
    parts = Hashtbl.create 16;
    coords = Hashtbl.create 16;
    decisions = Hashtbl.create 64;
    up = true;
  }

let self t = t.self

let is_up t = t.up

let metrics t = t.metrics

let log_forces t = Wal.forces t.wal

let in_doubt t =
  Hashtbl.fold
    (fun _ p acc ->
      match p.p_phase with P_prepared | P_precommitted -> acc + 1 | P_locked -> acc)
    t.parts 0

let replica t item =
  match Hashtbl.find_opt t.db item with
  | Some r -> r
  | None ->
    let r = { value = 0; version = 0 } in
    Hashtbl.replace t.db item r;
    r

let install_value t ~item value =
  Wal.append t.wal (L_value { item; value; version = 0 });
  let r = replica t item in
  r.value <- value;
  r.version <- 0

let value_of t ~item = (replica t item).value

let version_of t ~item = (replica t item).version

let cancel t timer_ref =
  match timer_ref with
  | Some h ->
    ignore (Engine.cancel t.engine h);
    None
  | None -> None

(* ------------------------------------------------------ participant ops *)

let part_release t p =
  p.p_poll <- cancel t p.p_poll;
  p.p_ttl <- cancel t p.p_ttl;
  p.p_term <- cancel t p.p_term;
  Metrics.lock_held t.metrics (Engine.now t.engine -. p.p_lock_time);
  Lock_mgr.release_all t.locks ~txn:p.p_txn;
  Hashtbl.remove t.parts p.p_txn

let install_writes t writes =
  List.iter
    (fun (w : Trad_msg.write) ->
      let r = replica t w.item in
      if w.version >= r.version then begin
        r.value <- w.value;
        r.version <- w.version
      end)
    writes

let part_blocked_over t p =
  match p.p_phase with
  | P_prepared | P_precommitted ->
    Metrics.blocked_episode t.metrics (Engine.now t.engine -. p.p_prepare_time)
  | P_locked -> ()

(* A participant learns the decision (from a Decision message, a status
   reply, or the 3PC termination rule). *)
let part_decide t p commit =
  part_blocked_over t p;
  Wal.append t.wal (L_decision { txn = p.p_txn; commit });
  if commit then install_writes t p.p_writes;
  part_release t p

let rec arm_poll t p =
  p.p_poll <-
    Some
      (Engine.schedule t.engine ~delay:t.cfg.poll_interval (fun () ->
           if t.up && Hashtbl.mem t.parts p.p_txn then begin
             t.send ~dst:p.p_coord (Trad_msg.Status_query { txn = p.p_txn });
             arm_poll t p
           end))

let arm_termination t p =
  if t.cfg.protocol = Three_phase then
    p.p_term <-
      Some
        (Engine.schedule t.engine ~delay:t.cfg.termination_timeout (fun () ->
             if t.up && Hashtbl.mem t.parts p.p_txn then begin
               (* The 3PC termination rule: uncertain aborts, pre-committed
                  commits.  Under a partition this can contradict the
                  coordinator — counted by the system as an atomicity
                  violation. *)
               let commit = p.p_phase = P_precommitted in
               t.on_unilateral p.p_txn commit;
               part_decide t p commit
             end))

let handle_exec t ~src ~txn ~items =
  (* Acquire the locks one at a time; any refusal (deadlock-resolution
     timeout) nacks the whole transaction. *)
  let rec acquire_next acquired = function
    | [] ->
      let reads =
        List.map
          (fun item ->
            let r = replica t item in
            { Trad_msg.item; value = r.value; version = r.version })
          items
      in
      let p =
        {
          p_txn = txn;
          p_coord = src;
          p_items = items;
          p_lock_time = Engine.now t.engine;
          p_writes = [];
          p_phase = P_locked;
          p_prepare_time = 0.0;
          p_poll = None;
          p_ttl = None;
          p_term = None;
        }
      in
      Hashtbl.replace t.parts txn p;
      (* Safety valve: a participant that never hears a Prepare (aborted
         coordinator, lost to a non-quorum race) releases after a generous
         delay — it staged nothing, so this is safe. *)
      p.p_ttl <-
        Some
          (Engine.schedule t.engine ~delay:(4.0 *. t.cfg.txn_timeout) (fun () ->
               match Hashtbl.find_opt t.parts txn with
               | Some p when p.p_phase = P_locked -> part_release t p
               | Some _ | None -> ()));
      t.send ~dst:src (Trad_msg.Exec_ack { txn; ok = true; reads })
    | item :: rest ->
      Lock_mgr.acquire t.locks ~item ~txn ~timeout:t.cfg.lock_timeout (fun granted ->
          if not t.up then ()
          else if granted then acquire_next (item :: acquired) rest
          else begin
            Lock_mgr.release_all t.locks ~txn;
            t.send ~dst:src (Trad_msg.Exec_ack { txn; ok = false; reads = [] })
          end)
  in
  acquire_next [] items

let handle_prepare t ~src ~txn ~writes =
  match Hashtbl.find_opt t.parts txn with
  | Some p when p.p_phase = P_locked ->
    p.p_ttl <- cancel t p.p_ttl;
    p.p_writes <- writes;
    Wal.append t.wal (L_prepared { txn; coordinator = p.p_coord; writes });
    p.p_phase <- P_prepared;
    p.p_prepare_time <- Engine.now t.engine;
    t.send ~dst:src (Trad_msg.Vote { txn; yes = true });
    arm_poll t p;
    arm_termination t p
  | Some _ -> () (* duplicate prepare *)
  | None ->
    (* We no longer know the transaction (crash or TTL release): vote no. *)
    t.send ~dst:src (Trad_msg.Vote { txn; yes = false })

let handle_precommit t ~src ~txn =
  match Hashtbl.find_opt t.parts txn with
  | Some p when p.p_phase = P_prepared ->
    p.p_phase <- P_precommitted;
    (* Restart the termination clock: the rule now says commit. *)
    p.p_term <- cancel t p.p_term;
    arm_termination t p;
    t.send ~dst:src (Trad_msg.Precommit_ack { txn })
  | Some p when p.p_phase = P_precommitted ->
    t.send ~dst:src (Trad_msg.Precommit_ack { txn })
  | Some _ | None -> ()

let handle_decision t ~src ~txn ~commit =
  (match Hashtbl.find_opt t.parts txn with
  | Some p -> part_decide t p commit
  | None -> ());
  t.send ~dst:src (Trad_msg.Decision_ack { txn })

(* ------------------------------------------------------ coordinator ops *)

let coord_finish t c result =
  c.c_timer <- cancel t c.c_timer;
  Hashtbl.remove t.coords c.c_txn;
  let latency = Engine.now t.engine -. c.c_started in
  (match result with
  | Dvp_core.Site.Committed _ -> Metrics.txn_committed t.metrics ~latency
  | Dvp_core.Site.Aborted reason -> Metrics.txn_aborted t.metrics ~reason ~latency);
  c.c_on_done result

let coord_decide t c commit ~reason =
  Wal.append t.wal (L_decision { txn = c.c_txn; commit });
  Hashtbl.replace t.decisions c.c_txn commit;
  let recipients = if commit then c.c_quorum else c.c_participants in
  List.iter (fun dst -> t.send ~dst (Trad_msg.Decision { txn = c.c_txn; commit })) recipients;
  if commit then
    coord_finish t c (Dvp_core.Site.Committed { read_value = c.c_read_value })
  else coord_finish t c (Dvp_core.Site.Aborted reason)

let coord_timeout t txn () =
  match Hashtbl.find_opt t.coords txn with
  | None -> ()
  | Some c -> (
    c.c_timer <- None;
    match c.c_phase with
    | C_exec ->
      let reason =
        match t.cfg.placement with
        | Replicated -> Metrics.No_quorum
        | Single_copy | Primary_copy _ -> Metrics.Timeout
      in
      coord_decide t c false ~reason
    | C_vote -> coord_decide t c false ~reason:Metrics.Timeout
    | C_precommit ->
      (* All participants voted yes: 3PC commits even if pre-commit acks are
         missing. *)
      coord_decide t c true ~reason:Metrics.Timeout)

let coord_arm t c =
  c.c_timer <- cancel t c.c_timer;
  c.c_timer <- Some (Engine.schedule t.engine ~delay:t.cfg.txn_timeout (coord_timeout t c.c_txn))

let items_for_participant t c site =
  match t.cfg.placement with
  | Replicated | Primary_copy _ -> List.map fst c.c_ops
  | Single_copy -> List.filter (fun item -> item mod t.n = site) (List.map fst c.c_ops)

let begin_txn t ~ops ~is_read ~on_done =
  Ids.Clock.witness_counter t.clock (int_of_float (Engine.now t.engine *. 1_000_000.0));
  let txn = Ids.Clock.next t.clock in
  let participants =
    match t.cfg.placement with
    | Replicated -> List.init t.n (fun i -> i)
    | Primary_copy s -> [ s ]
    | Single_copy -> List.sort_uniq compare (List.map (fun (item, _) -> item mod t.n) ops)
  in
  let threshold =
    match t.cfg.placement with
    | Replicated -> (t.n / 2) + 1
    | Primary_copy _ | Single_copy -> List.length participants
  in
  let c =
    {
      c_txn = txn;
      c_ops = ops;
      c_participants = participants;
      c_threshold = threshold;
      c_started = Engine.now t.engine;
      c_is_read = is_read;
      c_acks = Hashtbl.create 8;
      c_quorum = [];
      c_read_value = None;
      c_votes = [];
      c_pre_acks = [];
      c_phase = C_exec;
      c_timer = None;
      c_on_done = on_done;
    }
  in
  Hashtbl.replace t.coords txn c;
  coord_arm t c;
  List.iter
    (fun site ->
      let items = items_for_participant t c site in
      if items <> [] then
        t.send ~dst:site (Trad_msg.Exec { txn; coordinator = t.self; items }))
    participants;
  (* In single-copy mode a participant list can be a strict subset of sites;
     threshold counts only participants that were actually sent work. *)
  ()

let submit t ~ops ~on_done =
  if not t.up then on_done (Dvp_core.Site.Aborted Metrics.Crashed)
  else begin_txn t ~ops ~is_read:false ~on_done

let submit_read t ~item ~on_done =
  if not t.up then on_done (Dvp_core.Site.Aborted Metrics.Crashed)
  else begin_txn t ~ops:[ (item, Op.Incr 0) ] ~is_read:true ~on_done

let current_values c =
  (* Freshest value per item across the ack quorum (majority intersection
     guarantees the latest committed version is present). *)
  let best : (Ids.item, Trad_msg.read_result) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ reads ->
      List.iter
        (fun (r : Trad_msg.read_result) ->
          match Hashtbl.find_opt best r.item with
          | Some prev when prev.version >= r.version -> ()
          | _ -> Hashtbl.replace best r.item r)
        reads)
    c.c_acks;
  best

let handle_exec_ack t ~src ~txn ~ok ~reads =
  match Hashtbl.find_opt t.coords txn with
  | Some c when c.c_phase = C_exec ->
    if not ok then coord_decide t c false ~reason:Metrics.Deadlock
    else begin
      Hashtbl.replace c.c_acks src reads;
      if Hashtbl.length c.c_acks >= c.c_threshold then begin
        let best = current_values c in
        let effective =
          List.for_all
            (fun (item, op) ->
              match Hashtbl.find_opt best item with
              | Some r -> Op.effective op ~fragment:r.value
              | None -> false)
            c.c_ops
        in
        if not effective then coord_decide t c false ~reason:Metrics.Ineffective
        else begin
          let writes : Trad_msg.write list =
            List.map
              (fun (item, op) ->
                let r = Hashtbl.find best item in
                match Op.apply op ~fragment:r.Trad_msg.value with
                | Some value ->
                  ({ item; value; version = r.Trad_msg.version + 1 } : Trad_msg.write)
                | None -> assert false)
              c.c_ops
          in
          (match (c.c_is_read, c.c_ops) with
          | true, [ (item, _) ] ->
            c.c_read_value <- Some (Hashtbl.find best item).Trad_msg.value
          | _ -> ());
          c.c_quorum <- Hashtbl.fold (fun site _ acc -> site :: acc) c.c_acks [];
          c.c_phase <- C_vote;
          coord_arm t c;
          List.iter
            (fun site ->
              let site_writes =
                match t.cfg.placement with
                | Replicated | Primary_copy _ -> writes
                | Single_copy ->
                  List.filter (fun (w : Trad_msg.write) -> w.item mod t.n = site) writes
              in
              t.send ~dst:site (Trad_msg.Prepare { txn; writes = site_writes }))
            c.c_quorum
        end
      end
    end
  | Some _ | None -> ()

let handle_vote t ~src ~txn ~yes =
  match Hashtbl.find_opt t.coords txn with
  | Some c when c.c_phase = C_vote ->
    if not yes then coord_decide t c false ~reason:Metrics.Blocked_failure
    else begin
      if not (List.mem src c.c_votes) then c.c_votes <- src :: c.c_votes;
      if List.length c.c_votes >= List.length c.c_quorum then begin
        match t.cfg.protocol with
        | Two_phase -> coord_decide t c true ~reason:Metrics.Timeout
        | Three_phase ->
          c.c_phase <- C_precommit;
          coord_arm t c;
          List.iter (fun dst -> t.send ~dst (Trad_msg.Precommit { txn })) c.c_quorum
      end
    end
  | Some _ | None -> ()

let handle_precommit_ack t ~src ~txn =
  match Hashtbl.find_opt t.coords txn with
  | Some c when c.c_phase = C_precommit ->
    if not (List.mem src c.c_pre_acks) then c.c_pre_acks <- src :: c.c_pre_acks;
    if List.length c.c_pre_acks >= List.length c.c_quorum then
      coord_decide t c true ~reason:Metrics.Timeout
  | Some _ | None -> ()

let handle_status_query t ~src ~txn =
  let decision =
    match Hashtbl.find_opt t.decisions txn with
    | Some d -> Some d
    | None ->
      if Hashtbl.mem t.coords txn then None (* still running: keep waiting *)
      else begin
        (* Presumed abort: a recovered coordinator that finds no decision
           record for an unfinished transaction aborts it. *)
        Wal.append t.wal (L_decision { txn; commit = false });
        Hashtbl.replace t.decisions txn false;
        Some false
      end
  in
  t.send ~dst:src (Trad_msg.Status_reply { txn; decision })

let handle_status_reply t ~txn ~decision =
  match decision with
  | None -> ()
  | Some commit -> (
    match Hashtbl.find_opt t.parts txn with
    | Some p -> part_decide t p commit
    | None -> ())

(* ------------------------------------------------------------ dispatch *)

let handle_message t ~src msg =
  if t.up then begin
    match msg with
    | Trad_msg.Exec { txn; coordinator; items } ->
      Ids.Clock.witness t.clock txn;
      handle_exec t ~src:coordinator ~txn ~items
    | Trad_msg.Exec_ack { txn; ok; reads } -> handle_exec_ack t ~src ~txn ~ok ~reads
    | Trad_msg.Prepare { txn; writes } -> handle_prepare t ~src ~txn ~writes
    | Trad_msg.Vote { txn; yes } -> handle_vote t ~src ~txn ~yes
    | Trad_msg.Precommit { txn } -> handle_precommit t ~src ~txn
    | Trad_msg.Precommit_ack { txn } -> handle_precommit_ack t ~src ~txn
    | Trad_msg.Decision { txn; commit } -> handle_decision t ~src ~txn ~commit
    | Trad_msg.Decision_ack _ -> ()
    | Trad_msg.Status_query { txn } -> handle_status_query t ~src ~txn
    | Trad_msg.Status_reply { txn; decision } -> handle_status_reply t ~txn ~decision
  end

(* ------------------------------------------------------ crash, recovery *)

let crash t =
  if t.up then begin
    t.up <- false;
    (* Live coordinated transactions die with their clients. *)
    let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.coords [] in
    List.iter
      (fun c ->
        c.c_timer <- cancel t c.c_timer;
        Metrics.txn_aborted t.metrics ~reason:Metrics.Crashed
          ~latency:(Engine.now t.engine -. c.c_started);
        c.c_on_done (Dvp_core.Site.Aborted Metrics.Crashed))
      cs;
    Hashtbl.reset t.coords;
    (* Participant volatile state: in-doubt episodes end here for blocked
       accounting (the locks die with the site). *)
    let ps = Hashtbl.fold (fun _ p acc -> p :: acc) t.parts [] in
    List.iter
      (fun p ->
        part_blocked_over t p;
        Metrics.lock_held t.metrics (Engine.now t.engine -. p.p_lock_time);
        p.p_poll <- cancel t p.p_poll;
        p.p_ttl <- cancel t p.p_ttl;
        p.p_term <- cancel t p.p_term)
      ps;
    Hashtbl.reset t.parts;
    Lock_mgr.clear t.locks;
    Hashtbl.reset t.db;
    Hashtbl.reset t.decisions;
    Wal.crash t.wal
  end

let recover t =
  if not t.up then begin
    t.up <- true;
    let started = Engine.now t.engine in
    (* Replay: rebuild replica values, the coordinator decision table, and
       the set of in-doubt prepared transactions. *)
    let pending : (Ids.txn, Ids.site * Trad_msg.write list) Hashtbl.t = Hashtbl.create 8 in
    let redo = ref 0 in
    Wal.iter t.wal (fun r ->
        match r with
        | L_value { item; value; version } ->
          let rep = replica t item in
          rep.value <- value;
          rep.version <- version
        | L_prepared { txn; coordinator; writes } ->
          Hashtbl.replace pending txn (coordinator, writes)
        | L_decision { txn; commit } -> (
          Hashtbl.replace t.decisions txn commit;
          match Hashtbl.find_opt pending txn with
          | Some (_, writes) ->
            Hashtbl.remove pending txn;
            if commit then begin
              incr redo;
              install_writes t writes
            end
          | None -> ()));
    (* Re-enter in-doubt transactions: re-take their locks and resume the
       status polling — the messages that make traditional recovery
       dependent on other sites. *)
    let msgs = ref 0 in
    Hashtbl.iter
      (fun txn (coordinator, writes) ->
        let p =
          {
            p_txn = txn;
            p_coord = coordinator;
            p_items = List.map (fun (w : Trad_msg.write) -> w.item) writes;
            p_lock_time = Engine.now t.engine;
            p_writes = writes;
            p_phase = P_prepared;
            p_prepare_time = Engine.now t.engine;
            p_poll = None;
            p_ttl = None;
            p_term = None;
          }
        in
        Hashtbl.replace t.parts txn p;
        List.iter
          (fun item ->
            Lock_mgr.acquire t.locks ~item ~txn ~timeout:1e9 (fun _granted -> ()))
          p.p_items;
        incr msgs;
        t.send ~dst:coordinator (Trad_msg.Status_query { txn });
        arm_poll t p;
        arm_termination t p)
      pending;
    Metrics.recovery_event t.metrics ~messages:!msgs ~redo:!redo
      ~duration:(Engine.now t.engine -. started)
  end

let decision_of t txn = Hashtbl.find_opt t.decisions txn

let flush_blocked t =
  Hashtbl.iter (fun _ p -> part_blocked_over t p) t.parts
