(** One site of the traditional baseline: 2PC/3PC participant and
    coordinator rolled together (every site can coordinate transactions
    submitted to it and participate in others').

    This is the system the paper argues *against*: items live whole at a
    home site (or replicated everywhere under quorum), multi-site
    transactions run an atomic-commit protocol, and participants that have
    voted yes hold their locks until they learn the decision — the blocking
    window that partitions can stretch without bound (Section 2.1).

    The 3PC variant adds the pre-commit round and the classic termination
    rule (uncertain ⇒ abort, pre-committed ⇒ commit) at participants that
    lose contact with the coordinator; the harness counts the atomicity
    violations this rule produces under partitions, which is Skeen's
    impossibility made measurable. *)

type protocol = Two_phase | Three_phase

type placement =
  | Single_copy  (** item [i] lives whole at site [i mod n] *)
  | Primary_copy of Dvp_core.Ids.site  (** every item lives whole at one primary site *)
  | Replicated  (** every site replicates every item; majority quorums *)

type config = {
  protocol : protocol;
  placement : placement;
  txn_timeout : float;  (** coordinator per-phase timeout (default 0.5) *)
  lock_timeout : float;  (** participant lock-wait bound (default 0.25) *)
  poll_interval : float;
      (** in-doubt participants query the coordinator this often (0.2) *)
  termination_timeout : float;
      (** 3PC only: silence before applying the termination rule (1.0) *)
}

val default_config : config

val home : config -> n:int -> item:Dvp_core.Ids.item -> Dvp_core.Ids.site

type t

val create :
  Dvp_sim.Engine.t ->
  self:Dvp_core.Ids.site ->
  n:int ->
  send:(dst:Dvp_core.Ids.site -> Trad_msg.t -> unit) ->
  config:config ->
  on_unilateral:(Dvp_core.Ids.txn -> bool -> unit) ->
  unit ->
  t
(** [on_unilateral txn commit] fires when the 3PC termination rule makes this
    site decide on its own; the system cross-checks it against the
    coordinator's decision to count atomicity violations. *)

val self : t -> Dvp_core.Ids.site

val is_up : t -> bool

val install_value : t -> item:Dvp_core.Ids.item -> int -> unit
(** Give this site a (replica of a) whole item with the given value. *)

val value_of : t -> item:Dvp_core.Ids.item -> int

val version_of : t -> item:Dvp_core.Ids.item -> int

val submit :
  t ->
  ops:(Dvp_core.Ids.item * Dvp_core.Op.t) list ->
  on_done:(Dvp_core.Site.txn_result -> unit) ->
  unit
(** Coordinate a transaction from this site. *)

val submit_read :
  t -> item:Dvp_core.Ids.item -> on_done:(Dvp_core.Site.txn_result -> unit) -> unit

val handle_message : t -> src:Dvp_core.Ids.site -> Trad_msg.t -> unit

val crash : t -> unit

val recover : t -> unit
(** Traditional recovery is *not* independent: in-doubt transactions are
    re-entered from the log and must query their coordinators; those
    messages are counted in the metrics. *)

val in_doubt : t -> int
(** Participants currently holding locks awaiting a decision. *)

val flush_blocked : t -> unit
(** End-of-run accounting: record the still-running blocked episodes of
    in-doubt participants. *)

val decision_of : t -> Dvp_core.Ids.txn -> bool option
(** Coordinator-side decision table lookup (for the consistency audit). *)

val metrics : t -> Dvp_core.Metrics.t

val log_forces : t -> int
