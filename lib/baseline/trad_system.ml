module Engine = Dvp_sim.Engine
module Network = Dvp_net.Network

type t = {
  engine : Engine.t;
  net : Trad_msg.t Network.t;
  sites : Trad_site.t array;
  cfg : Trad_site.config;
  (* 3PC consistency audit: unilateral termination decisions to compare with
     the coordinator's. *)
  unilateral : (Dvp_core.Ids.txn * bool) Queue.t;
  mutable inconsistent : int;
}

let create ?(seed = 42) ?(config = Trad_site.default_config) ?link ~n () =
  let engine = Engine.create () in
  let rng = Dvp_util.Rng.create seed in
  let net = Network.create (Dvp_sim.Substrate_des.of_engine engine) ~rng ~n ?default:link () in
  let unilateral = Queue.create () in
  let sites =
    Array.init n (fun i ->
        Trad_site.create engine ~self:i ~n
          ~send:(fun ~dst msg -> Network.send net ~src:i ~dst msg)
          ~config
          ~on_unilateral:(fun txn commit -> Queue.add (txn, commit) unilateral)
          ())
  in
  Array.iteri
    (fun i site ->
      Network.set_handler net i (fun ~src msg -> Trad_site.handle_message site ~src msg))
    sites;
  { engine; net; sites; cfg = config; unilateral; inconsistent = 0 }

let engine t = t.engine

let now t = Engine.now t.engine

let run_until t horizon = Engine.run_until t.engine horizon

let n_sites t = Array.length t.sites

let site t i = t.sites.(i)

let add_item t ~item ~total =
  match t.cfg.Trad_site.placement with
  | Trad_site.Single_copy ->
    let h = item mod Array.length t.sites in
    Trad_site.install_value t.sites.(h) ~item total
  | Trad_site.Primary_copy s -> Trad_site.install_value t.sites.(s) ~item total
  | Trad_site.Replicated ->
    Array.iter (fun s -> Trad_site.install_value s ~item total) t.sites

let submit t ~site ~ops ~on_done = Trad_site.submit t.sites.(site) ~ops ~on_done

let submit_read t ~site ~item ~on_done = Trad_site.submit_read t.sites.(site) ~item ~on_done

let partition t groups = Network.set_partition t.net groups

let heal t = Network.heal_partition t.net

let crash_site t i =
  Network.set_site_up t.net i false;
  Trad_site.crash t.sites.(i)

let recover_site t i =
  Network.set_site_up t.net i true;
  Trad_site.recover t.sites.(i)

let value_at t ~site ~item = Trad_site.value_of t.sites.(site) ~item

let committed_value t ~item =
  match t.cfg.Trad_site.placement with
  | Trad_site.Single_copy -> value_at t ~site:(item mod Array.length t.sites) ~item
  | Trad_site.Primary_copy s -> value_at t ~site:s ~item
  | Trad_site.Replicated ->
    (* Report the value at the highest version — what any majority read
       would return. *)
    let best_value = ref 0 and best_version = ref (-1) in
    Array.iter
      (fun s ->
        let v = Trad_site.version_of s ~item in
        if v > !best_version then begin
          best_version := v;
          best_value := Trad_site.value_of s ~item
        end)
      t.sites;
    !best_value

let in_doubt_total t = Array.fold_left (fun acc s -> acc + Trad_site.in_doubt s) 0 t.sites

let flush_blocked t = Array.iter Trad_site.flush_blocked t.sites

(* Compare every unilateral 3PC termination decision with the coordinator's
   eventual decision; a mismatch is an atomicity violation. *)
let inconsistencies t =
  Queue.iter
    (fun (txn, commit) ->
      let coordinator = snd txn in
      match Trad_site.decision_of t.sites.(coordinator) txn with
      | Some d when d <> commit -> t.inconsistent <- t.inconsistent + 1
      | Some _ | None -> ())
    t.unilateral;
  Queue.clear t.unilateral;
  t.inconsistent

let metrics t =
  let m =
    Array.fold_left
      (fun acc s -> Dvp_core.Metrics.merge acc (Trad_site.metrics s))
      (Dvp_core.Metrics.create ()) t.sites
  in
  let stats = Network.stats t.net in
  Dvp_core.Metrics.add_messages m stats.Network.sent;
  Dvp_core.Metrics.add_drops m ~loss:stats.Network.dropped_loss
    ~partition:stats.Network.dropped_partition ~down:stats.Network.dropped_down
    ~inflight:stats.Network.dropped_inflight;
  Array.iter (fun s -> Dvp_core.Metrics.add_log_forces m (Trad_site.log_forces s)) t.sites;
  m
