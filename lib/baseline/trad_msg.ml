type write = { item : Dvp_core.Ids.item; value : int; version : int }

type read_result = { item : Dvp_core.Ids.item; value : int; version : int }

type t =
  | Exec of { txn : Dvp_core.Ids.txn; coordinator : Dvp_core.Ids.site; items : Dvp_core.Ids.item list }
  | Exec_ack of { txn : Dvp_core.Ids.txn; ok : bool; reads : read_result list }
  | Prepare of { txn : Dvp_core.Ids.txn; writes : write list }
  | Vote of { txn : Dvp_core.Ids.txn; yes : bool }
  | Precommit of { txn : Dvp_core.Ids.txn }
  | Precommit_ack of { txn : Dvp_core.Ids.txn }
  | Decision of { txn : Dvp_core.Ids.txn; commit : bool }
  | Decision_ack of { txn : Dvp_core.Ids.txn }
  | Status_query of { txn : Dvp_core.Ids.txn }
  | Status_reply of { txn : Dvp_core.Ids.txn; decision : bool option }

let pp ppf m =
  let txn_of = function
    | Exec { txn; _ }
    | Exec_ack { txn; _ }
    | Prepare { txn; _ }
    | Vote { txn; _ }
    | Precommit { txn }
    | Precommit_ack { txn }
    | Decision { txn; _ }
    | Decision_ack { txn }
    | Status_query { txn }
    | Status_reply { txn; _ } -> txn
  in
  let tag = function
    | Exec _ -> "Exec"
    | Exec_ack { ok; _ } -> if ok then "Exec_ack(+)" else "Exec_ack(-)"
    | Prepare _ -> "Prepare"
    | Vote { yes; _ } -> if yes then "Vote(yes)" else "Vote(no)"
    | Precommit _ -> "Precommit"
    | Precommit_ack _ -> "Precommit_ack"
    | Decision { commit; _ } -> if commit then "Decision(commit)" else "Decision(abort)"
    | Decision_ack _ -> "Decision_ack"
    | Status_query _ -> "Status_query"
    | Status_reply { decision; _ } -> (
      match decision with
      | Some true -> "Status_reply(commit)"
      | Some false -> "Status_reply(abort)"
      | None -> "Status_reply(?)")
  in
  Format.fprintf ppf "%s[%a]" (tag m) Dvp_core.Ids.pp_txn (txn_of m)
