module Engine = Dvp_sim.Engine

type waiter = {
  txn : Dvp_core.Ids.txn;
  k : bool -> unit;
  mutable timer : Engine.timer option;
  mutable cancelled : bool;
}

type t = {
  engine : Engine.t;
  holders : (Dvp_core.Ids.item, Dvp_core.Ids.txn) Hashtbl.t;
  queues : (Dvp_core.Ids.item, waiter Queue.t) Hashtbl.t;
  (* items held by each transaction, for release_all *)
  held_by : (Dvp_core.Ids.txn, Dvp_core.Ids.item list) Hashtbl.t;
  mutable waiting : int;
}

let create engine =
  {
    engine;
    holders = Hashtbl.create 32;
    queues = Hashtbl.create 8;
    held_by = Hashtbl.create 32;
    waiting = 0;
  }

let holder t ~item = Hashtbl.find_opt t.holders item

let note_held t txn item =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.held_by txn) in
  Hashtbl.replace t.held_by txn (item :: cur)

let grant t ~item ~txn =
  Hashtbl.replace t.holders item txn;
  note_held t txn item

let acquire t ~item ~txn ~timeout k =
  match Hashtbl.find_opt t.holders item with
  | None ->
    grant t ~item ~txn;
    k true
  | Some owner when Dvp_core.Ids.ts_compare owner txn = 0 -> k true
  | Some _ ->
    let w = { txn; k; timer = None; cancelled = false } in
    let q =
      match Hashtbl.find_opt t.queues item with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.queues item q;
        q
    in
    Queue.add w q;
    t.waiting <- t.waiting + 1;
    w.timer <-
      Some
        (Engine.schedule t.engine ~delay:timeout (fun () ->
             if not w.cancelled then begin
               (* Timeout-based deadlock resolution: withdraw the request. *)
               w.cancelled <- true;
               t.waiting <- t.waiting - 1;
               w.k false
             end))

(* Grant the lock to the next live waiter, if any. *)
let promote t item =
  match Hashtbl.find_opt t.queues item with
  | None -> ()
  | Some q ->
    let rec next () =
      match Queue.take_opt q with
      | None -> Hashtbl.remove t.queues item
      | Some w when w.cancelled -> next ()
      | Some w ->
        w.cancelled <- true;
        (match w.timer with
        | Some h -> ignore (Engine.cancel t.engine h)
        | None -> ());
        t.waiting <- t.waiting - 1;
        grant t ~item ~txn:w.txn;
        if Queue.is_empty q then Hashtbl.remove t.queues item;
        w.k true
    in
    if not (Hashtbl.mem t.holders item) then next ()

let release_all t ~txn =
  match Hashtbl.find_opt t.held_by txn with
  | None -> ()
  | Some items ->
    Hashtbl.remove t.held_by txn;
    List.iter
      (fun item ->
        match Hashtbl.find_opt t.holders item with
        | Some owner when Dvp_core.Ids.ts_compare owner txn = 0 ->
          Hashtbl.remove t.holders item;
          promote t item
        | Some _ | None -> ())
      items

let clear t =
  Hashtbl.reset t.holders;
  Hashtbl.reset t.held_by;
  Hashtbl.iter
    (fun _ q ->
      Queue.iter
        (fun w ->
          if not w.cancelled then begin
            w.cancelled <- true;
            (match w.timer with
            | Some h -> ignore (Engine.cancel t.engine h)
            | None -> ());
            t.waiting <- t.waiting - 1;
            w.k false
          end)
        q)
    t.queues;
  Hashtbl.reset t.queues

let waiting t = t.waiting
