module Engine = Dvp_sim.Engine
module Ids = Dvp_core.Ids
module Op = Dvp_core.Op
module Metrics = Dvp_core.Metrics

type msg =
  | Reserve of { txn : Ids.txn; item : Ids.item; op : Op.t }
  | Reply of { txn : Ids.txn; granted : bool }
  | Finalise of { txn : Ids.txn; commit : bool }

type mode = Escrow_locking | Exclusive_locking

(* ---------------------------------------------------------------- server *)

type item_state = {
  mutable value : int;
  mutable escrowed : int; (* worst-case outgoing quantity under escrow *)
  mutable locked_by : Ids.txn option; (* Exclusive_locking mode *)
  wait_queue : (Ids.txn * Ids.site * (Ids.item * Op.t)) Queue.t;
}

type reservation = {
  r_item : Ids.item;
  r_op : Op.t;
  mutable r_ttl : Engine.timer option;
}

type server = {
  s_engine : Engine.t;
  s_mode : mode;
  s_send : dst:Ids.site -> msg -> unit;
  s_ttl : float;
  s_items : (Ids.item, item_state) Hashtbl.t;
  s_res : (Ids.txn, reservation) Hashtbl.t;
  mutable s_up : bool;
}

let server engine ~mode ~send ?(escrow_ttl = 2.0) () =
  {
    s_engine = engine;
    s_mode = mode;
    s_send = send;
    s_ttl = escrow_ttl;
    s_items = Hashtbl.create 8;
    s_res = Hashtbl.create 64;
    s_up = true;
  }

let state s item =
  match Hashtbl.find_opt s.s_items item with
  | Some st -> st
  | None ->
    let st = { value = 0; escrowed = 0; locked_by = None; wait_queue = Queue.create () } in
    Hashtbl.replace s.s_items item st;
    st

let install s ~item value = (state s item).value <- value

let server_value s ~item = (state s item).value

let escrowed s ~item = (state s item).escrowed

let server_up s = s.s_up

(* Release a reservation, returning its resources and firing queued lock
   waiters (exclusive mode). *)
let rec finalise_reservation s txn ~commit =
  match Hashtbl.find_opt s.s_res txn with
  | None -> ()
  | Some r ->
    Hashtbl.remove s.s_res txn;
    (match r.r_ttl with
    | Some h -> ignore (Engine.cancel s.s_engine h)
    | None -> ());
    let st = state s r.r_item in
    (match s.s_mode with
    | Escrow_locking ->
      (match r.r_op with
      | Op.Decr m ->
        st.escrowed <- st.escrowed - m;
        if commit then st.value <- st.value - m
      | Op.Incr m -> if commit then st.value <- st.value + m)
    | Exclusive_locking ->
      (if commit then
         match Op.apply r.r_op ~fragment:st.value with
         | Some v -> st.value <- v
         | None -> () (* effectiveness was checked at grant time *));
      st.locked_by <- None;
      promote s st)

and promote s st =
  if st.locked_by = None && not (Queue.is_empty st.wait_queue) then begin
    let txn, src, (item, op) = Queue.pop st.wait_queue in
    grant_exclusive s st ~txn ~src ~item ~op
  end

and grant_exclusive s st ~txn ~src ~item ~op =
  if Op.effective op ~fragment:st.value then begin
    st.locked_by <- Some txn;
    let r = { r_item = item; r_op = op; r_ttl = None } in
    Hashtbl.replace s.s_res txn r;
    r.r_ttl <-
      Some
        (Engine.schedule s.s_engine ~delay:s.s_ttl (fun () ->
             finalise_reservation s txn ~commit:false));
    s.s_send ~dst:src (Reply { txn; granted = true })
  end
  else s.s_send ~dst:src (Reply { txn; granted = false })

let handle_reserve s ~src ~txn ~item ~op =
  let st = state s item in
  match s.s_mode with
  | Escrow_locking ->
    (* O'Neil's test: grant iff the operation is safe against the worst case
       of all outstanding escrows. *)
    let ok =
      match op with
      | Op.Decr m -> st.value - st.escrowed >= m
      | Op.Incr _ -> true
    in
    if ok then begin
      (match op with
      | Op.Decr m -> st.escrowed <- st.escrowed + m
      | Op.Incr _ -> ());
      let r = { r_item = item; r_op = op; r_ttl = None } in
      Hashtbl.replace s.s_res txn r;
      r.r_ttl <-
        Some
          (Engine.schedule s.s_engine ~delay:s.s_ttl (fun () ->
               finalise_reservation s txn ~commit:false));
      s.s_send ~dst:src (Reply { txn; granted = true })
    end
    else s.s_send ~dst:src (Reply { txn; granted = false })
  | Exclusive_locking ->
    if st.locked_by = None then grant_exclusive s st ~txn ~src ~item ~op
    else Queue.add (txn, src, (item, op)) st.wait_queue

let handle_server s ~src msg =
  if s.s_up then begin
    match msg with
    | Reserve { txn; item; op } -> handle_reserve s ~src ~txn ~item ~op
    | Finalise { txn; commit } -> finalise_reservation s txn ~commit
    | Reply _ -> ()
  end

let set_server_up s up =
  if s.s_up && not up then begin
    (* Crash: volatile escrow and lock state evaporates; committed values
       are treated as recovered from the server's log. *)
    let txns = Hashtbl.fold (fun txn _ acc -> txn :: acc) s.s_res [] in
    List.iter (fun txn -> finalise_reservation s txn ~commit:false) txns;
    Hashtbl.iter
      (fun _ st ->
        st.locked_by <- None;
        Queue.clear st.wait_queue)
      s.s_items
  end;
  s.s_up <- up

(* ---------------------------------------------------------------- client *)

type pending = {
  c_op : Op.t;
  c_started : float;
  c_on_done : Dvp_core.Site.txn_result -> unit;
  mutable c_timer : Engine.timer option;
}

type client = {
  c_engine : Engine.t;
  c_clock : Ids.Clock.t;
  c_send : msg -> unit;
  c_timeout : float;
  c_metrics : Metrics.t;
  c_pending : (Ids.txn, pending) Hashtbl.t;
}

let client engine ~self ~send ?(timeout = 0.5) ~metrics () =
  {
    c_engine = engine;
    c_clock = Ids.Clock.create self;
    c_send = send;
    c_timeout = timeout;
    c_metrics = metrics;
    c_pending = Hashtbl.create 16;
  }

let finish_client c txn result =
  match Hashtbl.find_opt c.c_pending txn with
  | None -> ()
  | Some p ->
    Hashtbl.remove c.c_pending txn;
    (match p.c_timer with
    | Some h -> ignore (Engine.cancel c.c_engine h)
    | None -> ());
    let latency = Engine.now c.c_engine -. p.c_started in
    (match result with
    | Dvp_core.Site.Committed _ -> Metrics.txn_committed c.c_metrics ~latency
    | Dvp_core.Site.Aborted reason -> Metrics.txn_aborted c.c_metrics ~reason ~latency);
    p.c_on_done result

let request c ~item ~op ~on_done =
  Ids.Clock.witness_counter c.c_clock
    (int_of_float (Engine.now c.c_engine *. 1_000_000.0));
  let txn = Ids.Clock.next c.c_clock in
  let p =
    { c_op = op; c_started = Engine.now c.c_engine; c_on_done = on_done; c_timer = None }
  in
  Hashtbl.replace c.c_pending txn p;
  p.c_timer <-
    Some
      (Engine.schedule c.c_engine ~delay:c.c_timeout (fun () ->
           (* Give up; if the server granted, its TTL returns the escrow. *)
           finish_client c txn (Dvp_core.Site.Aborted Metrics.Timeout)));
  c.c_send (Reserve { txn; item; op })

let handle_client c msg =
  match msg with
  | Reply { txn; granted } ->
    if granted then begin
      c.c_send (Finalise { txn; commit = true });
      finish_client c txn (Dvp_core.Site.Committed { read_value = None })
    end
    else finish_client c txn (Dvp_core.Site.Aborted Metrics.Ineffective)
  | Reserve _ | Finalise _ -> ()
