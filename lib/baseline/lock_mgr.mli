(** Strict two-phase-locking lock manager for the traditional baselines.

    Unlike the DvP core's {!Dvp_core.Lock_table} (whose Conc1 discipline aborts on
    conflict), a traditional lock manager queues conflicting requests.
    Deadlocks — possible once transactions wait while holding locks across
    sites — are resolved by a per-request timeout: a request that cannot be
    granted in time is *refused*, and the caller votes to abort.

    All locks are exclusive, matching the update-heavy aggregate-field
    workloads the paper targets. *)

type t

val create : Dvp_sim.Engine.t -> t

val acquire :
  t ->
  item:Dvp_core.Ids.item ->
  txn:Dvp_core.Ids.txn ->
  timeout:float ->
  (bool -> unit) ->
  unit
(** [acquire t ~item ~txn ~timeout k] calls [k true] when the lock is
    granted (possibly immediately), or [k false] if [timeout] elapses first
    (the request is then withdrawn).  Reentrant acquisition is granted
    immediately. *)

val holder : t -> item:Dvp_core.Ids.item -> Dvp_core.Ids.txn option

val release_all : t -> txn:Dvp_core.Ids.txn -> unit
(** Release the transaction's locks and grant queued requests in FIFO
    order. *)

val clear : t -> unit
(** Crash: forget everything (queued waiters get [k false]). *)

val waiting : t -> int
(** Number of queued (ungranted) requests — for contention metrics. *)
