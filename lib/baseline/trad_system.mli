(** A traditional distributed database installation, API-compatible with
    {!Dvp_core.System} so the benchmark harness can drive both uniformly.

    Modes: 2PC or 3PC atomic commit, over single-copy placement (item [i]
    homed at site [i mod n]) or full replication with majority quorums. *)

type t

val create :
  ?seed:int ->
  ?config:Trad_site.config ->
  ?link:Dvp_net.Linkstate.params ->
  n:int ->
  unit ->
  t

val engine : t -> Dvp_sim.Engine.t

val now : t -> float

val run_until : t -> float -> unit

val n_sites : t -> int

val site : t -> Dvp_core.Ids.site -> Trad_site.t

val add_item : t -> item:Dvp_core.Ids.item -> total:int -> unit
(** Install the item whole at its home site (single-copy) or at every
    replica (replicated). *)

val submit :
  t ->
  site:Dvp_core.Ids.site ->
  ops:(Dvp_core.Ids.item * Dvp_core.Op.t) list ->
  on_done:(Dvp_core.Site.txn_result -> unit) ->
  unit

val submit_read :
  t -> site:Dvp_core.Ids.site -> item:Dvp_core.Ids.item -> on_done:(Dvp_core.Site.txn_result -> unit) -> unit

val partition : t -> Dvp_core.Ids.site list list -> unit

val heal : t -> unit

val crash_site : t -> Dvp_core.Ids.site -> unit

val recover_site : t -> Dvp_core.Ids.site -> unit

val value_at : t -> site:Dvp_core.Ids.site -> item:Dvp_core.Ids.item -> int

val committed_value : t -> item:Dvp_core.Ids.item -> int
(** Single-copy: the home site's value.  Replicated: the highest-version
    replica value. *)

val in_doubt_total : t -> int

val inconsistencies : t -> int
(** Count of 3PC termination decisions that contradicted the coordinator's
    decision (atomicity violations under partition). *)

val flush_blocked : t -> unit
(** End-of-run: close the books on still-blocked participants. *)

val metrics : t -> Dvp_core.Metrics.t
