(** The Escrow transactional method (O'Neil 1986) on a central server.

    Section 8 of the paper points at aggregate-field "hot spots" and cites
    escrow as the specialised fix: instead of holding an exclusive lock on
    the aggregate for the whole transaction, a transaction *escrows* the
    quantity it intends to take; concurrent transactions proceed as long as
    the worst-case remainder stays legal, and commit/abort simply finalises
    or returns the escrowed amount.

    This module implements both that method and a plain exclusive-lock
    variant on the same central-server skeleton, so experiment E5 can show
    three regimes on one hot item:

    - central 2PL: transactions serialise on the lock;
    - central escrow: concurrency restored, but every operation still pays a
      round-trip to one site, which also remains a single point of failure;
    - DvP: operations run at the local site (no round trip) and survive
      partitions — the paper's claim.

    The client-server exchange is: [Reserve] → [Granted | Denied] →
    [Finalise commit?].  Clients abort on timeout; the server expires
    escrows whose finalise never arrives. *)

type msg =
  | Reserve of { txn : Dvp_core.Ids.txn; item : Dvp_core.Ids.item; op : Dvp_core.Op.t }
  | Reply of { txn : Dvp_core.Ids.txn; granted : bool }
  | Finalise of { txn : Dvp_core.Ids.txn; commit : bool }

type mode =
  | Escrow_locking  (** O'Neil escrow accounting *)
  | Exclusive_locking  (** plain strict-2PL on the aggregate *)

type server

val server :
  Dvp_sim.Engine.t ->
  mode:mode ->
  send:(dst:Dvp_core.Ids.site -> msg -> unit) ->
  ?escrow_ttl:float ->
  unit ->
  server
(** [escrow_ttl] (default 2 s) bounds how long an unfinalised reservation
    can hold resources (client crash safety). *)

val install : server -> item:Dvp_core.Ids.item -> int -> unit

val server_value : server -> item:Dvp_core.Ids.item -> int

val escrowed : server -> item:Dvp_core.Ids.item -> int

val handle_server : server -> src:Dvp_core.Ids.site -> msg -> unit

val server_up : server -> bool

val set_server_up : server -> bool -> unit
(** Crashing the central server releases volatile escrow/lock state (the
    installed values are considered recovered from its log). *)

type client

val client :
  Dvp_sim.Engine.t ->
  self:Dvp_core.Ids.site ->
  send:(msg -> unit) ->
  ?timeout:float ->
  metrics:Dvp_core.Metrics.t ->
  unit ->
  client

val request :
  client -> item:Dvp_core.Ids.item -> op:Dvp_core.Op.t -> on_done:(Dvp_core.Site.txn_result -> unit) -> unit

val handle_client : client -> msg -> unit
