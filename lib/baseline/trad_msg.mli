(** Wire protocol of the traditional distributed-database baselines.

    The baselines execute every multi-site transaction under an atomic-commit
    protocol — the very machinery whose blocking behaviour under partitions
    (Section 2, Skeen's impossibility) motivates the paper.  One message set
    serves all modes:

    - single-copy placement: participants are the home sites of the items;
    - quorum replication: participants are every replica, and the coordinator
      proceeds on a majority;
    - 2PC: prepare → vote → decision;
    - 3PC: prepare → vote → pre-commit → decision, with the standard
      termination rule at participants (uncertain ⇒ abort, pre-committed ⇒
      commit) whose unsafety under partitions the benchmarks quantify.

    In-doubt participants poll the coordinator with {!constructor:Status_query};
    the decision table answering them is rebuilt from the coordinator's
    stable log after a crash. *)

type write = { item : Dvp_core.Ids.item; value : int; version : int }

type read_result = { item : Dvp_core.Ids.item; value : int; version : int }

type t =
  | Exec of {
      txn : Dvp_core.Ids.txn;
      coordinator : Dvp_core.Ids.site;
      items : Dvp_core.Ids.item list;  (** items to lock and read at the participant *)
    }
  | Exec_ack of { txn : Dvp_core.Ids.txn; ok : bool; reads : read_result list }
  | Prepare of { txn : Dvp_core.Ids.txn; writes : write list }
  | Vote of { txn : Dvp_core.Ids.txn; yes : bool }
  | Precommit of { txn : Dvp_core.Ids.txn }
  | Precommit_ack of { txn : Dvp_core.Ids.txn }
  | Decision of { txn : Dvp_core.Ids.txn; commit : bool }
  | Decision_ack of { txn : Dvp_core.Ids.txn }
  | Status_query of { txn : Dvp_core.Ids.txn }
  | Status_reply of { txn : Dvp_core.Ids.txn; decision : bool option }
      (** [None]: coordinator does not know (yet) — keep waiting. *)

val pp : Format.formatter -> t -> unit
