(** A multi-producer single-consumer mailbox with a timed blocking wait.

    The consumer is one site domain; producers are the other domains and the
    main thread.  The stdlib [Condition] has no timed wait, and the consumer
    must wake for its earliest pending timer even when no message arrives, so
    blocking is built on a self-pipe: {!wait} parks in [Unix.select] on the
    read end with the timer-derived timeout, and {!push} writes one wake byte
    only when the consumer is actually parked.

    A mailbox has three states.  [Open] is the normal case.  [Poisoned] means
    the consumer domain was hard-killed: producers' messages are dropped (the
    same loss semantics as the network eating a message to a crashed site)
    until {!unpoison} re-opens the box for the respawned incarnation.
    [Closed] means the pipe fds are gone; it is terminal. *)

type 'a t

type send_result =
  | Sent
  | Poisoned  (** consumer was hard-killed; message dropped *)
  | Closed  (** mailbox torn down; message dropped *)

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue and, if the consumer is parked in {!wait}, wake it.  On a
    poisoned or closed mailbox the message is silently dropped — crash loss
    semantics, healed by Vm retransmission.  Thread-safe. *)

val send : 'a t -> 'a -> send_result
(** Like {!push} but reports a dead consumer as a typed result instead of
    dropping silently (and never raises across domains).  Client-facing
    paths use this to fail fast with a typed abort. *)

val length : 'a t -> int
(** Messages currently queued (not yet drained).  Thread-safe; any thread
    may read it — this is the live telemetry's mailbox-depth gauge. *)

val drain : 'a t -> 'a list
(** Remove and return every queued element, oldest first.  Consumer only. *)

val poison : 'a t -> unit
(** Mark the consumer as hard-killed: subsequent {!push}es drop, {!send}s
    return [Poisoned].  Messages already queued stay queued — the supervisor
    {!sweep}s them after joining the dead domain.  No-op if closed. *)

val unpoison : 'a t -> unit
(** Re-open a poisoned mailbox for a respawned consumer. *)

val sweep : 'a t -> 'a list
(** Remove and return the backlog (oldest first).  Unlike {!drain} this is
    meant for the supervisor after the consumer domain has been joined:
    pending client requests in the backlog must be failed, not leaked. *)

val is_poisoned : 'a t -> bool

val wait : 'a t -> timeout:float -> unit
(** Block until a message is pushed or [timeout] (seconds) elapses; a
    negative timeout blocks indefinitely.  Returns immediately if the queue
    is non-empty.  Consumer only. *)

val close : 'a t -> unit
(** Release the pipe file descriptors.  Call after the consumer has
    stopped.  Idempotent. *)
