(** A multi-producer single-consumer mailbox with a timed blocking wait.

    The consumer is one site domain; producers are the other domains and the
    main thread.  The stdlib [Condition] has no timed wait, and the consumer
    must wake for its earliest pending timer even when no message arrives, so
    blocking is built on a self-pipe: {!wait} parks in [Unix.select] on the
    read end with the timer-derived timeout, and {!push} writes one wake byte
    only when the consumer is actually parked. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue and, if the consumer is parked in {!wait}, wake it.
    Thread-safe. *)

val length : 'a t -> int
(** Messages currently queued (not yet drained).  Thread-safe; any thread
    may read it — this is the live telemetry's mailbox-depth gauge. *)

val drain : 'a t -> 'a list
(** Remove and return every queued element, oldest first.  Consumer only. *)

val wait : 'a t -> timeout:float -> unit
(** Block until a message is pushed or [timeout] (seconds) elapses; a
    negative timeout blocks indefinitely.  Returns immediately if the queue
    is non-empty.  Consumer only. *)

val close : 'a t -> unit
(** Release the pipe file descriptors.  Call after the consumer has
    stopped. *)
