module Substrate = Dvp_substrate.Substrate
module Heap = Dvp_util.Heap
module Rng = Dvp_util.Rng
module Site = Dvp_core.Site
module Txn = Dvp_core.Txn
module Op = Dvp_core.Op
module Config = Dvp_core.Config
module Proto = Dvp_core.Proto
module Metrics = Dvp_core.Metrics
module Wal = Dvp_storage.Wal
module Health = Dvp_health.Health
module Trace = Dvp_trace.Trace
module Shards = Dvp_trace.Shards

(* A one-shot synchronisation cell: the site domain fills it, the main
   thread awaits it.  Domains run freely while the main thread blocks, so a
   transaction that needs remote value still completes. *)
module Cell = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    t.v <- Some v;
    Condition.signal t.c;
    Mutex.unlock t.m

  let await t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let v = Option.get t.v in
    Mutex.unlock t.m;
    v
end

(* An n-party one-shot rendezvous: every site domain snapshots its stats,
   then blocks here until all have — so no site resumes (and thus no value
   moves) between the first and last per-site snapshot.  That makes the
   assembled cut consistent: a Vm send after one site's snapshot cannot be
   accepted before another's, because acceptance happens in a handler and
   every handler is paused until the rendezvous completes. *)
module Barrier = struct
  type t = { m : Mutex.t; c : Condition.t; total : int; mutable arrived : int }

  let create total = { m = Mutex.create (); c = Condition.create (); total; arrived = 0 }

  let arrive_and_wait t =
    Mutex.lock t.m;
    t.arrived <- t.arrived + 1;
    if t.arrived >= t.total then Condition.broadcast t.c
    else
      while t.arrived < t.total do
        Condition.wait t.c t.m
      done;
    Mutex.unlock t.m
end

(* The dying incarnation's unwind: raised by the [Kill] control message out
   of the handler dispatch, never from inside a site handler — so every WAL
   force that happened, happened completely, and the abandoned state is
   exactly "everything since the last force is lost". *)
exception Killed

type report = {
  rep_fragments : (int * int) list; (* (item, fragment) *)
  rep_active : int;
  rep_outbox : int;
  rep_outbox_to : (int * int) list; (* (dst, Vm queued toward dst), non-zero only *)
}

type site_stats = {
  st_site : int;
  st_metrics : Metrics.t;  (* a detached copy, safe to read from any thread *)
  st_fragments : (int * int) list;  (* (item, fragment) *)
  st_sent : (int * int) list;  (* (item, cumulative Vm value shipped) *)
  st_recv : (int * int) list;  (* (item, cumulative Vm value accepted) *)
  st_delta : (int * int) list;  (* (item, cumulative committed op delta) *)
  st_outbox : int;
  st_wal : int;
  st_epoch : int;
  st_active : int;
}

(* Per-item verdict of one conservation cut: summed over every *live* site
   on the cut, fragments plus in-flight value (sent − recv) must equal the
   live installed baseline plus committed deltas.  The per-site identity
   [fragment = installed + received + delta − sent] holds at every instant
   of a site's serial execution and every term is rebuilt from the stable
   log on respawn, so restricting all five sums to the same live set keeps
   the equality exact even while some sites are dead — value owed to or by
   a dead site shows up as (possibly negative) [ci_in_flight]. *)
type cut_item = {
  ci_item : int;
  ci_expected : int;  (* live installed baseline + Σ live committed deltas *)
  ci_fragments : int;  (* Σ live fragments on the cut *)
  ci_in_flight : int;  (* Σ sent − Σ recv over the live set *)
  ci_delta : int;  (* Σ live committed deltas on the cut *)
  ci_ok : bool;  (* ci_fragments + ci_in_flight = ci_expected *)
}

type cut = {
  cut_at : float;  (* wall time (cluster clock) the cut completed *)
  cut_epoch : int;  (* common membership epoch, -1 if inconsistent *)
  cut_consistent : bool;  (* all sites reported the same epoch *)
  cut_items : cut_item list;
  cut_sites : site_stats array;
  cut_dead : int list;  (* sites excluded from the cut (hard-killed) *)
}

let cut_ok c = c.cut_consistent && List.for_all (fun ci -> ci.ci_ok) c.cut_items

type ctl =
  | Deliver of int * Proto.t
  | Submit of Txn.t * Txn.outcome Cell.t
  | Push of { dst : int; item : int; amount : int; reply : bool Cell.t }
  | Report of report option Cell.t
  | Stats of { reply : site_stats option Cell.t; barrier : Barrier.t option }
  | Load of { item : int; amount : int; duration : float; reply : int Cell.t }
  | Bgload of { deadline : float; amount : int }
  | Kill
  | Peer_up of int
  | Fail_forces of int
  | Stop

(* Fail a control message a dead site will never answer: every client-facing
   cell gets the outcome a crash gives it.  Used on the dying incarnation's
   unconsumed batch remainder and on the backlog the supervisor sweeps out
   of a poisoned mailbox. *)
let fail_ctl = function
  | Submit (_, reply) -> Cell.fill reply (Txn.Aborted Metrics.Crashed)
  | Push { reply; _ } -> Cell.fill reply false
  | Report reply -> Cell.fill reply None
  | Stats { reply; _ } ->
    (* A barriered Stats can never reach a dead site's backlog: cuts run to
       completion under the cut mutex, which kills also take. *)
    Cell.fill reply None
  | Load { reply; _ } -> Cell.fill reply 0
  | Deliver _ | Bgload _ | Kill | Peer_up _ | Fail_forces _ | Stop -> ()

type chaos_counters = {
  cc_drops : int Atomic.t;
  cc_dups : int Atomic.t;
  cc_delays : int Atomic.t;
}

type spawn_mode = Fresh | Respawn

type t = {
  n : int;
  config : Config.t;
  mailboxes : ctl Mailbox.t array;
  domains : unit Domain.t option array; (* None once killed and joined *)
  alive : bool array; (* written under cut_mutex; racy reads are benign *)
  expected : (int, int) Hashtbl.t; (* main-thread view of Σ per item *)
  item_list : int list;
  item_arr : int array;
  item_idx : (int, int) Hashtbl.t; (* item -> index in item_arr *)
  epoch : float; (* wall instant of creation: origin of the cluster clock *)
  initial : (int, int) Hashtbl.t; (* the installed totals, full-cut baseline *)
  layouts : (int * int) list array; (* per-site install layout, cut baselines *)
  shards : Shards.t option; (* site i -> shard i; shard n = control plane *)
  cut_mutex : Mutex.t; (* serialises cut takers, kills, and respawns *)
  wal_dir : string option;
  master_rng : Rng.t; (* respawn streams; guarded by cut_mutex *)
  links : Fault.links Atomic.t;
  chaos : chaos_counters;
  bg_deltas : int Atomic.t array array; (* site × item index *)
  bg_committed : int Atomic.t array; (* per site *)
  mutable bg : (float * int) option; (* (deadline, amount) of the active load *)
  replays : int array; (* cumulative records replayed by respawns, per site *)
  mutable stopped : bool;
}

(* ------------------------------------------------------- site domain body *)

(* Mirrors System.exec_once: one attempt of a request as a Txn.outcome. *)
let exec_once site (req : Txn.t) k =
  match req.Txn.kind with
  | Txn.Update ->
    Site.submit site ~ops:req.Txn.ops ~on_done:(fun r ->
        k
          (match r with
          | Site.Committed _ -> Txn.Committed { reads = [] }
          | Site.Aborted reason -> Txn.Aborted reason))
  | Txn.Read item ->
    Site.submit_read site ~item ~on_done:(fun r ->
        k
          (match r with
          | Site.Committed { read_value = Some v } -> Txn.Committed { reads = [ (item, v) ] }
          | Site.Committed { read_value = None } -> Txn.Committed { reads = [] }
          | Site.Aborted reason -> Txn.Aborted reason))
  | Txn.Snapshot items ->
    Site.submit_read_many site ~items ~on_done:(fun r ->
        k
          (match r with
          | Ok reads -> Txn.Committed { reads }
          | Error reason -> Txn.Aborted reason))

(* Mirrors System.exec: site-side retry on the site's own timers.  [fill]
   fires at most once; if the domain is killed first, the pending-reply
   registry fails the caller's cell instead. *)
let exec_in site sub (req : Txn.t) fill =
  match req.Txn.retry with
  | None -> exec_once site req fill
  | Some { Txn.retries; backoff } ->
    let rec attempt k =
      exec_once site req (fun result ->
          match result with
          | Txn.Committed _ -> fill result
          | Txn.Aborted _ when k < retries ->
            ignore
              (Substrate.schedule sub
                 ~delay:(backoff *. float_of_int (k + 1))
                 (fun () -> attempt (k + 1)))
          | Txn.Aborted _ -> fill result)
    in
    attempt 0

(* Closed-loop escrow increments until the wall deadline.  Increments commit
   synchronously, so run them in bounded batches and trampoline through a
   zero-delay timer: the mailbox drains (acks, peer Vm) between batches and
   the stack stays flat.  [fill] reports the committed count; on a kill the
   registry reports the count committed so far — which is exact, because
   each commit (a forced log append) and its count increment happen inside
   one handler and kills never land mid-handler. *)
let start_load site sub ~item ~amount ~duration ~register ~resolve reply =
  let committed = ref 0 in
  let id = register (fun () -> Cell.fill reply !committed) in
  let deadline = Substrate.now sub +. duration in
  let rec step () =
    if Substrate.now sub >= deadline then begin
      resolve id;
      Cell.fill reply !committed
    end
    else begin
      let batch = ref 0 in
      while !batch < 256 && Substrate.now sub < deadline do
        incr batch;
        Site.submit site
          ~ops:[ (item, Op.Incr amount) ]
          ~on_done:(fun r -> match r with Site.Committed _ -> incr committed | _ -> ())
      done;
      ignore (Substrate.schedule sub ~delay:0.0 step)
    end
  in
  step ()

let report_of site ~n item_list =
  let vm = Site.vm site in
  let outbox_to = ref [] in
  for d = n - 1 downto 0 do
    let k = Dvp_core.Vm.outbox_depth_to vm ~dst:d in
    if k > 0 then outbox_to := (d, k) :: !outbox_to
  done;
  {
    rep_fragments = List.map (fun item -> (item, Site.fragment site ~item)) item_list;
    rep_active = Site.active_txns site;
    rep_outbox = Dvp_core.Vm.outbox_depth vm;
    rep_outbox_to = !outbox_to;
  }

(* The per-site snapshot that stats/cut sampling assembles.  Runs inside the
   site's serial loop, so fragments / ledgers / metrics are read between
   handler callbacks — each list is internally consistent. *)
let stats_of site ~self ~item_list =
  let vm = Site.vm site in
  let per f = List.map (fun item -> (item, f ~item)) item_list in
  {
    st_site = self;
    (* Detach: merge into a fresh Metrics.t so the main thread never reads
       the site domain's live counters. *)
    st_metrics = Metrics.merge (Site.metrics site) (Metrics.create ());
    st_fragments = per (fun ~item -> Site.fragment site ~item);
    st_sent = per (fun ~item -> Site.value_sent site ~item);
    st_recv = per (fun ~item -> Site.value_received site ~item);
    st_delta = per (fun ~item -> Site.committed_delta site ~item);
    st_outbox = Dvp_core.Vm.outbox_depth vm;
    st_wal = Dvp_storage.Wal.appended (Site.wal site);
    st_epoch = Site.current_epoch site;
    st_active = Site.active_txns site;
  }

let run_site ~self ~n ~config ~rng ~wal_dir ~epoch ~mailboxes ~layout ~item_list
    ~item_arr ~shard ~links ~chaos ~bg_row ~bg_done ~mode ~(ready : int Cell.t) () =
  let mb = mailboxes.(self) in
  let timers : (unit -> unit) Heap.t = Heap.create () in
  (* Clamp the wall clock monotone per domain: gettimeofday can step
     backwards (NTP), and the trace-merge total order leans on per-shard
     timestamps never regressing. *)
  let now =
    let last = ref 0.0 in
    fun () ->
      let t = Unix.gettimeofday () -. epoch in
      if t > !last then last := t;
      !last
  in
  let sched at f =
    let h = Heap.add timers ~priority:at f in
    Substrate.timer_of_thunk (fun () -> Heap.cancel timers h)
  in
  let sub =
    (* The domain's trace shard rides on the substrate: Site/Network/Health
       pick it up via Substrate.trace without further plumbing. *)
    Substrate.make ?trace:shard ~label:"domains" ~now
      ~schedule:(fun ~delay f -> sched (now () +. Float.max 0.0 delay) f)
      ~schedule_at:(fun ~at f -> sched at f)
      ()
  in
  let emit ev =
    match shard with Some tr -> Trace.emit tr ~time:(now ()) ev | None -> ()
  in
  let net_rng = Rng.split rng in
  let bg_rng = Rng.split rng in
  let deliver dst msg = Mailbox.push mailboxes.(dst) (Deliver (self, msg)) in
  (* Every inter-domain send passes through the live link-quality knob: a
     storm turns the lossless mailbox transport into a lossy, reordering,
     duplicating network — precisely the fault model the Vm acknowledgement
     protocol exists to absorb. *)
  let send ~dst msg =
    let l = Atomic.get links in
    if l.Fault.drop > 0.0 && Rng.bernoulli net_rng l.Fault.drop then
      Atomic.incr chaos.cc_drops
    else begin
      if l.Fault.dup > 0.0 && Rng.bernoulli net_rng l.Fault.dup then begin
        Atomic.incr chaos.cc_dups;
        deliver dst msg
      end;
      if l.Fault.delay > 0.0 then begin
        Atomic.incr chaos.cc_delays;
        ignore (sched (now () +. Rng.float net_rng l.Fault.delay) (fun () -> deliver dst msg))
      end
      else deliver dst msg
    end
  in
  let site = Site.create sub ~self ~n ~send ~config ~rng () in
  (* Injected sink-failure budget ([Fail_forces]): the sink raises before
     touching the file, so the WAL retains the whole batch and re-offers it
     on the next force — a fault the storage layer heals, now observable as
     a typed force_error, a metric, and a Storage_fault trace event. *)
  let sink_budget = ref 0 in
  Wal.set_on_force_error (Site.wal site) (fun (_ : Wal.force_error) ->
      Metrics.storage_force_error (Site.metrics site);
      emit (Trace.Storage_fault { site = self; kind = "force_sink" }));
  let attach_sink oc =
    Wal.set_force_sink (Site.wal site) (fun recs ->
        if !sink_budget > 0 then begin
          decr sink_budget;
          failwith "injected force-sink fault"
        end;
        List.iter (Walfile.append oc) recs)
  in
  let replayed = ref 0 in
  let wal_oc =
    match (mode, wal_dir) with
    | Fresh, None ->
      List.iter (fun (item, frag) -> Site.install_fragment site ~item frag) layout;
      None
    | Fresh, Some dir ->
      let oc = Walfile.create (Walfile.path ~dir ~site:self) in
      attach_sink oc;
      List.iter (fun (item, frag) -> Site.install_fragment site ~item frag) layout;
      Some oc
    | Respawn, None -> invalid_arg "Cluster: cannot respawn a site without a wal_dir"
    | Respawn, Some dir ->
      (* Recovery from the on-disk mirror: read the valid frame prefix,
         repair any torn tail, seed the in-memory WAL with the replayed
         records (forced with no sink attached, so nothing is re-written to
         the file), then run the ordinary crash/recover pair.  The sink is
         re-attached only afterwards: post-recovery appends extend the same
         file.  Fragments are NOT re-installed — the install records are in
         the log and replay like everything else. *)
      let path = Walfile.path ~dir ~site:self in
      let r = Walfile.read path in
      if r.Walfile.torn then begin
        Walfile.truncate path r.Walfile.valid_bytes;
        emit (Trace.Storage_fault { site = self; kind = "torn_tail" });
        emit (Trace.Wal_repair { site = self; dropped = 1 })
      end;
      let wal = Site.wal site in
      List.iter (fun record -> Wal.append ~forced:false wal record) r.Walfile.records;
      Wal.force wal;
      replayed := List.length r.Walfile.records;
      Site.crash site;
      Site.recover site;
      let oc = Walfile.open_append path in
      attach_sink oc;
      Some oc
  in
  (* Failure detector: same Health policy the DES runs, driven by this
     domain's timers.  Every delivery is liveness evidence about its sender
     (the piggyback tap); transitions park/unpark the Vm circuit breakers so
     a killed peer stops eating retransmissions until it provably returns. *)
  let detector =
    match config.Config.health with
    | None -> None
    | Some hcfg ->
      let tr = config.Config.transport in
      let det =
        Health.create hcfg ~sub ~self ~n
          ~probe_every:tr.Config.Transport.probe_every
          ~probe_idle:tr.Config.Transport.probe_idle
          ~send_probe:(fun dst -> if Site.is_up site then send ~dst Proto.Probe)
          ~on_transition:(fun ~peer st ->
            emit (Trace.Health { site = self; peer; state = Health.state_to_string st });
            let vm = Site.vm site in
            match st with
            | Health.Up -> Dvp_core.Vm.unpark vm ~dst:peer
            | Health.Suspected | Health.Condemned -> Dvp_core.Vm.park vm ~dst:peer)
      in
      Site.set_health_view site (fun peer -> Health.state det peer);
      Health.start det;
      Some det
  in
  (* Background chaos load: self-driving mixed traffic (escrow increments,
     decrements that may need remote value, explicit cross-site pushes)
     until the wall deadline.  Commits are counted into cluster-level
     atomics inside the same handler that forces the commit record, so the
     main thread's expected totals stay exact across kills. *)
  let start_bg ~deadline ~amount =
    let items = Array.length item_arr in
    let rec step () =
      if now () < deadline && Site.is_up site then begin
        let batch = ref 0 in
        while !batch < 64 && now () < deadline do
          incr batch;
          let idx = Rng.int bg_rng items in
          let item = item_arr.(idx) in
          let r = Rng.float bg_rng 1.0 in
          if r < 0.15 && n > 1 then begin
            let dst =
              let d = Rng.int bg_rng (n - 1) in
              if d >= self then d + 1 else d
            in
            ignore (Site.push_value site ~dst ~item ~amount)
          end
          else begin
            let op = if r < 0.3 then Op.Decr amount else Op.Incr amount in
            Site.submit site
              ~ops:[ (item, op) ]
              ~on_done:(fun res ->
                match res with
                | Site.Committed _ ->
                  Atomic.incr bg_done;
                  ignore (Atomic.fetch_and_add bg_row.(idx) (Op.delta op))
                | Site.Aborted _ -> ())
          end
        done;
        ignore (Substrate.schedule sub ~delay:0.001 step)
      end
    in
    step ()
  in
  (* Pending-reply registry: client cells whose answer is still in flight
     inside this domain (submitted transactions awaiting remote value, load
     loops awaiting their deadline).  A kill fails every one of them, so the
     main thread can never block on a cell a dead domain owned. *)
  let pending : (int, unit -> unit) Hashtbl.t = Hashtbl.create 16 in
  let next_pending = ref 0 in
  let register fail =
    let id = !next_pending in
    incr next_pending;
    Hashtbl.replace pending id fail;
    id
  in
  let resolve id = Hashtbl.remove pending id in
  Cell.fill ready !replayed;
  let stop = ref false in
  let fire_due () =
    let rec go () =
      match Heap.peek timers with
      | Some (at, _) when at <= now () ->
        (match Heap.pop timers with Some (_, f) -> f () | None -> ());
        go ()
      | _ -> ()
    in
    go ()
  in
  let handle = function
    | Deliver (src, msg) ->
      (match detector with Some d -> Health.note_alive d ~peer:src | None -> ());
      Site.handle_message site ~src msg
    | Submit (txn, reply) ->
      let id = register (fun () -> Cell.fill reply (Txn.Aborted Metrics.Crashed)) in
      exec_in site sub txn (fun outcome ->
          resolve id;
          Cell.fill reply outcome)
    | Push { dst; item; amount; reply } ->
      Cell.fill reply (Site.push_value site ~dst ~item ~amount)
    | Report reply -> Cell.fill reply (Some (report_of site ~n item_list))
    | Stats { reply; barrier } ->
      Cell.fill reply (Some (stats_of site ~self ~item_list));
      (* Consistent cut: hold here until every live site has snapshotted, so
         no value can move between the first and last snapshot.  Deadlock-
         free because sends are asynchronous mailbox pushes. *)
      (match barrier with Some b -> Barrier.arrive_and_wait b | None -> ())
    | Load { item; amount; duration; reply } ->
      start_load site sub ~item ~amount ~duration ~register ~resolve reply
    | Bgload { deadline; amount } -> start_bg ~deadline ~amount
    | Kill -> raise Killed
    | Peer_up peer ->
      (match detector with
      | Some d ->
        if Health.state d peer = Health.Condemned then Health.reinstate d ~peer
        else Health.note_alive d ~peer
      | None -> ())
    | Fail_forces k -> sink_budget := !sink_budget + k
    | Stop -> stop := true
  in
  (* One-shot mailbox high-water warning, mirroring Vm's Outbox_high: warn
     when a drained batch crosses the mark, re-arm once it falls to half. *)
  let mailbox_warned = ref false in
  let check_mailbox_depth batch_len =
    if config.Config.mailbox_warn > 0 then begin
      if (not !mailbox_warned) && batch_len > config.Config.mailbox_warn then begin
        mailbox_warned := true;
        emit
          (Trace.Mailbox_high
             { site = self; depth = batch_len; limit = config.Config.mailbox_warn })
      end
      else if !mailbox_warned && batch_len <= config.Config.mailbox_warn / 2 then
        mailbox_warned := false
    end
  in
  (* Track the unconsumed remainder of the batch in flight, so a kill can
     fail the cells of messages it will never handle. *)
  let batch_rest = ref [] in
  let rec consume = function
    | [] -> ()
    | m :: rest ->
      batch_rest := rest;
      handle m;
      consume rest
  in
  let close_wal () = match wal_oc with Some oc -> close_out_noerr oc | None -> () in
  (try
     while not !stop do
       fire_due ();
       let batch = Mailbox.drain mb in
       check_mailbox_depth (List.length batch);
       consume batch;
       fire_due ();
       if not !stop then begin
         let timeout =
           match Heap.peek timers with
           | Some (at, _) -> Float.max 0.0 (at -. now ())
           | None -> -1.0
         in
         Mailbox.wait mb ~timeout
       end
     done;
     close_wal ()
   with Killed ->
     (* Hard death, in order: fail the batch remainder; crash the site
        (aborts in-flight transactions with [Crashed], firing their
        callbacks, and emits the Crash trace event); fail whatever pending
        replies remain (retry loops, load loops); release the file.  The
        Site.t, timers, and detector are simply abandoned — volatile state
        is the casualty, the stable file is the survivor. *)
     List.iter fail_ctl !batch_rest;
     Site.crash site;
     let fails = Hashtbl.fold (fun _ f acc -> f :: acc) pending [] in
     List.iter (fun f -> f ()) fails;
     close_wal ())

(* ------------------------------------------------------------ main thread *)

let create ?(seed = 42) ?(config = Config.default) ?wal_dir ?(tracing = false)
    ?(trace_capacity = 65536) ~n ~items () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one site";
  List.iter
    (fun (_, total) -> if total < 0 then invalid_arg "Cluster.create: negative total")
    items;
  let rng = Dvp_util.Rng.create seed in
  let rngs = Array.init n (fun _ -> Dvp_util.Rng.split rng) in
  let mailboxes = Array.init n (fun _ -> Mailbox.create ()) in
  let item_list = List.map fst items in
  let item_arr = Array.of_list item_list in
  let item_idx = Hashtbl.create 8 in
  Array.iteri (fun i item -> Hashtbl.replace item_idx item i) item_arr;
  let layout = Array.make n [] in
  List.iter
    (fun (item, total) ->
      List.iteri
        (fun i frag -> layout.(i) <- (item, frag) :: layout.(i))
        (Dvp_core.Value.split_even total ~parts:n))
    items;
  let layouts = Array.map List.rev layout in
  let epoch = Unix.gettimeofday () in
  (* n site shards plus one control shard (index n) for the observer /
     watchdog — single writer per ring, no cross-domain locking. *)
  let shards =
    if tracing then Some (Shards.create ~capacity:trace_capacity ~n:(n + 1) ()) else None
  in
  let shard_of i = Option.map (fun s -> Shards.shard s i) shards in
  let links = Atomic.make Fault.no_links in
  let chaos =
    { cc_drops = Atomic.make 0; cc_dups = Atomic.make 0; cc_delays = Atomic.make 0 }
  in
  let bg_deltas =
    Array.init n (fun _ -> Array.init (Array.length item_arr) (fun _ -> Atomic.make 0))
  in
  let bg_committed = Array.init n (fun _ -> Atomic.make 0) in
  let ready = Array.init n (fun _ -> Cell.create ()) in
  let domains =
    Array.init n (fun i ->
        Some
          (Domain.spawn
             (run_site ~self:i ~n ~config ~rng:rngs.(i) ~wal_dir ~epoch ~mailboxes
                ~layout:layouts.(i) ~item_list ~item_arr ~shard:(shard_of i) ~links
                ~chaos ~bg_row:bg_deltas.(i) ~bg_done:bg_committed.(i) ~mode:Fresh
                ~ready:ready.(i))))
  in
  Array.iter (fun c -> ignore (Cell.await c : int)) ready;
  let expected = Hashtbl.create 8 in
  let initial = Hashtbl.create 8 in
  List.iter
    (fun (item, total) ->
      Hashtbl.replace expected item total;
      Hashtbl.replace initial item total)
    items;
  {
    n;
    config;
    mailboxes;
    domains;
    alive = Array.make n true;
    expected;
    item_list;
    item_arr;
    item_idx;
    epoch;
    initial;
    layouts;
    shards;
    cut_mutex = Mutex.create ();
    wal_dir;
    master_rng = rng;
    links;
    chaos;
    bg_deltas;
    bg_committed;
    bg = None;
    replays = Array.make n 0;
    stopped = false;
  }

let n_sites t = t.n

let items t = t.item_list

let now t = Unix.gettimeofday () -. t.epoch

let wal_path t i =
  Option.map (fun dir -> Walfile.path ~dir ~site:i) t.wal_dir

let site_alive t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.site_alive: site out of range";
  t.alive.(i)

let live_sites t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if t.alive.(i) then acc := i :: !acc
  done;
  !acc

let dead_sites t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if not t.alive.(i) then acc := i :: !acc
  done;
  !acc

let replayed t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.replayed: site out of range";
  t.replays.(i)

let exec t (req : Txn.t) =
  let site = req.Txn.site in
  if site < 0 || site >= t.n then invalid_arg "Cluster.exec: site out of range";
  let reply = Cell.create () in
  match Mailbox.send t.mailboxes.(site) (Submit (req, reply)) with
  | Mailbox.Poisoned | Mailbox.Closed -> Txn.Aborted Metrics.Crashed
  | Mailbox.Sent ->
    let outcome = Cell.await reply in
    (* Track committed deltas so conservation knows the expected aggregate
       (the main-thread counterpart of System.wrap_delta). *)
    (match (req.Txn.kind, outcome) with
    | Txn.Update, Txn.Committed _ ->
      List.iter
        (fun (item, op) ->
          match Hashtbl.find_opt t.expected item with
          | Some total -> Hashtbl.replace t.expected item (total + Op.delta op)
          | None -> ())
        req.Txn.ops
    | _ -> ());
    outcome

let push_value t ~src ~dst ~item ~amount =
  let reply = Cell.create () in
  match Mailbox.send t.mailboxes.(src) (Push { dst; item; amount; reply }) with
  | Mailbox.Poisoned | Mailbox.Closed -> false
  | Mailbox.Sent -> Cell.await reply

(* Ask every live site; a site that dies between the liveness check and the
   answer resolves to None (its message was either dropped by the poisoned
   mailbox or swept and failed by the supervisor), so callers never block on
   a dead site. *)
let query_live t make =
  let cells = ref [] in
  for i = t.n - 1 downto 0 do
    if t.alive.(i) then begin
      let reply = Cell.create () in
      match Mailbox.send t.mailboxes.(i) (make reply) with
      | Mailbox.Sent -> cells := (i, reply) :: !cells
      | Mailbox.Poisoned | Mailbox.Closed -> ()
    end
  done;
  List.filter_map (fun (i, r) -> Option.map (fun v -> (i, v)) (Cell.await r)) !cells

let report_all t = query_live t (fun reply -> Report reply)

let stats t =
  query_live t (fun reply -> Stats { reply; barrier = None })
  |> List.map snd |> Array.of_list

let mailbox_depth t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.mailbox_depth: site out of range";
  Mailbox.length t.mailboxes.(i)

let assemble_cut ~at ~base ~item_list ~dead (sites : site_stats array) =
  let sum f = Array.fold_left (fun acc st -> acc + f st) 0 sites in
  let epoch0 = if Array.length sites = 0 then 0 else sites.(0).st_epoch in
  let consistent = Array.for_all (fun st -> st.st_epoch = epoch0) sites in
  let items =
    List.map
      (fun item ->
        let look l = Option.value ~default:0 (List.assoc_opt item l) in
        let fragments = sum (fun st -> look st.st_fragments) in
        let sent = sum (fun st -> look st.st_sent) in
        let recv = sum (fun st -> look st.st_recv) in
        let delta = sum (fun st -> look st.st_delta) in
        let expected = base item + delta in
        let in_flight = sent - recv in
        {
          ci_item = item;
          ci_expected = expected;
          ci_fragments = fragments;
          ci_in_flight = in_flight;
          ci_delta = delta;
          ci_ok = fragments + in_flight = expected;
        })
      item_list
  in
  {
    cut_at = at;
    cut_epoch = (if consistent then epoch0 else -1);
    cut_consistent = consistent;
    cut_items = items;
    cut_sites = sites;
    cut_dead = dead;
  }

let cut_of_stats ~at ~initial ~items sites =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (item, v) -> Hashtbl.replace tbl item v) initial;
  assemble_cut ~at
    ~base:(fun item -> Option.value ~default:0 (Hashtbl.find_opt tbl item))
    ~item_list:items ~dead:[] sites

let sample_cut t =
  (* Serialise concurrent cut takers, kills and respawns: the live set must
     not change between choosing the barrier's party count and the last
     arrival, and two overlapping cuts would hand the sites two different
     barriers in unpredictable orders and deadlock. *)
  Mutex.lock t.cut_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.cut_mutex)
    (fun () ->
      let live = live_sites t in
      let dead = dead_sites t in
      let barrier = Barrier.create (List.length live) in
      let replies =
        List.map
          (fun i ->
            let reply = Cell.create () in
            Mailbox.push t.mailboxes.(i) (Stats { reply; barrier = Some barrier });
            reply)
          live
      in
      let sites = Array.of_list (List.filter_map Cell.await replies) in
      (* The cut baseline is what the *live* set was installed with: install
         values are immutable after creation, so this is exact whatever the
         dead sites were holding when they died. *)
      let base item =
        List.fold_left
          (fun acc i ->
            acc + Option.value ~default:0 (List.assoc_opt item t.layouts.(i)))
          0 live
      in
      assemble_cut ~at:(now t) ~base ~item_list:t.item_list ~dead sites)

(* --------------------------------------------------------- fault surface *)

let set_links t l = Atomic.set t.links l

let links t = Atomic.get t.links

let chaos_counts t =
  (Atomic.get t.chaos.cc_drops, Atomic.get t.chaos.cc_dups, Atomic.get t.chaos.cc_delays)

let fail_forces t i ~count =
  if i < 0 || i >= t.n then invalid_arg "Cluster.fail_forces: site out of range";
  ignore (Mailbox.send t.mailboxes.(i) (Fail_forces count) : Mailbox.send_result)

let announce_up t =
  let live = live_sites t in
  List.iter
    (fun i ->
      List.iter
        (fun j -> if j <> i then Mailbox.push t.mailboxes.(i) (Peer_up j))
        live)
    live

let kill_site t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.kill_site: site out of range";
  Mutex.lock t.cut_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.cut_mutex)
    (fun () ->
      if not t.alive.(i) then false
      else begin
        (* Order matters: the Kill message must enter the queue before the
           poison gate closes it; everything behind Kill is backlog, swept
           and failed once the domain is gone. *)
        Mailbox.push t.mailboxes.(i) Kill;
        Mailbox.poison t.mailboxes.(i);
        (match t.domains.(i) with Some d -> Domain.join d | None -> ());
        t.domains.(i) <- None;
        t.alive.(i) <- false;
        List.iter fail_ctl (Mailbox.sweep t.mailboxes.(i));
        true
      end)

let respawn_site t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.respawn_site: site out of range";
  if t.wal_dir = None then invalid_arg "Cluster.respawn_site: cluster has no wal_dir";
  Mutex.lock t.cut_mutex;
  let replayed_here =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.cut_mutex)
      (fun () ->
        if t.alive.(i) then None
        else begin
          Mailbox.unpoison t.mailboxes.(i);
          let rng = Rng.split t.master_rng in
          let shard_of =
            Option.map (fun s -> Shards.shard s i) t.shards
          in
          let ready = Cell.create () in
          let d =
            Domain.spawn
              (run_site ~self:i ~n:t.n ~config:t.config ~rng ~wal_dir:t.wal_dir
                 ~epoch:t.epoch ~mailboxes:t.mailboxes ~layout:t.layouts.(i)
                 ~item_list:t.item_list ~item_arr:t.item_arr ~shard:shard_of
                 ~links:t.links ~chaos:t.chaos ~bg_row:t.bg_deltas.(i)
                 ~bg_done:t.bg_committed.(i) ~mode:Respawn ~ready)
          in
          let replayed = Cell.await ready in
          t.domains.(i) <- Some d;
          t.alive.(i) <- true;
          t.replays.(i) <- t.replays.(i) + replayed;
          Some replayed
        end)
  in
  match replayed_here with
  | None -> None
  | Some replayed ->
    (* Announce the rejoin so peers' detectors reinstate it promptly (a
       condemned verdict is sticky by design) and parked outboxes unpark —
       then resume the background load if its deadline is still ahead. *)
    List.iter
      (fun j -> if j <> i then Mailbox.push t.mailboxes.(j) (Peer_up i))
      (live_sites t);
    (match t.bg with
    | Some (deadline, amount) when now t < deadline ->
      Mailbox.push t.mailboxes.(i) (Bgload { deadline; amount })
    | _ -> ());
    Some replayed

(* ---------------------------------------------------------------- load *)

let shards t = t.shards

let ctl_trace t = Option.map (fun s -> Shards.shard s t.n) t.shards

let trace_jsonl t =
  match t.shards with
  | Some s -> Some (Shards.to_jsonl s)
  | None -> None

let run_load t ~duration ?(amount = 1) ~item () =
  let replies =
    List.map
      (fun (_, r) -> r)
      (let cells = ref [] in
       for i = t.n - 1 downto 0 do
         if t.alive.(i) then begin
           let reply = Cell.create () in
           match Mailbox.send t.mailboxes.(i) (Load { item; amount; duration; reply }) with
           | Mailbox.Sent -> cells := (i, reply) :: !cells
           | Mailbox.Poisoned | Mailbox.Closed -> ()
         end
       done;
       !cells)
  in
  let total = List.fold_left (fun acc r -> acc + Cell.await r) 0 replies in
  (match Hashtbl.find_opt t.expected item with
  | Some v -> Hashtbl.replace t.expected item (v + (total * amount))
  | None -> ());
  total

let start_bg_load t ~duration ?(amount = 1) () =
  let deadline = now t +. duration in
  t.bg <- Some (deadline, amount);
  Array.iteri
    (fun i mb ->
      if t.alive.(i) then
        ignore (Mailbox.send mb (Bgload { deadline; amount }) : Mailbox.send_result))
    t.mailboxes

let bg_committed t = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.bg_committed

let quiesce ?(timeout = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go idle_rounds =
    if idle_rounds >= 2 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      let reps = report_all t in
      let dead = dead_sites t in
      (* Vm queued toward a permanently dead site can never drain — the
         mailbox drops every retransmission — so it does not count against
         quiescence.  The value is still accounted: it shows up in the cut's
         in-flight term and in the sender's stable log. *)
      let owed r =
        List.fold_left
          (fun acc (d, k) -> if List.mem d dead then acc + k else acc)
          0 r.rep_outbox_to
      in
      let idle =
        List.for_all
          (fun (_, r) -> r.rep_active = 0 && r.rep_outbox - owed r <= 0)
          reps
      in
      if not idle then Unix.sleepf 0.002;
      go (if idle then idle_rounds + 1 else 0)
    end
  in
  go 0

let fragments t ~item =
  let frags = Array.make t.n 0 in
  List.iter
    (fun (i, r) ->
      match List.assoc_opt item r.rep_fragments with
      | Some v -> frags.(i) <- v
      | None -> ())
    (report_all t);
  frags

(* The expected aggregate for one item: the main-thread ledger (installs,
   exec deltas, run_load counts) plus the background load's atomically
   counted committed deltas. *)
let expected_total t ~item =
  match Hashtbl.find_opt t.expected item with
  | None -> None
  | Some base ->
    let bg =
      match Hashtbl.find_opt t.item_idx item with
      | None -> 0
      | Some idx ->
        Array.fold_left (fun acc row -> acc + Atomic.get row.(idx)) 0 t.bg_deltas
    in
    Some (base + bg)

let conserved t ~item =
  let total = Array.fold_left ( + ) 0 (fragments t ~item) in
  match expected_total t ~item with
  | Some expected -> total = expected
  | None -> invalid_arg "Cluster.conserved: unknown item"

let conserved_all t = List.for_all (fun item -> conserved t ~item) t.item_list

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iteri
      (fun i mb ->
        if t.alive.(i) then ignore (Mailbox.send mb Stop : Mailbox.send_result))
      t.mailboxes;
    Array.iter (function Some d -> Domain.join d | None -> ()) t.domains;
    Array.iter Mailbox.close t.mailboxes
  end
