module Substrate = Dvp_substrate.Substrate
module Heap = Dvp_util.Heap
module Site = Dvp_core.Site
module Txn = Dvp_core.Txn
module Op = Dvp_core.Op
module Config = Dvp_core.Config
module Proto = Dvp_core.Proto
module Wal = Dvp_storage.Wal

(* A one-shot synchronisation cell: the site domain fills it, the main
   thread awaits it.  Domains run freely while the main thread blocks, so a
   transaction that needs remote value still completes. *)
module Cell = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    t.v <- Some v;
    Condition.signal t.c;
    Mutex.unlock t.m

  let await t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let v = Option.get t.v in
    Mutex.unlock t.m;
    v
end

type report = {
  rep_fragments : (int * int) list; (* (item, fragment) *)
  rep_active : int;
  rep_outbox : int;
}

type ctl =
  | Deliver of int * Proto.t
  | Submit of Txn.t * Txn.outcome Cell.t
  | Push of { dst : int; item : int; amount : int; reply : bool Cell.t }
  | Report of report Cell.t
  | Load of { item : int; amount : int; duration : float; reply : int Cell.t }
  | Stop

type t = {
  n : int;
  config : Config.t;
  mailboxes : ctl Mailbox.t array;
  domains : unit Domain.t array;
  expected : (int, int) Hashtbl.t; (* main-thread view of Σ per item *)
  item_list : int list;
  mutable stopped : bool;
}

(* ------------------------------------------------------- site domain body *)

(* Mirrors System.exec_once: one attempt of a request as a Txn.outcome. *)
let exec_once site (req : Txn.t) k =
  match req.Txn.kind with
  | Txn.Update ->
    Site.submit site ~ops:req.Txn.ops ~on_done:(fun r ->
        k
          (match r with
          | Site.Committed _ -> Txn.Committed { reads = [] }
          | Site.Aborted reason -> Txn.Aborted reason))
  | Txn.Read item ->
    Site.submit_read site ~item ~on_done:(fun r ->
        k
          (match r with
          | Site.Committed { read_value = Some v } -> Txn.Committed { reads = [ (item, v) ] }
          | Site.Committed { read_value = None } -> Txn.Committed { reads = [] }
          | Site.Aborted reason -> Txn.Aborted reason))
  | Txn.Snapshot items ->
    Site.submit_read_many site ~items ~on_done:(fun r ->
        k
          (match r with
          | Ok reads -> Txn.Committed { reads }
          | Error reason -> Txn.Aborted reason))

(* Mirrors System.exec: site-side retry on the site's own timers. *)
let exec_in site sub (req : Txn.t) (reply : Txn.outcome Cell.t) =
  match req.Txn.retry with
  | None -> exec_once site req (Cell.fill reply)
  | Some { Txn.retries; backoff } ->
    let rec attempt k =
      exec_once site req (fun result ->
          match result with
          | Txn.Committed _ -> Cell.fill reply result
          | Txn.Aborted _ when k < retries ->
            ignore
              (Substrate.schedule sub
                 ~delay:(backoff *. float_of_int (k + 1))
                 (fun () -> attempt (k + 1)))
          | Txn.Aborted _ -> Cell.fill reply result)
    in
    attempt 0

(* Closed-loop escrow increments until the wall deadline.  Increments commit
   synchronously, so run them in bounded batches and trampoline through a
   zero-delay timer: the mailbox drains (acks, peer Vm) between batches and
   the stack stays flat. *)
let start_load site sub ~item ~amount ~duration (reply : int Cell.t) =
  let committed = ref 0 in
  let deadline = Substrate.now sub +. duration in
  let rec step () =
    if Substrate.now sub >= deadline then Cell.fill reply !committed
    else begin
      let batch = ref 0 in
      while !batch < 256 && Substrate.now sub < deadline do
        incr batch;
        Site.submit site
          ~ops:[ (item, Op.Incr amount) ]
          ~on_done:(fun r -> match r with Site.Committed _ -> incr committed | _ -> ())
      done;
      ignore (Substrate.schedule sub ~delay:0.0 step)
    end
  in
  step ()

let report_of site item_list =
  {
    rep_fragments = List.map (fun item -> (item, Site.fragment site ~item)) item_list;
    rep_active = Site.active_txns site;
    rep_outbox = Dvp_core.Vm.outbox_depth (Site.vm site);
  }

let run_site ~self ~n ~config ~rng ~wal_dir ~epoch ~mailboxes ~layout ~item_list
    ~(ready : unit Cell.t) () =
  let mb = mailboxes.(self) in
  let timers : (unit -> unit) Heap.t = Heap.create () in
  let now () = Unix.gettimeofday () -. epoch in
  let sched at f =
    let h = Heap.add timers ~priority:at f in
    Substrate.timer_of_thunk (fun () -> Heap.cancel timers h)
  in
  let sub =
    Substrate.make ~label:"domains" ~now
      ~schedule:(fun ~delay f -> sched (now () +. Float.max 0.0 delay) f)
      ~schedule_at:(fun ~at f -> sched at f)
      ()
  in
  let send ~dst msg = Mailbox.push mailboxes.(dst) (Deliver (self, msg)) in
  let site = Site.create sub ~self ~n ~send ~config ~rng () in
  let wal_oc =
    match wal_dir with
    | None -> None
    | Some dir ->
      let oc = open_out_bin (Filename.concat dir (Printf.sprintf "site-%d.wal" self)) in
      Wal.set_force_sink (Site.wal site) (fun recs ->
          List.iter (fun r -> Marshal.to_channel oc r []) recs;
          flush oc);
      Some oc
  in
  List.iter (fun (item, frag) -> Site.install_fragment site ~item frag) layout;
  Cell.fill ready ();
  let stop = ref false in
  let fire_due () =
    let rec go () =
      match Heap.peek timers with
      | Some (at, _) when at <= now () ->
        (match Heap.pop timers with Some (_, f) -> f () | None -> ());
        go ()
      | _ -> ()
    in
    go ()
  in
  let handle = function
    | Deliver (src, msg) -> Site.handle_message site ~src msg
    | Submit (txn, reply) -> exec_in site sub txn reply
    | Push { dst; item; amount; reply } ->
      Cell.fill reply (Site.push_value site ~dst ~item ~amount)
    | Report reply -> Cell.fill reply (report_of site item_list)
    | Load { item; amount; duration; reply } ->
      start_load site sub ~item ~amount ~duration reply
    | Stop -> stop := true
  in
  while not !stop do
    fire_due ();
    List.iter handle (Mailbox.drain mb);
    fire_due ();
    if not !stop then begin
      let timeout =
        match Heap.peek timers with
        | Some (at, _) -> Float.max 0.0 (at -. now ())
        | None -> -1.0
      in
      Mailbox.wait mb ~timeout
    end
  done;
  match wal_oc with Some oc -> close_out oc | None -> ()

(* ------------------------------------------------------------ main thread *)

let create ?(seed = 42) ?(config = Config.default) ?wal_dir ~n ~items () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one site";
  List.iter
    (fun (_, total) -> if total < 0 then invalid_arg "Cluster.create: negative total")
    items;
  let rng = Dvp_util.Rng.create seed in
  let rngs = Array.init n (fun _ -> Dvp_util.Rng.split rng) in
  let mailboxes = Array.init n (fun _ -> Mailbox.create ()) in
  let item_list = List.map fst items in
  let layout = Array.make n [] in
  List.iter
    (fun (item, total) ->
      List.iteri
        (fun i frag -> layout.(i) <- (item, frag) :: layout.(i))
        (Dvp_core.Value.split_even total ~parts:n))
    items;
  let epoch = Unix.gettimeofday () in
  let ready = Array.init n (fun _ -> Cell.create ()) in
  let domains =
    Array.init n (fun i ->
        Domain.spawn
          (run_site ~self:i ~n ~config ~rng:rngs.(i) ~wal_dir ~epoch ~mailboxes
             ~layout:(List.rev layout.(i)) ~item_list ~ready:ready.(i)))
  in
  Array.iter Cell.await ready;
  let expected = Hashtbl.create 8 in
  List.iter (fun (item, total) -> Hashtbl.replace expected item total) items;
  { n; config; mailboxes; domains; expected; item_list; stopped = false }

let n_sites t = t.n

let items t = t.item_list

let exec t (req : Txn.t) =
  let site = req.Txn.site in
  if site < 0 || site >= t.n then invalid_arg "Cluster.exec: site out of range";
  let reply = Cell.create () in
  Mailbox.push t.mailboxes.(site) (Submit (req, reply));
  let outcome = Cell.await reply in
  (* Track committed deltas so conservation knows the expected aggregate
     (the main-thread counterpart of System.wrap_delta). *)
  (match (req.Txn.kind, outcome) with
  | Txn.Update, Txn.Committed _ ->
    List.iter
      (fun (item, op) ->
        match Hashtbl.find_opt t.expected item with
        | Some total -> Hashtbl.replace t.expected item (total + Op.delta op)
        | None -> ())
      req.Txn.ops
  | _ -> ());
  outcome

let push_value t ~src ~dst ~item ~amount =
  let reply = Cell.create () in
  Mailbox.push t.mailboxes.(src) (Push { dst; item; amount; reply });
  Cell.await reply

let report_all t =
  Array.to_list t.mailboxes
  |> List.map (fun mb ->
         let reply = Cell.create () in
         Mailbox.push mb (Report reply);
         reply)
  |> List.map Cell.await

let run_load t ~duration ?(amount = 1) ~item () =
  let replies =
    Array.to_list t.mailboxes
    |> List.map (fun mb ->
           let reply = Cell.create () in
           Mailbox.push mb (Load { item; amount; duration; reply });
           reply)
  in
  let total = List.fold_left (fun acc r -> acc + Cell.await r) 0 replies in
  (match Hashtbl.find_opt t.expected item with
  | Some v -> Hashtbl.replace t.expected item (v + (total * amount))
  | None -> ());
  total

let quiesce ?(timeout = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go idle_rounds =
    if idle_rounds >= 2 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      let reps = report_all t in
      let idle = List.for_all (fun r -> r.rep_active = 0 && r.rep_outbox = 0) reps in
      if not idle then Unix.sleepf 0.002;
      go (if idle then idle_rounds + 1 else 0)
    end
  in
  go 0

let fragments t ~item =
  let reps = report_all t in
  Array.of_list (List.map (fun r -> List.assoc item r.rep_fragments) reps)

let conserved t ~item =
  let total = Array.fold_left ( + ) 0 (fragments t ~item) in
  match Hashtbl.find_opt t.expected item with
  | Some expected -> total = expected
  | None -> invalid_arg "Cluster.conserved: unknown item"

let conserved_all t = List.for_all (fun item -> conserved t ~item) t.item_list

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter (fun mb -> Mailbox.push mb Stop) t.mailboxes;
    Array.iter Domain.join t.domains;
    Array.iter Mailbox.close t.mailboxes
  end
