module Substrate = Dvp_substrate.Substrate
module Heap = Dvp_util.Heap
module Site = Dvp_core.Site
module Txn = Dvp_core.Txn
module Op = Dvp_core.Op
module Config = Dvp_core.Config
module Proto = Dvp_core.Proto
module Metrics = Dvp_core.Metrics
module Wal = Dvp_storage.Wal
module Trace = Dvp_trace.Trace
module Shards = Dvp_trace.Shards

(* A one-shot synchronisation cell: the site domain fills it, the main
   thread awaits it.  Domains run freely while the main thread blocks, so a
   transaction that needs remote value still completes. *)
module Cell = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    t.v <- Some v;
    Condition.signal t.c;
    Mutex.unlock t.m

  let await t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let v = Option.get t.v in
    Mutex.unlock t.m;
    v
end

(* An n-party one-shot rendezvous: every site domain snapshots its stats,
   then blocks here until all have — so no site resumes (and thus no value
   moves) between the first and last per-site snapshot.  That makes the
   assembled cut consistent: a Vm send after one site's snapshot cannot be
   accepted before another's, because acceptance happens in a handler and
   every handler is paused until the rendezvous completes. *)
module Barrier = struct
  type t = { m : Mutex.t; c : Condition.t; total : int; mutable arrived : int }

  let create total = { m = Mutex.create (); c = Condition.create (); total; arrived = 0 }

  let arrive_and_wait t =
    Mutex.lock t.m;
    t.arrived <- t.arrived + 1;
    if t.arrived >= t.total then Condition.broadcast t.c
    else
      while t.arrived < t.total do
        Condition.wait t.c t.m
      done;
    Mutex.unlock t.m
end

type report = {
  rep_fragments : (int * int) list; (* (item, fragment) *)
  rep_active : int;
  rep_outbox : int;
}

type site_stats = {
  st_site : int;
  st_metrics : Metrics.t;  (* a detached copy, safe to read from any thread *)
  st_fragments : (int * int) list;  (* (item, fragment) *)
  st_sent : (int * int) list;  (* (item, cumulative Vm value shipped) *)
  st_recv : (int * int) list;  (* (item, cumulative Vm value accepted) *)
  st_delta : (int * int) list;  (* (item, cumulative committed op delta) *)
  st_outbox : int;
  st_wal : int;
  st_epoch : int;
  st_active : int;
}

(* Per-item verdict of one conservation cut: summed over every site on the
   cut, fragments plus in-flight value (sent − recv) must equal the
   installed baseline plus committed deltas.  [ci_in_flight] is exactly the
   Vm value sitting in mailboxes/outboxes at the cut. *)
type cut_item = {
  ci_item : int;
  ci_expected : int;  (* initial + Σ committed deltas on the cut *)
  ci_fragments : int;  (* Σ per-site fragments on the cut *)
  ci_in_flight : int;  (* Σ sent − Σ recv: value launched but not accepted *)
  ci_delta : int;  (* Σ committed deltas on the cut *)
  ci_ok : bool;  (* ci_fragments + ci_in_flight = ci_expected *)
}

type cut = {
  cut_at : float;  (* wall time (cluster clock) the cut completed *)
  cut_epoch : int;  (* common membership epoch, -1 if inconsistent *)
  cut_consistent : bool;  (* all sites reported the same epoch *)
  cut_items : cut_item list;
  cut_sites : site_stats array;
}

let cut_ok c = c.cut_consistent && List.for_all (fun ci -> ci.ci_ok) c.cut_items

type ctl =
  | Deliver of int * Proto.t
  | Submit of Txn.t * Txn.outcome Cell.t
  | Push of { dst : int; item : int; amount : int; reply : bool Cell.t }
  | Report of report Cell.t
  | Stats of { reply : site_stats Cell.t; barrier : Barrier.t option }
  | Load of { item : int; amount : int; duration : float; reply : int Cell.t }
  | Stop

type t = {
  n : int;
  config : Config.t;
  mailboxes : ctl Mailbox.t array;
  domains : unit Domain.t array;
  expected : (int, int) Hashtbl.t; (* main-thread view of Σ per item *)
  item_list : int list;
  epoch : float; (* wall instant of creation: origin of the cluster clock *)
  initial : (int, int) Hashtbl.t; (* the installed totals, cut baseline *)
  shards : Shards.t option; (* site i -> shard i; shard n = control plane *)
  cut_mutex : Mutex.t; (* serialises concurrent cut takers (barrier safety) *)
  mutable stopped : bool;
}

(* ------------------------------------------------------- site domain body *)

(* Mirrors System.exec_once: one attempt of a request as a Txn.outcome. *)
let exec_once site (req : Txn.t) k =
  match req.Txn.kind with
  | Txn.Update ->
    Site.submit site ~ops:req.Txn.ops ~on_done:(fun r ->
        k
          (match r with
          | Site.Committed _ -> Txn.Committed { reads = [] }
          | Site.Aborted reason -> Txn.Aborted reason))
  | Txn.Read item ->
    Site.submit_read site ~item ~on_done:(fun r ->
        k
          (match r with
          | Site.Committed { read_value = Some v } -> Txn.Committed { reads = [ (item, v) ] }
          | Site.Committed { read_value = None } -> Txn.Committed { reads = [] }
          | Site.Aborted reason -> Txn.Aborted reason))
  | Txn.Snapshot items ->
    Site.submit_read_many site ~items ~on_done:(fun r ->
        k
          (match r with
          | Ok reads -> Txn.Committed { reads }
          | Error reason -> Txn.Aborted reason))

(* Mirrors System.exec: site-side retry on the site's own timers. *)
let exec_in site sub (req : Txn.t) (reply : Txn.outcome Cell.t) =
  match req.Txn.retry with
  | None -> exec_once site req (Cell.fill reply)
  | Some { Txn.retries; backoff } ->
    let rec attempt k =
      exec_once site req (fun result ->
          match result with
          | Txn.Committed _ -> Cell.fill reply result
          | Txn.Aborted _ when k < retries ->
            ignore
              (Substrate.schedule sub
                 ~delay:(backoff *. float_of_int (k + 1))
                 (fun () -> attempt (k + 1)))
          | Txn.Aborted _ -> Cell.fill reply result)
    in
    attempt 0

(* Closed-loop escrow increments until the wall deadline.  Increments commit
   synchronously, so run them in bounded batches and trampoline through a
   zero-delay timer: the mailbox drains (acks, peer Vm) between batches and
   the stack stays flat. *)
let start_load site sub ~item ~amount ~duration (reply : int Cell.t) =
  let committed = ref 0 in
  let deadline = Substrate.now sub +. duration in
  let rec step () =
    if Substrate.now sub >= deadline then Cell.fill reply !committed
    else begin
      let batch = ref 0 in
      while !batch < 256 && Substrate.now sub < deadline do
        incr batch;
        Site.submit site
          ~ops:[ (item, Op.Incr amount) ]
          ~on_done:(fun r -> match r with Site.Committed _ -> incr committed | _ -> ())
      done;
      ignore (Substrate.schedule sub ~delay:0.0 step)
    end
  in
  step ()

let report_of site item_list =
  {
    rep_fragments = List.map (fun item -> (item, Site.fragment site ~item)) item_list;
    rep_active = Site.active_txns site;
    rep_outbox = Dvp_core.Vm.outbox_depth (Site.vm site);
  }

(* The per-site snapshot that stats/cut sampling assembles.  Runs inside the
   site's serial loop, so fragments / ledgers / metrics are read between
   handler callbacks — each list is internally consistent. *)
let stats_of site ~self ~item_list =
  let vm = Site.vm site in
  let per f = List.map (fun item -> (item, f ~item)) item_list in
  {
    st_site = self;
    (* Detach: merge into a fresh Metrics.t so the main thread never reads
       the site domain's live counters. *)
    st_metrics = Metrics.merge (Site.metrics site) (Metrics.create ());
    st_fragments = per (fun ~item -> Site.fragment site ~item);
    st_sent = per (fun ~item -> Site.value_sent site ~item);
    st_recv = per (fun ~item -> Site.value_received site ~item);
    st_delta = per (fun ~item -> Site.committed_delta site ~item);
    st_outbox = Dvp_core.Vm.outbox_depth vm;
    st_wal = Dvp_storage.Wal.appended (Site.wal site);
    st_epoch = Site.current_epoch site;
    st_active = Site.active_txns site;
  }

let run_site ~self ~n ~config ~rng ~wal_dir ~epoch ~mailboxes ~layout ~item_list ~shard
    ~(ready : unit Cell.t) () =
  let mb = mailboxes.(self) in
  let timers : (unit -> unit) Heap.t = Heap.create () in
  (* Clamp the wall clock monotone per domain: gettimeofday can step
     backwards (NTP), and the trace-merge total order leans on per-shard
     timestamps never regressing. *)
  let now =
    let last = ref 0.0 in
    fun () ->
      let t = Unix.gettimeofday () -. epoch in
      if t > !last then last := t;
      !last
  in
  let sched at f =
    let h = Heap.add timers ~priority:at f in
    Substrate.timer_of_thunk (fun () -> Heap.cancel timers h)
  in
  let sub =
    (* The domain's trace shard rides on the substrate: Site/Network/Health
       pick it up via Substrate.trace without further plumbing. *)
    Substrate.make ?trace:shard ~label:"domains" ~now
      ~schedule:(fun ~delay f -> sched (now () +. Float.max 0.0 delay) f)
      ~schedule_at:(fun ~at f -> sched at f)
      ()
  in
  let send ~dst msg = Mailbox.push mailboxes.(dst) (Deliver (self, msg)) in
  let site = Site.create sub ~self ~n ~send ~config ~rng () in
  let wal_oc =
    match wal_dir with
    | None -> None
    | Some dir ->
      let oc = open_out_bin (Filename.concat dir (Printf.sprintf "site-%d.wal" self)) in
      Wal.set_force_sink (Site.wal site) (fun recs ->
          List.iter (fun r -> Marshal.to_channel oc r []) recs;
          flush oc);
      Some oc
  in
  List.iter (fun (item, frag) -> Site.install_fragment site ~item frag) layout;
  Cell.fill ready ();
  let stop = ref false in
  let fire_due () =
    let rec go () =
      match Heap.peek timers with
      | Some (at, _) when at <= now () ->
        (match Heap.pop timers with Some (_, f) -> f () | None -> ());
        go ()
      | _ -> ()
    in
    go ()
  in
  let handle = function
    | Deliver (src, msg) -> Site.handle_message site ~src msg
    | Submit (txn, reply) -> exec_in site sub txn reply
    | Push { dst; item; amount; reply } ->
      Cell.fill reply (Site.push_value site ~dst ~item ~amount)
    | Report reply -> Cell.fill reply (report_of site item_list)
    | Stats { reply; barrier } ->
      Cell.fill reply (stats_of site ~self ~item_list);
      (* Consistent cut: hold here until every site has snapshotted, so no
         value can move between the first and last snapshot.  Deadlock-free
         because sends are asynchronous mailbox pushes. *)
      (match barrier with Some b -> Barrier.arrive_and_wait b | None -> ())
    | Load { item; amount; duration; reply } ->
      start_load site sub ~item ~amount ~duration reply
    | Stop -> stop := true
  in
  (* One-shot mailbox high-water warning, mirroring Vm's Outbox_high: warn
     when a drained batch crosses the mark, re-arm once it falls to half. *)
  let mailbox_warned = ref false in
  let check_mailbox_depth batch_len =
    if config.Config.mailbox_warn > 0 then begin
      if (not !mailbox_warned) && batch_len > config.Config.mailbox_warn then begin
        mailbox_warned := true;
        match shard with
        | Some tr ->
          Trace.emit tr ~time:(now ())
            (Trace.Mailbox_high
               { site = self; depth = batch_len; limit = config.Config.mailbox_warn })
        | None -> ()
      end
      else if !mailbox_warned && batch_len <= config.Config.mailbox_warn / 2 then
        mailbox_warned := false
    end
  in
  while not !stop do
    fire_due ();
    let batch = Mailbox.drain mb in
    check_mailbox_depth (List.length batch);
    List.iter handle batch;
    fire_due ();
    if not !stop then begin
      let timeout =
        match Heap.peek timers with
        | Some (at, _) -> Float.max 0.0 (at -. now ())
        | None -> -1.0
      in
      Mailbox.wait mb ~timeout
    end
  done;
  match wal_oc with Some oc -> close_out oc | None -> ()

(* ------------------------------------------------------------ main thread *)

let create ?(seed = 42) ?(config = Config.default) ?wal_dir ?(tracing = false)
    ?(trace_capacity = 65536) ~n ~items () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one site";
  List.iter
    (fun (_, total) -> if total < 0 then invalid_arg "Cluster.create: negative total")
    items;
  let rng = Dvp_util.Rng.create seed in
  let rngs = Array.init n (fun _ -> Dvp_util.Rng.split rng) in
  let mailboxes = Array.init n (fun _ -> Mailbox.create ()) in
  let item_list = List.map fst items in
  let layout = Array.make n [] in
  List.iter
    (fun (item, total) ->
      List.iteri
        (fun i frag -> layout.(i) <- (item, frag) :: layout.(i))
        (Dvp_core.Value.split_even total ~parts:n))
    items;
  let epoch = Unix.gettimeofday () in
  (* n site shards plus one control shard (index n) for the observer /
     watchdog — single writer per ring, no cross-domain locking. *)
  let shards =
    if tracing then Some (Shards.create ~capacity:trace_capacity ~n:(n + 1) ()) else None
  in
  let shard_of i = Option.map (fun s -> Shards.shard s i) shards in
  let ready = Array.init n (fun _ -> Cell.create ()) in
  let domains =
    Array.init n (fun i ->
        Domain.spawn
          (run_site ~self:i ~n ~config ~rng:rngs.(i) ~wal_dir ~epoch ~mailboxes
             ~layout:(List.rev layout.(i)) ~item_list ~shard:(shard_of i)
             ~ready:ready.(i)))
  in
  Array.iter Cell.await ready;
  let expected = Hashtbl.create 8 in
  let initial = Hashtbl.create 8 in
  List.iter
    (fun (item, total) ->
      Hashtbl.replace expected item total;
      Hashtbl.replace initial item total)
    items;
  {
    n;
    config;
    mailboxes;
    domains;
    expected;
    item_list;
    epoch;
    initial;
    shards;
    cut_mutex = Mutex.create ();
    stopped = false;
  }

let n_sites t = t.n

let items t = t.item_list

let now t = Unix.gettimeofday () -. t.epoch

let exec t (req : Txn.t) =
  let site = req.Txn.site in
  if site < 0 || site >= t.n then invalid_arg "Cluster.exec: site out of range";
  let reply = Cell.create () in
  Mailbox.push t.mailboxes.(site) (Submit (req, reply));
  let outcome = Cell.await reply in
  (* Track committed deltas so conservation knows the expected aggregate
     (the main-thread counterpart of System.wrap_delta). *)
  (match (req.Txn.kind, outcome) with
  | Txn.Update, Txn.Committed _ ->
    List.iter
      (fun (item, op) ->
        match Hashtbl.find_opt t.expected item with
        | Some total -> Hashtbl.replace t.expected item (total + Op.delta op)
        | None -> ())
      req.Txn.ops
  | _ -> ());
  outcome

let push_value t ~src ~dst ~item ~amount =
  let reply = Cell.create () in
  Mailbox.push t.mailboxes.(src) (Push { dst; item; amount; reply });
  Cell.await reply

let report_all t =
  Array.to_list t.mailboxes
  |> List.map (fun mb ->
         let reply = Cell.create () in
         Mailbox.push mb (Report reply);
         reply)
  |> List.map Cell.await

let stats t =
  let replies =
    Array.map
      (fun mb ->
        let reply = Cell.create () in
        Mailbox.push mb (Stats { reply; barrier = None });
        reply)
      t.mailboxes
  in
  Array.map Cell.await replies

let mailbox_depth t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.mailbox_depth: site out of range";
  Mailbox.length t.mailboxes.(i)

let assemble_cut ~at ~initial ~item_list (sites : site_stats array) =
  let sum f = Array.fold_left (fun acc st -> acc + f st) 0 sites in
  let epoch0 = if Array.length sites = 0 then 0 else sites.(0).st_epoch in
  let consistent = Array.for_all (fun st -> st.st_epoch = epoch0) sites in
  let items =
    List.map
      (fun item ->
        let look l = Option.value ~default:0 (List.assoc_opt item l) in
        let fragments = sum (fun st -> look st.st_fragments) in
        let sent = sum (fun st -> look st.st_sent) in
        let recv = sum (fun st -> look st.st_recv) in
        let delta = sum (fun st -> look st.st_delta) in
        let base = Option.value ~default:0 (Hashtbl.find_opt initial item) in
        let expected = base + delta in
        let in_flight = sent - recv in
        {
          ci_item = item;
          ci_expected = expected;
          ci_fragments = fragments;
          ci_in_flight = in_flight;
          ci_delta = delta;
          ci_ok = fragments + in_flight = expected;
        })
      item_list
  in
  {
    cut_at = at;
    cut_epoch = (if consistent then epoch0 else -1);
    cut_consistent = consistent;
    cut_items = items;
    cut_sites = sites;
  }

let cut_of_stats ~at ~initial ~items sites =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (item, v) -> Hashtbl.replace tbl item v) initial;
  assemble_cut ~at ~initial:tbl ~item_list:items sites

let sample_cut t =
  (* Serialise concurrent cut takers: two overlapping cuts would hand the
     sites two different barriers in unpredictable orders and deadlock. *)
  Mutex.lock t.cut_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.cut_mutex)
    (fun () ->
      let barrier = Barrier.create t.n in
      let replies =
        Array.map
          (fun mb ->
            let reply = Cell.create () in
            Mailbox.push mb (Stats { reply; barrier = Some barrier });
            reply)
          t.mailboxes
      in
      let sites = Array.map Cell.await replies in
      assemble_cut ~at:(now t) ~initial:t.initial ~item_list:t.item_list sites)

let shards t = t.shards

let ctl_trace t = Option.map (fun s -> Shards.shard s t.n) t.shards

let trace_jsonl t =
  match t.shards with
  | Some s -> Some (Shards.to_jsonl s)
  | None -> None

let run_load t ~duration ?(amount = 1) ~item () =
  let replies =
    Array.to_list t.mailboxes
    |> List.map (fun mb ->
           let reply = Cell.create () in
           Mailbox.push mb (Load { item; amount; duration; reply });
           reply)
  in
  let total = List.fold_left (fun acc r -> acc + Cell.await r) 0 replies in
  (match Hashtbl.find_opt t.expected item with
  | Some v -> Hashtbl.replace t.expected item (v + (total * amount))
  | None -> ());
  total

let quiesce ?(timeout = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go idle_rounds =
    if idle_rounds >= 2 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      let reps = report_all t in
      let idle = List.for_all (fun r -> r.rep_active = 0 && r.rep_outbox = 0) reps in
      if not idle then Unix.sleepf 0.002;
      go (if idle then idle_rounds + 1 else 0)
    end
  in
  go 0

let fragments t ~item =
  let reps = report_all t in
  Array.of_list (List.map (fun r -> List.assoc item r.rep_fragments) reps)

let conserved t ~item =
  let total = Array.fold_left ( + ) 0 (fragments t ~item) in
  match Hashtbl.find_opt t.expected item with
  | Some expected -> total = expected
  | None -> invalid_arg "Cluster.conserved: unknown item"

let conserved_all t = List.for_all (fun item -> conserved t ~item) t.item_list

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter (fun mb -> Mailbox.push mb Stop) t.mailboxes;
    Array.iter Domain.join t.domains;
    Array.iter Mailbox.close t.mailboxes
  end
