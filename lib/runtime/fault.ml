module Rng = Dvp_util.Rng
module Json = Dvp_util.Json

type links = { drop : float; delay : float; dup : float }

let no_links = { drop = 0.0; delay = 0.0; dup = 0.0 }

type wal_fault = Torn_tail of int

type action =
  | Kill of { site : int; downtime : float; wal_fault : wal_fault option }
  | Kill_forever of { site : int; wal_fault : wal_fault option }
  | Sink_fail of { site : int; count : int }
  | Link_storm of links
  | Link_heal

type event = { at : float; action : action }

type t = event list

type spec = {
  horizon : float;
  kills : float;
  kill_forever : bool;
  sink_fails : float;
  link_storms : float;
  min_downtime : float;
  max_downtime : float;
  torn_tail_prob : float;
}

let default_spec =
  {
    horizon = 2.0;
    kills = 2.0;
    kill_forever = false;
    sink_fails = 1.0;
    link_storms = 1.0;
    min_downtime = 0.05;
    max_downtime = 0.3;
    torn_tail_prob = 0.25;
  }

let killer_spec =
  {
    default_spec with
    kills = 3.0;
    kill_forever = true;
    sink_fails = 1.5;
    link_storms = 1.5;
    torn_tail_prob = 0.4;
  }

(* Distinct from the DES generator's constant, so a wall plan and a DES plan
   built from the same user seed draw independent streams. *)
let seed_mix = 0x9e3779b9

(* Fault times stay inside the middle of the horizon: early enough that
   recovery and re-acknowledgement happen under traffic, late enough that
   traffic exists to disturb. *)
let draw_at rng spec = 0.1 *. spec.horizon +. Rng.float rng (0.7 *. spec.horizon)

let plan ~seed ~n spec =
  if n <= 0 then invalid_arg "Fault.plan: need at least one site";
  let rng = Rng.create (seed lxor seed_mix) in
  (* One independent stream per fault class: toggling a class off must not
     shift the draws of the others (same discipline as Network's RNG split). *)
  let kill_rng = Rng.split rng in
  let sink_rng = Rng.split rng in
  let storm_rng = Rng.split rng in
  let events = ref [] in
  let killed = Array.make n false in
  let tail k rng =
    if Rng.bernoulli rng k then Some (Torn_tail (1 + Rng.int rng 24)) else None
  in
  (* Transient kills: Poisson count, floored at one — a crash-restart plan
     with no crash tests nothing. *)
  let n_kills = max 1 (Rng.poisson kill_rng spec.kills) in
  for _ = 1 to n_kills do
    let site = Rng.int kill_rng n in
    killed.(site) <- true;
    let downtime =
      spec.min_downtime +. Rng.float kill_rng (spec.max_downtime -. spec.min_downtime)
    in
    events :=
      {
        at = draw_at kill_rng spec;
        action = Kill { site; downtime; wal_fault = tail spec.torn_tail_prob kill_rng };
      }
      :: !events
  done;
  if spec.kill_forever then begin
    let site = Rng.int kill_rng n in
    killed.(site) <- true;
    (* Late in the window: the permanent outage should overlap the tail of
       the run, exercising parked outboxes and dead-aware cuts. *)
    let at = 0.5 *. spec.horizon +. Rng.float kill_rng (0.3 *. spec.horizon) in
    events :=
      { at; action = Kill_forever { site; wal_fault = tail spec.torn_tail_prob kill_rng } }
      :: !events
  end;
  (* Sink failures only on never-killed sites: a retained (not-yet-re-offered)
     batch dies with the domain, so mixing the two on one site would turn an
     injected fault into genuine record loss and break the offline oracle. *)
  let safe = ref [] in
  for i = n - 1 downto 0 do
    if not killed.(i) then safe := i :: !safe
  done;
  (match !safe with
  | [] -> ()
  | safe ->
    let n_sink = Rng.poisson sink_rng spec.sink_fails in
    for _ = 1 to n_sink do
      let site = Rng.pick sink_rng safe in
      let count = 1 + Rng.int sink_rng 3 in
      events := { at = draw_at sink_rng spec; action = Sink_fail { site; count } } :: !events
    done);
  (* Link storms: windows sorted and clipped so they never overlap — the
     heal of one storm must not cancel the next. *)
  let n_storms = Rng.poisson storm_rng spec.link_storms in
  let windows =
    List.init n_storms (fun _ ->
        let at = draw_at storm_rng spec in
        let len = 0.05 +. Rng.float storm_rng (0.2 *. spec.horizon) in
        let l =
          {
            drop = Rng.float storm_rng 0.3;
            delay = Rng.float storm_rng 0.02;
            dup = Rng.float storm_rng 0.2;
          }
        in
        (at, len, l))
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let rec clip t0 = function
    | [] -> ()
    | (at, len, l) :: rest ->
      let at = Float.max at t0 in
      let stop = Float.min (at +. len) (0.9 *. spec.horizon) in
      if stop > at then begin
        events := { at; action = Link_storm l } :: !events;
        events := { at = stop; action = Link_heal } :: !events;
        clip (stop +. 0.01) rest
      end
      else clip t0 rest
  in
  clip 0.0 windows;
  List.sort (fun a b -> compare a.at b.at) !events

let kills_of plan =
  List.filter_map
    (fun e ->
      match e.action with
      | Kill { site; _ } | Kill_forever { site; _ } -> Some site
      | _ -> None)
    plan
  |> List.sort_uniq compare

let forever_of plan =
  List.filter_map
    (fun e -> match e.action with Kill_forever { site; _ } -> Some site | _ -> None)
    plan
  |> List.sort_uniq compare

let action_to_json = function
  | Kill { site; downtime; wal_fault } ->
    Json.Obj
      ([ ("kind", Json.String "kill"); ("site", Json.Int site);
         ("downtime", Json.Float downtime) ]
      @ match wal_fault with
        | Some (Torn_tail j) -> [ ("torn_tail", Json.Int j) ]
        | None -> [])
  | Kill_forever { site; wal_fault } ->
    Json.Obj
      ([ ("kind", Json.String "kill_forever"); ("site", Json.Int site) ]
      @ match wal_fault with
        | Some (Torn_tail j) -> [ ("torn_tail", Json.Int j) ]
        | None -> [])
  | Sink_fail { site; count } ->
    Json.Obj
      [ ("kind", Json.String "sink_fail"); ("site", Json.Int site);
        ("count", Json.Int count) ]
  | Link_storm { drop; delay; dup } ->
    Json.Obj
      [ ("kind", Json.String "link_storm"); ("drop", Json.Float drop);
        ("delay", Json.Float delay); ("dup", Json.Float dup) ]
  | Link_heal -> Json.Obj [ ("kind", Json.String "link_heal") ]

let to_json plan =
  Json.List
    (List.map
       (fun e ->
         match action_to_json e.action with
         | Json.Obj fields -> Json.Obj (("at", Json.Float e.at) :: fields)
         | j -> j)
       plan)

let pp_action ppf = function
  | Kill { site; downtime; wal_fault } ->
    Format.fprintf ppf "kill site %d (down %.3fs%s)" site downtime
      (match wal_fault with Some (Torn_tail j) -> Printf.sprintf ", torn tail %dB" j | None -> "")
  | Kill_forever { site; wal_fault } ->
    Format.fprintf ppf "kill site %d forever%s" site
      (match wal_fault with Some (Torn_tail j) -> Printf.sprintf " (torn tail %dB)" j | None -> "")
  | Sink_fail { site; count } -> Format.fprintf ppf "fail %d forces at site %d" count site
  | Link_storm { drop; delay; dup } ->
    Format.fprintf ppf "link storm (drop %.2f, delay %.3fs, dup %.2f)" drop delay dup
  | Link_heal -> Format.fprintf ppf "link heal"

let pp ppf plan =
  List.iter (fun e -> Format.fprintf ppf "@[%8.3fs  %a@]@." e.at pp_action e.action) plan
