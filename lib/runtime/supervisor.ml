module Json = Dvp_util.Json

type policy = {
  backoff_base : float;
  backoff_mult : float;
  backoff_max : float;
  max_restarts : int;
  restart_window : float;
}

let default_policy =
  {
    backoff_base = 0.05;
    backoff_mult = 2.0;
    backoff_max = 2.0;
    max_restarts = 8;
    restart_window = 10.0;
  }

type site_state = {
  mutable restart_times : float list; (* newest first, cluster clock *)
  mutable backoff : float;
  mutable tripped : bool;
  mutable restarts : int;
}

type t = { cluster : Cluster.t; policy : policy; sites : site_state array }

let create ?(policy = default_policy) cluster =
  if Cluster.wal_path cluster 0 = None then
    invalid_arg "Supervisor.create: cluster has no wal_dir (respawn needs the file)";
  {
    cluster;
    policy;
    sites =
      Array.init (Cluster.n_sites cluster) (fun _ ->
          { restart_times = []; backoff = policy.backoff_base; tripped = false; restarts = 0 });
  }

let cluster t = t.cluster

let kill t i = Cluster.kill_site t.cluster i

let breaker_tripped t i = t.sites.(i).tripped

let reset_breaker t i =
  let s = t.sites.(i) in
  s.tripped <- false;
  s.restart_times <- [];
  s.backoff <- t.policy.backoff_base

let restarts t i = t.sites.(i).restarts

(* One restart's bookkeeping: slide the window, count, trip the breaker if
   the site is flapping faster than the policy tolerates. *)
let note_restart t i =
  let s = t.sites.(i) in
  let now = Cluster.now t.cluster in
  s.restart_times <-
    now :: List.filter (fun at -> now -. at <= t.policy.restart_window) s.restart_times;
  s.restarts <- s.restarts + 1;
  s.backoff <- Float.min t.policy.backoff_max (s.backoff *. t.policy.backoff_mult);
  if List.length s.restart_times >= t.policy.max_restarts then s.tripped <- true

let revive t i =
  if t.sites.(i).tripped then None
  else
    match Cluster.respawn_site t.cluster i with
    | None -> None
    | Some replayed ->
      note_restart t i;
      Some replayed

let heal t =
  Cluster.set_links t.cluster Fault.no_links;
  Cluster.announce_up t.cluster

(* ------------------------------------------------------- plan execution *)

type plan_report = {
  pr_kills : int;
  pr_respawns : int;
  pr_replayed : (int * int) list;
  pr_forever : int list;
  pr_breaker : int list;
  pr_sink_fails : int;
  pr_storms : int;
  pr_torn : int;
}

let apply_wal_fault t i = function
  | None -> false
  | Some (Fault.Torn_tail junk) -> (
    match Cluster.wal_path t.cluster i with
    | Some path ->
      Walfile.tear path ~junk;
      true
    | None -> false)

let run_plan t plan =
  let kills = ref 0 and respawns = ref 0 and sink_fails = ref 0 in
  let storms = ref 0 and torn = ref 0 in
  let replayed : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let forever = ref [] in
  (* Respawns pending from transient kills: (due time, site), soonest kept
     at the head.  Plan events and respawns interleave on one clock. *)
  let pending = ref [] in
  let push_pending at i =
    pending := List.sort compare ((at, i) :: !pending)
  in
  let do_kill i =
    if Cluster.kill_site t.cluster i then begin
      incr kills;
      true
    end
    else false
  in
  let do_respawn i =
    if t.sites.(i).tripped then ()
    else
      match revive t i with
      | None -> ()
      | Some r ->
        incr respawns;
        Hashtbl.replace replayed i (r + Option.value ~default:0 (Hashtbl.find_opt replayed i))
  in
  let exec_event (e : Fault.event) =
    match e.Fault.action with
    | Fault.Kill { site; downtime; wal_fault } ->
      if do_kill site then begin
        if apply_wal_fault t site wal_fault then incr torn;
        (* The fault's downtime is a floor; a flapping site's exponential
           backoff can push the respawn later. *)
        let delay = Float.max downtime t.sites.(site).backoff in
        push_pending (Cluster.now t.cluster +. delay) site
      end
    | Fault.Kill_forever { site; wal_fault } ->
      if do_kill site then if apply_wal_fault t site wal_fault then incr torn;
      (* Whether the kill landed now or the site was already down from a
         transient kill, it stays down: cancel any pending respawn. *)
      pending := List.filter (fun (_, i) -> i <> site) !pending;
      if not (Cluster.site_alive t.cluster site) then
        forever := site :: List.filter (( <> ) site) !forever
    | Fault.Sink_fail { site; count } ->
      incr sink_fails;
      Cluster.fail_forces t.cluster site ~count
    | Fault.Link_storm l ->
      incr storms;
      Cluster.set_links t.cluster l
    | Fault.Link_heal -> Cluster.set_links t.cluster Fault.no_links
  in
  (* Plan times are relative to plan start, not cluster birth. *)
  let t0 = Cluster.now t.cluster in
  let events = ref (List.sort (fun a b -> compare a.Fault.at b.Fault.at) plan) in
  let rec loop () =
    let next_event = match !events with [] -> None | e :: _ -> Some (t0 +. e.Fault.at) in
    let next_respawn = match !pending with [] -> None | (at, _) :: _ -> Some at in
    match (next_event, next_respawn) with
    | None, None -> ()
    | _ ->
      let due =
        match (next_event, next_respawn) with
        | Some a, Some b -> Float.min a b
        | Some a, None | None, Some a -> a
        | None, None -> assert false
      in
      let now = Cluster.now t.cluster in
      if due > now then Unix.sleepf (Float.min 0.05 (due -. now))
      else begin
        (match (next_event, next_respawn) with
        | Some a, b when (match b with None -> true | Some b -> a <= b) ->
          let e = List.hd !events in
          events := List.tl !events;
          exec_event e
        | _ ->
          let _, i = List.hd !pending in
          pending := List.tl !pending;
          do_respawn i)
      end;
      loop ()
  in
  loop ();
  {
    pr_kills = !kills;
    pr_respawns = !respawns;
    pr_replayed = List.sort compare (Hashtbl.fold (fun i r acc -> (i, r) :: acc) replayed []);
    pr_forever = List.sort compare !forever;
    pr_breaker =
      Array.to_list (Array.mapi (fun i s -> (i, s.tripped)) t.sites)
      |> List.filter_map (fun (i, tripped) -> if tripped then Some i else None);
    pr_sink_fails = !sink_fails;
    pr_storms = !storms;
    pr_torn = !torn;
  }

let plan_report_to_json r =
  Json.Obj
    [
      ("kills", Json.Int r.pr_kills);
      ("respawns", Json.Int r.pr_respawns);
      ( "replayed",
        Json.List
          (List.map
             (fun (site, n) ->
               Json.Obj [ ("site", Json.Int site); ("records", Json.Int n) ])
             r.pr_replayed) );
      ("forever_dead", Json.List (List.map (fun i -> Json.Int i) r.pr_forever));
      ("breaker_tripped", Json.List (List.map (fun i -> Json.Int i) r.pr_breaker));
      ("sink_fails", Json.Int r.pr_sink_fails);
      ("link_storms", Json.Int r.pr_storms);
      ("torn_tails", Json.Int r.pr_torn);
    ]
