module Telemetry = Dvp_obs.Telemetry
module Flight = Dvp_obs.Flight
module Metrics = Dvp_core.Metrics
module Trace = Dvp_trace.Trace
module Json = Dvp_util.Json

type alarm = { al_at : float; al_cut : Cluster.cut; al_dump : string option }

type t = {
  cluster : Cluster.t;
  telemetry : Telemetry.t;
  every : float;
  watchdog : bool;
  flight : Flight.t;
  stats_oc : out_channel option;
  on_sample : (Cluster.site_stats array -> Cluster.cut option -> unit) option;
  (* [latest] is refreshed by the observer domain and read by the telemetry
     instruments (same domain) and by [latest]/[stop] callers — an immutable
     array swap, so readers always see a whole snapshot. *)
  latest : Cluster.site_stats array Atomic.t;
  alarms : alarm list Atomic.t; (* newest first *)
  stopping : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

let sum_stats f stats = Array.fold_left (fun acc st -> acc + f st) 0 stats

let sum_assoc l = List.fold_left (fun acc (_, v) -> acc + v) 0 l

let committed stats = sum_stats (fun st -> Metrics.committed st.Cluster.st_metrics) stats

let aborted stats = sum_stats (fun st -> Metrics.aborted st.Cluster.st_metrics) stats

(* Worst per-site commit-latency p99 across the cluster (ms); NaN until any
   site has commits. *)
let p99_ms stats =
  Array.fold_left
    (fun acc st ->
      let p = Metrics.latency_p99 st.Cluster.st_metrics *. 1000.0 in
      if Float.is_nan acc then p else if Float.is_nan p then acc else Float.max acc p)
    nan stats

let in_flight_value stats =
  sum_stats (fun st -> sum_assoc st.Cluster.st_sent - sum_assoc st.Cluster.st_recv) stats

let register_instruments t =
  let tel = t.telemetry in
  let read f = fun () -> float_of_int (f (Atomic.get t.latest)) in
  let n = Cluster.n_sites t.cluster in
  for i = 0 to n - 1 do
    (* Find by identity, not position: the stats array covers live sites
       only, so index i can hold another site's snapshot while some site is
       dead.  A dead site's instruments read 0 until it respawns. *)
    let site_metric f =
      read (fun stats ->
          match Array.find_opt (fun st -> st.Cluster.st_site = i) stats with
          | Some st -> f st.Cluster.st_metrics
          | None -> 0)
    in
    Telemetry.counter tel (Printf.sprintf "site%d.commits" i) (site_metric Metrics.committed);
    Telemetry.counter tel (Printf.sprintf "site%d.aborts" i) (site_metric Metrics.aborted)
  done;
  Telemetry.gauge tel "mailbox.depth" (fun () ->
      let total = ref 0 in
      for i = 0 to n - 1 do
        total := !total + Cluster.mailbox_depth t.cluster i
      done;
      float_of_int !total);
  Telemetry.gauge tel "vm.outbox_depth" (read (sum_stats (fun st -> st.Cluster.st_outbox)));
  Telemetry.gauge tel "vm.in_flight_value" (read in_flight_value);
  Telemetry.gauge tel "wal.length" (read (sum_stats (fun st -> st.Cluster.st_wal)));
  Telemetry.gauge tel "membership.epoch"
    (read (sum_stats (fun st -> st.Cluster.st_epoch)));
  Telemetry.counter tel "vm.stale_epochs"
    (read (sum_stats (fun st -> Metrics.vm_stale_epochs st.Cluster.st_metrics)));
  Telemetry.counter tel "watchdog.alarms" (fun () ->
      float_of_int (List.length (Atomic.get t.alarms)))

let stats_line t stats =
  let num f = if Float.is_finite f then Json.Float f else Json.Null in
  Json.Obj
    [
      ("at", Json.Float (Cluster.now t.cluster));
      ("committed", Json.Int (committed stats));
      ("aborted", Json.Int (aborted stats));
      ("p99_ms", num (p99_ms stats));
      ( "mailbox_depth",
        Json.Int
          (let total = ref 0 in
           for i = 0 to Cluster.n_sites t.cluster - 1 do
             total := !total + Cluster.mailbox_depth t.cluster i
           done;
           !total) );
      ("outbox_depth", Json.Int (sum_stats (fun st -> st.Cluster.st_outbox) stats));
      ("in_flight_value", Json.Int (in_flight_value stats));
      ("wal_length", Json.Int (sum_stats (fun st -> st.Cluster.st_wal) stats));
      ( "epoch",
        Json.Int
          (Array.fold_left (fun acc st -> max acc st.Cluster.st_epoch) 0 stats) );
      ("alarms", Json.Int (List.length (Atomic.get t.alarms)));
    ]

let cut_verdict (cut : Cluster.cut) =
  Json.Obj
    [
      ("kind", Json.String "conservation_watchdog");
      ("at", Json.Float cut.Cluster.cut_at);
      ("epoch", Json.Int cut.Cluster.cut_epoch);
      ("epoch_consistent", Json.Bool cut.Cluster.cut_consistent);
      ( "items",
        Json.List
          (List.map
             (fun (ci : Cluster.cut_item) ->
               Json.Obj
                 [
                   ("item", Json.Int ci.Cluster.ci_item);
                   ("expected", Json.Int ci.Cluster.ci_expected);
                   ("fragments", Json.Int ci.Cluster.ci_fragments);
                   ("in_flight", Json.Int ci.Cluster.ci_in_flight);
                   ("delta", Json.Int ci.Cluster.ci_delta);
                   ("ok", Json.Bool ci.Cluster.ci_ok);
                 ])
             cut.Cluster.cut_items) );
    ]

let run_watchdog t =
  let cut = Cluster.sample_cut t.cluster in
  if not (Cluster.cut_ok cut) then begin
    (* Narrate the violation into the control shard so it lands, totally
       ordered, in the merged trace next to the site events around it. *)
    (match Cluster.ctl_trace t.cluster with
    | Some tr ->
      List.iter
        (fun (ci : Cluster.cut_item) ->
          if not ci.Cluster.ci_ok then
            Trace.emit tr ~time:(Cluster.now t.cluster)
              (Trace.Note
                 {
                   category = "watchdog";
                   message =
                     Printf.sprintf
                       "conservation violated: item %d expected %d, fragments %d + in-flight %d = %d"
                       ci.Cluster.ci_item ci.Cluster.ci_expected ci.Cluster.ci_fragments
                       ci.Cluster.ci_in_flight
                       (ci.Cluster.ci_fragments + ci.Cluster.ci_in_flight);
                 }))
        cut.Cluster.cut_items
    | None -> ());
    (* Only the first alarm writes a crashdump — later cuts of the same
       broken run would just repeat the same window. *)
    let first = Atomic.get t.alarms = [] in
    let dump =
      if first then
        Some (Flight.dump t.flight ~label:"watchdog-conservation" ~verdict:(cut_verdict cut))
      else None
    in
    Atomic.set t.alarms
      ({ al_at = cut.Cluster.cut_at; al_cut = cut; al_dump = dump } :: Atomic.get t.alarms)
  end;
  cut

let tick t ~watch =
  let stats = Cluster.stats t.cluster in
  Atomic.set t.latest stats;
  Telemetry.sample_now t.telemetry;
  (match t.stats_oc with
  | Some oc ->
    output_string oc (Json.to_string (stats_line t stats));
    output_char oc '\n';
    flush oc
  | None -> ());
  let cut = if watch && t.watchdog then Some (run_watchdog t) else None in
  match t.on_sample with Some f -> f stats cut | None -> ()

let rec loop t =
  if not (Atomic.get t.stopping) then begin
    Unix.sleepf t.every;
    if not (Atomic.get t.stopping) then begin
      tick t ~watch:true;
      loop t
    end
  end

let start ?(every = 0.25) ?stats_out ?(watchdog = false) ?flight_dir ?on_sample cluster =
  if every <= 0.0 then invalid_arg "Observer.start: every must be positive";
  let telemetry = Telemetry.create () in
  let flight =
    let source () = Option.value ~default:"" (Cluster.trace_jsonl cluster) in
    match flight_dir with
    | Some dir -> Flight.create_source ~dir source
    | None -> Flight.create_source source
  in
  let stats_oc = Option.map open_out stats_out in
  let t =
    {
      cluster;
      telemetry;
      every;
      watchdog;
      flight;
      stats_oc;
      on_sample;
      latest = Atomic.make [||];
      alarms = Atomic.make [];
      stopping = Atomic.make false;
      domain = None;
    }
  in
  register_instruments t;
  Flight.set_telemetry flight (fun () -> Telemetry.snapshot telemetry);
  (* Prime the cache before the first telemetry sample so counter baselines
     are real values, not the empty-array zeros. *)
  Atomic.set t.latest (Cluster.stats cluster);
  Telemetry.attach_clock telemetry ~clock:(fun () -> Cluster.now cluster) ~period:every;
  t.domain <- Some (Domain.spawn (fun () -> loop t));
  t

let telemetry t = t.telemetry

let flight t = t.flight

let latest t = Atomic.get t.latest

let alarms t = List.rev (Atomic.get t.alarms)

let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    (* One closing sample so the final partial window (and any last-moment
       conservation drift) is captured. *)
    tick t ~watch:true;
    Telemetry.stop t.telemetry;
    match t.stats_oc with Some oc -> close_out oc | None -> ()
  end
