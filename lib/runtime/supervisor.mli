(** Per-site crash-restart supervision for a running {!Cluster}.

    The supervisor owns the kill/respawn lifecycle: it executes {!Fault.t}
    plans against the wall clock ({!run_plan}), applies exponential restart
    backoff per site, and trips a restart-storm circuit breaker when a site
    restarts too often inside a sliding window — a site that cannot stay up
    stays down until an operator {!reset_breaker}s it, rather than burning
    the machine in a crash loop.

    Manual {!kill} / {!revive} expose the same machinery to the serve REPL
    and tests without a plan. *)

type policy = {
  backoff_base : float;  (** first respawn delay floor, seconds *)
  backoff_mult : float;  (** delay multiplier per successive restart *)
  backoff_max : float;  (** delay ceiling *)
  max_restarts : int;  (** breaker trips at this many restarts in a window *)
  restart_window : float;  (** the sliding window, seconds *)
}

val default_policy : policy
(** base 0.05 s, ×2 up to 2 s, breaker at 8 restarts in 10 s. *)

type t

val create : ?policy:policy -> Cluster.t -> t
(** The cluster must have a [wal_dir] — respawns replay the on-disk WAL.
    @raise Invalid_argument otherwise. *)

val cluster : t -> Cluster.t

(** {2 Manual supervision} *)

val kill : t -> int -> bool
(** Hard-kill one site, no automatic respawn ({!Cluster.kill_site} plus
    restart bookkeeping).  [false] if already dead. *)

val revive : t -> int -> int option
(** Respawn a dead site now, ignoring backoff but honouring the breaker
    bookkeeping.  Returns the replayed record count; [None] if alive. *)

val heal : t -> unit
(** Quiet the links ({!Fault.no_links}) and broadcast peer-up so detectors
    drop stale suspicion — the end-of-chaos convergence step. *)

val breaker_tripped : t -> int -> bool

val reset_breaker : t -> int -> unit
(** Re-arm a tripped breaker (clears the restart history).  The site is not
    respawned — call {!revive}. *)

val restarts : t -> int -> int
(** Total respawns of site [i] performed by this supervisor. *)

(** {2 Plan execution} *)

(** What a {!run_plan} did — the evidence the chaos harness audits. *)
type plan_report = {
  pr_kills : int;  (** kill events executed (transient + forever) *)
  pr_respawns : int;  (** respawns performed *)
  pr_replayed : (int * int) list;  (** (site, records replayed), per respawn sum *)
  pr_forever : int list;  (** sites left dead by [Kill_forever] *)
  pr_breaker : int list;  (** sites whose breaker tripped during the plan *)
  pr_sink_fails : int;  (** force-failure budgets injected *)
  pr_storms : int;  (** link storms applied *)
  pr_torn : int;  (** WAL tails torn before respawn *)
}

val run_plan : t -> Fault.t -> plan_report
(** Execute a fault plan against the wall clock, blocking the calling thread
    until every event has fired and every pending respawn has completed (or
    its breaker tripped).  Kills are immediate hard kills; the respawn of a
    transient kill happens at [kill time + max(downtime, backoff)]; a
    [wal_fault] damages the victim's file between the kill and the respawn,
    so the respawn exercises the torn-tail repair path for real. *)

val plan_report_to_json : plan_report -> Dvp_util.Json.t
