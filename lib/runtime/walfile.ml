let magic = "DVPW"

let path ~dir ~site = Filename.concat dir (Printf.sprintf "site-%d.wal" site)

let create path = open_out_bin path

let open_append path =
  open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path

let checksum payload = Hashtbl.hash payload land 0xFFFFFFFF

let put_u32 oc v =
  output_byte oc (v land 0xFF);
  output_byte oc ((v lsr 8) land 0xFF);
  output_byte oc ((v lsr 16) land 0xFF);
  output_byte oc ((v lsr 24) land 0xFF)

let append oc (record : Dvp_core.Log_event.t) =
  let payload = Marshal.to_string record [] in
  output_string oc magic;
  put_u32 oc (String.length payload);
  put_u32 oc (checksum payload);
  output_string oc payload;
  flush oc

type read_result = {
  records : Dvp_core.Log_event.t list;
  valid_bytes : int;
  total_bytes : int;
  torn : bool;
}

(* Read exactly [len] bytes or report how short we fell. *)
let really_read ic len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then Some (Bytes.unsafe_to_string buf)
    else
      match input ic buf off (len - off) with
      | 0 -> None
      | k -> go (off + k)
      | exception End_of_file -> None
  in
  go 0

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let read path =
  match open_in_bin path with
  | exception Sys_error _ -> { records = []; valid_bytes = 0; total_bytes = 0; torn = false }
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let total = in_channel_length ic in
        let records = ref [] in
        let valid = ref 0 in
        let torn = ref false in
        let rec scan () =
          if !valid < total then
            match really_read ic 12 with
            | None -> torn := true
            | Some header ->
              if String.sub header 0 4 <> magic then torn := true
              else begin
                let len = get_u32 header 4 and sum = get_u32 header 8 in
                (* A plausible length bound guards [Bytes.create] against a
                   frame whose length field is itself garbage. *)
                if len < 0 || len > total - !valid - 12 then torn := true
                else
                  match really_read ic len with
                  | None -> torn := true
                  | Some payload ->
                    if checksum payload <> sum then torn := true
                    else begin
                      match (Marshal.from_string payload 0 : Dvp_core.Log_event.t) with
                      | record ->
                        records := record :: !records;
                        valid := !valid + 12 + len;
                        scan ()
                      | exception _ -> torn := true
                    end
              end
        in
        scan ();
        {
          records = List.rev !records;
          valid_bytes = !valid;
          total_bytes = total;
          torn = !torn || !valid < total;
        })

let truncate path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

let tear path ~junk =
  let oc = open_append path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      (* Claim more payload than follows: the reader's length bound (or, for
         a short claim, the checksum) rejects the frame. *)
      put_u32 oc (junk + 64);
      put_u32 oc 0;
      output_string oc (String.make (max 0 junk) '\xAA');
      flush oc)
