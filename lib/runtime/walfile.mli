(** Framed on-disk WAL mirror: the file format behind [Cluster]'s [wal_dir].

    Each forced {!Dvp_core.Log_event.t} record is one self-delimiting frame:

    {v magic "DVPW" (4) | payload length (4, LE) | checksum (4, LE) | payload v}

    where the payload is the marshalled record and the checksum is
    [Hashtbl.hash] of the payload bytes.  Framing is what makes hard kills
    survivable: a reader never feeds garbage to [Marshal] — it stops at the
    first frame whose magic, length, or checksum does not check out, and
    reports everything before it as the valid prefix.  A kill (or an injected
    {!tear}) can only ever cost the unforced suffix, exactly the loss budget
    the protocol's log-before-send discipline already tolerates.

    The in-memory {!Dvp_storage.Wal} stays authoritative while a site is up;
    this file is its crash mirror, replayed on respawn. *)

val path : dir:string -> site:int -> string
(** [dir]/site-[site].wal — the naming convention [Cluster] uses. *)

val create : string -> out_channel
(** Open for writing, truncating any previous contents (fresh site). *)

val open_append : string -> out_channel
(** Open for appending (respawned site, after {!truncate}). *)

val append : out_channel -> Dvp_core.Log_event.t -> unit
(** Write one frame and flush — called from the WAL force sink, so every
    frame on disk corresponds to a forced record. *)

type read_result = {
  records : Dvp_core.Log_event.t list;  (** valid prefix, oldest first *)
  valid_bytes : int;  (** byte length of the valid prefix *)
  total_bytes : int;  (** file size; [> valid_bytes] iff torn *)
  torn : bool;  (** a bad frame (torn write / garbage) stopped the scan *)
}

val read : string -> read_result
(** Scan the whole file.  Never raises on malformed content — a bad frame
    just ends the valid prefix.  A missing file reads as empty. *)

val truncate : string -> int -> unit
(** Cut the file to the given byte length — how a respawn repairs a torn
    tail before reopening the file for append. *)

val tear : string -> junk:int -> unit
(** Fault injection: append a frame header claiming a payload that is not
    there, followed by [junk] garbage bytes — the on-disk image of a write
    torn mid-frame by a crash. *)
