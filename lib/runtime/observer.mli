(** The wall-clock observability plane over a running {!Cluster}.

    One dedicated observer domain wakes every [every] seconds and, per tick:

    - refreshes a cached {!Cluster.stats} snapshot (the [latest] cache every
      telemetry instrument reads from, so instruments never block on site
      domains mid-sample);
    - takes a {!Dvp_obs.Telemetry} sample — per-site commit/abort counters,
      cluster-wide mailbox/outbox depth, in-flight Vm value, WAL length,
      membership epoch, stale-epoch rejections, watchdog alarm count — via
      the manual-clock probe ({!Dvp_obs.Telemetry.attach_clock});
    - appends one JSON object to [stats_out] when given (the [--stats-out]
      live feed: committed/aborted totals, worst per-site p99 commit
      latency, depths, epoch, alarms);
    - with [watchdog], takes a {!Cluster.sample_cut} conservation cut; a
      violated cut emits a ["watchdog"] {!Dvp_trace.Trace.Note} per broken
      item into the cluster's control shard, writes one crashdump via
      {!Dvp_obs.Flight} (merged multi-shard trace + telemetry snapshot +
      the cut verdict as JSON — first alarm only), and records an {!alarm}.

    The observer never pauses the workload except for the watchdog's
    momentary freeze-barrier rendezvous (see {!Cluster.sample_cut}). *)

type t

type alarm = {
  al_at : float;  (** cluster-clock time of the violated cut *)
  al_cut : Cluster.cut;  (** the full cut, for postmortems *)
  al_dump : string option;  (** crashdump directory (first alarm only) *)
}

val start :
  ?every:float ->
  ?stats_out:string ->
  ?watchdog:bool ->
  ?flight_dir:string ->
  ?on_sample:(Cluster.site_stats array -> Cluster.cut option -> unit) ->
  Cluster.t ->
  t
(** Spawn the observer domain.  [every] defaults to 0.25 s; [watchdog]
    defaults to off.  [on_sample] runs on the observer domain after each
    tick with the fresh stats and, when the watchdog ran, its cut — this is
    how [dvp-cli top] paints rows.  [flight_dir] overrides the crashdump
    directory ({!Dvp_obs.Flight.default_dir}). *)

val telemetry : t -> Dvp_obs.Telemetry.t
(** Render or export after {!stop} — series grow until then. *)

val flight : t -> Dvp_obs.Flight.t

val latest : t -> Cluster.site_stats array
(** The most recent stats snapshot (empty before the first tick completes —
    never blocks). *)

val alarms : t -> alarm list
(** Watchdog violations so far, oldest first.  Empty means every cut
    conserved exactly. *)

val stop : t -> unit
(** Stop and join the observer domain, take one closing sample (including a
    final watchdog cut when armed), stop telemetry, close [stats_out].
    Idempotent-ish: safe to call once; call before {!Cluster.stop}. *)
