(** The multicore execution substrate: one OCaml 5 domain per site.

    Where {!Dvp_core.System} composes sites over the deterministic simulation
    engine, a cluster composes the {e same} {!Dvp_core.Site} code over real
    parallelism: each site runs in its own domain with a serial event loop
    (so the substrate's serial-execution invariant holds), wall-clock timers,
    mailbox transport between domains (lossless, FIFO per pair — real
    channels still go through the full Vm acknowledgement protocol), and
    optionally a file per site backing every WAL force.

    The main thread is the client: {!exec} ships a transaction to its home
    site's mailbox and blocks for the outcome; {!run_load} puts every site in
    a self-driving closed loop (the escrow-increment workload of bench
    E20-wall) with zero main-thread involvement in the hot path.

    Determinism note: cross-site interleavings are real races here.  The
    cross-substrate equivalence tests therefore use commutative workloads
    (increments and bounded explicit redistributions) whose final fragment
    vector is interleaving-independent. *)

type t

val create :
  ?seed:int ->
  ?config:Dvp_core.Config.t ->
  ?wal_dir:string ->
  ?tracing:bool ->
  ?trace_capacity:int ->
  n:int ->
  items:(Dvp_core.Ids.item * int) list ->
  unit ->
  t
(** Spawn [n] site domains, install each item's total split evenly across
    the sites, and wait until every site is live.  With [wal_dir], site [i]
    appends every forced WAL record (marshalled) to [wal_dir]/site-[i].wal
    and flushes on each force.

    With [tracing] (default false), the cluster carries a
    {!Dvp_trace.Shards.t} of [n + 1] bounded rings: shard [i] is written
    only by site [i]'s domain (installed as its substrate trace sink, so
    core/net/health emit into it unchanged and without cross-domain
    locking), and shard [n] is the control plane for the observer/watchdog.
    [trace_capacity] (default 65536) is the per-shard ring size; size it to
    the run — roughly four events per committed transaction. *)

val n_sites : t -> int

val items : t -> Dvp_core.Ids.item list

val now : t -> float
(** Seconds since the cluster came up — the same clock origin the site
    domains timestamp their trace shards with, so observer-side emissions
    into the control shard order sensibly against site events. *)

val exec : t -> Dvp_core.Txn.t -> Dvp_core.Txn.outcome
(** Run one transaction at its home site and wait for the outcome.  Retry
    policies ({!Dvp_core.Txn.with_retry}) are honoured site-side on the
    site's own timers.  Main thread only. *)

val push_value :
  t -> src:Dvp_core.Ids.site -> dst:Dvp_core.Ids.site -> item:Dvp_core.Ids.item -> amount:int -> bool
(** Explicit redistribution from [src], as {!Dvp_core.Site.push_value}.
    Returns once the debit (not the remote credit) has happened. *)

val run_load :
  t -> duration:float -> ?amount:int -> item:Dvp_core.Ids.item -> unit -> int
(** The wall-clock benchmark mode: every site runs a closed loop of
    single-op [Incr amount] transactions against [item] for [duration]
    seconds of wall time, entirely within its own domain, then reports its
    commit count.  Returns the total committed across sites. *)

val quiesce : ?timeout:float -> t -> bool
(** Wait (polling site reports) until no site has an active transaction and
    every Vm outbox has drained, twice in a row.  [false] if [timeout]
    (default 10 s wall) elapses first. *)

val fragments : t -> item:Dvp_core.Ids.item -> int array

val conserved : t -> item:Dvp_core.Ids.item -> bool
(** At quiesce: Σ fragments = initial total + committed deltas.  Call
    {!quiesce} first — while transactions or Vm are in flight the check can
    legitimately fail. *)

val conserved_all : t -> bool

(** {1 Live observability}

    Wall-clock telemetry and the conservation watchdog sample a running
    cluster without pausing the workload (stats) or with a momentary
    freeze-barrier rendezvous (cuts). *)

(** One site's self-reported snapshot, taken inside its serial event loop
    (so every field is consistent with every other at a point between
    handler callbacks). *)
type site_stats = {
  st_site : int;
  st_metrics : Dvp_core.Metrics.t;
      (** a detached copy — safe to read from any thread *)
  st_fragments : (Dvp_core.Ids.item * int) list;
  st_sent : (Dvp_core.Ids.item * int) list;
      (** cumulative Vm value shipped, per item (never rolled back) *)
  st_recv : (Dvp_core.Ids.item * int) list;
      (** cumulative Vm value accepted, per item *)
  st_delta : (Dvp_core.Ids.item * int) list;
      (** cumulative committed op delta, per item *)
  st_outbox : int;  (** Vm outstanding + parked fragments *)
  st_wal : int;  (** WAL records appended *)
  st_epoch : int;  (** membership epoch the site believes in *)
  st_active : int;  (** in-flight transactions *)
}

val stats : t -> site_stats array
(** Snapshot every site, without any freeze: each site answers from its own
    loop, so the array is {e per-site} consistent but not a consistent cut —
    use for telemetry gauges, not conservation checks.  Any thread. *)

val mailbox_depth : t -> int -> int
(** Messages queued for site [i]'s domain right now (the live mailbox-depth
    gauge).  Any thread. *)

(** Per-item verdict of a conservation cut. *)
type cut_item = {
  ci_item : Dvp_core.Ids.item;
  ci_expected : int;  (** installed baseline + Σ committed deltas on the cut *)
  ci_fragments : int;  (** Σ per-site fragments on the cut *)
  ci_in_flight : int;
      (** Σ sent − Σ recv: Vm value launched but not yet accepted — the
          value in mailboxes and outboxes at the cut *)
  ci_delta : int;  (** Σ committed deltas on the cut *)
  ci_ok : bool;  (** [ci_fragments + ci_in_flight = ci_expected] *)
}

type cut = {
  cut_at : float;  (** {!now}-clock time the cut completed *)
  cut_epoch : int;  (** the common membership epoch; [-1] if inconsistent *)
  cut_consistent : bool;  (** all sites reported the same epoch *)
  cut_items : cut_item list;
  cut_sites : site_stats array;  (** the raw per-site snapshots *)
}

val cut_ok : cut -> bool
(** Epoch-consistent and every item conserves exactly. *)

val cut_of_stats :
  at:float ->
  initial:(Dvp_core.Ids.item * int) list ->
  items:Dvp_core.Ids.item list ->
  site_stats array ->
  cut
(** The pure verdict fold {!sample_cut} applies to its snapshots — exposed
    so tests and offline tooling can re-run the conservation check over
    recorded [site_stats]. *)

val sample_cut : t -> cut
(** Take an epoch-consistent conservation cut.  Every site snapshots its
    stats and then blocks on a rendezvous barrier until {e all} sites have
    snapshotted, so no Vm send can cross the cut backwards: the equality
    [fragments + in_flight = expected] is exact per cut, no tolerance
    needed.  The freeze lasts one rendezvous (microseconds at small [n]);
    sends are asynchronous mailbox pushes, so the rendezvous cannot
    deadlock.  Concurrent callers are serialised internally.  Any thread. *)

val shards : t -> Dvp_trace.Shards.t option
(** The trace shards when [create ~tracing:true], site [i] on shard [i]. *)

val ctl_trace : t -> Dvp_trace.Trace.t option
(** The control-plane shard (index [n]) — the observer/watchdog's ring.
    Single writer: only one observer should emit into it. *)

val trace_jsonl : t -> string option
(** Merge all shards into one totally-ordered JSONL dump (same stream shape
    the DES {!Dvp_sim.Trace.to_jsonl} produces, plus [shard]/[seq] fields),
    ready for [dvp-cli analyze].  Call after the workload has quiesced —
    the merge reads rings the site domains write. *)

val stop : t -> unit
(** Stop every site domain, join them, close WAL files and mailboxes.
    Idempotent.  The cluster is unusable afterwards. *)
