(** The multicore execution substrate: one OCaml 5 domain per site.

    Where {!Dvp_core.System} composes sites over the deterministic simulation
    engine, a cluster composes the {e same} {!Dvp_core.Site} code over real
    parallelism: each site runs in its own domain with a serial event loop
    (so the substrate's serial-execution invariant holds), wall-clock timers,
    mailbox transport between domains (lossless and FIFO per pair unless a
    {!set_links} storm is on — real channels still go through the full Vm
    acknowledgement protocol), and optionally a file per site backing every
    WAL force ({!Walfile} frames).

    The main thread is the client: {!exec} ships a transaction to its home
    site's mailbox and blocks for the outcome; {!run_load} puts every site in
    a self-driving closed loop (the escrow-increment workload of bench
    E20-wall) with zero main-thread involvement in the hot path.

    {b Crash-restart.} {!kill_site} hard-kills a site's domain mid-traffic:
    the domain unwinds abandoning all volatile state (live transactions abort
    with [Crashed], its mailbox is poisoned so peers' messages drop — network
    loss semantics), and only the on-disk WAL survives.  {!respawn_site}
    brings the site back: the file's valid frame prefix is replayed into a
    fresh in-memory WAL, torn tails are truncated, {!Dvp_core.Site.recover}
    rebuilds the database, ledgers, and Vm protocol state, and the site
    rejoins under the same identity.  Killing and respawning serialise with
    conservation cuts, so every cut sees a stable live set.

    Determinism note: cross-site interleavings are real races here.  The
    cross-substrate equivalence tests therefore use commutative workloads
    (increments and bounded explicit redistributions) whose final fragment
    vector is interleaving-independent. *)

type t

val create :
  ?seed:int ->
  ?config:Dvp_core.Config.t ->
  ?wal_dir:string ->
  ?tracing:bool ->
  ?trace_capacity:int ->
  n:int ->
  items:(Dvp_core.Ids.item * int) list ->
  unit ->
  t
(** Spawn [n] site domains, install each item's total split evenly across
    the sites, and wait until every site is live.  With [wal_dir], site [i]
    appends every forced WAL record as a checksummed {!Walfile} frame to
    [wal_dir]/site-[i].wal and flushes on each force — the file a
    {!respawn_site} recovers from.

    With [tracing] (default false), the cluster carries a
    {!Dvp_trace.Shards.t} of [n + 1] bounded rings: shard [i] is written
    only by site [i]'s domain (installed as its substrate trace sink, so
    core/net/health emit into it unchanged and without cross-domain
    locking), and shard [n] is the control plane for the observer/watchdog.
    A respawned incarnation writes to its predecessor's shard — the dead
    domain was joined first, so the single-writer rule holds.
    [trace_capacity] (default 65536) is the per-shard ring size; size it to
    the run — roughly four events per committed transaction.

    With [config.health] set, every site runs a {!Dvp_health.Health}
    detector on its own timers: deliveries feed [note_alive], transitions
    emit [Health] trace events and park/unpark the Vm circuit breaker toward
    the peer — so a killed site's outbox backlog stops burning
    retransmissions until the peer provably returns. *)

val n_sites : t -> int

val items : t -> Dvp_core.Ids.item list

val now : t -> float
(** Seconds since the cluster came up — the same clock origin the site
    domains timestamp their trace shards with, so observer-side emissions
    into the control shard order sensibly against site events. *)

val wal_path : t -> int -> string option
(** Site [i]'s on-disk WAL file, when the cluster has a [wal_dir]. *)

val exec : t -> Dvp_core.Txn.t -> Dvp_core.Txn.outcome
(** Run one transaction at its home site and wait for the outcome.  Retry
    policies ({!Dvp_core.Txn.with_retry}) are honoured site-side on the
    site's own timers.  Against a dead site: [Aborted Crashed], immediately.
    Main thread only. *)

val push_value :
  t -> src:Dvp_core.Ids.site -> dst:Dvp_core.Ids.site -> item:Dvp_core.Ids.item -> amount:int -> bool
(** Explicit redistribution from [src], as {!Dvp_core.Site.push_value}.
    Returns once the debit (not the remote credit) has happened; [false]
    against a dead [src]. *)

val run_load :
  t -> duration:float -> ?amount:int -> item:Dvp_core.Ids.item -> unit -> int
(** The wall-clock benchmark mode: every live site runs a closed loop of
    single-op [Incr amount] transactions against [item] for [duration]
    seconds of wall time, entirely within its own domain, then reports its
    commit count.  Returns the total committed across sites — exact even if
    a site is killed mid-load (it reports the count committed before the
    kill, each commit having been forced to its log in the same handler). *)

val start_bg_load : t -> duration:float -> ?amount:int -> unit -> unit
(** Fire-and-forget chaos traffic: every live site self-drives a mixed
    workload (escrow increments, decrements that may pull remote value,
    explicit cross-site pushes) against every item until the wall deadline.
    Commits are counted into lock-free cluster-level ledgers inside the same
    handler that forces the commit record, so {!conserved} stays exact
    across kills; a site respawned before the deadline resumes the load.
    Returns immediately. *)

val bg_committed : t -> int
(** Transactions committed by the background load so far, cluster-wide. *)

val quiesce : ?timeout:float -> t -> bool
(** Wait (polling site reports) until no live site has an active transaction
    and every Vm outbox has drained, twice in a row.  Backlog queued toward
    a currently-dead site is excluded — it cannot drain while the peer is
    down, and it is already accounted for by the cut's in-flight term.
    [false] if [timeout] (default 10 s wall) elapses first. *)

val fragments : t -> item:Dvp_core.Ids.item -> int array
(** Per-site fragments, length {!n_sites}; a dead site reports 0 (its value
    is in its stable log, visible to the offline oracle). *)

val expected_total : t -> item:Dvp_core.Ids.item -> int option
(** The expected aggregate: installed total plus every committed delta the
    main thread tracked ({!exec}, {!run_load}) plus the background load's
    ledger.  [None] for an unknown item. *)

val conserved : t -> item:Dvp_core.Ids.item -> bool
(** At quiesce, {e with every site live}: Σ fragments = {!expected_total}.
    Call {!quiesce} first — while transactions or Vm are in flight the check
    can legitimately fail, and a dead site's fragments read as 0 (use
    {!sample_cut}'s live-set identity, or the offline log oracle, while
    sites are down). *)

val conserved_all : t -> bool

(** {1 Crash-restart}

    The supervision surface: hard kills, respawns, and the fault-injection
    knobs {!Supervisor} drives from a {!Fault.t} plan. *)

val site_alive : t -> int -> bool

val live_sites : t -> int list

val dead_sites : t -> int list

val kill_site : t -> int -> bool
(** Hard-kill site [i]'s domain, now: a poison-pill control message unwinds
    the event loop between handlers, every pending client reply is failed
    with the same outcome a crash gives it, the mailbox is poisoned (peers'
    sends drop — message-loss semantics, healed by Vm retransmission), and
    the dead domain is joined.  Volatile state is abandoned; the on-disk WAL
    keeps the valid prefix of everything forced.  [false] if already dead.
    Serialises with cuts and respawns.  Any thread except a site domain. *)

val respawn_site : t -> int -> int option
(** Restart a killed site under the same identity, from its on-disk WAL:
    repair any torn tail, replay the valid frame prefix into a fresh
    in-memory WAL, run crash/recover (database, cumulative ledgers, Vm
    outbox and watermarks all rebuilt), re-attach the file sink in append
    mode, announce the rejoin to peers ([Peer_up] — detectors reinstate,
    parked outboxes unpark on their next transition), and resume the
    background load if one is still running.  Returns the number of records
    replayed, or [None] if the site is alive.  Requires a [wal_dir].
    @raise Invalid_argument if the cluster has no [wal_dir]. *)

val replayed : t -> int -> int
(** Total records replayed into site [i] across all its respawns — the
    "provably recovered" counter the chaos report surfaces. *)

val set_links : t -> Fault.links -> unit
(** Set the link quality every inter-domain send passes through, cluster
    wide and effective immediately: messages drop, duplicate, or arrive late
    with the given parameters (drawn from each sender's own RNG stream).
    Control-plane traffic (stats, cuts, kills) is never perturbed — only
    protocol messages ride the links. *)

val links : t -> Fault.links

val chaos_counts : t -> int * int * int
(** (dropped, duplicated, delayed) message counts since creation. *)

val fail_forces : t -> int -> count:int -> unit
(** Make site [i]'s next [count] WAL file forces fail: the sink raises
    before writing, the storage layer retains the batch and re-offers it on
    the next force, and each failure surfaces as a typed
    {!Dvp_storage.Wal.force_error}, a [storage_force_errors] metric tick,
    and a [Storage_fault] trace event. *)

val announce_up : t -> unit
(** Broadcast [Peer_up] for every live site to every live site: detectors
    holding stale [Suspected]/[Condemned] verdicts (e.g. after a long storm
    or a scheduling stall on a small machine) reinstate their peers.  The
    supervisor's heal step. *)

(** {1 Live observability}

    Wall-clock telemetry and the conservation watchdog sample a running
    cluster without pausing the workload (stats) or with a momentary
    freeze-barrier rendezvous (cuts). *)

(** One site's self-reported snapshot, taken inside its serial event loop
    (so every field is consistent with every other at a point between
    handler callbacks). *)
type site_stats = {
  st_site : int;
  st_metrics : Dvp_core.Metrics.t;
      (** a detached copy — safe to read from any thread.  A respawned
          incarnation starts fresh counters; the cumulative ledgers below
          are rebuilt from the log and stay continuous across kills. *)
  st_fragments : (Dvp_core.Ids.item * int) list;
  st_sent : (Dvp_core.Ids.item * int) list;
      (** cumulative Vm value shipped, per item (never rolled back) *)
  st_recv : (Dvp_core.Ids.item * int) list;
      (** cumulative Vm value accepted, per item *)
  st_delta : (Dvp_core.Ids.item * int) list;
      (** cumulative committed op delta, per item *)
  st_outbox : int;  (** Vm outstanding + parked fragments *)
  st_wal : int;  (** WAL records appended *)
  st_epoch : int;  (** membership epoch the site believes in *)
  st_active : int;  (** in-flight transactions *)
}

val stats : t -> site_stats array
(** Snapshot every {e live} site, without any freeze: each site answers from
    its own loop, so the array is {e per-site} consistent but not a
    consistent cut — use for telemetry gauges, not conservation checks.
    The array may be shorter than {!n_sites} while sites are dead; identify
    entries by [st_site], not position.  Any thread. *)

val mailbox_depth : t -> int -> int
(** Messages queued for site [i]'s domain right now (the live mailbox-depth
    gauge).  Any thread. *)

(** Per-item verdict of a conservation cut, over the cut's live set. *)
type cut_item = {
  ci_item : Dvp_core.Ids.item;
  ci_expected : int;
      (** live installed baseline + Σ committed deltas on the cut *)
  ci_fragments : int;  (** Σ live fragments on the cut *)
  ci_in_flight : int;
      (** Σ sent − Σ recv over the live set: Vm value launched but not yet
          accepted.  May be negative while a site is dead (its live peers
          have accepted more from it than they have launched toward it). *)
  ci_delta : int;  (** Σ committed deltas on the cut *)
  ci_ok : bool;  (** [ci_fragments + ci_in_flight = ci_expected] *)
}

type cut = {
  cut_at : float;  (** {!now}-clock time the cut completed *)
  cut_epoch : int;  (** the common membership epoch; [-1] if inconsistent *)
  cut_consistent : bool;  (** all sites reported the same epoch *)
  cut_items : cut_item list;
  cut_sites : site_stats array;  (** the raw per-site snapshots *)
  cut_dead : int list;  (** sites excluded from the cut (hard-killed) *)
}

val cut_ok : cut -> bool
(** Epoch-consistent and every item conserves exactly. *)

val cut_of_stats :
  at:float ->
  initial:(Dvp_core.Ids.item * int) list ->
  items:Dvp_core.Ids.item list ->
  site_stats array ->
  cut
(** The pure verdict fold {!sample_cut} applies to its snapshots — exposed
    so tests and offline tooling can re-run the conservation check over
    recorded [site_stats] (with every site presumed live: [initial] is the
    full installed baseline and [cut_dead] is empty). *)

val sample_cut : t -> cut
(** Take an epoch-consistent conservation cut over the live sites.  Every
    live site snapshots its stats and then blocks on a rendezvous barrier
    until {e all} of them have, so no Vm send can cross the cut backwards:
    the equality [fragments + in_flight = expected] is exact per cut, no
    tolerance needed — {e including while sites are dead}, because every
    term (installed baseline included) is summed over the same live set.
    The freeze lasts one rendezvous (microseconds at small [n]); sends are
    asynchronous mailbox pushes, so the rendezvous cannot deadlock.
    Concurrent callers, kills, and respawns are serialised internally.
    Any thread. *)

val shards : t -> Dvp_trace.Shards.t option
(** The trace shards when [create ~tracing:true], site [i] on shard [i]. *)

val ctl_trace : t -> Dvp_trace.Trace.t option
(** The control-plane shard (index [n]) — the observer/watchdog's ring.
    Single writer: only one observer should emit into it. *)

val trace_jsonl : t -> string option
(** Merge all shards into one totally-ordered JSONL dump (same stream shape
    the DES {!Dvp_sim.Trace.to_jsonl} produces, plus [shard]/[seq] fields),
    ready for [dvp-cli analyze].  Call after the workload has quiesced —
    the merge reads rings the site domains write. *)

val stop : t -> unit
(** Stop every live site domain, join them, close WAL files and mailboxes.
    Dead sites stay dead (their files keep their last forced state).
    Idempotent.  The cluster is unusable afterwards. *)
