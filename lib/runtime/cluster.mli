(** The multicore execution substrate: one OCaml 5 domain per site.

    Where {!Dvp_core.System} composes sites over the deterministic simulation
    engine, a cluster composes the {e same} {!Dvp_core.Site} code over real
    parallelism: each site runs in its own domain with a serial event loop
    (so the substrate's serial-execution invariant holds), wall-clock timers,
    mailbox transport between domains (lossless, FIFO per pair — real
    channels still go through the full Vm acknowledgement protocol), and
    optionally a file per site backing every WAL force.

    The main thread is the client: {!exec} ships a transaction to its home
    site's mailbox and blocks for the outcome; {!run_load} puts every site in
    a self-driving closed loop (the escrow-increment workload of bench
    E20-wall) with zero main-thread involvement in the hot path.

    Determinism note: cross-site interleavings are real races here.  The
    cross-substrate equivalence tests therefore use commutative workloads
    (increments and bounded explicit redistributions) whose final fragment
    vector is interleaving-independent. *)

type t

val create :
  ?seed:int ->
  ?config:Dvp_core.Config.t ->
  ?wal_dir:string ->
  n:int ->
  items:(Dvp_core.Ids.item * int) list ->
  unit ->
  t
(** Spawn [n] site domains, install each item's total split evenly across
    the sites, and wait until every site is live.  With [wal_dir], site [i]
    appends every forced WAL record (marshalled) to [wal_dir]/site-[i].wal
    and flushes on each force. *)

val n_sites : t -> int

val items : t -> Dvp_core.Ids.item list

val exec : t -> Dvp_core.Txn.t -> Dvp_core.Txn.outcome
(** Run one transaction at its home site and wait for the outcome.  Retry
    policies ({!Dvp_core.Txn.with_retry}) are honoured site-side on the
    site's own timers.  Main thread only. *)

val push_value :
  t -> src:Dvp_core.Ids.site -> dst:Dvp_core.Ids.site -> item:Dvp_core.Ids.item -> amount:int -> bool
(** Explicit redistribution from [src], as {!Dvp_core.Site.push_value}.
    Returns once the debit (not the remote credit) has happened. *)

val run_load :
  t -> duration:float -> ?amount:int -> item:Dvp_core.Ids.item -> unit -> int
(** The wall-clock benchmark mode: every site runs a closed loop of
    single-op [Incr amount] transactions against [item] for [duration]
    seconds of wall time, entirely within its own domain, then reports its
    commit count.  Returns the total committed across sites. *)

val quiesce : ?timeout:float -> t -> bool
(** Wait (polling site reports) until no site has an active transaction and
    every Vm outbox has drained, twice in a row.  [false] if [timeout]
    (default 10 s wall) elapses first. *)

val fragments : t -> item:Dvp_core.Ids.item -> int array

val conserved : t -> item:Dvp_core.Ids.item -> bool
(** At quiesce: Σ fragments = initial total + committed deltas.  Call
    {!quiesce} first — while transactions or Vm are in flight the check can
    legitimately fail. *)

val conserved_all : t -> bool

val stop : t -> unit
(** Stop every site domain, join them, close WAL files and mailboxes.
    Idempotent.  The cluster is unusable afterwards. *)
