(** Seeded fault plans for the wall-clock runtime.

    A plan is a time-ordered script of runtime-level faults — hard domain
    kills (with optional on-disk WAL damage), forced-write failures on the
    file sink, and link-quality storms on the inter-domain mailboxes —
    generated deterministically from one integer seed, exactly as
    {!Dvp_workload.Faultplan} does for the DES.  The generator draws from an
    RNG stream split off the seed with a fixed mixing constant, so enabling
    or disabling one fault class never perturbs the draws of another.

    {!Supervisor.run_plan} executes a plan against a live {!Cluster};
    the chaos wall harness generates, runs, and shrinks them. *)

(** Link quality applied to every inter-domain send while a storm is on. *)
type links = {
  drop : float;  (** per-message loss probability *)
  delay : float;  (** max extra latency, seconds; uniform per message when > 0 *)
  dup : float;  (** per-message duplication probability *)
}

val no_links : links
(** The quiet network: no loss, no delay, no duplication. *)

(** On-disk damage applied to the victim's WAL file between kill and
    respawn. *)
type wal_fault = Torn_tail of int  (** torn frame with this many junk bytes *)

type action =
  | Kill of { site : int; downtime : float; wal_fault : wal_fault option }
      (** hard-kill the site's domain; respawn after [downtime] (or the
          supervisor's backoff, whichever is longer) *)
  | Kill_forever of { site : int; wal_fault : wal_fault option }
      (** hard-kill with no respawn — the site stays dead until the harness
          revives it explicitly *)
  | Sink_fail of { site : int; count : int }
      (** make the site's next [count] WAL file forces fail (typed
          [force_error]s; the batch is retained and re-offered) *)
  | Link_storm of links  (** degrade every inter-domain link *)
  | Link_heal  (** restore {!no_links} *)

type event = { at : float; action : action }

type t = event list
(** Sorted by [at] when produced by {!plan}. *)

(** Generation envelope: event counts are Poisson draws with these means,
    times uniform over the middle of the horizon. *)
type spec = {
  horizon : float;  (** plan length, seconds — faults land in (10%, 80%) of it *)
  kills : float;  (** mean transient kill count; {!plan} guarantees >= 1 *)
  kill_forever : bool;  (** include exactly one permanent kill *)
  sink_fails : float;  (** mean [Sink_fail] count (never-killed sites only) *)
  link_storms : float;  (** mean storm count; windows never overlap *)
  min_downtime : float;
  max_downtime : float;
  torn_tail_prob : float;  (** probability a kill also tears the WAL tail *)
}

val default_spec : spec
val killer_spec : spec
(** [killer_spec] raises the kill rate, always includes the permanent kill,
    and tears tails more often — the acceptance profile. *)

val plan : seed:int -> n:int -> spec -> t
(** Deterministic: equal [(seed, n, spec)] give equal plans.  Guarantees at
    least one transient [Kill] regardless of the Poisson draw, exactly one
    [Kill_forever] when the spec asks for it, and [Sink_fail] only on sites
    with no kill event (a kill would take the retained batch down with the
    domain, turning an injected sink fault into real record loss). *)

val kills_of : t -> int list
(** Distinct sites hard-killed (transiently or forever) by the plan. *)

val forever_of : t -> int list
(** Sites the plan leaves permanently dead. *)

val to_json : t -> Dvp_util.Json.t
val pp : Format.formatter -> t -> unit
