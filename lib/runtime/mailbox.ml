type state = S_open | S_poisoned | S_closed

type 'a t = {
  mutex : Mutex.t;
  q : 'a Queue.t;
  mutable sleeping : bool;
  mutable state : state;
  rd : Unix.file_descr;
  wr : Unix.file_descr;
}

type send_result = Sent | Poisoned | Closed

let create () =
  let rd, wr = Unix.pipe () in
  Unix.set_nonblock rd;
  {
    mutex = Mutex.create ();
    q = Queue.create ();
    sleeping = false;
    state = S_open;
    rd;
    wr;
  }

let wake_byte = Bytes.make 1 '\001'

(* The self-pipe wake must actually land: a producer that swallows EINTR or a
   0-byte write leaves the consumer parked in [select] until its timer fires,
   which under load turns a sub-millisecond handoff into a full timeout.  Retry
   those; treat EPIPE/EBADF (consumer tore the pipe down concurrently) and a
   full pipe (a wake byte is already in flight) as success. *)
let rec write_wake t =
  match Unix.write t.wr wake_byte 0 1 with
  | 0 -> write_wake t
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_wake t
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> ()

let send t x =
  Mutex.lock t.mutex;
  match t.state with
  | S_poisoned ->
    Mutex.unlock t.mutex;
    Poisoned
  | S_closed ->
    Mutex.unlock t.mutex;
    Closed
  | S_open ->
    Queue.push x t.q;
    (* Claim the wake: the first producer after the consumer parks writes the
       byte; later ones see [sleeping = false] and skip it. *)
    let wake = t.sleeping in
    t.sleeping <- false;
    Mutex.unlock t.mutex;
    if wake then write_wake t;
    Sent

(* Fire-and-forget: a push to a poisoned or closed mailbox is dropped, the
   same loss semantics as a message to a crashed site — the Vm retransmission
   machinery is what heals it.  Producers that need to distinguish a dead
   consumer use [send]. *)
let push t x = ignore (send t x)

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.q in
  Mutex.unlock t.mutex;
  n

let drain t =
  Mutex.lock t.mutex;
  let acc = ref [] in
  while not (Queue.is_empty t.q) do
    acc := Queue.pop t.q :: !acc
  done;
  Mutex.unlock t.mutex;
  List.rev !acc

let poison t =
  Mutex.lock t.mutex;
  if t.state = S_open then t.state <- S_poisoned;
  Mutex.unlock t.mutex

let unpoison t =
  Mutex.lock t.mutex;
  if t.state = S_poisoned then t.state <- S_open;
  Mutex.unlock t.mutex

let sweep t = drain t

let is_poisoned t =
  Mutex.lock t.mutex;
  let p = t.state = S_poisoned in
  Mutex.unlock t.mutex;
  p

(* Swallow stale wake bytes so a byte from a previous cycle cannot turn a
   future [wait] into a busy spin. *)
let drain_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.rd buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wait t ~timeout =
  Mutex.lock t.mutex;
  if not (Queue.is_empty t.q) then Mutex.unlock t.mutex
  else begin
    t.sleeping <- true;
    Mutex.unlock t.mutex;
    (try ignore (Unix.select [ t.rd ] [] [] timeout)
     with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    Mutex.lock t.mutex;
    t.sleeping <- false;
    Mutex.unlock t.mutex;
    drain_pipe t
  end

let close t =
  Mutex.lock t.mutex;
  let was = t.state in
  t.state <- S_closed;
  Mutex.unlock t.mutex;
  if was <> S_closed then begin
    Unix.close t.rd;
    Unix.close t.wr
  end
