type 'a t = {
  mutex : Mutex.t;
  q : 'a Queue.t;
  mutable sleeping : bool;
  rd : Unix.file_descr;
  wr : Unix.file_descr;
}

let create () =
  let rd, wr = Unix.pipe () in
  Unix.set_nonblock rd;
  { mutex = Mutex.create (); q = Queue.create (); sleeping = false; rd; wr }

let wake_byte = Bytes.make 1 '\001'

let push t x =
  Mutex.lock t.mutex;
  Queue.push x t.q;
  (* Claim the wake: the first producer after the consumer parks writes the
     byte; later ones see [sleeping = false] and skip it. *)
  let wake = t.sleeping in
  t.sleeping <- false;
  Mutex.unlock t.mutex;
  if wake then ignore (Unix.write t.wr wake_byte 0 1)

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.q in
  Mutex.unlock t.mutex;
  n

let drain t =
  Mutex.lock t.mutex;
  let acc = ref [] in
  while not (Queue.is_empty t.q) do
    acc := Queue.pop t.q :: !acc
  done;
  Mutex.unlock t.mutex;
  List.rev !acc

(* Swallow stale wake bytes so a byte from a previous cycle cannot turn a
   future [wait] into a busy spin. *)
let drain_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.rd buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wait t ~timeout =
  Mutex.lock t.mutex;
  if not (Queue.is_empty t.q) then Mutex.unlock t.mutex
  else begin
    t.sleeping <- true;
    Mutex.unlock t.mutex;
    (try ignore (Unix.select [ t.rd ] [] [] timeout)
     with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    Mutex.lock t.mutex;
    t.sleeping <- false;
    Mutex.unlock t.mutex;
    drain_pipe t
  end

let close t =
  Unix.close t.rd;
  Unix.close t.wr
