module Substrate = Dvp_substrate.Substrate

type state = Up | Suspected | Condemned

let state_to_string = function
  | Up -> "up"
  | Suspected -> "suspected"
  | Condemned -> "condemned"

let state_of_string = function
  | "up" -> Some Up
  | "suspected" -> Some Suspected
  | "condemned" -> Some Condemned
  | _ -> None

type config = {
  suspect_after : float;
  condemn_after : float;
  flap_penalty : float;
  flap_max_scale : float;
  flap_window : float;
}

let default_config =
  {
    suspect_after = 0.5;
    condemn_after = 4.0;
    flap_penalty = 2.0;
    flap_max_scale = 8.0;
    flap_window = 5.0;
  }

type t = {
  cfg : config;
  sub : Substrate.t;
  probe_every : float;
  probe_idle : float;
  self : int;
  n : int;
  state : state array;
  last_heard : float array;
  last_probe : float array;
  scale : float array;  (* suspicion-timeout multiplier, flap hysteresis *)
  last_flap : float array;
  monitored : bool array;
      (* elastic membership: a detached slot is nobody's business — it is
         never scanned, never probed, and liveness evidence about it is
         ignored, so it can never be Suspected or Condemned *)
  mutable paused : bool;
  mutable started : bool;
  mutable armed : bool; (* a tick is scheduled *)
  mutable n_monitored : int; (* monitored peers other than self *)
  send_probe : int -> unit;
  on_transition : peer:int -> state -> unit;
}

let create ?(send_probe = fun _ -> ()) ?(on_transition = fun ~peer:_ _ -> ())
    ?(probe_every = 0.1) ?(probe_idle = 0.25) cfg ~sub ~self ~n =
  let now = Substrate.now sub in
  {
    cfg;
    sub;
    probe_every;
    probe_idle;
    self;
    n;
    state = Array.make n Up;
    last_heard = Array.make n now;
    last_probe = Array.make n neg_infinity;
    scale = Array.make n 1.0;
    last_flap = Array.make n neg_infinity;
    monitored = Array.make n true;
    paused = false;
    started = false;
    armed = false;
    n_monitored = max 0 (n - 1);
    send_probe;
    on_transition;
  }

let set_state t peer st =
  if t.state.(peer) <> st then begin
    t.state.(peer) <- st;
    t.on_transition ~peer st
  end

let note_alive t ~peer =
  if peer <> t.self && peer >= 0 && peer < t.n && t.monitored.(peer) then begin
    let now = Substrate.now t.sub in
    t.last_heard.(peer) <- now;
    match t.state.(peer) with
    | Up -> ()
    | Condemned -> () (* sticky: only [reinstate] undoes a membership decision *)
    | Suspected ->
      (* A revival is a flap: make the next suspicion harder to trigger. *)
      t.scale.(peer) <-
        Float.min t.cfg.flap_max_scale (t.scale.(peer) *. t.cfg.flap_penalty);
      t.last_flap.(peer) <- now;
      set_state t peer Up
  end

let scan t =
  if not t.paused then begin
    let now = Substrate.now t.sub in
    for peer = 0 to t.n - 1 do
      if peer <> t.self && t.monitored.(peer) then begin
        (* Hysteresis decay: no flap for a while -> back to the base timeout. *)
        if
          t.scale.(peer) > 1.0
          && now -. t.last_flap.(peer) > t.cfg.flap_window
        then t.scale.(peer) <- 1.0;
        let silence = now -. t.last_heard.(peer) in
        (match t.state.(peer) with
        | Condemned -> ()
        | Up | Suspected ->
          if silence >= t.cfg.condemn_after then set_state t peer Condemned
          else if
            t.state.(peer) = Up
            && silence >= t.cfg.suspect_after *. t.scale.(peer)
          then set_state t peer Suspected);
        (* Idle-link probing, rate-limited to one per scan period. *)
        if
          t.state.(peer) <> Condemned
          && silence >= t.probe_idle
          && now -. t.last_probe.(peer) >= t.probe_every
        then begin
          t.last_probe.(peer) <- now;
          t.send_probe peer
        end
      end
    done
  end

(* The tick timer lives only while there is something to watch: a paused
   detector (or one with no monitored peers) lets its timer lapse instead of
   rescheduling a no-op forever — at scale, most detectors are paused spares.
   [resume] and [set_monitored] re-arm it. *)
let rec tick t () =
  t.armed <- false;
  if t.started && (not t.paused) && t.n_monitored > 0 then begin
    scan t;
    arm t
  end

and arm t =
  if t.started && (not t.paused) && t.n_monitored > 0 && not t.armed then begin
    t.armed <- true;
    ignore (Substrate.schedule t.sub ~delay:t.probe_every (tick t))
  end

let start t =
  if not t.started then begin
    t.started <- true;
    arm t
  end

let state t peer = if peer = t.self then Up else t.state.(peer)
let states t = Array.mapi (fun i st -> if i = t.self then Up else st) t.state

let suspected t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if i <> t.self && t.state.(i) = Suspected then acc := i :: !acc
  done;
  !acc

let condemned t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if i <> t.self && t.state.(i) = Condemned then acc := i :: !acc
  done;
  !acc

let condemn t ~peer =
  if peer <> t.self && t.monitored.(peer) && t.state.(peer) <> Condemned then
    set_state t peer Condemned

let reinstate t ~peer =
  if peer <> t.self && t.state.(peer) = Condemned then begin
    t.last_heard.(peer) <- Substrate.now t.sub;
    t.scale.(peer) <- 1.0;
    set_state t peer Up
  end

(* Elastic membership: start or stop monitoring one peer.  Re-monitoring a
   peer (it just joined) wipes any stale verdict: fresh deadline, base
   hysteresis, state Up.  Un-monitoring (it left cleanly) likewise clears
   the verdict, so a later rejoin does not inherit a Condemned badge. *)
let set_monitored t ~peer flag =
  if peer <> t.self && peer >= 0 && peer < t.n && t.monitored.(peer) <> flag then begin
    t.monitored.(peer) <- flag;
    t.n_monitored <- (t.n_monitored + if flag then 1 else -1);
    t.last_heard.(peer) <- Substrate.now t.sub;
    t.last_probe.(peer) <- neg_infinity;
    t.scale.(peer) <- 1.0;
    set_state t peer Up;
    if flag then arm t
  end

let monitored t ~peer = peer = t.self || t.monitored.(peer)

let pause t = t.paused <- true

let resume t =
  if t.paused then begin
    t.paused <- false;
    let now = Substrate.now t.sub in
    for peer = 0 to t.n - 1 do
      if peer <> t.self && t.state.(peer) <> Condemned then begin
        t.last_heard.(peer) <- now;
        if t.state.(peer) = Suspected then set_state t peer Up
      end
    done;
    arm t
  end
