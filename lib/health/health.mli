(** Per-site failure detector.

    Each site owns one detector watching its [n - 1] peers.  Liveness
    evidence is {e piggybacked}: every successfully delivered message from a
    peer counts as a heartbeat ({!note_alive}), so under normal traffic the
    detector costs nothing.  Only when a link has been idle longer than
    [probe_idle] does the detector emit explicit probe messages through the
    [send_probe] callback.

    A peer moves through three states:

    {ul
    {- [Up] — heard from recently.}
    {- [Suspected] — silent for more than [suspect_after] (scaled by the
       flap hysteresis, below).  Callers park outbound traffic and skip the
       peer when asking for value; the state is {e reversible} — any
       delivery flips the peer back to [Up].}
    {- [Condemned] — silent for more than [condemn_after].  This is a
       membership decision: the state is {e sticky} and only an explicit
       {!reinstate} (an operator action) undoes it.  Condemned peers are
       candidates for fragment evacuation.}}

    Flap resistance: every [Suspected -> Up] revival multiplies the peer's
    suspicion timeout by [flap_penalty] (capped at [flap_max_scale]), so a
    flapping link has to stay quiet progressively longer before being
    re-suspected.  The scale decays back to 1 after [flap_window] seconds
    without a flap.

    The detector is driven by an execution {!Dvp_substrate.Substrate}:
    {!start} schedules a recurring scan every [probe_every] seconds.  While
    {!pause}d (its owner site is down) scans are no-ops; {!resume} refreshes
    every non-condemned peer's deadline so a recovering site does not
    condemn the world for its own silence. *)

type state = Up | Suspected | Condemned

val state_to_string : state -> string
(** ["up"] / ["suspected"] / ["condemned"]. *)

val state_of_string : string -> state option

type config = {
  suspect_after : float;  (** base silence threshold for [Suspected] *)
  condemn_after : float;  (** silence threshold for [Condemned] *)
  flap_penalty : float;  (** timeout scale multiplier per flap, > 1 *)
  flap_max_scale : float;  (** cap on the accumulated scale *)
  flap_window : float;  (** scale decays back to 1 after this long *)
}

val default_config : config
(** suspect_after 0.5, condemn_after 4.0, flap_penalty 2.0,
    flap_max_scale 8.0, flap_window 5.0. *)

type t

val create :
  ?send_probe:(int -> unit) ->
  ?on_transition:(peer:int -> state -> unit) ->
  ?probe_every:float ->
  ?probe_idle:float ->
  config ->
  sub:Dvp_substrate.Substrate.t ->
  self:int ->
  n:int ->
  t
(** A detector for site [self] in an [n]-site system, driven by the given
    execution substrate.  [send_probe peer] is called to solicit a liveness
    reply from an idle peer; [on_transition] fires on every state change
    (including forced {!condemn} and {!reinstate}).  [probe_every]
    (default 0.1) is the scan/probe-rate-limit period and [probe_idle]
    (default 0.25) the silence beyond which an idle peer is probed — these
    are transport-cadence knobs and live in [Config.Transport] rather than
    in the detector's own policy {!config}. *)

val start : t -> unit
(** Schedule the recurring scan.  Idempotent. *)

val note_alive : t -> peer:int -> unit
(** Evidence that [peer] is alive {e now} (a message from it was delivered).
    Revives a [Suspected] peer; ignored for a [Condemned] one. *)

val state : t -> int -> state
(** Current verdict on a peer ([Up] for [self]). *)

val states : t -> state array
(** Snapshot of all verdicts, indexed by site. *)

val suspected : t -> int list
val condemned : t -> int list

val condemn : t -> peer:int -> unit
(** Force a peer straight to [Condemned] (oracle-instant detection in
    experiments; also useful in tests).  No-op if already condemned. *)

val reinstate : t -> peer:int -> unit
(** Operator override: forget a [Condemned] verdict, returning the peer to
    [Up] with a fresh deadline. *)

val set_monitored : t -> peer:int -> bool -> unit
(** Elastic membership: [false] removes [peer] from this detector's world —
    no scans, no probes, no verdicts, liveness evidence ignored — and clears
    any existing verdict (a clean leave must not strand a [Condemned] badge
    for a later rejoin).  [true] re-admits the peer with a fresh deadline,
    base hysteresis, and state [Up].  No-op when the flag is unchanged. *)

val monitored : t -> peer:int -> bool

val pause : t -> unit
(** Owner site went down: stop judging peers. *)

val resume : t -> unit
(** Owner site came back: refresh every non-condemned peer's deadline and
    resume scanning. *)
