module System = Dvp_core.System
module Site = Dvp_core.Site
module Metrics = Dvp_core.Metrics
module Wal = Dvp_storage.Wal
module Engine = Dvp_sim.Engine
module Faultplan = Dvp_workload.Faultplan
module Runner = Dvp_workload.Runner
module Driver = Dvp_workload.Driver
module Setup = Dvp_workload.Setup
module Json = Dvp_util.Json

type seed_result = {
  seed : int;
  schedule : Faultplan.t;
  violations : (float * Oracle.violation) list;
  committed : int;
  submitted : int;
  recoveries : int;
  wal_repairs : int;
  repaired_records : int;
  crashdump : string option;
}

let failed r = r.violations <> []

(* One run is a pure function of (profile, seed, schedule): the workload
   stream derives from the seed, the fault stream from the schedule, and the
   engine is deterministic — which is what makes shrinking and seed-replay
   sound.  The oracle fires just after every scheduled recovery (the moment a
   replay bug would first be visible) and once more after the drain. *)
let run_seed ~(profile : Profile.t) ~seed ?schedule ?extra_checks ?crashdumps () =
  let spec = Profile.spec profile ~seed in
  (* With crashdumps enabled the run carries a trace ring and a telemetry
     registry, so a failing seed leaves behind the event window and counters
     that led up to the violation. *)
  let trace =
    match crashdumps with Some _ -> Some (Dvp_sim.Trace.create ()) | None -> None
  in
  let config =
    if profile.Profile.detector || profile.Profile.rebalance then
      Some
        {
          Dvp_core.Config.default with
          Dvp_core.Config.health =
            (if profile.Profile.detector then Some Dvp_health.Health.default_config
             else None);
          Dvp_core.Config.auto_evacuate = profile.Profile.detector;
          Dvp_core.Config.rebalance =
            (if profile.Profile.rebalance then Some Dvp_core.Config.default_rebalance
             else None);
        }
    else None
  in
  let capacity =
    if profile.Profile.spare_sites > 0 then
      Some (profile.Profile.n_sites + profile.Profile.spare_sites)
    else None
  in
  let sys = Setup.dvp_system ?config ?trace ?capacity spec in
  let driver = Driver.of_dvp sys in
  let plan =
    match schedule with Some p -> p | None -> Gen.schedule ~seed ~profile
  in
  let extra () = match extra_checks with Some f -> f sys | None -> [] in
  let violations = ref [] in
  let check_at time =
    List.iter
      (fun viol -> violations := (time, viol) :: !violations)
      (Oracle.check_system sys @ extra ())
  in
  List.iter
    (fun e ->
      match e.Faultplan.action with
      | Faultplan.Recover _ | Faultplan.Kill_forever _ ->
        (* Slightly after the event itself: recoveries so the oracle sees the
           repaired, replayed state; permanent kills so it sees the
           stable-replay accounting for the dead site.  After a kill, check
           again past the detector's condemnation horizon, when
           auto-evacuation has re-homed the fragments. *)
        let at = e.Faultplan.at +. 1e-3 in
        ignore (Engine.schedule_at (System.engine sys) ~at (fun () -> check_at at));
        (match e.Faultplan.action with
        | Faultplan.Kill_forever _ when profile.Profile.detector ->
          let at =
            e.Faultplan.at +. Dvp_health.Health.default_config.Dvp_health.Health.condemn_after
            +. 1.0
          in
          ignore (Engine.schedule_at (System.engine sys) ~at (fun () -> check_at at))
        | _ -> ())
      | Faultplan.Join _ | Faultplan.Leave _ ->
        (* Membership transitions complete asynchronously (seed handshake,
           drain); check once shortly after the attempt and rely on the
           end-of-run pass for the slow completions. *)
        let at = e.Faultplan.at +. 1.0 in
        ignore (Engine.schedule_at (System.engine sys) ~at (fun () -> check_at at))
      | _ -> ())
    plan;
  let telemetry, flight =
    match (crashdumps, trace) with
    | Some dir, Some tr ->
      let tel = Dvp_obs.Telemetry.of_system sys in
      let fl = Dvp_obs.Flight.create ~dir tr in
      Dvp_obs.Flight.set_telemetry fl (fun () -> Dvp_obs.Telemetry.to_json tel);
      (Some tel, Some fl)
    | _ -> (None, None)
  in
  let o =
    Runner.run driver spec ~faults:plan ~drain:profile.Profile.drain ?telemetry
      ?flight ()
  in
  let final =
    Oracle.check_system sys @ Oracle.check_outcome o @ Oracle.check_liveness sys o
    @ extra ()
  in
  List.iter (fun viol -> violations := (System.now sys, viol) :: !violations) final;
  let sum_sites f =
    let acc = ref 0 in
    for i = 0 to System.n_sites sys - 1 do
      acc := !acc + f (Site.wal (System.site sys i))
    done;
    !acc
  in
  let ordered_violations = List.rev !violations in
  let crashdump =
    (* The runner may already have dumped for an end-of-run conservation
       failure; otherwise any oracle violation triggers one here. *)
    match o.Runner.crashdump with
    | Some _ as d -> d
    | None -> (
      match (flight, ordered_violations) with
      | Some fl, _ :: _ ->
        let verdict =
          Json.List
            (List.map
               (fun (at, viol) ->
                 match Oracle.violation_to_json viol with
                 | Json.Obj fields -> Json.Obj (("at", Json.Float at) :: fields)
                 | other -> other)
               ordered_violations)
        in
        Some
          (Dvp_obs.Flight.dump fl
             ~label:(Printf.sprintf "chaos-seed%d" seed)
             ~verdict)
      | _ -> None)
  in
  {
    seed;
    schedule = plan;
    violations = ordered_violations;
    committed = o.Runner.committed;
    submitted = o.Runner.submitted;
    recoveries = Metrics.recovery_count o.Runner.metrics;
    wal_repairs = sum_sites Wal.repairs;
    repaired_records = sum_sites Wal.repaired_records;
    crashdump;
  }

type failure = {
  result : seed_result;
  shrunk : Faultplan.t;  (** 1-minimal schedule still reproducing it *)
}

type report = {
  profile : Profile.t;
  first_seed : int;
  seeds : int;
  failures : failure list;
  total_committed : int;
  total_submitted : int;
  total_recoveries : int;
  total_wal_repairs : int;
  total_repaired_records : int;
}

let shrink_failure ~profile ?extra_checks (r : seed_result) =
  (* Shrink re-runs never write crashdumps — only the original failing run
     leaves an artifact. *)
  let fails plan =
    failed (run_seed ~profile ~seed:r.seed ~schedule:plan ?extra_checks ())
  in
  { result = r; shrunk = Shrink.minimize ~fails r.schedule }

let run ?(first_seed = 1) ~seeds ~profile ?extra_checks ?crashdumps () =
  let failures = ref [] in
  let committed = ref 0 and submitted = ref 0 in
  let recoveries = ref 0 and repairs = ref 0 and repaired = ref 0 in
  for seed = first_seed to first_seed + seeds - 1 do
    let r = run_seed ~profile ~seed ?extra_checks ?crashdumps () in
    committed := !committed + r.committed;
    submitted := !submitted + r.submitted;
    recoveries := !recoveries + r.recoveries;
    repairs := !repairs + r.wal_repairs;
    repaired := !repaired + r.repaired_records;
    if failed r then failures := shrink_failure ~profile ?extra_checks r :: !failures
  done;
  {
    profile;
    first_seed;
    seeds;
    failures = List.rev !failures;
    total_committed = !committed;
    total_submitted = !submitted;
    total_recoveries = !recoveries;
    total_wal_repairs = !repairs;
    total_repaired_records = !repaired;
  }

let failure_to_json { result; shrunk } =
  Json.Obj
    [
      ("seed", Json.Int result.seed);
      ( "violations",
        Json.List
          (List.map
             (fun (at, viol) ->
               match Oracle.violation_to_json viol with
               | Json.Obj fields -> Json.Obj (("at", Json.Float at) :: fields)
               | other -> other)
             result.violations) );
      ("schedule_events", Json.Int (List.length result.schedule));
      ("shrunk_schedule", Faultplan.to_json shrunk);
      ( "crashdump",
        match result.crashdump with Some p -> Json.String p | None -> Json.Null );
    ]

let report_to_json r =
  Json.Obj
    [
      ("profile", Profile.to_json r.profile);
      ("first_seed", Json.Int r.first_seed);
      ("seeds", Json.Int r.seeds);
      ("violations", Json.Int (List.length r.failures));
      ("failures", Json.List (List.map failure_to_json r.failures));
      ("committed", Json.Int r.total_committed);
      ("submitted", Json.Int r.total_submitted);
      ("recoveries", Json.Int r.total_recoveries);
      ("wal_repairs", Json.Int r.total_wal_repairs);
      ("repaired_records", Json.Int r.total_repaired_records);
    ]

let pp_failure ~profile_label ppf { result; shrunk } =
  Format.fprintf ppf "@[<v>seed %d: %d violation(s)@," result.seed
    (List.length result.violations);
  List.iter
    (fun (at, viol) ->
      Format.fprintf ppf "  [t=%.3f] %a@," at Oracle.pp_violation viol)
    result.violations;
  Format.fprintf ppf "  reproduce: chaos --profile %s --seed %d --seeds 1@,"
    profile_label result.seed;
  (match result.crashdump with
  | Some path -> Format.fprintf ppf "  crashdump: %s@," path
  | None -> ());
  Format.fprintf ppf "  minimal schedule (%d of %d events):@,    @[<v>%a@]@]"
    (List.length shrunk)
    (List.length result.schedule)
    Faultplan.pp shrunk

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>chaos %s: %d seed(s) starting at %d@,\
     commits: %d/%d  recoveries: %d  wal repairs: %d (%d record(s) truncated)@,"
    r.profile.Profile.label r.seeds r.first_seed r.total_committed
    r.total_submitted r.total_recoveries r.total_wal_repairs
    r.total_repaired_records;
  (match r.failures with
  | [] -> Format.fprintf ppf "invariants: OK — no violations@]"
  | fs ->
    Format.fprintf ppf "invariants: %d seed(s) FAILED@," (List.length fs);
    List.iter
      (fun f ->
        Format.fprintf ppf "%a@,"
          (pp_failure ~profile_label:r.profile.Profile.label)
          f)
      fs;
    Format.fprintf ppf "@]")
