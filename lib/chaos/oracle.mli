(** The invariant oracle.

    Every check reads only what the protocol itself guarantees durable —
    live state for up sites, stable-log replay for crashed ones — so the
    oracle can run at any event boundary, including in the middle of an
    outage, and after every injected recovery:

    - {b conservation}: per item, fragments at all sites plus value in
      unaccepted virtual messages equals the committed-delta-adjusted total
      (the paper's N = Σᵢ Nᵢ + N_M);
    - {b escrow non-negativity}: no fragment and no in-flight total is ever
      negative;
    - {b Vm exactly-once}: scanning each site's stable log, acceptances from
      every peer carry strictly consecutive sequence numbers (with
      [Checkpoint] records resetting the watermarks to their snapshot);
    - {b WAL integrity}: no live site retains a corrupt stable tail after
      recovery;
    - {b metrics sanity} ({!check_outcome}): committed ≤ submitted,
      committed + aborted ≤ submitted, per-site tallies sum to the totals,
      and the sites' merged metrics agree with the runner's counts. *)

type violation = { check : string; detail : string }

val check_system : Dvp_core.System.t -> violation list
(** All state invariants, meaningful between simulator events. *)

val check_outcome : Dvp_workload.Runner.outcome -> violation list
(** Counter cross-checks on a finished run. *)

val check_liveness : Dvp_core.System.t -> Dvp_workload.Runner.outcome -> violation list
(** Degraded-mode liveness on a finished run: with a strict majority of
    sites up and at least 50 submissions, zero commits is a violation — a
    permanently dead minority must not stall the survivors. *)

val violation_to_json : violation -> Dvp_util.Json.t

val pp_violation : Format.formatter -> violation -> unit
