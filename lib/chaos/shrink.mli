(** Fault-schedule minimization.

    [minimize ~fails plan] greedily drops one event at a time, keeping any
    removal under which [fails] still holds, iterated to a fixpoint: the
    result is 1-minimal (removing any single remaining event makes the
    failure vanish).  If [fails plan] is already false the plan is returned
    unchanged — the caller's predicate must be deterministic, which holds
    for chaos runs because a run is a pure function of [(profile, seed,
    schedule)]. *)

val minimize :
  fails:(Dvp_workload.Faultplan.t -> bool) ->
  Dvp_workload.Faultplan.t ->
  Dvp_workload.Faultplan.t
