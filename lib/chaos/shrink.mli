(** Fault-schedule minimization.

    [minimize ~fails plan] greedily drops one event at a time, keeping any
    removal under which [fails] still holds, iterated to a fixpoint: the
    result is 1-minimal (removing any single remaining event makes the
    failure vanish).  If [fails plan] is already false the plan is returned
    unchanged — the caller's predicate must be deterministic, which holds
    for chaos runs because a run is a pure function of [(profile, seed,
    schedule)].

    Polymorphic over the event type: the DES harness minimizes
    {!Dvp_workload.Faultplan.t}, the wall harness {!Dvp_runtime.Fault.t}
    plans (whose re-runs are only as deterministic as real scheduling — the
    wall caller re-checks the shrunk plan and reports it as evidence, not
    proof). *)

val minimize : fails:('a list -> bool) -> 'a list -> 'a list
