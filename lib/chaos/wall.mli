(** Chaos on real domains: crash-restart runs against the wall-clock
    {!Dvp_runtime.Cluster}.

    Where {!Harness} drives the DES (deterministic replay, exact oracles at
    simulated instants), this harness drives the multicore runtime: real
    hard kills of site domains mid-traffic, real file-backed recovery, real
    races.  Each seed builds a cluster with a file-backed WAL per site,
    starts the self-driving background load, executes a seeded
    {!Dvp_runtime.Fault} plan through {!Dvp_runtime.Supervisor}, then heals,
    revives every remaining dead site, quiesces, and audits:

    - the conservation watchdog's freeze-barrier cuts, sampled live
      throughout the run by {!Dvp_runtime.Observer} (exact even while sites
      are dead — live-set identity), any alarm is a violation;
    - the final cut and the closed-loop expected totals;
    - recovery evidence: every site the plan killed must have replayed a
      positive number of records, and the load must have committed traffic;
    - an offline replay of all the on-disk WAL files: final fragments must
      match the live state record for record, in-flight value must be zero,
      per-channel acceptance must be gap-free (Vm exactly-once), and every
      logged absolute value must be non-negative.

    Failing seeds dump trace and telemetry through the observer's
    {!Dvp_obs.Flight} recorder and can be shrunk with {!Shrink.minimize}
    over the fault plan (re-runs on real hardware are evidence, not proof —
    the shrunk plan is re-checked, never assumed). *)

type profile = {
  name : string;
  n : int;  (** site domains *)
  items : (int * int) list;  (** (item, installed total) *)
  load : float;  (** background-load duration, seconds *)
  amount : int;  (** per-op value of the background load *)
  spec : Dvp_runtime.Fault.spec;  (** fault-plan envelope *)
  watch_every : float;  (** observer tick / watchdog cut period *)
  quiesce_timeout : float;
  shrink : bool;  (** minimize failing plans by re-running *)
}

val default_profile : profile
val killer_profile : profile
(** The acceptance profile: kill-heavy plans, one permanent kill per seed,
    frequent torn tails. *)

val bounded_profile : profile
(** Small and fast (CI smoke): 3 sites, short load, at most a few faults. *)

val profile_of_string : string -> profile option
(** ["default"], ["killer"], ["bounded"]. *)

type violation = { v_kind : string; v_detail : string }

type seed_report = {
  sr_seed : int;
  sr_plan : Dvp_runtime.Fault.t;  (** the plan that ran *)
  sr_kills : int list;  (** distinct sites the plan killed *)
  sr_forever : int list;  (** of those, killed permanently *)
  sr_respawns : int;  (** respawns (plan + final revival) *)
  sr_replayed : (int * int) list;  (** (site, records replayed), killed sites *)
  sr_torn : int;  (** WAL tails torn and repaired *)
  sr_sink_fails : int;  (** injected force failures *)
  sr_chaos : int * int * int;  (** messages (dropped, duplicated, delayed) *)
  sr_bg_committed : int;  (** background transactions committed *)
  sr_quiesced : bool;
  sr_violations : violation list;  (** empty = seed passed *)
  sr_crashdump : string option;
  sr_shrunk : Dvp_runtime.Fault.t option;
      (** 1-minimal plan still failing, when shrinking ran *)
}

val failed : seed_report -> bool

val run_seed :
  profile:profile ->
  seed:int ->
  ?plan:Dvp_runtime.Fault.t ->
  ?crashdumps:string ->
  unit ->
  seed_report
(** Run one seed.  [plan] overrides the generated
    {!Dvp_runtime.Fault.plan} (used by the shrinker and tests).
    [crashdumps] names a directory for flight-recorder dumps of failing
    runs. *)

type report = {
  rp_profile : string;
  rp_first_seed : int;
  rp_seeds : int;
  rp_results : seed_report list;  (** in seed order *)
  rp_failures : int;
  rp_kills : int;
  rp_respawns : int;
  rp_replayed : int;
  rp_bg_committed : int;
}

val run :
  ?profile:profile ->
  ?seeds:int ->
  ?first_seed:int ->
  ?crashdumps:string ->
  unit ->
  report

val ok : report -> bool

val seed_report_to_json : seed_report -> Dvp_util.Json.t
val report_to_json : report -> Dvp_util.Json.t
val pp_seed : Format.formatter -> seed_report -> unit
val pp_report : Format.formatter -> report -> unit
