(** Seeded fault-schedule generation.

    [schedule ~seed ~profile] draws one concrete fault plan: crash/recover
    storms, flapping partitions, link-loss windows, and checkpoint jitter
    via {!Dvp_workload.Faultplan.random}, plus storage faults — each crash
    is preceded, with the profile's probability, by an armed WAL fault so the
    crash tears the in-progress flush.  Profiles with membership churn
    enabled also get Poisson join/leave attempts over the first three
    quarters of the run.  Deterministic in [(seed, profile)], and
    independent of the workload's random stream even though both derive
    from the same seed. *)

val schedule : seed:int -> profile:Profile.t -> Dvp_workload.Faultplan.t
