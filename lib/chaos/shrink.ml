(* Greedy drop-one-event minimization: repeatedly try removing each event and
   keep any removal under which the failure still reproduces, until no single
   removal does.  O(n²) re-runs in the worst case, but failing schedules are
   short and each re-run is a bounded run. *)
let minimize ~fails plan =
  let drop i l = List.filteri (fun j _ -> j <> i) l in
  let rec pass plan i =
    if i >= List.length plan then plan
    else
      let candidate = drop i plan in
      if fails candidate then pass candidate i else pass plan (i + 1)
  in
  let rec fix plan =
    let shrunk = pass plan 0 in
    if List.length shrunk < List.length plan then fix shrunk else shrunk
  in
  if fails plan then fix plan else plan
