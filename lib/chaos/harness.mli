(** Drive chaos runs end to end.

    One seed: build the profile's workload, generate the fault schedule
    ({!Gen.schedule}), hook the {!Oracle} just after every scheduled
    recovery, run, and check the end state and outcome counters.  A run is a
    pure function of [(profile, seed, schedule)], so a failure reproduces
    from its seed alone and its schedule can be shrunk by re-running. *)

type seed_result = {
  seed : int;
  schedule : Dvp_workload.Faultplan.t;  (** the schedule actually applied *)
  violations : (float * Oracle.violation) list;
      (** (simulated time of detection, violation), in detection order *)
  committed : int;
  submitted : int;
  recoveries : int;  (** site recoveries performed *)
  wal_repairs : int;  (** recoveries that had to truncate a corrupt tail *)
  repaired_records : int;  (** log records truncated across those repairs *)
  crashdump : string option;
      (** where the flight recorder dumped this seed's trace window and
          telemetry, when the run failed and crashdumps were enabled *)
}

val failed : seed_result -> bool

val run_seed :
  profile:Profile.t ->
  seed:int ->
  ?schedule:Dvp_workload.Faultplan.t ->
  ?extra_checks:(Dvp_core.System.t -> Oracle.violation list) ->
  ?crashdumps:string ->
  unit ->
  seed_result
(** Run one seed.  [schedule] overrides the generated plan (used by the
    shrinker and by tests); omit it to get [Gen.schedule ~seed ~profile].

    [extra_checks] runs alongside {!Oracle.check_system} at every oracle
    point — tests use it to inject a known-failing check and assert on the
    crashdump machinery.  [crashdumps] names a directory; when given, the
    run carries a trace ring and telemetry registry, and a failing seed
    dumps both through {!Dvp_obs.Flight} (the path lands in
    [seed_result.crashdump] and in the failure report). *)

type failure = {
  result : seed_result;
  shrunk : Dvp_workload.Faultplan.t;  (** 1-minimal schedule still reproducing it *)
}

type report = {
  profile : Profile.t;
  first_seed : int;
  seeds : int;
  failures : failure list;
  total_committed : int;
  total_submitted : int;
  total_recoveries : int;
  total_wal_repairs : int;
  total_repaired_records : int;
}

val run :
  ?first_seed:int ->
  seeds:int ->
  profile:Profile.t ->
  ?extra_checks:(Dvp_core.System.t -> Oracle.violation list) ->
  ?crashdumps:string ->
  unit ->
  report
(** Run seeds [first_seed .. first_seed + seeds - 1] (default first seed 1),
    shrinking every failing schedule with {!Shrink.minimize}.  Shrink
    re-runs inherit [extra_checks] (so injected failures still reproduce)
    but never write crashdumps — only the original failing run leaves an
    artifact. *)

val report_to_json : report -> Dvp_util.Json.t

val pp_report : Format.formatter -> report -> unit
(** Human summary: totals, then — for each failing seed — the violations,
    the reproduction command line, and the shrunk schedule. *)
