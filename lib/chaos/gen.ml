module Rng = Dvp_util.Rng
module Faultplan = Dvp_workload.Faultplan
module Wal = Dvp_storage.Wal

(* The schedule stream must be independent of the workload stream (both are
   derived from the same user-facing seed): mix the seed before creating the
   generator so the two SplitMix64 sequences never coincide. *)
let rng_of_seed seed = Rng.create (seed lxor 0x5bd1e995)

let checkpoint_jitter rng ~rate ~n_sites ~until =
  if rate <= 0.0 then []
  else begin
    let rec go time acc =
      let time = time +. Rng.exponential rng (1.0 /. rate) in
      if time >= until then List.rev acc
      else go time (Faultplan.at time (Faultplan.Checkpoint (Rng.int rng n_sites)) :: acc)
    in
    go 0.0 []
  end

(* Pair crashes with storage faults: with probability [prob] a crash is
   preceded (same instant, same site — merge is stable) by an armed WAL
   fault, so the crash tears or corrupts the flush of the unforced buffer. *)
let with_storage_faults rng ~prob plan =
  List.concat_map
    (fun e ->
      match e.Faultplan.action with
      | Faultplan.Crash s when Rng.bernoulli rng prob ->
        let fault =
          if Rng.bool rng then Wal.Torn { persist = 1 + Rng.int rng 3 }
          else Wal.Corrupt_tail
        in
        [ Faultplan.at e.Faultplan.at (Faultplan.Storage_fault (s, fault)); e ]
      | _ -> [ e ])
    plan

(* One permanent kill somewhere in the middle third of the run.  The
   victim's own later events are dropped: a [Recover] would be a no-op on the
   DvP system (dead-forever sites refuse recovery) but would silently
   resurrect a baseline, and crashes of an already-dead site are noise. *)
let with_kill rng ~n_sites ~duration plan =
  let victim = Rng.int rng n_sites in
  let kill_at = duration *. (0.3 +. (0.3 *. Rng.float rng 1.0)) in
  let keep e =
    e.Faultplan.at < kill_at
    ||
    match e.Faultplan.action with
    | Faultplan.Crash s | Faultplan.Recover s | Faultplan.Checkpoint s
    | Faultplan.Storage_fault (s, _) ->
      s <> victim
    | _ -> true
  in
  Faultplan.merge
    [ Faultplan.at kill_at (Faultplan.Kill_forever victim) ]
    (List.filter keep plan)

(* Membership churn: join attempts (random spare slot) and graceful-leave
   attempts (random slot, spares included — the system refuses the silly
   ones) as independent Poisson processes.  Attempts stop well before the
   end of offered load so in-flight handshakes drain before the final
   oracle pass.  Draws from the rng only when enabled, keeping historical
   profiles' schedule streams seed-for-seed identical. *)
let with_churn rng ~(profile : Profile.t) plan =
  let n = profile.Profile.n_sites and spares = profile.Profile.spare_sites in
  let until = profile.Profile.duration *. 0.75 in
  let poisson ~rate pick_action =
    if rate <= 0.0 then []
    else begin
      let rec go time acc =
        let time = time +. Rng.exponential rng (1.0 /. rate) in
        if time >= until then List.rev acc
        else go time (Faultplan.at time (pick_action ()) :: acc)
      in
      go 0.0 []
    end
  in
  let joins =
    if spares = 0 then []
    else
      poisson ~rate:profile.Profile.join_rate (fun () ->
          Faultplan.Join (n + Rng.int rng spares))
  in
  let leaves =
    poisson ~rate:profile.Profile.leave_rate (fun () ->
        Faultplan.Leave (Rng.int rng (n + spares)))
  in
  Faultplan.merge plan (Faultplan.merge joins leaves)

let schedule ~seed ~(profile : Profile.t) =
  let rng = rng_of_seed seed in
  let base =
    Faultplan.random ~rng ~n_sites:profile.Profile.n_sites
      ~until:profile.Profile.duration ~crash_rate:profile.Profile.crash_rate
      ~mean_downtime:profile.Profile.mean_downtime
      ~partition_rate:profile.Profile.partition_rate
      ~mean_partition_len:profile.Profile.mean_partition_len
      ~loss_rate:profile.Profile.loss_rate ~mean_loss_len:profile.Profile.mean_loss_len
      ~max_loss:profile.Profile.max_loss ()
  in
  let ckpts =
    checkpoint_jitter rng ~rate:profile.Profile.checkpoint_rate
      ~n_sites:profile.Profile.n_sites ~until:profile.Profile.duration
  in
  let plan =
    with_storage_faults rng ~prob:profile.Profile.storage_fault_prob
      (Faultplan.merge base ckpts)
  in
  (* Killing and churn draw from the rng only when enabled, so existing
     profiles keep their historical schedule streams seed-for-seed. *)
  let plan =
    if profile.Profile.kill_forever then
      with_kill rng ~n_sites:profile.Profile.n_sites
        ~duration:profile.Profile.duration plan
    else plan
  in
  if profile.Profile.join_rate > 0.0 || profile.Profile.leave_rate > 0.0 then
    with_churn rng ~profile plan
  else plan
