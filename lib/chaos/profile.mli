(** Declarative chaos profiles.

    A profile fixes the shape of a chaos run — system size, workload
    pressure, and the intensity of every fault class — so that a run is a
    pure function of [(profile, seed)].  {!Gen.schedule} turns a profile into
    a concrete {!Dvp_workload.Faultplan.t}; {!Harness.run_seed} drives one
    seed end to end. *)

type t = {
  label : string;
  n_sites : int;
  duration : float;  (** seconds of offered load *)
  drain : float;
      (** settle time after load stops; must exceed the transaction timeout
          so every submission resolves before the end-of-run oracle *)
  arrival_rate : float;  (** transactions per second (open loop) *)
  n_items : int;
  item_total : int;  (** initial aggregate value per item *)
  crash_rate : float;  (** site crashes per second (Poisson) *)
  mean_downtime : float;
  storage_fault_prob : float;
      (** probability a crash is preceded by an armed WAL fault (torn flush
          or corrupt tail, split evenly) *)
  partition_rate : float;  (** partition episodes per second *)
  mean_partition_len : float;
  loss_rate : float;  (** link-loss windows per second *)
  mean_loss_len : float;
  max_loss : float;  (** loss probability drawn uniformly from [0, max_loss) *)
  checkpoint_rate : float;  (** checkpoints per second, random victim site *)
  detector : bool;
      (** arm the heartbeat failure detector (with auto-evacuation) on the
          system under test *)
  kill_forever : bool;
      (** permanently kill one random site partway through the run — the
          degraded-mode scenario the detector and evacuation must survive *)
  spare_sites : int;
      (** detached spare slots beyond [n_sites], available for {!Dvp_workload.Faultplan.Join} *)
  join_rate : float;  (** join attempts per second (Poisson), random spare slot *)
  leave_rate : float;
      (** graceful-leave attempts per second (Poisson), random slot — the
          system's own refusals (non-member, down, too few members) apply *)
  rebalance : bool;  (** arm policy-driven auto-rebalancing on the system under test *)
}

val bounded : t
(** Small and fast — the tier-1 torture test and CI smoke profile. *)

val default : t

val heavy : t

val killer : t
(** Degraded-mode torture: detector + auto-evacuation on, one site killed
    forever mid-run, plus moderate background chaos. *)

val churn : t
(** Elastic-membership torture: spare slots join and members leave
    throughout the run (epoch bumps, Vm-channel restarts), with
    auto-rebalancing and the detector armed, plus moderate background
    chaos.  No permanent kills — a dead-forever peer legitimately stalls a
    graceful drain. *)

val all : t list

val names : string list

val of_string : string -> t option
(** Look a preset up by label (case-insensitive). *)

val spec : t -> seed:int -> Dvp_workload.Spec.t
(** The workload spec a chaos run drives: uniform arrivals over the
    profile's items with a mixed increment/decrement/transfer op profile. *)

val to_json : t -> Dvp_util.Json.t
