module Cluster = Dvp_runtime.Cluster
module Supervisor = Dvp_runtime.Supervisor
module Fault = Dvp_runtime.Fault
module Walfile = Dvp_runtime.Walfile
module Observer = Dvp_runtime.Observer
module Wal = Dvp_storage.Wal
module Local_db = Dvp_storage.Local_db
module Log_event = Dvp_core.Log_event
module Log_replay = Dvp_core.Log_replay
module Config = Dvp_core.Config
module Health = Dvp_health.Health
module Json = Dvp_util.Json

type profile = {
  name : string;
  n : int;
  items : (int * int) list;
  load : float;
  amount : int;
  spec : Fault.spec;
  watch_every : float;
  quiesce_timeout : float;
  shrink : bool;
}

let default_profile =
  {
    name = "default";
    n = 4;
    items = [ (0, 4000); (1, 2400) ];
    load = 2.0;
    amount = 1;
    spec = Fault.default_spec;
    watch_every = 0.15;
    quiesce_timeout = 30.0;
    shrink = false;
  }

let killer_profile =
  {
    default_profile with
    name = "killer";
    load = 2.5;
    spec = Fault.killer_spec;
  }

let bounded_profile =
  {
    name = "bounded";
    n = 3;
    items = [ (0, 900) ];
    load = 0.8;
    amount = 1;
    spec =
      {
        Fault.default_spec with
        Fault.horizon = 0.8;
        Fault.kills = 1.0;
        Fault.sink_fails = 0.5;
        Fault.link_storms = 0.5;
        Fault.max_downtime = 0.2;
      };
    watch_every = 0.1;
    quiesce_timeout = 15.0;
    shrink = true;
  }

let profile_of_string = function
  | "default" -> Some default_profile
  | "killer" -> Some killer_profile
  | "bounded" -> Some bounded_profile
  | _ -> None

type violation = { v_kind : string; v_detail : string }

type seed_report = {
  sr_seed : int;
  sr_plan : Fault.t;
  sr_kills : int list;
  sr_forever : int list;
  sr_respawns : int;
  sr_replayed : (int * int) list;
  sr_torn : int;
  sr_sink_fails : int;
  sr_chaos : int * int * int;
  sr_bg_committed : int;
  sr_quiesced : bool;
  sr_violations : violation list;
  sr_crashdump : string option;
  sr_shrunk : Fault.t option;
}

let failed r = r.sr_violations <> []

(* Unique scratch directory per run: the pid disambiguates concurrent test
   processes, the counter concurrent runs inside one (shrinking re-runs). *)
let dir_counter = Atomic.make 0

let fresh_wal_dir ~seed =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dvp-wall-%d-%d-%d" (Unix.getpid ()) seed
         (Atomic.fetch_and_add dir_counter 1))
  in
  Unix.mkdir dir 0o700;
  dir

let remove_wal_dir dir =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
       (Sys.readdir dir)
   with _ -> ());
  try Unix.rmdir dir with _ -> ()

let tbl_get tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:0

(* Rebuild an in-memory log from a site's on-disk frame prefix, so the
   shared replay logic (Log_replay) defines what the file means — the same
   definition live recovery uses. *)
let wal_of_records records =
  let w = Wal.create () in
  List.iter (fun r -> Wal.append ~forced:false w r) records;
  Wal.force w;
  w

(* The offline file oracle: audit the on-disk WAL frames directly, with no
   help from the live structures.  Sound only at quiesce with every site
   live (in-flight value zero, outboxes drained). *)
let file_oracle ~cluster ~n ~items =
  let violations = ref [] in
  let viol v_kind fmt =
    Printf.ksprintf (fun v_detail -> violations := { v_kind; v_detail } :: !violations) fmt
  in
  let per_site =
    List.init n (fun i ->
        match Cluster.wal_path cluster i with
        | None -> None
        | Some path ->
          let r = Walfile.read path in
          if r.Walfile.torn then
            viol "file_torn" "site %d: WAL file still torn at end of run" i;
          let w = wal_of_records r.Walfile.records in
          Some (i, r.Walfile.records, Log_replay.db_view w, Log_replay.vm_view ~n w))
  in
  let per_site = List.filter_map Fun.id per_site in
  (* (a) durability: the file prefix replays to exactly the live fragments. *)
  List.iter
    (fun item ->
      let live = Cluster.fragments cluster ~item in
      List.iter
        (fun (i, _, dbv, _) ->
          let file_v = Local_db.value dbv.Log_replay.db ~item in
          if file_v <> live.(i) then
            viol "file_durability"
              "site %d item %d: file replays to %d, live fragment is %d" i item
              file_v live.(i))
        per_site)
    items;
  (* (b) Vm in-flight from the files is zero at quiesce: every value launched
     (forced Vm_create) was accepted (forced Vm_accept) somewhere. *)
  List.iter
    (fun item ->
      let sent =
        List.fold_left
          (fun acc (_, _, _, vmv) -> acc + tbl_get vmv.Log_replay.vm_cum_sent item)
          0 per_site
      and recv =
        List.fold_left
          (fun acc (_, _, _, vmv) -> acc + tbl_get vmv.Log_replay.vm_cum_recv item)
          0 per_site
      in
      if sent <> recv then
        viol "file_inflight" "item %d: files show %d sent vs %d accepted" item sent
          recv)
    items;
  (* (c) conservation from stable state alone: fragments = installs + committed
     operator deltas, summed across sites (in-flight is zero by (b)). *)
  List.iter
    (fun item ->
      let frag =
        List.fold_left
          (fun acc (_, _, dbv, _) -> acc + Local_db.value dbv.Log_replay.db ~item)
          0 per_site
      and installed =
        List.fold_left
          (fun acc (_, _, dbv, _) -> acc + tbl_get dbv.Log_replay.installed item)
          0 per_site
      and delta =
        List.fold_left
          (fun acc (_, _, dbv, _) -> acc + tbl_get dbv.Log_replay.deltas item)
          0 per_site
      in
      if frag <> installed + delta then
        viol "file_conservation"
          "item %d: files hold %d but installed %d + deltas %d = %d" item frag
          installed delta (installed + delta))
    items;
  (* (d) exactly-once acceptance: per (receiver, peer) channel the forced
     Vm_accept stream is gap-free.  A seq at or below the watermark is a
     duplicate image (legitimate after tail repair + retransmission); a seq
     past watermark+1 means value was credited without in-order acceptance. *)
  List.iter
    (fun (i, records, _, _) ->
      let wm = Array.make n (-1) in
      List.iter
        (fun rec_ ->
          match rec_ with
          | Log_event.Vm_accept { peer; seq; _ } ->
            if seq > wm.(peer) + 1 then
              viol "vm_gap"
                "site %d accepted seq %d from peer %d past watermark %d" i seq
                peer wm.(peer)
            else if seq > wm.(peer) then wm.(peer) <- seq
          | Log_event.Vm_channel_reset { peer; _ } -> wm.(peer) <- -1
          | _ -> ())
        records)
    per_site;
  (* (e) non-negativity: fragments are quantities; no logged absolute value
     may be negative. *)
  List.iter
    (fun (i, records, _, _) ->
      List.iter
        (fun rec_ ->
          let check_actions actions =
            List.iter
              (fun (Log_event.Set_fragment { item; value }) ->
                if value < 0 then
                  viol "negative_value" "site %d logged fragment %d for item %d" i
                    value item)
              actions
          in
          match rec_ with
          | Log_event.Vm_create { actions; _ } | Log_event.Txn_commit { actions; _ }
            ->
            check_actions actions
          | Log_event.Vm_accept { new_value; item; _ } ->
            if new_value < 0 then
              viol "negative_value" "site %d accepted into fragment %d for item %d"
                i new_value item
          | _ -> ())
        records)
    per_site;
  List.rev !violations

let exec_seed ~(profile : profile) ~seed ~plan ?crashdumps () =
  let wal_dir = fresh_wal_dir ~seed in
  let config =
    {
      Config.default with
      Config.health =
        Some { Health.default_config with Health.condemn_after = 8.0 };
    }
  in
  let cluster =
    Cluster.create ~seed ~config ~wal_dir ~tracing:true ~n:profile.n
      ~items:profile.items ()
  in
  let observer =
    Observer.start ~every:profile.watch_every ~watchdog:true
      ?flight_dir:crashdumps cluster
  in
  let sup = Supervisor.create cluster in
  let violations = ref [] in
  let viol v_kind fmt =
    Printf.ksprintf (fun v_detail -> violations := { v_kind; v_detail } :: !violations) fmt
  in
  let t0 = Unix.gettimeofday () in
  Cluster.start_bg_load cluster ~duration:profile.load ~amount:profile.amount ();
  let pr = Supervisor.run_plan sup plan in
  (* Let the background load run out before healing, so recovery always
     happens under traffic rather than on an idle cluster. *)
  let remain = t0 +. profile.load -. Unix.gettimeofday () in
  if remain > 0.0 then Unix.sleepf remain;
  Supervisor.heal sup;
  (* Revive everything the plan left dead (permanent kills, tripped
     breakers): conservation over live fragments needs the full membership
     back, and the revival is itself the recovery path under test. *)
  let revived = ref 0 in
  List.iter
    (fun i ->
      if Supervisor.breaker_tripped sup i then Supervisor.reset_breaker sup i;
      match Supervisor.revive sup i with
      | Some _ -> incr revived
      | None -> viol "revive" "site %d would not revive at end of run" i)
    (Cluster.dead_sites cluster);
  if !revived > 0 then Supervisor.heal sup;
  let quiesced = Cluster.quiesce ~timeout:profile.quiesce_timeout cluster in
  if not quiesced then
    viol "quiesce" "cluster failed to quiesce within %.1fs" profile.quiesce_timeout;
  (* Live verdicts: the final freeze-barrier cut and the closed-loop totals. *)
  let cut = Cluster.sample_cut cluster in
  if not (Cluster.cut_ok cut) then
    List.iter
      (fun ci ->
        if not ci.Cluster.ci_ok then
          viol "cut"
            "final cut, item %d: fragments %d + in-flight %d <> expected %d"
            ci.Cluster.ci_item ci.Cluster.ci_fragments ci.Cluster.ci_in_flight
            ci.Cluster.ci_expected)
      cut.Cluster.cut_items;
  if not (Cluster.conserved_all cluster) then
    List.iter
      (fun item ->
        let got = Array.fold_left ( + ) 0 (Cluster.fragments cluster ~item) in
        match Cluster.expected_total cluster ~item with
        | Some want when got <> want ->
          viol "conservation" "item %d: fragments total %d, expected %d" item got
            want
        | _ -> ())
      (Cluster.items cluster);
  (* Recovery evidence: every killed site must have replayed its stable log
     (install records guarantee a non-empty log, so zero replay means the
     respawn never read the file), and the run must have carried traffic. *)
  let kills = Fault.kills_of plan in
  let replayed =
    List.map
      (fun i ->
        let r = Cluster.replayed cluster i in
        if r = 0 then viol "no_replay" "killed site %d replayed no records" i;
        (i, r))
      kills
  in
  let bg = Cluster.bg_committed cluster in
  if bg = 0 then viol "no_traffic" "background load committed nothing";
  (* Watchdog alarms recorded during the run are conservation violations the
     final state cannot show (the cut that caught them is in the alarm). *)
  let alarms = Observer.alarms observer in
  List.iter
    (fun al ->
      List.iter
        (fun ci ->
          if not ci.Cluster.ci_ok then
            viol "watchdog"
              "cut at t=%.3f, item %d: fragments %d + in-flight %d <> expected %d"
              al.Observer.al_at ci.Cluster.ci_item ci.Cluster.ci_fragments
              ci.Cluster.ci_in_flight ci.Cluster.ci_expected)
        al.Observer.al_cut.Cluster.cut_items)
    alarms;
  (* Offline oracle over the on-disk frames — every force flushed, so the
     files are current without stopping the cluster first. *)
  let file_violations =
    if quiesced && Cluster.dead_sites cluster = [] then
      file_oracle ~cluster ~n:profile.n ~items:(Cluster.items cluster)
    else []
  in
  violations := List.rev_append file_violations !violations;
  let ordered = List.rev !violations in
  let crashdump =
    match List.find_map (fun al -> al.Observer.al_dump) alarms with
    | Some _ as d -> d
    | None ->
      if ordered <> [] && crashdumps <> None then (
        let verdict =
          Json.List
            (List.map
               (fun v ->
                 Json.Obj
                   [ ("kind", Json.String v.v_kind); ("detail", Json.String v.v_detail) ])
               ordered)
        in
        let label = Printf.sprintf "wall-seed%d" seed in
        try Some (Dvp_obs.Flight.dump (Observer.flight observer) ~label ~verdict)
        with _ -> None)
      else None
  in
  let chaos = Cluster.chaos_counts cluster in
  Observer.stop observer;
  Cluster.stop cluster;
  remove_wal_dir wal_dir;
  {
    sr_seed = seed;
    sr_plan = plan;
    sr_kills = kills;
    sr_forever = Fault.forever_of plan;
    sr_respawns = pr.Supervisor.pr_respawns + !revived;
    sr_replayed = replayed;
    sr_torn = pr.Supervisor.pr_torn;
    sr_sink_fails = pr.Supervisor.pr_sink_fails;
    sr_chaos = chaos;
    sr_bg_committed = bg;
    sr_quiesced = quiesced;
    sr_violations = ordered;
    sr_crashdump = crashdump;
    sr_shrunk = None;
  }

let rec run_seed ~profile ~seed ?plan ?crashdumps () =
  let plan =
    match plan with
    | Some p -> p
    | None -> Fault.plan ~seed ~n:profile.n profile.spec
  in
  let r = exec_seed ~profile ~seed ~plan ?crashdumps () in
  (* Shrinking re-runs the plan on real hardware, so the minimal plan is
     evidence (it failed when we re-ran it), not proof of determinism.
     Bounded to short plans: each probe is a full wall-clock run. *)
  if failed r && profile.shrink && List.length plan <= 12 then
    let quiet = { profile with shrink = false } in
    let fails p = failed (run_seed ~profile:quiet ~seed ~plan:p ()) in
    { r with sr_shrunk = Some (Shrink.minimize ~fails plan) }
  else r

type report = {
  rp_profile : string;
  rp_first_seed : int;
  rp_seeds : int;
  rp_results : seed_report list;
  rp_failures : int;
  rp_kills : int;
  rp_respawns : int;
  rp_replayed : int;
  rp_bg_committed : int;
}

let run ?(profile = default_profile) ?(seeds = 5) ?(first_seed = 1) ?crashdumps () =
  let results = ref [] in
  for seed = first_seed to first_seed + seeds - 1 do
    results := run_seed ~profile ~seed ?crashdumps () :: !results
  done;
  let results = List.rev !results in
  {
    rp_profile = profile.name;
    rp_first_seed = first_seed;
    rp_seeds = seeds;
    rp_results = results;
    rp_failures = List.length (List.filter failed results);
    rp_kills = List.fold_left (fun a r -> a + List.length r.sr_kills) 0 results;
    rp_respawns = List.fold_left (fun a r -> a + r.sr_respawns) 0 results;
    rp_replayed =
      List.fold_left
        (fun a r -> a + List.fold_left (fun b (_, n) -> b + n) 0 r.sr_replayed)
        0 results;
    rp_bg_committed = List.fold_left (fun a r -> a + r.sr_bg_committed) 0 results;
  }

let ok r = r.rp_failures = 0

let violation_to_json v =
  Json.Obj [ ("kind", Json.String v.v_kind); ("detail", Json.String v.v_detail) ]

let seed_report_to_json r =
  let drops, dups, delays = r.sr_chaos in
  Json.Obj
    [
      ("seed", Json.Int r.sr_seed);
      ("plan", Fault.to_json r.sr_plan);
      ("kills", Json.List (List.map (fun i -> Json.Int i) r.sr_kills));
      ("forever", Json.List (List.map (fun i -> Json.Int i) r.sr_forever));
      ("respawns", Json.Int r.sr_respawns);
      ( "replayed",
        Json.Obj
          (List.map (fun (i, n) -> (string_of_int i, Json.Int n)) r.sr_replayed) );
      ("torn_tails", Json.Int r.sr_torn);
      ("sink_fails", Json.Int r.sr_sink_fails);
      ("msgs_dropped", Json.Int drops);
      ("msgs_duplicated", Json.Int dups);
      ("msgs_delayed", Json.Int delays);
      ("bg_committed", Json.Int r.sr_bg_committed);
      ("quiesced", Json.Bool r.sr_quiesced);
      ("violations", Json.List (List.map violation_to_json r.sr_violations));
      ( "crashdump",
        match r.sr_crashdump with Some p -> Json.String p | None -> Json.Null );
      ( "shrunk_plan",
        match r.sr_shrunk with Some p -> Fault.to_json p | None -> Json.Null );
    ]

let report_to_json r =
  Json.Obj
    [
      ("profile", Json.String r.rp_profile);
      ("first_seed", Json.Int r.rp_first_seed);
      ("seeds", Json.Int r.rp_seeds);
      ("failures", Json.Int r.rp_failures);
      ("kills", Json.Int r.rp_kills);
      ("respawns", Json.Int r.rp_respawns);
      ("replayed_records", Json.Int r.rp_replayed);
      ("bg_committed", Json.Int r.rp_bg_committed);
      ("seeds_detail", Json.List (List.map seed_report_to_json r.rp_results));
    ]

let pp_seed ppf r =
  let drops, dups, delays = r.sr_chaos in
  Format.fprintf ppf
    "@[<v>seed %d: %d kill(s) (%d permanent), %d respawn(s), %d record(s) \
     replayed@,\
     torn tails repaired: %d  sink faults: %d  links: %d dropped / %d duplicated \
     / %d delayed@,\
     background commits: %d  quiesced: %b@,"
    r.sr_seed (List.length r.sr_kills)
    (List.length r.sr_forever)
    r.sr_respawns
    (List.fold_left (fun a (_, n) -> a + n) 0 r.sr_replayed)
    r.sr_torn r.sr_sink_fails drops dups delays r.sr_bg_committed r.sr_quiesced;
  (match r.sr_violations with
  | [] -> Format.fprintf ppf "invariants: OK"
  | vs ->
    Format.fprintf ppf "invariants: %d violation(s)@," (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "  [%s] %s@," v.v_kind v.v_detail) vs;
    (match r.sr_crashdump with
    | Some p -> Format.fprintf ppf "  crashdump: %s@," p
    | None -> ());
    match r.sr_shrunk with
    | Some p ->
      Format.fprintf ppf "  minimal plan (%d of %d events):@,    @[<v>%a@]"
        (List.length p) (List.length r.sr_plan) Fault.pp p
    | None -> ());
  Format.fprintf ppf "@]"

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>wall chaos %s: %d seed(s) starting at %d@,\
     kills: %d  respawns: %d  records replayed: %d  background commits: %d@,"
    r.rp_profile r.rp_seeds r.rp_first_seed r.rp_kills r.rp_respawns r.rp_replayed
    r.rp_bg_committed;
  if r.rp_failures = 0 then Format.fprintf ppf "invariants: OK — no violations@]"
  else begin
    Format.fprintf ppf "invariants: %d seed(s) FAILED@," r.rp_failures;
    List.iter
      (fun sr -> if failed sr then Format.fprintf ppf "%a@," pp_seed sr)
      r.rp_results;
    Format.fprintf ppf "@]"
  end
