module Json = Dvp_util.Json

type t = {
  label : string;
  n_sites : int;
  duration : float;
  drain : float;
  arrival_rate : float;
  n_items : int;
  item_total : int;
  crash_rate : float;
  mean_downtime : float;
  storage_fault_prob : float;
  partition_rate : float;
  mean_partition_len : float;
  loss_rate : float;
  mean_loss_len : float;
  max_loss : float;
  checkpoint_rate : float;
  detector : bool;
  kill_forever : bool;
  spare_sites : int;
  join_rate : float;
  leave_rate : float;
  rebalance : bool;
}

(* Small and quick: the tier-1 torture test and the check.sh smoke stage run
   hundreds of these.  The drain must exceed the transaction timeout so
   every submitted transaction resolves before the metrics-sanity checks. *)
let bounded =
  {
    label = "bounded";
    n_sites = 4;
    duration = 6.0;
    drain = 2.0;
    arrival_rate = 40.0;
    n_items = 2;
    item_total = 2000;
    crash_rate = 0.5;
    mean_downtime = 0.6;
    storage_fault_prob = 0.6;
    partition_rate = 0.3;
    mean_partition_len = 0.8;
    loss_rate = 0.25;
    mean_loss_len = 0.8;
    max_loss = 0.3;
    checkpoint_rate = 0.4;
    detector = false;
    kill_forever = false;
    spare_sites = 0;
    join_rate = 0.0;
    leave_rate = 0.0;
    rebalance = false;
  }

let default =
  {
    label = "default";
    n_sites = 6;
    duration = 12.0;
    drain = 3.0;
    arrival_rate = 60.0;
    n_items = 3;
    item_total = 3000;
    crash_rate = 0.8;
    mean_downtime = 0.8;
    storage_fault_prob = 0.6;
    partition_rate = 0.4;
    mean_partition_len = 1.2;
    loss_rate = 0.3;
    mean_loss_len = 1.0;
    max_loss = 0.4;
    checkpoint_rate = 0.6;
    detector = false;
    kill_forever = false;
    spare_sites = 0;
    join_rate = 0.0;
    leave_rate = 0.0;
    rebalance = false;
  }

let heavy =
  {
    label = "heavy";
    n_sites = 8;
    duration = 20.0;
    drain = 4.0;
    arrival_rate = 100.0;
    n_items = 4;
    item_total = 4000;
    crash_rate = 1.5;
    mean_downtime = 1.0;
    storage_fault_prob = 0.7;
    partition_rate = 0.8;
    mean_partition_len = 1.5;
    loss_rate = 0.5;
    mean_loss_len = 1.5;
    max_loss = 0.5;
    checkpoint_rate = 1.0;
    detector = false;
    kill_forever = false;
    spare_sites = 0;
    join_rate = 0.0;
    leave_rate = 0.0;
    rebalance = false;
  }

(* Degraded-mode torture: every run arms the failure detector with
   auto-evacuation and permanently kills one site partway through, on top of
   moderate crash/partition noise.  The oracle must see conservation hold
   through detection, breaker parking, and the evacuation itself. *)
let killer =
  {
    label = "killer";
    n_sites = 6;
    duration = 10.0;
    drain = 3.0;
    arrival_rate = 50.0;
    n_items = 2;
    item_total = 3000;
    crash_rate = 0.4;
    mean_downtime = 0.6;
    storage_fault_prob = 0.4;
    partition_rate = 0.2;
    mean_partition_len = 0.8;
    loss_rate = 0.2;
    mean_loss_len = 0.8;
    max_loss = 0.3;
    checkpoint_rate = 0.4;
    detector = true;
    kill_forever = true;
    spare_sites = 0;
    join_rate = 0.0;
    leave_rate = 0.0;
    rebalance = false;
  }

(* Elastic-membership torture: two spare slots churn in and out (Poisson
   join/leave attempts), auto-rebalancing runs throughout, and the detector
   is armed — all on top of moderate crash/partition/loss noise.  No
   permanent kills: a dead-forever peer would stall a graceful leave's
   drain, which is a documented operator situation ([evacuate] the dead
   site first), not a chaos finding.  The oracle must see conservation and
   Vm exactly-once hold through every epoch bump and channel restart. *)
let churn =
  {
    label = "churn";
    n_sites = 4;
    duration = 12.0;
    drain = 4.0;
    arrival_rate = 50.0;
    n_items = 2;
    item_total = 3000;
    crash_rate = 0.3;
    mean_downtime = 0.5;
    storage_fault_prob = 0.3;
    partition_rate = 0.15;
    mean_partition_len = 0.6;
    loss_rate = 0.15;
    mean_loss_len = 0.6;
    max_loss = 0.25;
    checkpoint_rate = 0.4;
    detector = true;
    kill_forever = false;
    spare_sites = 2;
    join_rate = 0.4;
    leave_rate = 0.25;
    rebalance = true;
  }

let all = [ bounded; default; heavy; killer; churn ]

let of_string s =
  List.find_opt (fun p -> p.label = String.lowercase_ascii s) all

let names = List.map (fun p -> p.label) all

let spec t ~seed =
  {
    Dvp_workload.Spec.default with
    Dvp_workload.Spec.label = "chaos-" ^ t.label;
    Dvp_workload.Spec.n_sites = t.n_sites;
    Dvp_workload.Spec.items = List.init t.n_items (fun i -> (i, t.item_total));
    Dvp_workload.Spec.arrival_rate = t.arrival_rate;
    Dvp_workload.Spec.duration = t.duration;
    Dvp_workload.Spec.incr_fraction = 0.4;
    Dvp_workload.Spec.transfer_fraction = (if t.n_items > 1 then 0.1 else 0.0);
    Dvp_workload.Spec.seed = seed;
  }

let to_json t =
  Json.Obj
    [
      ("label", Json.String t.label);
      ("n_sites", Json.Int t.n_sites);
      ("duration", Json.Float t.duration);
      ("drain", Json.Float t.drain);
      ("arrival_rate", Json.Float t.arrival_rate);
      ("n_items", Json.Int t.n_items);
      ("item_total", Json.Int t.item_total);
      ("crash_rate", Json.Float t.crash_rate);
      ("mean_downtime", Json.Float t.mean_downtime);
      ("storage_fault_prob", Json.Float t.storage_fault_prob);
      ("partition_rate", Json.Float t.partition_rate);
      ("mean_partition_len", Json.Float t.mean_partition_len);
      ("loss_rate", Json.Float t.loss_rate);
      ("mean_loss_len", Json.Float t.mean_loss_len);
      ("max_loss", Json.Float t.max_loss);
      ("checkpoint_rate", Json.Float t.checkpoint_rate);
      ("detector", Json.Bool t.detector);
      ("kill_forever", Json.Bool t.kill_forever);
      ("spare_sites", Json.Int t.spare_sites);
      ("join_rate", Json.Float t.join_rate);
      ("leave_rate", Json.Float t.leave_rate);
      ("rebalance", Json.Bool t.rebalance);
    ]
