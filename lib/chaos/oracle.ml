module System = Dvp_core.System
module Site = Dvp_core.Site
module Wal = Dvp_storage.Wal
module Log_event = Dvp_core.Log_event
module Metrics = Dvp_core.Metrics
module Runner = Dvp_workload.Runner
module Json = Dvp_util.Json

type violation = { check : string; detail : string }

let v check fmt = Printf.ksprintf (fun detail -> { check; detail }) fmt

(* N = Σᵢ Nᵢ + N_M, per item, against the committed-delta-adjusted total.
   Crashed sites contribute their stable-replay fragments, so the check is
   meaningful at any event boundary, including mid-outage. *)
let conservation sys =
  List.filter_map
    (fun item ->
      let at_sites = System.total_at_sites sys ~item in
      let in_flight = System.in_flight sys ~item in
      let expected = System.expected_total sys ~item in
      if at_sites + in_flight <> expected then
        Some
          (v "conservation" "item %d: sites=%d + in-flight=%d = %d, expected %d" item
             at_sites in_flight (at_sites + in_flight) expected)
      else None)
    (System.items sys)

(* The escrow property: no fragment ever goes negative (bounded decrements
   must abort rather than overdraw), and no virtual message carries negative
   value. *)
let non_negativity sys =
  List.concat_map
    (fun item ->
      let frags = System.fragments sys ~item in
      let neg = ref [] in
      Array.iteri
        (fun site value ->
          if value < 0 then
            neg := v "non-negative-fragment" "item %d at site %d: %d" item site value :: !neg)
        frags;
      let in_flight = System.in_flight sys ~item in
      if in_flight < 0 then
        neg := v "non-negative-in-flight" "item %d: in-flight %d" item in_flight :: !neg;
      List.rev !neg)
    (System.items sys)

(* Exactly-once, in-order Vm acceptance, checked from the stable logs alone:
   scanning a site's log oldest-first, each [Vm_accept] from a peer must carry
   exactly the next sequence number past that peer's watermark (a repeat would
   mean a double credit, a skip a lost one).  Checkpoint records reset the
   watermarks to their snapshot. *)
let vm_exactly_once sys =
  let n = System.n_sites sys in
  let bad = ref [] in
  for site = 0 to n - 1 do
    let wal = Site.wal (System.site sys site) in
    let wm = Array.make n (-1) in
    Wal.iter wal (fun record ->
        match record with
        | Log_event.Vm_accept { peer; seq; _ } ->
          if seq <> wm.(peer) + 1 then
            bad :=
              v "vm-exactly-once" "site %d accepted seq %d from peer %d with watermark %d"
                site seq peer wm.(peer)
              :: !bad
          else wm.(peer) <- seq
        | Log_event.Checkpoint { accepted; _ } ->
          Array.fill wm 0 n (-1);
          List.iter (fun (peer, s) -> wm.(peer) <- s) accepted
        | Log_event.Vm_channel_reset { peer; _ } ->
          (* Membership transition: the channel with [peer] restarted at
             sequence zero under a new epoch, so acceptance restarts too. *)
          wm.(peer) <- -1
        | Log_event.Vm_create _ | Log_event.Txn_commit _ | Log_event.Txn_applied _
        | Log_event.Ack_progress _ -> ())
  done;
  List.rev !bad

(* A corrupt stable tail surviving past recovery would mean recovery replayed
   or appended around garbage. *)
let wal_integrity sys =
  let n = System.n_sites sys in
  let bad = ref [] in
  for site = 0 to n - 1 do
    let s = System.site sys site in
    if Site.is_up s then begin
      let tail = Wal.corrupt_tail (Site.wal s) in
      if tail > 0 then
        bad := v "wal-integrity" "site %d is up with %d corrupt stable records" site tail :: !bad
    end
  done;
  List.rev !bad

let check_system sys =
  conservation sys @ non_negativity sys @ vm_exactly_once sys @ wal_integrity sys

(* Counter cross-checks on a finished run.  The runner's own tallies and the
   merged site metrics describe the same transactions from two sides. *)
let check_outcome (o : Runner.outcome) =
  let sum = Array.fold_left ( + ) 0 in
  let bad = ref [] in
  let check name cond detail = if not cond then bad := { check = name; detail } :: !bad in
  check "metrics-sanity"
    (o.Runner.committed <= o.Runner.submitted)
    (Printf.sprintf "committed %d > submitted %d" o.Runner.committed o.Runner.submitted);
  check "metrics-sanity"
    (o.Runner.committed + o.Runner.aborted <= o.Runner.submitted)
    (Printf.sprintf "committed %d + aborted %d > submitted %d" o.Runner.committed
       o.Runner.aborted o.Runner.submitted);
  check "metrics-sanity"
    (sum o.Runner.per_site_committed = o.Runner.committed)
    (Printf.sprintf "per-site committed sums to %d, total %d"
       (sum o.Runner.per_site_committed) o.Runner.committed);
  check "metrics-sanity"
    (sum o.Runner.per_site_submitted = o.Runner.submitted)
    (Printf.sprintf "per-site submitted sums to %d, total %d"
       (sum o.Runner.per_site_submitted) o.Runner.submitted);
  check "metrics-sanity"
    (Metrics.committed o.Runner.metrics = o.Runner.committed)
    (Printf.sprintf "site metrics count %d commits, runner saw %d"
       (Metrics.committed o.Runner.metrics) o.Runner.committed);
  List.rev !bad

(* Degraded-mode liveness: a majority of healthy sites with plenty of
   offered load must commit *something*.  A permanently dead minority site
   stalling the whole system (e.g. every Ask splitting across a peer that can
   never answer, with no detector to route around it) shows up here. *)
let check_liveness sys (o : Runner.outcome) =
  (* Membership-aware: detached spare slots are down by design and must not
     count against (or toward) the healthy majority. *)
  let ms = System.members sys in
  let m = List.length ms in
  let up = List.length (List.filter (fun i -> System.site_up sys i) ms) in
  if (2 * up > m) && o.Runner.submitted >= 50 && o.Runner.committed = 0 then
    [
      v "liveness" "%d/%d members up, %d transactions submitted, none committed" up m
        o.Runner.submitted;
    ]
  else []

let violation_to_json { check; detail } =
  Json.Obj [ ("check", Json.String check); ("detail", Json.String detail) ]

let pp_violation ppf { check; detail } = Format.fprintf ppf "%s: %s" check detail
