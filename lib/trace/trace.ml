module Json = Dvp_util.Json

type ts = int * int

type event =
  | Txn_begin of { site : int; txn : ts; n_ops : int }
  | Txn_commit of { site : int; txn : ts }
  | Txn_abort of { site : int; txn : ts; reason : string }
  | Vm_created of { site : int; dst : int; seq : int; item : int; amount : int }
  | Vm_accepted of { site : int; src : int; seq : int; item : int; amount : int }
  | Vm_retransmit of { site : int; dst : int; seq : int; item : int; amount : int }
  | Vm_dup of { site : int; src : int; seq : int }
  | Lock_acquire of { site : int; txn : ts; items : int list }
  | Lock_release of { site : int; txn : ts }
  | Request_sent of { site : int; dst : int; txn : ts; item : int; amount : int }
  | Request_honored of { site : int; src : int; txn : ts; item : int; amount : int }
  | Request_ignored of { site : int; src : int; txn : ts; item : int; reason : string }
  | Crash of { site : int }
  | Recover of { site : int; redo : int }
  | Checkpoint of { site : int; log_length : int }
  | Storage_fault of { site : int; kind : string }
  | Wal_repair of { site : int; dropped : int }
  | Net_send of { src : int; dst : int }
  | Net_drop of { src : int; dst : int }
  | Health of { site : int; peer : int; state : string }
  | Evacuation of { site : int; value_moved : int; vms_delivered : int; stranded : int }
  | Outbox_high of { site : int; depth : int; limit : int }
  | Mailbox_high of { site : int; depth : int; limit : int }
  | Join of { site : int; epoch : int; seeded : int }
  | Leave of { site : int; epoch : int; shed : int }
  | Rebalance of { moved : int }
  | Note of { category : string; message : string }

type entry = { time : float; category : string; message : string }

type t = {
  capacity : int;
  buf : (float * event) option array;
  mutable next : int; (* next write slot *)
  mutable count : int;
  mutable dropped : int;
  mutable on : bool;
}

let create ?(capacity = 65536) () =
  { capacity; buf = Array.make capacity None; next = 0; count = 0; dropped = 0; on = true }

let enabled t = t.on

let set_enabled t v = t.on <- v

let drop_count t = t.dropped

let capacity t = t.capacity

let emit t ~time ev =
  if t.on then begin
    if t.count = t.capacity then t.dropped <- t.dropped + 1;
    t.buf.(t.next) <- Some (time, ev);
    t.next <- (t.next + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1
  end

let events t =
  let start = if t.count < t.capacity then 0 else t.next in
  let out = ref [] in
  for i = t.count - 1 downto 0 do
    match t.buf.((start + i) mod t.capacity) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

(* The ring drops oldest-first, so the i-th retained event (oldest first) is
   the ([dropped] + i)-th ever emitted: a stable per-ring sequence number
   without widening the slots.  The shard merge uses it as a tie-break. *)
let seq_events t =
  let seq = ref (t.dropped - 1) in
  List.map
    (fun (time, ev) ->
      incr seq;
      (!seq, time, ev))
    (events t)

(* Oldest-first walk over the ring without materialising a list — the
   counting/searching paths below go through this so they allocate nothing
   per event. *)
let iter_events t f =
  let start = if t.count < t.capacity then 0 else t.next in
  for i = 0 to t.count - 1 do
    match t.buf.((start + i) mod t.capacity) with
    | Some (time, ev) -> f ~time ev
    | None -> ()
  done

let count_events t ~f =
  let n = ref 0 in
  iter_events t (fun ~time:_ ev -> if f ev then incr n);
  !n

let find_events t ~f =
  let out = ref [] in
  iter_events t (fun ~time ev -> if f ev then out := (time, ev) :: !out);
  List.rev !out

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0;
  t.dropped <- 0

(* ------------------------------------------------- legacy entry rendering *)

let category_of_event = function
  | Txn_begin _ -> "begin"
  | Txn_commit _ -> "commit"
  | Txn_abort _ -> "abort"
  | Vm_created _ | Vm_accepted _ | Vm_retransmit _ | Vm_dup _ -> "vm"
  | Lock_acquire _ | Lock_release _ -> "lock"
  | Request_sent _ -> "request"
  | Request_honored _ -> "honor"
  | Request_ignored _ -> "refuse"
  | Crash _ -> "crash"
  | Recover _ -> "recover"
  | Checkpoint _ -> "checkpoint"
  | Storage_fault _ | Wal_repair _ -> "storage"
  | Net_send _ | Net_drop _ -> "net"
  | Health _ -> "health"
  | Evacuation _ -> "evac"
  | Outbox_high _ -> "outbox"
  | Mailbox_high _ -> "mailbox"
  | Join _ | Leave _ | Rebalance _ -> "member"
  | Note { category; _ } -> category

let pp_txn_id ppf (c, s) = Format.fprintf ppf "%d.%d" c s

let message_of_event = function
  | Txn_begin { txn; n_ops; _ } ->
    Format.asprintf "txn %a begins (%d ops)" pp_txn_id txn n_ops
  | Txn_commit { txn; _ } -> Format.asprintf "txn %a committed" pp_txn_id txn
  | Txn_abort { txn; reason; _ } ->
    Format.asprintf "txn %a aborted: %s" pp_txn_id txn reason
  | Vm_created { dst; seq; item; amount; _ } ->
    Printf.sprintf "vm #%d created: item %d, %d units -> site %d" seq item amount dst
  | Vm_accepted { src; seq; item; amount; _ } ->
    Printf.sprintf "vm #%d accepted: item %d, %d units from site %d" seq item amount src
  | Vm_retransmit { dst; seq; item; amount; _ } ->
    Printf.sprintf "vm #%d retransmit: item %d, %d units -> site %d" seq item amount dst
  | Vm_dup { src; seq; _ } -> Printf.sprintf "vm #%d duplicate from site %d discarded" seq src
  | Lock_acquire { txn; items; _ } ->
    Format.asprintf "txn %a locks [%s]" pp_txn_id txn
      (String.concat "; " (List.map string_of_int items))
  | Lock_release { txn; _ } -> Format.asprintf "txn %a releases its locks" pp_txn_id txn
  | Request_sent { dst; txn; item; amount; _ } ->
    Format.asprintf "txn %a asks site %d for %d of item %d" pp_txn_id txn dst amount item
  | Request_honored { src; item; amount; _ } ->
    Printf.sprintf "item %d: %d units -> site %d" item amount src
  | Request_ignored { item; reason; _ } -> Printf.sprintf "item %d: %s" item reason
  | Crash { site } -> Printf.sprintf "site %d down" site
  | Recover { site; redo } -> Printf.sprintf "site %d up (redo=%d)" site redo
  | Checkpoint { site; log_length } ->
    Printf.sprintf "site %d checkpointed (log=%d)" site log_length
  | Storage_fault { site; kind } -> Printf.sprintf "site %d storage fault armed: %s" site kind
  | Wal_repair { site; dropped } ->
    Printf.sprintf "site %d truncated %d corrupt log record%s" site dropped
      (if dropped = 1 then "" else "s")
  | Net_send { src; dst } -> Printf.sprintf "message %d -> %d" src dst
  | Net_drop { src; dst } -> Printf.sprintf "message %d -> %d dropped" src dst
  | Health { site; peer; state } ->
    Printf.sprintf "site %d judges site %d %s" site peer state
  | Evacuation { site; value_moved; vms_delivered; stranded } ->
    Printf.sprintf "site %d evacuated: %d units re-homed, %d vms delivered, %d stranded"
      site value_moved vms_delivered stranded
  | Outbox_high { site; depth; limit } ->
    Printf.sprintf "site %d outbox depth %d past high-water %d" site depth limit
  | Mailbox_high { site; depth; limit } ->
    Printf.sprintf "site %d mailbox depth %d past high-water %d" site depth limit
  | Join { site; epoch; seeded } ->
    Printf.sprintf "site %d joined (epoch %d, seeded %d units)" site epoch seeded
  | Leave { site; epoch; shed } ->
    Printf.sprintf "site %d left (epoch %d, shed %d units)" site epoch shed
  | Rebalance { moved } -> Printf.sprintf "rebalance moved %d units" moved
  | Note { message; _ } -> message

let entry_of (time, ev) =
  { time; category = category_of_event ev; message = message_of_event ev }

let record t ~time ~category message = emit t ~time (Note { category; message })

let recordf t ~time ~category fmt =
  Format.kasprintf (fun s -> if t.on then record t ~time ~category s) fmt

let entries t = List.map entry_of (events t)

(* Match on the typed category first; only matching events are rendered to
   strings.  [count] renders nothing at all. *)
let find t ~category =
  find_events t ~f:(fun ev -> category_of_event ev = category) |> List.map entry_of

let count t ~category = count_events t ~f:(fun ev -> category_of_event ev = category)

let pp_entry ppf e = Format.fprintf ppf "[%10.4f] %-12s %s" e.time e.category e.message

let dump t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" pp_entry e))
    (entries t);
  Buffer.contents buf

(* ------------------------------------------------------------- JSON form *)

let ts_json (c, s) = Json.List [ Json.Int c; Json.Int s ]

let event_to_json ~time ev =
  let base ty fields = Json.Obj (("time", Json.Float time) :: ("type", Json.String ty) :: fields) in
  match ev with
  | Txn_begin { site; txn; n_ops } ->
    base "txn_begin" [ ("site", Json.Int site); ("txn", ts_json txn); ("n_ops", Json.Int n_ops) ]
  | Txn_commit { site; txn } ->
    base "txn_commit" [ ("site", Json.Int site); ("txn", ts_json txn) ]
  | Txn_abort { site; txn; reason } ->
    base "txn_abort"
      [ ("site", Json.Int site); ("txn", ts_json txn); ("reason", Json.String reason) ]
  | Vm_created { site; dst; seq; item; amount } ->
    base "vm_created"
      [
        ("site", Json.Int site);
        ("dst", Json.Int dst);
        ("seq", Json.Int seq);
        ("item", Json.Int item);
        ("amount", Json.Int amount);
      ]
  | Vm_accepted { site; src; seq; item; amount } ->
    base "vm_accepted"
      [
        ("site", Json.Int site);
        ("src", Json.Int src);
        ("seq", Json.Int seq);
        ("item", Json.Int item);
        ("amount", Json.Int amount);
      ]
  | Vm_retransmit { site; dst; seq; item; amount } ->
    base "vm_retransmit"
      [
        ("site", Json.Int site);
        ("dst", Json.Int dst);
        ("seq", Json.Int seq);
        ("item", Json.Int item);
        ("amount", Json.Int amount);
      ]
  | Vm_dup { site; src; seq } ->
    base "vm_dup" [ ("site", Json.Int site); ("src", Json.Int src); ("seq", Json.Int seq) ]
  | Lock_acquire { site; txn; items } ->
    base "lock_acquire"
      [
        ("site", Json.Int site);
        ("txn", ts_json txn);
        ("items", Json.List (List.map (fun i -> Json.Int i) items));
      ]
  | Lock_release { site; txn } ->
    base "lock_release" [ ("site", Json.Int site); ("txn", ts_json txn) ]
  | Request_sent { site; dst; txn; item; amount } ->
    base "request_sent"
      [
        ("site", Json.Int site);
        ("dst", Json.Int dst);
        ("txn", ts_json txn);
        ("item", Json.Int item);
        ("amount", Json.Int amount);
      ]
  | Request_honored { site; src; txn; item; amount } ->
    base "request_honored"
      [
        ("site", Json.Int site);
        ("src", Json.Int src);
        ("txn", ts_json txn);
        ("item", Json.Int item);
        ("amount", Json.Int amount);
      ]
  | Request_ignored { site; src; txn; item; reason } ->
    base "request_ignored"
      [
        ("site", Json.Int site);
        ("src", Json.Int src);
        ("txn", ts_json txn);
        ("item", Json.Int item);
        ("reason", Json.String reason);
      ]
  | Crash { site } -> base "crash" [ ("site", Json.Int site) ]
  | Recover { site; redo } -> base "recover" [ ("site", Json.Int site); ("redo", Json.Int redo) ]
  | Checkpoint { site; log_length } ->
    base "checkpoint" [ ("site", Json.Int site); ("log_length", Json.Int log_length) ]
  | Storage_fault { site; kind } ->
    base "storage_fault" [ ("site", Json.Int site); ("kind", Json.String kind) ]
  | Wal_repair { site; dropped } ->
    base "wal_repair" [ ("site", Json.Int site); ("dropped", Json.Int dropped) ]
  | Net_send { src; dst } -> base "net_send" [ ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Net_drop { src; dst } -> base "net_drop" [ ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Health { site; peer; state } ->
    base "health"
      [ ("site", Json.Int site); ("peer", Json.Int peer); ("state", Json.String state) ]
  | Evacuation { site; value_moved; vms_delivered; stranded } ->
    base "evacuation"
      [
        ("site", Json.Int site);
        ("value_moved", Json.Int value_moved);
        ("vms_delivered", Json.Int vms_delivered);
        ("stranded", Json.Int stranded);
      ]
  | Outbox_high { site; depth; limit } ->
    base "outbox_high"
      [ ("site", Json.Int site); ("depth", Json.Int depth); ("limit", Json.Int limit) ]
  | Mailbox_high { site; depth; limit } ->
    base "mailbox_high"
      [ ("site", Json.Int site); ("depth", Json.Int depth); ("limit", Json.Int limit) ]
  | Join { site; epoch; seeded } ->
    base "join" [ ("site", Json.Int site); ("epoch", Json.Int epoch); ("seeded", Json.Int seeded) ]
  | Leave { site; epoch; shed } ->
    base "leave" [ ("site", Json.Int site); ("epoch", Json.Int epoch); ("shed", Json.Int shed) ]
  | Rebalance { moved } -> base "rebalance" [ ("moved", Json.Int moved) ]
  | Note { category; message } ->
    base "note" [ ("category", Json.String category); ("message", Json.String message) ]

let event_of_json j =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let str k = Option.bind (Json.member k j) Json.to_str in
  let ts k =
    match Json.member k j with
    | Some (Json.List [ Json.Int c; Json.Int s ]) -> Some (c, s)
    | _ -> None
  in
  let* time = Option.bind (Json.member "time" j) Json.to_float in
  let* ty = str "type" in
  let ev =
    match ty with
    | "txn_begin" ->
      let* site = int "site" in
      let* txn = ts "txn" in
      let* n_ops = int "n_ops" in
      Some (Txn_begin { site; txn; n_ops })
    | "txn_commit" ->
      let* site = int "site" in
      let* txn = ts "txn" in
      Some (Txn_commit { site; txn })
    | "txn_abort" ->
      let* site = int "site" in
      let* txn = ts "txn" in
      let* reason = str "reason" in
      Some (Txn_abort { site; txn; reason })
    | "vm_created" ->
      let* site = int "site" in
      let* dst = int "dst" in
      let* seq = int "seq" in
      let* item = int "item" in
      let* amount = int "amount" in
      Some (Vm_created { site; dst; seq; item; amount })
    | "vm_accepted" ->
      let* site = int "site" in
      let* src = int "src" in
      let* seq = int "seq" in
      let* item = int "item" in
      let* amount = int "amount" in
      Some (Vm_accepted { site; src; seq; item; amount })
    | "vm_retransmit" ->
      let* site = int "site" in
      let* dst = int "dst" in
      let* seq = int "seq" in
      let* item = int "item" in
      let* amount = int "amount" in
      Some (Vm_retransmit { site; dst; seq; item; amount })
    | "vm_dup" ->
      let* site = int "site" in
      let* src = int "src" in
      let* seq = int "seq" in
      Some (Vm_dup { site; src; seq })
    | "lock_acquire" ->
      let* site = int "site" in
      let* txn = ts "txn" in
      let* items =
        match Json.member "items" j with
        | Some (Json.List xs) ->
          let ints = List.filter_map Json.to_int xs in
          if List.length ints = List.length xs then Some ints else None
        | _ -> None
      in
      Some (Lock_acquire { site; txn; items })
    | "lock_release" ->
      let* site = int "site" in
      let* txn = ts "txn" in
      Some (Lock_release { site; txn })
    | "request_sent" ->
      let* site = int "site" in
      let* dst = int "dst" in
      let* txn = ts "txn" in
      let* item = int "item" in
      let* amount = int "amount" in
      Some (Request_sent { site; dst; txn; item; amount })
    | "request_honored" ->
      let* site = int "site" in
      let* src = int "src" in
      let* txn = ts "txn" in
      let* item = int "item" in
      let* amount = int "amount" in
      Some (Request_honored { site; src; txn; item; amount })
    | "request_ignored" ->
      let* site = int "site" in
      let* src = int "src" in
      let* txn = ts "txn" in
      let* item = int "item" in
      let* reason = str "reason" in
      Some (Request_ignored { site; src; txn; item; reason })
    | "crash" ->
      let* site = int "site" in
      Some (Crash { site })
    | "recover" ->
      let* site = int "site" in
      let* redo = int "redo" in
      Some (Recover { site; redo })
    | "checkpoint" ->
      let* site = int "site" in
      let* log_length = int "log_length" in
      Some (Checkpoint { site; log_length })
    | "storage_fault" ->
      let* site = int "site" in
      let* kind = str "kind" in
      Some (Storage_fault { site; kind })
    | "wal_repair" ->
      let* site = int "site" in
      let* dropped = int "dropped" in
      Some (Wal_repair { site; dropped })
    | "net_send" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Some (Net_send { src; dst })
    | "net_drop" ->
      let* src = int "src" in
      let* dst = int "dst" in
      Some (Net_drop { src; dst })
    | "health" ->
      let* site = int "site" in
      let* peer = int "peer" in
      let* state = str "state" in
      Some (Health { site; peer; state })
    | "evacuation" ->
      let* site = int "site" in
      let* value_moved = int "value_moved" in
      let* vms_delivered = int "vms_delivered" in
      let* stranded = int "stranded" in
      Some (Evacuation { site; value_moved; vms_delivered; stranded })
    | "outbox_high" ->
      let* site = int "site" in
      let* depth = int "depth" in
      let* limit = int "limit" in
      Some (Outbox_high { site; depth; limit })
    | "mailbox_high" ->
      let* site = int "site" in
      let* depth = int "depth" in
      let* limit = int "limit" in
      Some (Mailbox_high { site; depth; limit })
    | "join" ->
      let* site = int "site" in
      let* epoch = int "epoch" in
      let* seeded = int "seeded" in
      Some (Join { site; epoch; seeded })
    | "leave" ->
      let* site = int "site" in
      let* epoch = int "epoch" in
      let* shed = int "shed" in
      Some (Leave { site; epoch; shed })
    | "rebalance" ->
      let* moved = int "moved" in
      Some (Rebalance { moved })
    | "note" ->
      let* category = str "category" in
      let* message = str "message" in
      Some (Note { category; message })
    | _ -> None
  in
  Option.map (fun ev -> (time, ev)) ev

type meta = { events : int; dropped : int; capacity : int }

let meta_to_json m =
  Json.Obj
    [
      ("type", Json.String "meta");
      ("events", Json.Int m.events);
      ("dropped", Json.Int m.dropped);
      ("capacity", Json.Int m.capacity);
    ]

let meta_of_json j =
  match Option.bind (Json.member "type" j) Json.to_str with
  | Some "meta" ->
    let int k = Option.bind (Json.member k j) Json.to_int in
    (match (int "events", int "dropped", int "capacity") with
    | Some events, Some dropped, Some capacity -> Some { events; dropped; capacity }
    | _ -> None)
  | _ -> None

let to_jsonl t =
  let buf = Buffer.create 4096 in
  (* A header line first, so offline consumers can tell a clipped trace from
     a complete one without the live [drop_count] accessor.  [of_jsonl] skips
     it (no "time" field), so old dumps and new ones parse alike. *)
  let evs = events t in
  Buffer.add_string buf
    (Json.to_string
       (meta_to_json { events = List.length evs; dropped = t.dropped; capacity = t.capacity }));
  Buffer.add_char buf '\n';
  List.iter
    (fun (time, ev) ->
      Buffer.add_string buf (Json.to_string (event_to_json ~time ev));
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let of_jsonl s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         if String.trim line = "" then None
         else
           match Json.parse line with
           | Ok j -> event_of_json j
           | Error _ -> None)

let of_jsonl_stats s =
  (* Like [of_jsonl], but count the lines that failed to parse as events —
     minus recognised meta headers.  A crash-time flight dump is routinely
     clipped mid-line by the dying process; the clipped tail is data loss,
     not a malformed file, so consumers fold this count into "dropped". *)
  let malformed = ref 0 in
  let events =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           if String.trim line = "" then None
           else
             match Json.parse line with
             | Ok j -> (
               match event_of_json j with
               | Some ev -> Some ev
               | None ->
                 if meta_of_json j = None then incr malformed;
                 None)
             | Error _ ->
               incr malformed;
               None)
  in
  (events, !malformed)

let meta_of_jsonl s =
  let rec first_line = function
    | [] -> None
    | line :: rest ->
      if String.trim line = "" then first_line rest
      else (match Json.parse line with Ok j -> meta_of_json j | Error _ -> None)
  in
  first_line (String.split_on_char '\n' s)

(* ------------------------------------------------------- Chrome export *)

(* trace_event format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
   pid = site, tid = transaction lane (counter part of the txn id folded into
   a small range so Perfetto draws compact lanes), ts in microseconds. *)

let usec time = Json.Float (time *. 1e6)

let chrome_common ~name ~cat ~ph ~time ~pid ~tid extra =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String cat);
       ("ph", Json.String ph);
       ("ts", usec time);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ extra)

let txn_name (c, s) = Printf.sprintf "txn %d.%d" c s

(* Flow ids must be unique per Vm transfer: sender, receiver and sequence
   number identify one exactly (sequence numbers are per directed pair). *)
let flow_id ~src ~dst ~seq = Printf.sprintf "vm-%d-%d-%d" src dst seq

let to_chrome t =
  let evs = events t in
  let sites = Hashtbl.create 8 in
  let note_site s = if s >= 0 then Hashtbl.replace sites s () in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Txn_begin { site; _ }
      | Txn_commit { site; _ }
      | Txn_abort { site; _ }
      | Vm_created { site; _ }
      | Vm_accepted { site; _ }
      | Vm_retransmit { site; _ }
      | Vm_dup { site; _ }
      | Lock_acquire { site; _ }
      | Lock_release { site; _ }
      | Request_sent { site; _ }
      | Request_honored { site; _ }
      | Request_ignored { site; _ }
      | Crash { site }
      | Recover { site; _ }
      | Checkpoint { site; _ }
      | Storage_fault { site; _ }
      | Wal_repair { site; _ }
      | Health { site; _ }
      | Evacuation { site; _ }
      | Outbox_high { site; _ }
      | Mailbox_high { site; _ }
      | Join { site; _ }
      | Leave { site; _ } -> note_site site
      | Net_send { src; dst } | Net_drop { src; dst } ->
        note_site src;
        note_site dst
      | Rebalance _ | Note _ -> ())
    evs;
  (* A transaction's duration slice: B at begin, E at commit/abort.  Lanes
     (tids) are allocated per live transaction so overlapping transactions at
     one site do not nest incorrectly; a begin-less commit (trace window
     clipped) emits an instant event instead of an unmatched E. *)
  let lanes = Hashtbl.create 32 (* (site, txn) -> tid *) in
  let free_lanes = Hashtbl.create 8 (* site -> free tid list *) in
  let next_lane = Hashtbl.create 8 (* site -> next fresh tid *) in
  let acquire_lane site txn =
    let tid =
      match Hashtbl.find_opt free_lanes site with
      | Some (tid :: rest) ->
        Hashtbl.replace free_lanes site rest;
        tid
      | Some [] | None ->
        let tid = Option.value ~default:1 (Hashtbl.find_opt next_lane site) in
        Hashtbl.replace next_lane site (tid + 1);
        tid
    in
    Hashtbl.replace lanes (site, txn) tid;
    tid
  in
  let release_lane site txn =
    match Hashtbl.find_opt lanes (site, txn) with
    | Some tid ->
      Hashtbl.remove lanes (site, txn);
      let free = Option.value ~default:[] (Hashtbl.find_opt free_lanes site) in
      Hashtbl.replace free_lanes site (tid :: free);
      Some tid
    | None -> None
  in
  let out = ref [] in
  let push e = out := e :: !out in
  (* Process metadata: one named process per site. *)
  Hashtbl.iter
    (fun site () ->
      push
        (Json.Obj
           [
             ("name", Json.String "process_name");
             ("ph", Json.String "M");
             ("pid", Json.Int site);
             ("tid", Json.Int 0);
             ( "args",
               Json.Obj [ ("name", Json.String (Printf.sprintf "site %d" site)) ] );
           ]))
    sites;
  let close_txn ~time ~site ~txn ~outcome extra =
    match release_lane site txn with
    | Some tid -> push (chrome_common ~name:(txn_name txn) ~cat:"txn" ~ph:"E" ~time ~pid:site ~tid extra)
    | None ->
      (* No matching B in the retained window: an instant event keeps the
         file well-formed. *)
      push
        (chrome_common
           ~name:(Printf.sprintf "%s %s" (txn_name txn) outcome)
           ~cat:"txn" ~ph:"i" ~time ~pid:site ~tid:0
           [ ("s", Json.String "t") ])
  in
  List.iter
    (fun (time, ev) ->
      match ev with
      | Txn_begin { site; txn; n_ops } ->
        let tid = acquire_lane site txn in
        push
          (chrome_common ~name:(txn_name txn) ~cat:"txn" ~ph:"B" ~time ~pid:site ~tid
             [ ("args", Json.Obj [ ("n_ops", Json.Int n_ops) ]) ])
      | Txn_commit { site; txn } ->
        close_txn ~time ~site ~txn ~outcome:"commit"
          [ ("args", Json.Obj [ ("outcome", Json.String "commit") ]) ]
      | Txn_abort { site; txn; reason } ->
        close_txn ~time ~site ~txn ~outcome:"abort"
          [ ("args", Json.Obj [ ("outcome", Json.String "abort"); ("reason", Json.String reason) ]) ]
      | Vm_created { site; dst; seq; item; amount } ->
        push
          (chrome_common
             ~name:(Printf.sprintf "vm item %d (%d)" item amount)
             ~cat:"vm" ~ph:"s" ~time ~pid:site ~tid:0
             [ ("id", Json.String (flow_id ~src:site ~dst ~seq)) ])
      | Vm_accepted { site; src; seq; item; amount } ->
        push
          (chrome_common
             ~name:(Printf.sprintf "vm item %d (%d)" item amount)
             ~cat:"vm" ~ph:"f" ~time ~pid:site ~tid:0
             [ ("id", Json.String (flow_id ~src ~dst:site ~seq)); ("bp", Json.String "e") ])
      | Crash { site } ->
        push
          (chrome_common ~name:"crash" ~cat:"fault" ~ph:"i" ~time ~pid:site ~tid:0
             [ ("s", Json.String "p") ])
      | Recover { site; redo } ->
        push
          (chrome_common ~name:"recover" ~cat:"fault" ~ph:"i" ~time ~pid:site ~tid:0
             [ ("s", Json.String "p"); ("args", Json.Obj [ ("redo", Json.Int redo) ]) ])
      | Checkpoint { site; log_length } ->
        push
          (chrome_common ~name:"checkpoint" ~cat:"storage" ~ph:"i" ~time ~pid:site ~tid:0
             [ ("s", Json.String "t"); ("args", Json.Obj [ ("log_length", Json.Int log_length) ]) ])
      | Storage_fault { site; kind } ->
        push
          (chrome_common ~name:"storage fault" ~cat:"storage" ~ph:"i" ~time ~pid:site ~tid:0
             [ ("s", Json.String "t"); ("args", Json.Obj [ ("kind", Json.String kind) ]) ])
      | Wal_repair { site; dropped } ->
        push
          (chrome_common ~name:"wal repair" ~cat:"storage" ~ph:"i" ~time ~pid:site ~tid:0
             [ ("s", Json.String "t"); ("args", Json.Obj [ ("dropped", Json.Int dropped) ]) ])
      | Net_drop { src; dst } ->
        push
          (chrome_common ~name:"drop" ~cat:"net" ~ph:"i" ~time ~pid:src ~tid:0
             [ ("s", Json.String "t"); ("args", Json.Obj [ ("dst", Json.Int dst) ]) ])
      | Health { site; peer; state } ->
        push
          (chrome_common
             ~name:(Printf.sprintf "site %d %s" peer state)
             ~cat:"health" ~ph:"i" ~time ~pid:site ~tid:0
             [ ("s", Json.String "t") ])
      | Evacuation { site; value_moved; vms_delivered; stranded } ->
        push
          (chrome_common ~name:"evacuation" ~cat:"health" ~ph:"i" ~time ~pid:site ~tid:0
             [
               ("s", Json.String "p");
               ( "args",
                 Json.Obj
                   [
                     ("value_moved", Json.Int value_moved);
                     ("vms_delivered", Json.Int vms_delivered);
                     ("stranded", Json.Int stranded);
                   ] );
             ])
      | Join { site; epoch; seeded } ->
        push
          (chrome_common ~name:"join" ~cat:"member" ~ph:"i" ~time ~pid:site ~tid:0
             [
               ("s", Json.String "p");
               ("args", Json.Obj [ ("epoch", Json.Int epoch); ("seeded", Json.Int seeded) ]);
             ])
      | Leave { site; epoch; shed } ->
        push
          (chrome_common ~name:"leave" ~cat:"member" ~ph:"i" ~time ~pid:site ~tid:0
             [
               ("s", Json.String "p");
               ("args", Json.Obj [ ("epoch", Json.Int epoch); ("shed", Json.Int shed) ]);
             ])
      | Vm_retransmit _ | Vm_dup _ | Lock_acquire _ | Lock_release _ | Request_sent _
      | Request_honored _ | Request_ignored _ | Net_send _ | Outbox_high _ | Mailbox_high _
      | Rebalance _ | Note _ ->
        (* Kept out of the Chrome view: high-volume noise there, but all
           present in the JSONL export. *)
        ())
    evs;
  (* Close still-open slices at the last event time so every B has an E. *)
  let last_time = match List.rev evs with (time, _) :: _ -> time | [] -> 0.0 in
  Hashtbl.iter
    (fun (site, txn) tid ->
      push
        (chrome_common ~name:(txn_name txn) ~cat:"txn" ~ph:"E" ~time:last_time ~pid:site ~tid
           [ ("args", Json.Obj [ ("outcome", Json.String "unfinished") ]) ]))
    lanes;
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.rev !out));
         ("displayTimeUnit", Json.String "ms");
       ])
