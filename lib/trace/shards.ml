module Json = Dvp_util.Json

type t = { rings : Trace.t array }

let create ?capacity ~n () =
  if n <= 0 then invalid_arg "Shards.create: need at least one shard";
  { rings = Array.init n (fun _ -> Trace.create ?capacity ()) }

let n_shards t = Array.length t.rings

let shard t i =
  if i < 0 || i >= Array.length t.rings then invalid_arg "Shards.shard: out of range";
  t.rings.(i)

let total_dropped t = Array.fold_left (fun acc r -> acc + Trace.drop_count r) 0 t.rings

let total_events t =
  Array.fold_left (fun acc r -> acc + List.length (Trace.events r)) 0 t.rings

let set_enabled t v = Array.iter (fun r -> Trace.set_enabled r v) t.rings

let clear t = Array.iter Trace.clear t.rings

(* The merge key.  Within one shard, timestamps are monotone (the runtime
   clamps its clock) and sequence numbers strictly increase, so sorting by
   (time, shard, seq) is a total order that refines per-shard emission order.
   Equal wall timestamps across shards break ties by shard id — arbitrary
   but deterministic, which is all a cross-domain order can honestly claim
   at equal clock readings. *)
let merge_key (time, shardid, seq) (time', shardid', seq') =
  match Float.compare time time' with
  | 0 -> ( match Int.compare shardid shardid' with 0 -> Int.compare seq seq' | c -> c)
  | c -> c

let merged t =
  let all = ref [] in
  Array.iteri
    (fun shardid ring ->
      List.iter
        (fun (seq, time, ev) -> all := (shardid, seq, time, ev) :: !all)
        (Trace.seq_events ring))
    t.rings;
  List.sort
    (fun (s, q, tm, _) (s', q', tm', _) -> merge_key (tm, s, q) (tm', s', q'))
    !all

let merged_events t = List.map (fun (_, _, time, ev) -> (time, ev)) (merged t)

let to_jsonl t =
  let buf = Buffer.create 65536 in
  let evs = merged t in
  (* Same meta header shape as [Trace.to_jsonl] — [Trace.meta_of_jsonl] and
     every downstream consumer read the merged stream exactly like a
     single-ring dump — plus a "shards" field for provenance. *)
  Buffer.add_string buf
    (Json.to_string
       (Json.Obj
          [
            ("type", Json.String "meta");
            ("events", Json.Int (List.length evs));
            ("dropped", Json.Int (total_dropped t));
            ( "capacity",
              Json.Int
                (Array.fold_left (fun acc r -> acc + Trace.capacity r) 0 t.rings) );
            ("shards", Json.Int (Array.length t.rings));
          ]));
  Buffer.add_char buf '\n';
  List.iter
    (fun (shardid, seq, time, ev) ->
      let line =
        match Trace.event_to_json ~time ev with
        | Json.Obj fields ->
          Json.Obj (fields @ [ ("shard", Json.Int shardid); ("seq", Json.Int seq) ])
        | other -> other
      in
      Buffer.add_string buf (Json.to_string line);
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf
