(** Structured event trace.

    Sites and protocol layers append {e typed} events tagged with simulated
    time; tests assert on the trace, examples print it to narrate a run, and
    the exporters turn it into machine-readable artifacts (JSONL and Chrome
    [trace_event] files that {{:https://ui.perfetto.dev}Perfetto} opens
    directly).

    The buffer is bounded to keep long experiment runs cheap: once full, the
    oldest entries are dropped and {!drop_count} says how many, so a consumer
    can tell a clipped trace from a complete one.

    The legacy string API ({!record}, {!entries}, {!find}, …) is kept as a
    thin compatibility shim over the typed events: every typed event renders
    to the same [(time, category, message)] triples the old API produced. *)

type t

type ts = int * int
(** Transaction identifier [(counter, site)] — mirrors [Dvp.Ids.ts] without
    depending on the core library. *)

(** One protocol-level occurrence.  Constructors carry the site/txn/item/seq
    fields the exporters and invariant checks need; [Note] carries anything
    recorded through the legacy string API. *)
type event =
  | Txn_begin of { site : int; txn : ts; n_ops : int }
  | Txn_commit of { site : int; txn : ts }
  | Txn_abort of { site : int; txn : ts; reason : string }
  | Vm_created of { site : int; dst : int; seq : int; item : int; amount : int }
  | Vm_accepted of { site : int; src : int; seq : int; item : int; amount : int }
  | Vm_retransmit of { site : int; dst : int; seq : int; item : int; amount : int }
  | Vm_dup of { site : int; src : int; seq : int }
  | Lock_acquire of { site : int; txn : ts; items : int list }
  | Lock_release of { site : int; txn : ts }
  | Request_sent of { site : int; dst : int; txn : ts; item : int; amount : int }
  | Request_honored of { site : int; src : int; txn : ts; item : int; amount : int }
  | Request_ignored of { site : int; src : int; txn : ts; item : int; reason : string }
  | Crash of { site : int }
  | Recover of { site : int; redo : int }
  | Checkpoint of { site : int; log_length : int }
  | Storage_fault of { site : int; kind : string }
      (** a WAL fault was armed at the site ("torn" / "corrupt-tail") *)
  | Wal_repair of { site : int; dropped : int }
      (** recovery truncated [dropped] corrupt records off the stable tail *)
  | Net_send of { src : int; dst : int }
  | Net_drop of { src : int; dst : int }
  | Health of { site : int; peer : int; state : string }
      (** the failure detector at [site] changed its verdict on [peer]
          ("up" / "suspected" / "condemned") *)
  | Evacuation of { site : int; value_moved : int; vms_delivered : int; stranded : int }
      (** a condemned [site]'s fragments were re-homed onto survivors *)
  | Outbox_high of { site : int; depth : int; limit : int }
      (** the site's parked/outstanding Vm outbox crossed its high-water mark *)
  | Mailbox_high of { site : int; depth : int; limit : int }
      (** a runtime site domain drained a mailbox batch past its high-water
          mark — the domain is falling behind its peers' sends *)
  | Join of { site : int; epoch : int; seeded : int }
      (** [site] completed its join and became a member at [epoch]; the
          members shipped it [seeded] units during the handshake *)
  | Leave of { site : int; epoch : int; shed : int }
      (** [site] completed a graceful leave at [epoch], having shed [shed]
          units onto the survivors *)
  | Rebalance of { moved : int }
      (** one rebalance pass moved [moved] units from hot to cold members *)
  | Note of { category : string; message : string }

type entry = { time : float; category : string; message : string }
(** Legacy view of an event (see {!category_of_event} and
    {!message_of_event}). *)

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 65536 events. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Disabled traces drop events without formatting cost. *)

(** {2 Typed API} *)

val emit : t -> time:float -> event -> unit

val events : t -> (float * event) list
(** Oldest first (of the retained window). *)

val seq_events : t -> (int * float * event) list
(** Oldest first, each event paired with its per-ring sequence number: the
    i-th retained event was the ({!drop_count} + i)-th ever emitted.
    Sequence numbers are dense and strictly increasing within one ring, so
    [(time, ring, seq)] totally orders a multi-ring merge. *)

val iter_events : t -> (time:float -> event -> unit) -> unit
(** Walk the retained window oldest-first without materialising a list —
    the allocation-free way to scan a large trace. *)

val find_events : t -> f:(event -> bool) -> (float * event) list

val count_events : t -> f:(event -> bool) -> int
(** Number of retained events satisfying [f]; no lists built, nothing
    rendered.  [count] is this with a category predicate. *)

val capacity : t -> int
(** The bound the ring was created with. *)

val drop_count : t -> int
(** Number of events evicted because the buffer was full.  Non-zero means
    {!events}/{!entries} show only the newest [capacity] events — consumers
    must not read a clipped trace as complete. *)

val category_of_event : event -> string
(** The legacy category each typed event files under ("commit", "abort",
    "request", "honor", "refuse", "vm", "lock", "crash", "recover",
    "checkpoint", "storage", "net", "begin" — or the [Note]'s own
    category). *)

val message_of_event : event -> string

(** {2 Legacy string API (compatibility shim)} *)

val record : t -> time:float -> category:string -> string -> unit
(** Records a [Note] event. *)

val recordf :
  t -> time:float -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format is only evaluated when the trace is
    enabled. *)

val entries : t -> entry list
(** Oldest first; typed events appear as their rendered [(category, message)]
    pair. *)

val find : t -> category:string -> entry list
(** Only the matching events are rendered to strings. *)

val count : t -> category:string -> int
(** Typed counting ({!count_events} over {!category_of_event}) — no string
    rendering at all. *)

val clear : t -> unit
(** Drops all events and resets {!drop_count}. *)

val pp_entry : Format.formatter -> entry -> unit

val dump : t -> string

(** {2 Export} *)

val event_to_json : time:float -> event -> Dvp_util.Json.t
(** One flat object: ["time"], ["type"], and the event's own fields
    (transaction ids as [[counter, site]] pairs). *)

val event_of_json : Dvp_util.Json.t -> (float * event) option
(** Inverse of {!event_to_json}; [None] when the object is not a trace
    event. *)

type meta = { events : int; dropped : int; capacity : int }
(** The header line of a JSONL dump: how many events follow, how many were
    evicted before export ({!drop_count} at export time), and the ring
    capacity.  [dropped > 0] marks a clipped trace. *)

val to_jsonl : t -> string
(** A [{"type":"meta",...}] header line, then one {!event_to_json} object per
    line, oldest first. *)

val of_jsonl : string -> (float * event) list
(** Parse a {!to_jsonl} dump back; the meta header and malformed lines are
    skipped. *)

val of_jsonl_stats : string -> (float * event) list * int
(** {!of_jsonl} plus the number of non-empty lines that were not parseable
    as events (meta headers excluded) — typically the single line a
    crash-time dump clipped mid-write.  Consumers should treat that count as
    additional dropped events, not as a parse failure. *)

val meta_of_jsonl : string -> meta option
(** The header of a {!to_jsonl} dump; [None] for dumps written before the
    header existed (treat those as of unknown completeness). *)

val to_chrome : t -> string
(** Chrome [trace_event] JSON (the [{"traceEvents": [...]}] envelope): one
    "process" per site, transactions as matched [B]/[E] duration slices, Vm
    transfers as [s]/[f] flow events, crashes/recoveries/checkpoints and
    drops as instant events.  Times are exported in microseconds, as the
    format requires.  Open the file at [ui.perfetto.dev] or
    [chrome://tracing]. *)
