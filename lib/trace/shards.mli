(** Per-domain trace shards for the multicore runtime.

    One bounded {!Trace} ring per site domain: each domain appends to its own
    ring with plain (unsynchronised) writes — the ring is single-writer by
    construction, so the hot path takes no cross-domain lock and shares no
    cache line with its peers.  A shard's timestamps come from the runtime's
    clamped wall clock (monotone within the shard) and every event carries an
    implicit dense sequence number ({!Trace.seq_events}), so the offline
    {!merged} step can impose one total order on the whole run:

    sort by [(time, shard, seq)] — per-shard emission order is preserved
    (time monotone, seq strictly increasing within a shard), and equal wall
    timestamps across shards tie-break deterministically by shard id.

    {!to_jsonl} renders the merged stream with the same meta header and event
    lines as {!Trace.to_jsonl} (plus ["shard"]/["seq"] provenance fields that
    {!Trace.event_of_json} ignores), so [Spans]/[analyze] consume wall-mode
    dumps and DES dumps identically. *)

type t

val create : ?capacity:int -> n:int -> unit -> t
(** [n] independent rings, each of [capacity] (default 65536) events.
    Convention in the runtime: shards [0..n_sites-1] belong to the site
    domains, one extra shard to the observer/watchdog control plane. *)

val n_shards : t -> int

val shard : t -> int -> Trace.t
(** The ring of shard [i].  Only its owning domain may emit into it. *)

val total_dropped : t -> int
(** Σ {!Trace.drop_count} over the shards. *)

val total_events : t -> int
(** Σ retained events over the shards. *)

val set_enabled : t -> bool -> unit

val clear : t -> unit

val merged : t -> (int * int * float * Trace.event) list
(** The totally-ordered merge: [(shard, seq, time, event)] sorted by
    [(time, shard, seq)].  Call only after the emitting domains have been
    joined (or are otherwise quiescent) — the rings are unsynchronised. *)

val merged_events : t -> (float * Trace.event) list
(** {!merged} projected to what {!Trace.of_jsonl} returns — feed it straight
    to span reconstruction. *)

val to_jsonl : t -> string
(** The merged stream as JSONL: a [{"type":"meta",...}] header (with a
    ["shards"] count), then one event per line in merge order, each with
    ["shard"] and ["seq"] provenance fields appended. *)
