(** The public facade: the stable API surface in one module.

    Executables, benches and examples program against [Dvp] alone instead of
    reaching into the per-layer libraries ([dvp.core], [dvp.sim], ...).  The
    protocol core and both execution substrates are re-exported flat; the
    supporting layers keep their own namespace one level down ([Dvp.Chaos],
    [Dvp.Obs], [Dvp.Net], [Dvp.Storage], [Dvp.Util], [Dvp.Baseline]).

    Layering stays visible in the re-export groups below; the per-layer
    libraries remain installable and directly usable (the test suite, which
    exercises internals, uses them directly). *)

(* The protocol core (lib/core). *)
module Config = Dvp_core.Config
module Txn = Dvp_core.Txn
module System = Dvp_core.System
module Site = Dvp_core.Site
module Vm = Dvp_core.Vm
module Op = Dvp_core.Op
module Ids = Dvp_core.Ids
module Value = Dvp_core.Value
module Proto = Dvp_core.Proto
module Metrics = Dvp_core.Metrics
module Membership = Dvp_core.Membership
module Log_event = Dvp_core.Log_event
module Log_replay = Dvp_core.Log_replay
module Lock_table = Dvp_core.Lock_table
module Hybrid = Dvp_core.Hybrid
module Capped = Dvp_core.Capped
module Backup = Dvp_core.Backup
module History = Dvp_core.History

(* Execution substrates: the interface, the deterministic simulation, and
   the multicore runtime. *)
module Substrate = Dvp_substrate.Substrate
module Substrate_des = Dvp_sim.Substrate_des
module Engine = Dvp_sim.Engine
module Trace = Dvp_sim.Trace
module Shards = Dvp_trace.Shards
module Probe = Dvp_sim.Probe
module Cluster = Dvp_runtime.Cluster
module Observer = Dvp_runtime.Observer
module Supervisor = Dvp_runtime.Supervisor
module Fault = Dvp_runtime.Fault
module Walfile = Dvp_runtime.Walfile

(* Failure detection. *)
module Health = Dvp_health.Health

(* Workload generation and measurement (DES). *)
module Spec = Dvp_workload.Spec
module Driver = Dvp_workload.Driver
module Setup = Dvp_workload.Setup
module Runner = Dvp_workload.Runner
module Faultplan = Dvp_workload.Faultplan

(* Supporting layers, namespaced. *)
module Chaos = Dvp_chaos
module Obs = Dvp_obs
module Baseline = Dvp_baseline
module Net = Dvp_net
module Storage = Dvp_storage
module Util = Dvp_util
