(** Crash flight recorder.

    Keeps hold of the run's bounded trace ring and (optionally) a telemetry
    snapshot provider; when something goes wrong — a chaos-oracle violation,
    an end-of-run conservation failure — {!dump} writes a crashdump
    directory:

    {v
    <dir>/<label>[-k]/
      trace.jsonl      the retained trace window (meta header + events)
      telemetry.json   latest telemetry snapshot (null when none attached)
      verdict.json     what failed, as handed to dump
    v}

    The returned path is meant to be named in the failure report so a human
    (or [dvp-cli analyze]) can go straight from "invariant violated" to the
    event window that led up to it.  Directories never overwrite: a label
    collision gets a [-1], [-2], … suffix. *)

type t

val default_dir : string
(** ["artifacts/crashdumps"]. *)

val create : ?dir:string -> Dvp_sim.Trace.t -> t
(** Wrap an existing trace ring (typically the one the system under test
    writes into). *)

val create_source : ?dir:string -> (unit -> string) -> t
(** Wrap an arbitrary JSONL provider instead of a single ring — e.g.
    [Shards.to_jsonl] over a multicore cluster's per-domain shards, merged
    at dump time.  The provider must produce the same stream shape
    [Trace.to_jsonl] does (meta header + event lines). *)

val trace : t -> Dvp_sim.Trace.t option
(** The underlying ring; [None] for a {!create_source} recorder. *)

val set_telemetry : t -> (unit -> Dvp_util.Json.t) -> unit
(** Provider called at dump time — e.g. [fun () -> Telemetry.snapshot tel]
    or [Telemetry.to_json] for full series. *)

val dump : t -> label:string -> verdict:Dvp_util.Json.t -> string
(** Write a crashdump and return its directory path. *)

val dumps : t -> string list
(** Paths dumped so far, oldest first. *)

(** {2 Reading dumps back} *)

type dump_contents = {
  events : (float * Dvp_sim.Trace.event) list;
  meta : Dvp_sim.Trace.meta option;
  telemetry_json : Dvp_util.Json.t;
  verdict : Dvp_util.Json.t;
}

val load : string -> dump_contents
(** Parse a crashdump directory back; missing or malformed member files
    yield empty events / [Null] values rather than raising. *)
