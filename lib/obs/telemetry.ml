module Probe = Dvp_sim.Probe
module Json = Dvp_util.Json
module Table = Dvp_util.Table

type kind = Counter | Gauge

type instrument = { name : string; kind : kind; read : unit -> float }

type t = {
  mutable instruments : instrument list;  (* newest first until attach *)
  mutable attached : instrument array;
  mutable baseline : float array;
  mutable probe : float array Probe.t option;
}

let create () =
  { instruments = []; attached = [||]; baseline = [||]; probe = None }

let register t kind name read =
  if t.probe <> None then invalid_arg "Telemetry: cannot register after attach";
  t.instruments <- { name; kind; read } :: t.instruments

let counter t name read = register t Counter name read

let gauge t name read = register t Gauge name read

let attach t engine ~period =
  if t.probe <> None then invalid_arg "Telemetry.attach: already attached";
  let ins = Array.of_list (List.rev t.instruments) in
  t.attached <- ins;
  (* Counters may already be non-zero at attach time; windows are deltas
     against this baseline, not against zero. *)
  t.baseline <- Array.map (fun i -> i.read ()) ins;
  t.probe <-
    Some
      (Probe.start engine ~period ~sample:(fun _ ->
           Array.map (fun i -> i.read ()) ins))

let attach_clock t ~clock ~period =
  if t.probe <> None then invalid_arg "Telemetry.attach_clock: already attached";
  let ins = Array.of_list (List.rev t.instruments) in
  t.attached <- ins;
  t.baseline <- Array.map (fun i -> i.read ()) ins;
  (* Manual probe: nothing scheduled — the caller (e.g. the wall-clock
     observer domain) drives sampling via sample_now on its own cadence. *)
  t.probe <-
    Some
      (Probe.manual ~clock ~period ~sample:(fun _ ->
           Array.map (fun i -> i.read ()) ins))

let sample_now t =
  match t.probe with
  | None -> invalid_arg "Telemetry.sample_now: not attached"
  | Some p -> Probe.sample_now p

let attached t = t.probe <> None

let stop t =
  match t.probe with
  | None -> ()
  | Some p ->
    (* One last sample so the final partial window is not lost. *)
    Probe.sample_now p;
    Probe.stop p

(* ------------------------------------------------------------- windows *)

type series = {
  s_name : string;
  s_kind : kind;
  points : (float * float) list;
      (* counters: per-window increments; gauges: sampled values *)
}

let series t =
  match t.probe with
  | None -> []
  | Some p ->
    let raw = Probe.series p in
    Array.to_list
      (Array.mapi
         (fun idx ins ->
           let points =
             match ins.kind with
             | Gauge -> List.map (fun (time, row) -> (time, row.(idx))) raw
             | Counter ->
               let prev = ref t.baseline.(idx) in
               List.map
                 (fun (time, row) ->
                   let d = row.(idx) -. !prev in
                   prev := row.(idx);
                   (time, d))
                 raw
           in
           { s_name = ins.name; s_kind = ins.kind; points })
         t.attached)

let period t = match t.probe with None -> nan | Some p -> Probe.period p

(* ---------------------------------------------------------------- JSON *)

let num f = if Float.is_finite f then Json.Float f else Json.Null

let to_json t =
  Json.Obj
    [
      ("period", num (period t));
      ( "series",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.s_name);
                   ( "kind",
                     Json.String
                       (match s.s_kind with Counter -> "counter" | Gauge -> "gauge") );
                   ( "points",
                     Json.List
                       (List.map
                          (fun (time, v) ->
                            Json.List [ num time; num v ])
                          s.points) );
                 ])
             (series t)) );
    ]

let snapshot t =
  (* Instantaneous readings, independent of the probe — usable even before
     attach (reads the registration list directly). *)
  let ins =
    if t.attached <> [||] then Array.to_list t.attached
    else List.rev t.instruments
  in
  Json.Obj (List.map (fun i -> (i.name, num (i.read ()))) ins)

(* -------------------------------------------------------------- render *)

let spark_chars = " .:-=+*#@"

let sparkline values =
  let hi = List.fold_left (fun acc v -> Float.max acc v) 0.0 values in
  let n = String.length spark_chars in
  String.concat ""
    (List.map
       (fun v ->
         let c =
           if not (Float.is_finite v) || v <= 0.0 || hi <= 0.0 then spark_chars.[0]
           else begin
             let scaled = 1 + int_of_float (v /. hi *. float_of_int (n - 2)) in
             spark_chars.[min (n - 1) scaled]
           end
         in
         String.make 1 c)
       values)

let render t =
  let tab =
    Table.create ~title:"telemetry"
      [
        ("series", Table.Left);
        ("kind", Table.Left);
        ("last", Table.Right);
        ("total", Table.Right);
        ("peak", Table.Right);
        ("trend", Table.Left);
      ]
  in
  List.iter
    (fun s ->
      let values = List.map snd s.points in
      let last = match List.rev values with v :: _ -> v | [] -> nan in
      let total = List.fold_left ( +. ) 0.0 values in
      let peak = List.fold_left Float.max neg_infinity values in
      Table.add_row tab
        [
          s.s_name;
          (match s.s_kind with Counter -> "counter" | Gauge -> "gauge");
          Table.ffloat ~dec:1 last;
          (match s.s_kind with
          | Counter -> Table.ffloat ~dec:0 total
          | Gauge -> "-");
          (if values = [] then "-" else Table.ffloat ~dec:1 peak);
          sparkline values;
        ])
    (series t);
  Table.render tab

(* -------------------------------------------------- standard registry *)

let of_system ?(aborts_by_reason = true) sys =
  let t = create () in
  let n = Dvp_core.System.n_sites sys in
  for i = 0 to n - 1 do
    let site = Dvp_core.System.site sys i in
    counter t
      (Printf.sprintf "site%d.commits" i)
      (fun () -> float_of_int (Dvp_core.Metrics.committed (Dvp_core.Site.metrics site)));
    counter t
      (Printf.sprintf "site%d.aborts" i)
      (fun () -> float_of_int (Dvp_core.Metrics.aborted (Dvp_core.Site.metrics site)))
  done;
  if aborts_by_reason then
    List.iter
      (fun reason ->
        counter t
          ("abort." ^ Dvp_core.Metrics.abort_reason_label reason)
          (fun () ->
            let total = ref 0 in
            for i = 0 to n - 1 do
              total :=
                !total
                + Dvp_core.Metrics.aborted_by (Dvp_core.Site.metrics (Dvp_core.System.site sys i)) reason
            done;
            float_of_int !total))
      Dvp_core.Metrics.all_abort_reasons;
  gauge t "vm.in_flight_value" (fun () ->
      List.fold_left
        (fun acc item -> acc +. float_of_int (Dvp_core.System.in_flight sys ~item))
        0.0 (Dvp_core.System.items sys));
  gauge t "wal.length" (fun () -> float_of_int (Dvp_core.System.stable_log_length sys));
  counter t "vm.retransmits" (fun () ->
      let total = ref 0 in
      for i = 0 to n - 1 do
        total :=
          !total + Dvp_core.Metrics.vm_retransmissions (Dvp_core.Site.metrics (Dvp_core.System.site sys i))
      done;
      float_of_int !total);
  counter t "vm.stale_epochs" (fun () ->
      let total = ref 0 in
      for i = 0 to n - 1 do
        total :=
          !total + Dvp_core.Metrics.vm_stale_epochs (Dvp_core.Site.metrics (Dvp_core.System.site sys i))
      done;
      float_of_int !total);
  gauge t "vm.outbox_depth" (fun () ->
      let total = ref 0 in
      for i = 0 to n - 1 do
        total := !total + Dvp_core.Vm.outbox_depth (Dvp_core.Site.vm (Dvp_core.System.site sys i))
      done;
      float_of_int !total);
  (* Health-state gauges only exist when the system runs a failure detector:
     how many (observer, peer) verdicts currently sit in each degraded
     state.  0/0 in a healthy run; nonzero spans show detection latency and
     condemnation on the time axis. *)
  (match Dvp_core.System.detector sys 0 with
  | None -> ()
  | Some _ ->
    let count st =
      let total = ref 0 in
      for i = 0 to n - 1 do
        match Dvp_core.System.detector sys i with
        | None -> ()
        | Some det ->
          Array.iteri
            (fun peer s -> if peer <> i && s = st then incr total)
            (Dvp_health.Health.states det)
      done;
      float_of_int !total
    in
    gauge t "health.suspected" (fun () -> count Dvp_health.Health.Suspected);
    gauge t "health.condemned" (fun () -> count Dvp_health.Health.Condemned));
  t
