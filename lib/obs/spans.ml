module Trace = Dvp_sim.Trace
module Dstats = Dvp_util.Dstats
module Json = Dvp_util.Json
module Table = Dvp_util.Table

type txn_outcome = Committed | Aborted of string | Unfinished

type txn_span = {
  txn : Trace.ts;
  site : int;
  begin_at : float option;
  n_ops : int option;
  lock_at : float option;
  first_request_at : float option;
  last_honor_at : float option;
  end_at : float option;
  release_at : float option;
  outcome : txn_outcome;
  requests : int;
  honored : int;
  ignored : int;
}

let lock_wait s =
  match (s.begin_at, s.lock_at) with Some b, Some l -> Some (l -. b) | _ -> None

let request_wait s =
  match (s.first_request_at, s.last_honor_at) with
  | Some r, Some h -> Some (h -. r)
  | _ -> None

let span_duration s =
  match (s.begin_at, s.end_at) with Some b, Some e -> Some (e -. b) | _ -> None

type vm_life = {
  src : int;
  dst : int;
  seq : int;
  item : int option;
  amount : int option;
  created_at : float option;
  accepted_at : float option;
  retransmits : int;
  dups : int;
}

let delivery_delay v =
  match (v.created_at, v.accepted_at) with Some c, Some a -> Some (a -. c) | _ -> None

type t = {
  complete : bool;
  dropped : int;
  events : int;
  t0 : float;
  t1 : float;
  txns : txn_span list;
  vms : vm_life list;
}

(* ------------------------------------------------------------------ fold *)

(* Mutable accumulator per transaction; keyed by the txn id, which is unique
   per run (counter, birth site). *)
type txn_acc = {
  mutable a_site : int;
  mutable a_begin : float option;
  mutable a_n_ops : int option;
  mutable a_lock : float option;
  mutable a_first_req : float option;
  mutable a_last_honor : float option;
  mutable a_end : float option;
  mutable a_release : float option;
  mutable a_outcome : txn_outcome;
  mutable a_requests : int;
  mutable a_honored : int;
  mutable a_ignored : int;
  order : int;
}

type vm_acc = {
  mutable v_item : int option;
  mutable v_amount : int option;
  mutable v_created : float option;
  mutable v_accepted : float option;
  mutable v_retrans : int;
  mutable v_dups : int;
  v_order : int;
}

let of_events ?(dropped = 0) events =
  let txns : (Trace.ts, txn_acc) Hashtbl.t = Hashtbl.create 64 in
  let vms : (int * int * int, vm_acc) Hashtbl.t = Hashtbl.create 64 in
  let n_txn = ref 0 and n_vm = ref 0 in
  let txn_acc id site =
    match Hashtbl.find_opt txns id with
    | Some a -> a
    | None ->
      let a =
        {
          a_site = site;
          a_begin = None;
          a_n_ops = None;
          a_lock = None;
          a_first_req = None;
          a_last_honor = None;
          a_end = None;
          a_release = None;
          a_outcome = Unfinished;
          a_requests = 0;
          a_honored = 0;
          a_ignored = 0;
          order = !n_txn;
        }
      in
      incr n_txn;
      Hashtbl.add txns id a;
      a
  in
  let vm_acc key =
    match Hashtbl.find_opt vms key with
    | Some v -> v
    | None ->
      let v =
        {
          v_item = None;
          v_amount = None;
          v_created = None;
          v_accepted = None;
          v_retrans = 0;
          v_dups = 0;
          v_order = !n_vm;
        }
      in
      incr n_vm;
      Hashtbl.add vms key v;
      v
  in
  let t0 = ref infinity and t1 = ref neg_infinity in
  List.iter
    (fun (time, ev) ->
      if time < !t0 then t0 := time;
      if time > !t1 then t1 := time;
      match ev with
      | Trace.Txn_begin { site; txn; n_ops } ->
        let a = txn_acc txn site in
        a.a_site <- site;
        if a.a_begin = None then a.a_begin <- Some time;
        a.a_n_ops <- Some n_ops
      | Trace.Txn_commit { site; txn } ->
        let a = txn_acc txn site in
        a.a_end <- Some time;
        a.a_outcome <- Committed
      | Trace.Txn_abort { site; txn; reason } ->
        let a = txn_acc txn site in
        a.a_end <- Some time;
        a.a_outcome <- Aborted reason
      | Trace.Lock_acquire { site; txn; _ } ->
        let a = txn_acc txn site in
        if a.a_lock = None then a.a_lock <- Some time
      | Trace.Lock_release { site; txn } ->
        let a = txn_acc txn site in
        a.a_release <- Some time
      | Trace.Request_sent { site; txn; _ } ->
        let a = txn_acc txn site in
        a.a_requests <- a.a_requests + 1;
        if a.a_first_req = None then a.a_first_req <- Some time
      | Trace.Request_honored { src; txn; _ } ->
        (* [site] here is the honoring peer; the span belongs to the
           requester [src]. *)
        let a = txn_acc txn src in
        a.a_honored <- a.a_honored + 1;
        a.a_last_honor <- Some time
      | Trace.Request_ignored { src; txn; _ } ->
        let a = txn_acc txn src in
        a.a_ignored <- a.a_ignored + 1
      | Trace.Vm_created { site; dst; seq; item; amount } ->
        let v = vm_acc (site, dst, seq) in
        v.v_item <- Some item;
        v.v_amount <- Some amount;
        if v.v_created = None then v.v_created <- Some time
      | Trace.Vm_retransmit { site; dst; seq; item; amount } ->
        let v = vm_acc (site, dst, seq) in
        if v.v_item = None then v.v_item <- Some item;
        if v.v_amount = None then v.v_amount <- Some amount;
        v.v_retrans <- v.v_retrans + 1
      | Trace.Vm_accepted { site; src; seq; item; amount } ->
        let v = vm_acc (src, site, seq) in
        if v.v_item = None then v.v_item <- Some item;
        if v.v_amount = None then v.v_amount <- Some amount;
        if v.v_accepted = None then v.v_accepted <- Some time
      | Trace.Vm_dup { site; src; seq } ->
        let v = vm_acc (src, site, seq) in
        v.v_dups <- v.v_dups + 1
      | Trace.Crash _ | Trace.Recover _ | Trace.Checkpoint _ | Trace.Storage_fault _
      | Trace.Wal_repair _ | Trace.Net_send _ | Trace.Net_drop _ | Trace.Health _
      | Trace.Evacuation _ | Trace.Outbox_high _ | Trace.Mailbox_high _ | Trace.Join _
      | Trace.Leave _ | Trace.Rebalance _ | Trace.Note _ -> ())
    events;
  let txn_list =
    Hashtbl.fold
      (fun id a acc ->
        ( a.order,
          {
            txn = id;
            site = a.a_site;
            begin_at = a.a_begin;
            n_ops = a.a_n_ops;
            lock_at = a.a_lock;
            first_request_at = a.a_first_req;
            last_honor_at = a.a_last_honor;
            end_at = a.a_end;
            release_at = a.a_release;
            outcome = a.a_outcome;
            requests = a.a_requests;
            honored = a.a_honored;
            ignored = a.a_ignored;
          } )
        :: acc)
      txns []
    |> List.sort (fun (x, _) (y, _) -> compare x y)
    |> List.map snd
  in
  let vm_list =
    Hashtbl.fold
      (fun (src, dst, seq) v acc ->
        ( v.v_order,
          {
            src;
            dst;
            seq;
            item = v.v_item;
            amount = v.v_amount;
            created_at = v.v_created;
            accepted_at = v.v_accepted;
            retransmits = v.v_retrans;
            dups = v.v_dups;
          } )
        :: acc)
      vms []
    |> List.sort (fun (x, _) (y, _) -> compare x y)
    |> List.map snd
  in
  let n = List.length events in
  {
    complete = dropped = 0;
    dropped;
    events = n;
    t0 = (if n = 0 then 0.0 else !t0);
    t1 = (if n = 0 then 0.0 else !t1);
    txns = txn_list;
    vms = vm_list;
  }

let of_trace tr = of_events ~dropped:(Trace.drop_count tr) (Trace.events tr)

let of_jsonl jsonl =
  (* A crash- or kill-clipped dump ends in a truncated line; count it as
     dropped (incomplete window) rather than failing the whole analysis. *)
  let events, malformed = Trace.of_jsonl_stats jsonl in
  let meta_dropped =
    match Trace.meta_of_jsonl jsonl with Some m -> m.Trace.dropped | None -> 0
  in
  of_events ~dropped:(meta_dropped + malformed) events

(* ------------------------------------------------------------- summaries *)

let sample_of f xs =
  let s = Dstats.Sample.create () in
  List.iter (fun x -> match f x with Some v -> Dstats.Sample.add s v | None -> ()) xs;
  s

let committed_count t =
  List.length (List.filter (fun s -> s.outcome = Committed) t.txns)

let aborted_count t =
  List.length (List.filter (fun s -> match s.outcome with Aborted _ -> true | _ -> false) t.txns)

let unfinished_count t =
  List.length (List.filter (fun s -> s.outcome = Unfinished) t.txns)

let abort_reasons t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match s.outcome with
      | Aborted reason ->
        Hashtbl.replace tbl reason (1 + Option.value ~default:0 (Hashtbl.find_opt tbl reason))
      | _ -> ())
    t.txns;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let lock_wait_stats t = sample_of lock_wait t.txns

let request_wait_stats t = sample_of request_wait t.txns

let duration_stats t = sample_of span_duration t.txns

let delivery_stats t = sample_of delivery_delay t.vms

let retransmit_stats t = sample_of (fun v -> Some (float_of_int v.retransmits)) t.vms

let vm_in_flight t = List.length (List.filter (fun v -> v.accepted_at = None) t.vms)

(* -------------------------------------------------------------- timeline *)

type timeline = {
  bucket : float;
  start : float;
  activity : (int * int array) list;  (** per site, events per bucket *)
  faults : (int * float list) list;  (** per site, crash times *)
}

let site_of_event = function
  | Trace.Txn_begin { site; _ }
  | Trace.Txn_commit { site; _ }
  | Trace.Txn_abort { site; _ }
  | Trace.Vm_created { site; _ }
  | Trace.Vm_accepted { site; _ }
  | Trace.Vm_retransmit { site; _ }
  | Trace.Vm_dup { site; _ }
  | Trace.Lock_acquire { site; _ }
  | Trace.Lock_release { site; _ }
  | Trace.Request_sent { site; _ }
  | Trace.Request_honored { site; _ }
  | Trace.Request_ignored { site; _ }
  | Trace.Crash { site }
  | Trace.Recover { site; _ }
  | Trace.Checkpoint { site; _ }
  | Trace.Storage_fault { site; _ }
  | Trace.Wal_repair { site; _ }
  | Trace.Health { site; _ }
  | Trace.Evacuation { site; _ }
  | Trace.Outbox_high { site; _ }
  | Trace.Mailbox_high { site; _ }
  | Trace.Join { site; _ }
  | Trace.Leave { site; _ } -> Some site
  | Trace.Net_send { src; _ } | Trace.Net_drop { src; _ } -> Some src
  | Trace.Rebalance _ | Trace.Note _ -> None

let timeline ?(buckets = 60) events =
  let t0 = ref infinity and t1 = ref neg_infinity in
  List.iter
    (fun (time, _) ->
      if time < !t0 then t0 := time;
      if time > !t1 then t1 := time)
    events;
  if events = [] then { bucket = 1.0; start = 0.0; activity = []; faults = [] }
  else begin
    let span = Float.max 1e-9 (!t1 -. !t0) in
    let bucket = span /. float_of_int buckets in
    let per_site = Hashtbl.create 8 in
    let faults = Hashtbl.create 8 in
    List.iter
      (fun (time, ev) ->
        match site_of_event ev with
        | None -> ()
        | Some site ->
          let row =
            match Hashtbl.find_opt per_site site with
            | Some r -> r
            | None ->
              let r = Array.make buckets 0 in
              Hashtbl.add per_site site r;
              r
          in
          let b = min (buckets - 1) (int_of_float ((time -. !t0) /. bucket)) in
          row.(b) <- row.(b) + 1;
          (match ev with
          | Trace.Crash _ ->
            Hashtbl.replace faults site
              (time :: Option.value ~default:[] (Hashtbl.find_opt faults site))
          | _ -> ()))
      events;
    {
      bucket;
      start = !t0;
      activity =
        Hashtbl.fold (fun site row acc -> (site, row) :: acc) per_site []
        |> List.sort compare;
      faults =
        Hashtbl.fold (fun site ts acc -> (site, List.rev ts) :: acc) faults []
        |> List.sort compare;
    }
  end

let spark_chars = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |]

let render_timeline tl =
  let buf = Buffer.create 1024 in
  let peak =
    List.fold_left
      (fun acc (_, row) -> Array.fold_left max acc row)
      1 tl.activity
  in
  Buffer.add_string buf
    (Printf.sprintf "per-site activity (events per %.3fs bucket, from t=%.3f; peak %d):\n"
       tl.bucket tl.start peak);
  List.iter
    (fun (site, row) ->
      let line =
        String.init (Array.length row) (fun i ->
            let v = row.(i) in
            if v = 0 then ' '
            else begin
              let scaled = 1 + (v * (Array.length spark_chars - 2) / peak) in
              spark_chars.(min (Array.length spark_chars - 1) scaled)
            end)
      in
      (* Crashes punch through the sparkline as 'X'. *)
      let line = Bytes.of_string line in
      (match List.assoc_opt site tl.faults with
      | Some times ->
        List.iter
          (fun time ->
            let b =
              min (Bytes.length line - 1)
                (max 0 (int_of_float ((time -. tl.start) /. tl.bucket)))
            in
            Bytes.set line b 'X')
          times
      | None -> ());
      Buffer.add_string buf (Printf.sprintf "  site %-3d |%s|\n" site (Bytes.to_string line)))
    tl.activity;
  Buffer.contents buf

let timeline_to_json tl =
  Json.Obj
    [
      ("bucket", Json.Float tl.bucket);
      ("start", Json.Float tl.start);
      ( "activity",
        Json.Obj
          (List.map
             (fun (site, row) ->
               ( string_of_int site,
                 Json.List (Array.to_list (Array.map (fun v -> Json.Int v) row)) ))
             tl.activity) );
      ( "crashes",
        Json.Obj
          (List.map
             (fun (site, ts) ->
               (string_of_int site, Json.List (List.map (fun t -> Json.Float t) ts)))
             tl.faults) );
    ]

(* ------------------------------------------------------------------ JSON *)

let num f = if Float.is_finite f then Json.Float f else Json.Null

let stats_to_json s =
  Json.Obj
    [
      ("n", Json.Int (Dstats.Sample.count s));
      ("mean", num (Dstats.Sample.mean s));
      ("p50", num (Dstats.Sample.percentile s 50.0));
      ("p90", num (Dstats.Sample.percentile s 90.0));
      ("max", num (Dstats.Sample.max_value s));
    ]

let opt_num = function Some f -> num f | None -> Json.Null

let opt_int = function Some i -> Json.Int i | None -> Json.Null

let txn_span_to_json s =
  Json.Obj
    [
      ("txn", Json.List [ Json.Int (fst s.txn); Json.Int (snd s.txn) ]);
      ("site", Json.Int s.site);
      ( "outcome",
        Json.String
          (match s.outcome with
          | Committed -> "committed"
          | Aborted _ -> "aborted"
          | Unfinished -> "unfinished") );
      ( "reason",
        match s.outcome with Aborted r -> Json.String r | _ -> Json.Null );
      ("begin", opt_num s.begin_at);
      ("end", opt_num s.end_at);
      ("n_ops", opt_int s.n_ops);
      ("lock_wait", opt_num (lock_wait s));
      ("request_wait", opt_num (request_wait s));
      ("duration", opt_num (span_duration s));
      ("requests", Json.Int s.requests);
      ("honored", Json.Int s.honored);
      ("ignored", Json.Int s.ignored);
    ]

let vm_life_to_json v =
  Json.Obj
    [
      ("src", Json.Int v.src);
      ("dst", Json.Int v.dst);
      ("seq", Json.Int v.seq);
      ("item", opt_int v.item);
      ("amount", opt_int v.amount);
      ("created", opt_num v.created_at);
      ("accepted", opt_num v.accepted_at);
      ("delivery_delay", opt_num (delivery_delay v));
      ("retransmits", Json.Int v.retransmits);
      ("duplicates", Json.Int v.dups);
      ("in_flight", Json.Bool (v.accepted_at = None));
    ]

let to_json ?(lifecycles = true) t =
  let base =
    [
      ("complete", Json.Bool t.complete);
      ("dropped", Json.Int t.dropped);
      ("events", Json.Int t.events);
      ("t0", num t.t0);
      ("t1", num t.t1);
      ( "txns",
        Json.Obj
          [
            ("total", Json.Int (List.length t.txns));
            ("committed", Json.Int (committed_count t));
            ("aborted", Json.Int (aborted_count t));
            ("unfinished", Json.Int (unfinished_count t));
            ( "abort_reasons",
              Json.Obj
                (List.map (fun (r, n) -> (r, Json.Int n)) (abort_reasons t)) );
            ("lock_wait", stats_to_json (lock_wait_stats t));
            ("request_wait", stats_to_json (request_wait_stats t));
            ("duration", stats_to_json (duration_stats t));
          ] );
      ( "vms",
        Json.Obj
          [
            ("total", Json.Int (List.length t.vms));
            ("in_flight", Json.Int (vm_in_flight t));
            ("delivery_delay", stats_to_json (delivery_stats t));
            ("retransmits_per_vm", stats_to_json (retransmit_stats t));
          ] );
    ]
  in
  let tail =
    if lifecycles then
      [
        ("txn_spans", Json.List (List.map txn_span_to_json t.txns));
        ("vm_lifecycles", Json.List (List.map vm_life_to_json t.vms));
      ]
    else []
  in
  Json.Obj (base @ tail)

(* -------------------------------------------------------------- printing *)

let ms = function
  | f when Float.is_finite f -> Printf.sprintf "%.1f" (1000.0 *. f)
  | _ -> "-"

let pp_stats ppf s =
  Format.fprintf ppf "n=%-5d mean=%s ms  p50=%s ms  p90=%s ms  max=%s ms"
    (Dstats.Sample.count s)
    (ms (Dstats.Sample.mean s))
    (ms (Dstats.Sample.percentile s 50.0))
    (ms (Dstats.Sample.percentile s 90.0))
    (ms (Dstats.Sample.max_value s))

let pp_summary ppf t =
  Format.pp_open_vbox ppf 0;
  if not t.complete then
    Format.fprintf ppf
      "WARNING: trace ring dropped %d events — the oldest history is missing;@,\
       spans and counts below describe only the retained window.@,@,"
      t.dropped;
  Format.fprintf ppf "window: t=%.3f .. %.3f (%d events)@," t.t0 t.t1 t.events;
  Format.fprintf ppf "transactions: %d  (committed %d, aborted %d, unfinished %d)@,"
    (List.length t.txns) (committed_count t) (aborted_count t) (unfinished_count t);
  List.iter
    (fun (reason, n) -> Format.fprintf ppf "  aborts/%-14s %d@," reason n)
    (abort_reasons t);
  Format.fprintf ppf "  lock-wait     %a@," pp_stats (lock_wait_stats t);
  Format.fprintf ppf "  request-wait  %a@," pp_stats (request_wait_stats t);
  Format.fprintf ppf "  txn duration  %a@," pp_stats (duration_stats t);
  Format.fprintf ppf "virtual messages: %d  (%d still in flight)@," (List.length t.vms)
    (vm_in_flight t);
  Format.fprintf ppf "  delivery      %a@," pp_stats (delivery_stats t);
  let r = retransmit_stats t in
  if Dstats.Sample.count r = 0 then Format.fprintf ppf "  retransmits/vm mean=- max=-"
  else
    Format.fprintf ppf "  retransmits/vm mean=%.2f max=%.0f"
      (Dstats.Sample.mean r)
      (Dstats.Sample.max_value r);
  Format.pp_close_box ppf ()

let render_vm_table t =
  (* One row per directed site pair, aggregating its Vm lifecycles. *)
  let pairs = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let key = (v.src, v.dst) in
      let lst = Option.value ~default:[] (Hashtbl.find_opt pairs key) in
      Hashtbl.replace pairs key (v :: lst))
    t.vms;
  let tab =
    Table.create
      ~title:"vm lifecycles by site pair"
      [
        ("src->dst", Table.Left);
        ("created", Table.Right);
        ("accepted", Table.Right);
        ("in flight", Table.Right);
        ("retrans", Table.Right);
        ("dups", Table.Right);
        ("delay p50 ms", Table.Right);
        ("delay p90 ms", Table.Right);
        ("delay max ms", Table.Right);
      ]
  in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) pairs []
  |> List.sort compare
  |> List.iter (fun ((src, dst), lives) ->
         let d = sample_of delivery_delay lives in
         let sum f = List.fold_left (fun acc v -> acc + f v) 0 lives in
         Table.add_row tab
           [
             Printf.sprintf "%d->%d" src dst;
             Table.fint (List.length lives);
             Table.fint (List.length (List.filter (fun v -> v.accepted_at <> None) lives));
             Table.fint (List.length (List.filter (fun v -> v.accepted_at = None) lives));
             Table.fint (sum (fun v -> v.retransmits));
             Table.fint (sum (fun v -> v.dups));
             ms (Dstats.Sample.percentile d 50.0);
             ms (Dstats.Sample.percentile d 90.0);
             ms (Dstats.Sample.max_value d);
           ]);
  Table.render tab
