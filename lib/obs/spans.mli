(** Span reconstruction over the structured trace.

    Folds a stream of {!Dvp_sim.Trace} events — live from a ring, or parsed
    back from a JSONL dump — into two families of spans:

    - {b transaction spans}: begin → lock acquisition → remote value requests
      → commit/abort → lock release, with the latency breakdown between those
      edges (lock wait, request wait, total duration);
    - {b virtual-message lifecycles}: one per [(src, dst, seq)] triple,
      created → retransmitted (n times) → accepted, plus duplicate
      deliveries, yielding the Vm delivery-delay and retransmits-per-Vm
      distributions.

    The trace ring is bounded, so an analysis can be working from a clipped
    window.  {!of_trace} records the ring's [drop_count] and every renderer
    refuses to present a clipped trace as complete: [complete = false] in
    the JSON and a leading WARNING in the text summary. *)

type txn_outcome = Committed | Aborted of string | Unfinished

type txn_span = {
  txn : Dvp_sim.Trace.ts;
  site : int;  (** birth site *)
  begin_at : float option;
  n_ops : int option;
  lock_at : float option;  (** first lock acquisition *)
  first_request_at : float option;
  last_honor_at : float option;
  end_at : float option;  (** commit or abort time *)
  release_at : float option;
  outcome : txn_outcome;
  requests : int;
  honored : int;
  ignored : int;
}

val lock_wait : txn_span -> float option
(** Time from begin to first lock acquisition. *)

val request_wait : txn_span -> float option
(** Time from first remote request to last honored response. *)

val span_duration : txn_span -> float option

type vm_life = {
  src : int;
  dst : int;
  seq : int;
  item : int option;
  amount : int option;
  created_at : float option;
  accepted_at : float option;  (** [None] while still in flight *)
  retransmits : int;
  dups : int;
}

val delivery_delay : vm_life -> float option

type t = {
  complete : bool;  (** false iff events were evicted before analysis *)
  dropped : int;
  events : int;
  t0 : float;
  t1 : float;
  txns : txn_span list;  (** in first-appearance order *)
  vms : vm_life list;  (** in first-appearance order *)
}

val of_events : ?dropped:int -> (float * Dvp_sim.Trace.event) list -> t
(** Fold an event list (e.g. from [Trace.of_jsonl]); [dropped] should come
    from the JSONL meta header when available. *)

val of_trace : Dvp_sim.Trace.t -> t
(** [of_events] over the live ring, with [dropped = Trace.drop_count]. *)

val of_jsonl : string -> t
(** Parse a JSONL dump (DES {!Dvp_sim.Trace.to_jsonl} or the merged
    multi-shard wall dump) and fold it.  Tolerates a truncated final line —
    the usual tail of a dump clipped by a crash or kill — by counting each
    unparseable non-empty line as one dropped event ([complete = false])
    instead of erroring. *)

(** {2 Aggregates} *)

val committed_count : t -> int

val aborted_count : t -> int

val unfinished_count : t -> int
(** Transactions with a begin but no commit/abort in the window — e.g. cut
    short by a crash, or still running at the end of the trace. *)

val abort_reasons : t -> (string * int) list
(** Abort counts by reason, most frequent first. *)

val lock_wait_stats : t -> Dvp_util.Dstats.Sample.s

val request_wait_stats : t -> Dvp_util.Dstats.Sample.s

val duration_stats : t -> Dvp_util.Dstats.Sample.s

val delivery_stats : t -> Dvp_util.Dstats.Sample.s

val retransmit_stats : t -> Dvp_util.Dstats.Sample.s
(** Retransmission count per Vm (a float-valued sample for percentiles). *)

val vm_in_flight : t -> int
(** Lifecycles with no acceptance in the window. *)

(** {2 Per-site activity timeline} *)

type timeline = {
  bucket : float;  (** seconds per bucket *)
  start : float;
  activity : (int * int array) list;  (** per site, events per bucket *)
  faults : (int * float list) list;  (** per site, crash times *)
}

val timeline : ?buckets:int -> (float * Dvp_sim.Trace.event) list -> timeline
(** Bucket every site-attributable event into [buckets] (default 60) equal
    windows. *)

val render_timeline : timeline -> string
(** ASCII sparkline per site; crashes render as ['X']. *)

val timeline_to_json : timeline -> Dvp_util.Json.t

(** {2 Export} *)

val stats_to_json : Dvp_util.Dstats.Sample.s -> Dvp_util.Json.t
(** [{"n", "mean", "p50", "p90", "max"}]; empty samples export [null]s. *)

val txn_span_to_json : txn_span -> Dvp_util.Json.t

val vm_life_to_json : vm_life -> Dvp_util.Json.t

val to_json : ?lifecycles:bool -> t -> Dvp_util.Json.t
(** Aggregate statistics plus, when [lifecycles] (default true), the full
    ["txn_spans"] and ["vm_lifecycles"] arrays. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable aggregate summary; warns first when the trace was
    clipped. *)

val render_vm_table : t -> string
(** Vm lifecycle table aggregated by directed site pair. *)
