(** Named-instrument telemetry sampled into windowed time-series.

    A registry holds {e counters} (monotonic cumulative sources, exported as
    per-window increments — i.e. rates) and {e gauges} (instantaneous
    values, exported as sampled).  {!attach} starts a {!Dvp_sim.Probe} that
    reads every instrument on a fixed simulated-time period; {!stop} takes a
    final out-of-cadence sample (via [Probe.sample_now]) so the last partial
    window is preserved, then halts the probe.

    {!of_system} wires the standard instruments for a DvP installation:
    per-site commit/abort counters, global abort counters by reason, the
    total in-flight Vm value (the paper's N_M), the stable WAL length, the
    Vm retransmit counter, and the stale-epoch rejection counter
    ([vm.stale_epochs] — Vm traffic fenced off by membership epochs). *)

type t

type kind = Counter | Gauge

val create : unit -> t

val counter : t -> string -> (unit -> float) -> unit
(** Register a monotonic cumulative source.  Raises [Invalid_argument] after
    {!attach}. *)

val gauge : t -> string -> (unit -> float) -> unit

val attach : t -> Dvp_sim.Engine.t -> period:float -> unit
(** Start periodic sampling.  Counter baselines are read here, so windows
    report increments since attach, not since zero. *)

val attach_clock : t -> clock:(unit -> float) -> period:float -> unit
(** Attach without an engine (a {!Dvp_sim.Probe.manual} probe): nothing is
    scheduled, the caller drives sampling by calling {!sample_now} on its
    own cadence (nominally every [period]) and timestamps come from
    [clock].  This is the wall-clock observer's path. *)

val sample_now : t -> unit
(** Read every instrument once, at the current clock time.  Raises
    [Invalid_argument] before attach. *)

val attached : t -> bool

val stop : t -> unit
(** Final sample + halt.  No-op when never attached. *)

type series = {
  s_name : string;
  s_kind : kind;
  points : (float * float) list;
      (** counters: per-window increments; gauges: sampled values *)
}

val series : t -> series list
(** One series per instrument, registration order; empty before {!attach}. *)

val period : t -> float
(** Sampling period; [nan] before {!attach}. *)

val to_json : t -> Dvp_util.Json.t
(** [{"period", "series": [{"name", "kind", "points": [[t, v], ...]}]}]. *)

val snapshot : t -> Dvp_util.Json.t
(** Instantaneous reading of every instrument (one flat object), usable even
    before {!attach} — this is what the flight recorder embeds in a
    crashdump. *)

val render : t -> string
(** ASCII table: one row per series with last/total/peak values and a
    sparkline of its windows. *)

val of_system : ?aborts_by_reason:bool -> Dvp_core.System.t -> t
(** The standard DvP registry described above ([aborts_by_reason] defaults
    to true).  Call {!attach} with the system's engine to start sampling. *)
