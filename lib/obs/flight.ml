module Trace = Dvp_sim.Trace
module Json = Dvp_util.Json

type t = {
  dir : string;
  source : unit -> string;  (* renders the trace window as JSONL at dump time *)
  ring : Trace.t option;  (* the live ring, when there is exactly one *)
  mutable telemetry : (unit -> Json.t) option;
  mutable dumps : string list;  (* newest first *)
}

let default_dir = "artifacts/crashdumps"

let create ?(dir = default_dir) trace =
  { dir; source = (fun () -> Trace.to_jsonl trace); ring = Some trace; telemetry = None; dumps = [] }

let create_source ?(dir = default_dir) source =
  { dir; source; ring = None; telemetry = None; dumps = [] }

let trace t = t.ring

let set_telemetry t f = t.telemetry <- Some f

let dumps t = List.rev t.dumps

(* mkdir -p without a unix dependency. *)
let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    label

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let fresh_dir t label =
  let base = Filename.concat t.dir (sanitize label) in
  if not (Sys.file_exists base) then base
  else begin
    let rec next k =
      let candidate = Printf.sprintf "%s-%d" base k in
      if Sys.file_exists candidate then next (k + 1) else candidate
    in
    next 1
  end

let dump t ~label ~verdict =
  let dir = fresh_dir t label in
  mkdir_p dir;
  write_file (Filename.concat dir "trace.jsonl") (t.source ());
  let telemetry = match t.telemetry with Some f -> f () | None -> Json.Null in
  write_file (Filename.concat dir "telemetry.json") (Json.to_string_pretty telemetry);
  write_file (Filename.concat dir "verdict.json") (Json.to_string_pretty verdict);
  t.dumps <- dir :: t.dumps;
  dir

(* ---------------------------------------------------------------- load *)

type dump_contents = {
  events : (float * Trace.event) list;
  meta : Trace.meta option;
  telemetry_json : Json.t;
  verdict : Json.t;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load dir =
  let trace_path = Filename.concat dir "trace.jsonl" in
  let jsonl = if Sys.file_exists trace_path then read_file trace_path else "" in
  let parse_json path =
    if Sys.file_exists path then
      match Json.parse (read_file path) with Ok j -> j | Error _ -> Json.Null
    else Json.Null
  in
  {
    events = Trace.of_jsonl jsonl;
    meta = Trace.meta_of_jsonl jsonl;
    telemetry_json = parse_json (Filename.concat dir "telemetry.json");
    verdict = parse_json (Filename.concat dir "verdict.json");
  }
