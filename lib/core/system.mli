(** A whole DvP installation: [n] sites over a simulated network.

    This is the top-level façade the examples and benchmarks use.  It wires
    the sites' message plumbing (plus the ordered-broadcast transport when
    the configuration selects Conc2), exposes fault injection (partitions,
    site crashes, link loss), tracks the expected aggregate value of every
    item as transactions commit, and can check the paper's conservation
    invariant

    {v N  =  Σᵢ Nᵢ + N_M v}

    — the fragments at all sites (live, or replayed from stable logs for
    crashed sites) plus the value inside unaccepted virtual messages always
    equal the initial total adjusted by exactly the committed operator
    deltas.  Nothing is ever lost or duplicated, whatever the failures. *)

type t

val create :
  ?seed:int ->
  ?config:Config.t ->
  ?link:Dvp_net.Linkstate.params ->
  ?trace:Dvp_sim.Trace.t ->
  ?capacity:int ->
  ?queue:[ `Wheel | `Heap_reference ] ->
  n:int ->
  unit ->
  t
(** [capacity] (default [n], must be [>= n]) sizes the installation's slot
    table: slots [0, n) start as members, slots [n, capacity) start
    {e detached} — crashed, off the network, outside every failure
    detector's world — and come alive only through {!join}.

    [queue] selects the engine's event-queue implementation (see
    {!Dvp_sim.Engine.create}); the default timer wheel and the
    [`Heap_reference] binary heap implement the same total event order, so
    a same-seed run traces byte-identically on either. *)

val engine : t -> Dvp_sim.Engine.t
(** The DES driver underneath: time only advances through
    [Engine.run_until]-style calls on this engine. *)

val sub : t -> Dvp_substrate.Substrate.t
(** The same engine behind the substrate interface — what every component of
    this system schedules against. *)

val now : t -> float

val run_until : t -> float -> unit

val run_for : t -> float -> unit

val n_sites : t -> int
(** Total slots ([capacity]), members and detached spares alike. *)

val site : t -> Ids.site -> Site.t

val config : t -> Config.t

val network : t -> Proto.t Dvp_net.Network.t

val trace : t -> Dvp_sim.Trace.t option
(** The trace handed to {!create}, if any — so downstream tooling (flight
    recorders, span analyzers) can reach the same event stream the sites
    emit into. *)

(** {2 Data placement} *)

val add_item :
  t ->
  item:Ids.item ->
  total:int ->
  ?split:[ `Even | `Weights of float list | `Explicit of int list ] ->
  unit ->
  unit
(** Install an item with aggregate value [total], partitioned across the
    {e current members} ([`Even] by default; [`Weights] and [`Explicit]
    take one entry per member, in member order).  Detached spare slots get
    no initial fragment — they receive value through the {!join}
    handshake. *)

val items : t -> Ids.item list

(** {2 Transactions} *)

val exec : t -> Txn.t -> on_done:(Txn.outcome -> unit) -> unit
(** Execute one request — update, single-item read, or multi-item snapshot,
    with or without a retry policy (see {!Txn}).  [on_done] fires exactly
    once with the final outcome; when the request carries a retry policy,
    intermediate aborts are resubmitted as fresh transactions (fresh, higher
    timestamps) after [backoff * attempt] seconds, Section 8's
    livelock-avoidance mechanism. *)

(** {2 Fault injection} *)

val partition : t -> Ids.site list list -> unit

val heal : t -> unit

val crash_site : t -> Ids.site -> unit

val recover_site : t -> Ids.site -> unit

val site_up : t -> Ids.site -> bool

val set_all_links : t -> Dvp_net.Linkstate.params -> unit

val inject_wal_fault : t -> Ids.site -> Dvp_storage.Wal.fault -> unit
(** Arm a storage fault on a site's log, applied at its next crash (see
    {!Site.inject_wal_fault}). *)

val checkpoint_site : t -> Ids.site -> unit
(** Checkpoint one site (no-op while it is crashed). *)

val kill_forever : t -> Ids.site -> unit
(** Crash a site permanently: like {!crash_site}, but {!recover_site} becomes
    a no-op for it.  The failure model behind degraded-mode operation — the
    site will never come back, and its fragments are recoverable only through
    {!evacuate}. *)

(** {2 Degraded-mode operation (failure detection and evacuation)}

    Armed by setting {!Config.t.health}: each site runs a heartbeat failure
    detector (piggybacked on delivered traffic, plus idle-time probes) that
    classifies every peer as [Up], [Suspected], or [Condemned].  Suspected
    peers get their Vm outbox parked (the circuit breaker — no
    retransmissions, bounded send work) and are skipped by [Ask] request
    strategies; Condemned peers additionally become eligible for fragment
    evacuation. *)

val detector : t -> Ids.site -> Dvp_health.Health.t option
(** Site [i]'s failure detector, or [None] when health checking is off. *)

val health_state : t -> observer:Ids.site -> peer:Ids.site -> Dvp_health.Health.state
(** [observer]'s current verdict about [peer] ([Up] when detection is off). *)

type evacuation_report = {
  evac_site : Ids.site;  (** the site whose fragments were re-homed *)
  value_moved : int;  (** total value re-homed through evacuation Vm *)
  vms_delivered : int;  (** Vm accepted during the evacuation, both ways *)
  stranded : int;  (** Vm left for the background sweep (receiver down) *)
}

val evacuate :
  ?force:bool -> t -> site:Ids.site -> unit -> (evacuation_report, string) result
(** Re-home a long-dead site's fragments and in-flight Vm onto the
    survivors, using only its stable log and the ordinary Vm primitives —
    so the conservation invariant holds at every intermediate step.
    Refuses ([Error _]) if the site is up, or if no live peer has condemned
    it (override with [~force:true] — the operator's prerogative).  Vm
    addressed to peers that are down during the evacuation are re-delivered
    by a background sweep once those peers return. *)

val evacuated : t -> Ids.site -> bool
(** Whether the site's fragments have been evacuated (reset if it ever
    recovers). *)

val dead_forever : t -> Ids.site -> bool

(** {2 Elastic membership}

    Sites join and leave the installation while it runs.  Every transition
    is fenced by a global {e membership epoch}: the epoch is stamped into
    each Vm at transmit time, receivers reject Vm stamped with an older
    epoch (never destroying value — the sender retransmits with a fresh
    stamp), and the epoch bumps exactly when a join or leave completes.
    The fence is what makes the Vm-channel sequence restart on a leave safe:
    a stale ack or data message from before the restart cannot be confused
    with the fresh numbering. *)

val member_state : t -> Ids.site -> Membership.state

val epoch : t -> int
(** Current membership epoch (starts at 0). *)

val members : t -> Ids.site list
(** Slots currently in state [Member], ascending. *)

val join : t -> Ids.site -> (unit, string) result
(** Bring a detached slot online: recover it from its (possibly empty)
    stable log, seed it with a [1/(m+1)] share of every item from each of
    the [m] current members — all through ordinary [push_value] Vm — and,
    asynchronously, promote it to [Member] (epoch bump, {!Dvp_sim.Trace.Join})
    once the seed value has been accepted.  Run the engine to complete the
    handshake; poll {!member_state} to observe it.  Refuses slots that are
    not detached or were killed forever.  A crash mid-join leaves the slot
    [Joining]; {!recover_site} it and the join completes. *)

val leave : t -> Ids.site -> (unit, string) result
(** Graceful voluntary leave of an up member (the counterpart of
    {!evacuate} for a live site): the site immediately stops accepting new
    transactions, drains its obligations, sheds every fragment onto the up
    members through ordinary [push_value] Vm, and — once nothing is held or
    owed in either direction — detaches: epoch bump, pairwise Vm-channel
    restart with every up peer, {!Dvp_sim.Trace.Leave}.  Run the engine to
    complete the drain.  Refuses non-members, down sites, and leaves that
    would drop the installation below two members.  A crash during the
    drain aborts the leave (the slot reverts to [Member]). *)

val rebalance : ?slack:int -> t -> int
(** One auto-rebalance pass: hot members (above the per-item even-split
    target by more than [slack], default {!Config.default_rebalance}) pour
    their excess into cold ones via ordinary [push_value] Vm.  Returns the
    total value moved; emits {!Dvp_sim.Trace.Rebalance} when nonzero. *)

val start_auto_rebalance : t -> every:float -> slack:int -> unit
(** Run {!rebalance} on a fixed period until the simulation ends.  Armed
    automatically by {!create} when [config.rebalance] is [Some _]. *)

(** {2 Observation} *)

val fragments : t -> item:Ids.item -> int array
(** Per-site fragment values (stable replay for crashed sites). *)

val total_at_sites : t -> item:Ids.item -> int

val in_flight : t -> item:Ids.item -> int
(** N_M: value inside virtual messages created but not yet accepted,
    computed from stable logs (sender outboxes filtered by receiver
    acceptance watermarks). *)

val expected_total : t -> item:Ids.item -> int
(** Initial total plus the deltas of all committed transactions. *)

val conserved : t -> item:Ids.item -> bool
(** The invariant above.  Meaningful between simulator events (e.g. after
    {!run_until}). *)

val conserved_all : t -> bool

val checkpoint_all : t -> unit
(** Checkpoint every live site (see {!Site.checkpoint}). *)

val start_periodic_checkpoints : t -> every:float -> unit
(** Checkpoint all live sites on a fixed period until the simulation ends. *)

val recalibrate_expected : t -> unit
(** Recompute every item's expected aggregate from the sites' stable state
    (fragments + in-flight Vm).  Used after restoring a system from backups,
    whose logs embody commits this system object never saw. *)

val stable_log_length : t -> int
(** Total stable log records across all sites (the redo-cost surface that
    checkpointing bounds). *)

val metrics : t -> Metrics.t
(** Merged metrics of all sites, with network message counts and log-force
    counts folded in. *)

(** {2 Probes}

    Periodic sampling of the live installation into a time series (see
    {!Dvp_sim.Probe}): every item's fragment vector, the value in flight as
    unaccepted Vm (N_M), the active transaction count, and the total stable
    log length.  The series charts the paper's conservation terms over a
    whole run. *)

type probe_sample = {
  fragments : (Ids.item * int array) list;  (** per-site fragment vector *)
  in_flight : (Ids.item * int) list;  (** N_M per item *)
  active_txns : int;  (** live transactions across all up sites *)
  log_length : int;  (** total stable log records (redo-cost surface) *)
}

val probe_sample : t -> probe_sample
(** One sample, now.  [in_flight] comes from the live incremental ledger
    (fed by the sites' Vm create/accept hooks) — O(items), no log replay —
    while the {!in_flight} oracle below stays log-derived; the two agree
    whenever the stable logs are consistent. *)

val start_probe : t -> every:float -> probe_sample Dvp_sim.Probe.t
(** Sample on a fixed simulated-time period until [Probe.stop]. *)

val probe_sample_to_json : probe_sample -> Dvp_util.Json.t

val probe_series_to_json : probe_sample Dvp_sim.Probe.t -> Dvp_util.Json.t
(** [{ "period": p, "samples": [ { "time": t, ... }, ... ] }]. *)
