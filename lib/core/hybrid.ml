type mode = Partitioned | Centralized

type stats = {
  mutable reads : int;
  mutable updates : int;
  mutable mode : mode;
}

type t = {
  sys : System.t;
  hi : float;
  lo : float;
  check_every : float;
  per_item : (Ids.item, stats) Hashtbl.t;
  mutable centralizations : int;
  mutable repartitions : int;
}

let stats_for t item =
  match Hashtbl.find_opt t.per_item item with
  | Some s -> s
  | None ->
    let s = { reads = 0; updates = 0; mode = Partitioned } in
    Hashtbl.replace t.per_item item s;
    s

let home t ~item = item mod System.n_sites t.sys

let mode t ~item = (stats_for t item).mode

(* Pull the whole value to the home site: a drain read executed *at* the
   home, so the value ends up exactly there. *)
let centralize t item =
  let s = stats_for t item in
  if s.mode = Partitioned then begin
    s.mode <- Centralized;
    t.centralizations <- t.centralizations + 1;
    System.exec t.sys (Txn.read ~site:(home t ~item) item) ~on_done:(fun _ -> ())
  end

(* Spread the home's fragment back out evenly (explicit Rds pushes). *)
let repartition t item =
  let s = stats_for t item in
  if s.mode = Centralized then begin
    s.mode <- Partitioned;
    t.repartitions <- t.repartitions + 1;
    let n = System.n_sites t.sys in
    let h = home t ~item in
    let site = System.site t.sys h in
    let frag = Site.fragment site ~item in
    let share = frag / n in
    if share > 0 then
      for dst = 0 to n - 1 do
        if dst <> h then ignore (Site.push_value site ~dst ~item ~amount:share)
      done
  end

let evaluate t =
  Hashtbl.iter
    (fun item s ->
      let total = s.reads + s.updates in
      if total >= 4 then begin
        let read_share = float_of_int s.reads /. float_of_int total in
        if read_share > t.hi then centralize t item
        else if read_share < t.lo then repartition t item
      end;
      (* Sliding window: decay rather than reset, so short gaps in traffic
         do not erase the signal. *)
      s.reads <- s.reads / 2;
      s.updates <- s.updates / 2)
    t.per_item

let create sys ?(hi = 0.10) ?(lo = 0.02) ?(window = 2.0) ?(check_every = 1.0) () =
  ignore window;
  let t =
    {
      sys;
      hi;
      lo;
      check_every;
      per_item = Hashtbl.create 8;
      centralizations = 0;
      repartitions = 0;
    }
  in
  let rec tick () =
    evaluate t;
    ignore (Dvp_substrate.Substrate.schedule (System.sub sys) ~delay:t.check_every tick)
  in
  ignore (Dvp_substrate.Substrate.schedule (System.sub sys) ~delay:t.check_every tick);
  t

let submit t ~site ~ops ~on_done =
  List.iter (fun (item, _) -> (stats_for t item).updates <- (stats_for t item).updates + 1) ops;
  System.exec t.sys (Txn.write ~site ops) ~on_done:(fun o -> on_done (Txn.to_result o))

let submit_read t ~site ~item ~on_done =
  let s = stats_for t item in
  s.reads <- s.reads + 1;
  let where = match s.mode with Centralized -> home t ~item | Partitioned -> site in
  System.exec t.sys (Txn.read ~site:where item) ~on_done:(fun o -> on_done (Txn.to_result o))

let centralizations t = t.centralizations

let repartitions t = t.repartitions
