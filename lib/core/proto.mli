(** Wire protocol between DvP sites.

    Three message kinds flow between sites (Sections 3–5):

    - {!constructor:Request}: a transaction at the requesting site asks a
      remote site for part (or, for reads, all) of its fragment of an item.
      Requests need no unique identifiers and no logging — "their delivery is
      not critical" (Section 8); a lost or ignored request simply leads to a
      timeout abort at the requester.
    - {!constructor:Vm_data}: a real message carrying a virtual message — a
      value in transit.  Identified by [(origin site, destination, seq)];
      sequence numbers are per directed pair, totally ordered (Section 4.2).
      Retransmitted until acknowledged.
    - {!constructor:Vm_ack}: cumulative acknowledgement — "all messages up to
      and including [upto] have been received and processed safely". *)

type request_kind =
  | Need of int
      (** The requester wants at least this much of the item's value.  The
          granting site decides how much to ship ({!Policy.grant}). *)
  | Drain
      (** A read in the traditional sense: send the whole local fragment,
          honored only if the granting site has no outstanding Vm on the
          item (Section 5). *)

type vm_frag = {
  seq : int;  (** per (src,dst) pair, starting at 0 *)
  item : Ids.item;
  amount : int;
  reply_to : Ids.txn option;
}
(** One virtual message inside a {!constructor:Vm_batch}.  Identification and
    ordering rules are exactly those of {!constructor:Vm_data}; the batch
    only shares the transport envelope (clock, piggybacked ack). *)

type t =
  | Request of {
      txn : Ids.txn;  (** requesting transaction; also its timestamp *)
      item : Ids.item;
      kind : request_kind;
    }
  | Vm_data of {
      seq : int;  (** per (src,dst) pair, starting at 0 *)
      item : Ids.item;
      amount : int;
      ts_counter : int;  (** sender's clock, for the Lamport receive rule *)
      reply_to : Ids.txn option;
          (** when the Vm was created to honor a request, the requesting
              transaction — lets a drain read match responses to sites *)
      ack_upto : int;
          (** piggybacked cumulative acknowledgement (Section 4.2: "Every
              message ... should carry a piggybacked acknowledgement"): all
              Vm from the recipient with seq ≤ [ack_upto] are accepted *)
      epoch : int;
          (** membership epoch at *transmit* time.  Receivers reject any
              Vm-protocol message whose epoch is older than their own view:
              after a membership transition resets a channel's sequence
              space, a stale in-flight duplicate (or a stale cumulative ack)
              must not be matched against the fresh watermarks.  Rejection
              never destroys value — the sender retransmits with a fresh
              stamp. *)
    }
  | Vm_batch of { frags : vm_frag list; ts_counter : int; ack_upto : int; epoch : int }
      (** Several Vm coalesced into one real message (Section 4.2: "a single
          real message may carry several virtual messages").  Fragments are
          in ascending [seq] order; the receiver applies the in-order /
          duplicate rules to each fragment independently, so a batch is
          semantically the fragments delivered back to back — it only costs
          one real message. *)
  | Vm_ack of { upto : int; epoch : int }
      (** All Vm from the receiver of this ack's peer with seq ≤ [upto] are
          accepted. *)
  | Probe
      (** Failure-detector liveness probe for an idle link.  Like requests,
          probes need no identifiers, no logging and no retransmission —
          losing one merely delays detection by a scan period. *)
  | Probe_reply  (** Answer to a {!constructor:Probe}; its delivery alone is the evidence. *)

val pp : Format.formatter -> t -> unit

val describe : t -> string
(** Short tag for traces: ["req"], ["vm"], ["vmb"], ["ack"], ["probe"],
    ["pong"]. *)
