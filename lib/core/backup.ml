module Wal = Dvp_storage.Wal

let export_site site ~path =
  let oc = open_out path in
  let n = ref 0 in
  (try
     Wal.iter (Site.wal site) (fun record ->
         output_string oc (Log_event.encode record);
         output_char oc '\n';
         incr n)
   with e ->
     close_out oc;
     raise e);
  close_out oc;
  !n

let import_records ~path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> (
      if String.trim line = "" then go acc
      else
        match Log_event.decode line with
        | Some record -> go (record :: acc)
        | None -> Error line)
    | exception End_of_file -> Ok (List.rev acc)
  in
  let result = go [] in
  close_in ic;
  result

let read_records ~path =
  match import_records ~path with
  | Ok records -> Ok records
  | Error line -> Error (Printf.sprintf "malformed log line: %s" line)
  | exception Sys_error e -> Error e

let apply_records site records =
  (* Crash the site (dropping volatile state), swap in the backup as its
     entire stable log, and let ordinary recovery rebuild everything. *)
  Site.crash site;
  let wal = Site.wal site in
  Wal.truncate_before wal ~keep_from:(Wal.end_index wal);
  List.iter (fun r -> Wal.append ~forced:false wal r) records;
  Wal.force wal;
  Site.recover site;
  List.length records

let restore_site site ~path =
  match read_records ~path with
  | Error e -> Error e
  | Ok records -> Ok (apply_records site records)

let export_system sys ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let total = ref 0 in
  for i = 0 to System.n_sites sys - 1 do
    total := !total + export_site (System.site sys i) ~path:(Filename.concat dir (Printf.sprintf "site-%d.log" i))
  done;
  !total

let restore_system sys ~dir =
  (* Two phases, so a bad backup cannot leave the system half-restored:
     first parse every site file (any missing file or malformed line fails
     the whole restore before a single site is touched), then apply. *)
  let rec validate i acc =
    if i >= System.n_sites sys then Ok (List.rev acc)
    else
      match
        read_records ~path:(Filename.concat dir (Printf.sprintf "site-%d.log" i))
      with
      | Ok records -> validate (i + 1) (records :: acc)
      | Error e -> Error (Printf.sprintf "site %d: %s" i e)
  in
  match validate 0 [] with
  | Error _ as e -> e
  | Ok all ->
    let total = ref 0 in
    List.iteri
      (fun i records -> total := !total + apply_records (System.site sys i) records)
      all;
    System.recalibrate_expected sys;
    Ok !total
