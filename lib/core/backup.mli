(** Offline backup and restore of site logs.

    The stable log *is* a site's durable identity: everything recovery needs
    is in it (Section 7), so exporting the log to a file is a complete
    backup, and loading it into a fresh site followed by {!Site.recover} is
    a complete restore — including outstanding virtual messages, which
    resume retransmission on the restored site.

    Files hold one {!Log_event.encode}d record per line; this module is what
    makes the textual codec load-bearing rather than decorative. *)

val export_site : Site.t -> path:string -> int
(** Write the site's stable log to [path]; returns the record count. *)

val import_records : path:string -> (Log_event.t list, string) result
(** Parse a log file; [Error line] names the first malformed line. *)

val restore_site : Site.t -> path:string -> (int, string) result
(** Replace the site's state with the backup: the site is crashed, its log
    is replaced by the file's records, and it recovers from them.  Returns
    the number of records restored.  The target site should be a fresh (or
    expendable) site of a system with the same size. *)

val export_system : System.t -> dir:string -> int
(** Export every site's log to [dir/site-<i>.log]; returns total records. *)

val restore_system : System.t -> dir:string -> (int, string) result
(** Restore every site of a (fresh) system from [dir].  Atomic with respect
    to validation: every [site-<i>.log] is parsed up front, and a missing
    file or malformed line fails the whole restore with [Error] before any
    site has been touched. *)
