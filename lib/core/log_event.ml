type db_action = Set_fragment of { item : Ids.item; value : int }

type t =
  | Vm_create of {
      dst : Ids.site;
      seq : int;
      item : Ids.item;
      amount : int;
      reply_to : Ids.txn option;
      actions : db_action list;
    }
  | Vm_accept of {
      peer : Ids.site;
      seq : int;
      item : Ids.item;
      amount : int;
      new_value : int;  (** absolute fragment value after the credit (idempotent replay) *)
    }
  | Txn_commit of { txn : Ids.txn; actions : db_action list }
  | Txn_applied of { txn : Ids.txn }
  | Ack_progress of { dst : Ids.site; upto : int }
  | Vm_channel_reset of { peer : Ids.site; epoch : int }
      (** membership transition: the Vm channel to/from [peer] starts over at
          seq 0 under [epoch]; earlier watermarks for that peer are void *)
  | Checkpoint of {
      fragments : (Ids.item * int) list;
      accepted : (Ids.site * int) list;
      next_seq : (Ids.site * int) list;
      acked : (Ids.site * int) list;
      outbox : (Ids.site * int * Ids.item * int * Ids.txn option) list;
      max_counter : int;
    }

let pp_action ppf (Set_fragment { item; value }) =
  Format.fprintf ppf "set(%d:=%d)" item value

let pp_actions ppf actions =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') pp_action ppf
    actions

let pp ppf = function
  | Vm_create { dst; seq; item; amount; reply_to; actions } ->
    let r =
      match reply_to with
      | Some t -> Format.asprintf " reply_to=%a" Ids.pp_txn t
      | None -> ""
    in
    Format.fprintf ppf "VmCreate(dst=%d seq=%d item=%d amount=%d%s [%a])" dst seq item
      amount r pp_actions actions
  | Vm_accept { peer; seq; item; amount; new_value } ->
    Format.fprintf ppf "VmAccept(peer=%d seq=%d item=%d amount=%d new=%d)" peer seq item
      amount new_value
  | Txn_commit { txn; actions } ->
    Format.fprintf ppf "TxnCommit(%a [%a])" Ids.pp_txn txn pp_actions actions
  | Txn_applied { txn } -> Format.fprintf ppf "TxnApplied(%a)" Ids.pp_txn txn
  | Ack_progress { dst; upto } -> Format.fprintf ppf "AckProgress(dst=%d upto=%d)" dst upto
  | Vm_channel_reset { peer; epoch } ->
    Format.fprintf ppf "VmChannelReset(peer=%d epoch=%d)" peer epoch
  | Checkpoint { fragments; outbox; max_counter; _ } ->
    Format.fprintf ppf "Checkpoint(%d fragments, %d outstanding vm, counter=%d)"
      (List.length fragments) (List.length outbox) max_counter

let apply_action db (Set_fragment { item; value }) =
  Dvp_storage.Local_db.set_value db ~item value

(* ----------------------------------------------------------------- codec *)

let encode_actions actions =
  String.concat ","
    (List.map (fun (Set_fragment { item; value }) -> Printf.sprintf "%d:%d" item value) actions)

let decode_actions s =
  if s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
        match String.split_on_char ':' p with
        | [ i; v ] -> (
          match (int_of_string_opt i, int_of_string_opt v) with
          | Some item, Some value -> go (Set_fragment { item; value } :: acc) rest
          | _ -> None)
        | _ -> None)
    in
    go [] parts

let encode_pairs pairs =
  String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) pairs)

let decode_pairs s =
  if s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
        match String.split_on_char ':' p with
        | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b -> go ((a, b) :: acc) rest
          | _ -> None)
        | _ -> None)
    in
    go [] parts

let encode_reply_to = function Some (c, s) -> Printf.sprintf "%d.%d" c s | None -> "-"

let decode_reply_to = function
  | "-" -> Some None
  | s -> (
    match String.split_on_char '.' s with
    | [ c; site ] -> (
      match (int_of_string_opt c, int_of_string_opt site) with
      | Some c, Some site -> Some (Some (c, site))
      | _ -> None)
    | _ -> None)

let encode_outbox entries =
  String.concat ","
    (List.map
       (fun (dst, seq, item, amount, reply_to) ->
         Printf.sprintf "%d:%d:%d:%d:%s" dst seq item amount (encode_reply_to reply_to))
       entries)

let decode_outbox s =
  if s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
        match String.split_on_char ':' p with
        | [ dst; seq; item; amount; rt ] -> (
          match
            ( int_of_string_opt dst,
              int_of_string_opt seq,
              int_of_string_opt item,
              int_of_string_opt amount,
              decode_reply_to rt )
          with
          | Some dst, Some seq, Some item, Some amount, Some rt ->
            go ((dst, seq, item, amount, rt) :: acc) rest
          | _ -> None)
        | _ -> None)
    in
    go [] parts

let encode = function
  | Vm_create { dst; seq; item; amount; reply_to; actions } ->
    let r = match reply_to with Some (c, s) -> Printf.sprintf "%d.%d" c s | None -> "-" in
    Printf.sprintf "C|%d|%d|%d|%d|%s|%s" dst seq item amount r (encode_actions actions)
  | Vm_accept { peer; seq; item; amount; new_value } ->
    Printf.sprintf "A|%d|%d|%d|%d|%d" peer seq item amount new_value
  | Txn_commit { txn = c, s; actions } ->
    Printf.sprintf "T|%d|%d|%s" c s (encode_actions actions)
  | Txn_applied { txn = c, s } -> Printf.sprintf "D|%d|%d" c s
  | Ack_progress { dst; upto } -> Printf.sprintf "K|%d|%d" dst upto
  | Vm_channel_reset { peer; epoch } -> Printf.sprintf "R|%d|%d" peer epoch
  | Checkpoint { fragments; accepted; next_seq; acked; outbox; max_counter } ->
    Printf.sprintf "P|%s|%s|%s|%s|%s|%d" (encode_pairs fragments) (encode_pairs accepted)
      (encode_pairs next_seq) (encode_pairs acked) (encode_outbox outbox) max_counter

let decode line =
  match String.split_on_char '|' line with
  | [ "C"; dst; seq; item; amount; reply_to; actions ] -> (
    let reply_to_v =
      if reply_to = "-" then Some None
      else
        match String.split_on_char '.' reply_to with
        | [ c; s ] -> (
          match (int_of_string_opt c, int_of_string_opt s) with
          | Some c, Some s -> Some (Some (c, s))
          | _ -> None)
        | _ -> None
    in
    match
      ( int_of_string_opt dst,
        int_of_string_opt seq,
        int_of_string_opt item,
        int_of_string_opt amount,
        reply_to_v,
        decode_actions actions )
    with
    | Some dst, Some seq, Some item, Some amount, Some reply_to, Some actions ->
      Some (Vm_create { dst; seq; item; amount; reply_to; actions })
    | _ -> None)
  | [ "A"; peer; seq; item; amount; new_value ] -> (
    match
      ( int_of_string_opt peer,
        int_of_string_opt seq,
        int_of_string_opt item,
        int_of_string_opt amount,
        int_of_string_opt new_value )
    with
    | Some peer, Some seq, Some item, Some amount, Some new_value ->
      Some (Vm_accept { peer; seq; item; amount; new_value })
    | _ -> None)
  | [ "T"; c; s; actions ] -> (
    match (int_of_string_opt c, int_of_string_opt s, decode_actions actions) with
    | Some c, Some s, Some actions -> Some (Txn_commit { txn = (c, s); actions })
    | _ -> None)
  | [ "D"; c; s ] -> (
    match (int_of_string_opt c, int_of_string_opt s) with
    | Some c, Some s -> Some (Txn_applied { txn = (c, s) })
    | _ -> None)
  | [ "K"; dst; upto ] -> (
    match (int_of_string_opt dst, int_of_string_opt upto) with
    | Some dst, Some upto -> Some (Ack_progress { dst; upto })
    | _ -> None)
  | [ "R"; peer; epoch ] -> (
    match (int_of_string_opt peer, int_of_string_opt epoch) with
    | Some peer, Some epoch -> Some (Vm_channel_reset { peer; epoch })
    | _ -> None)
  | [ "P"; fragments; accepted; next_seq; acked; outbox; max_counter ] -> (
    match
      ( decode_pairs fragments,
        decode_pairs accepted,
        decode_pairs next_seq,
        decode_pairs acked,
        decode_outbox outbox,
        int_of_string_opt max_counter )
    with
    | Some fragments, Some accepted, Some next_seq, Some acked, Some outbox, Some max_counter
      -> Some (Checkpoint { fragments; accepted; next_seq; acked; outbox; max_counter })
    | _ -> None)
  | _ -> None
