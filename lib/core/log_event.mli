(** Stable log records (Sections 4.2, 5, 7).

    The protocols force exactly these records:

    - [Vm_create]: the paper's [[database-actions, message-sequence]] record.
      Written *before* the real message is sent and before the database is
      updated; its existence is what makes the virtual message exist.
    - [Vm_accept]: the paper's [[database-actions]] record at the receiver;
      its existence ends the Vm's lifespan.  It doubles as the stable
      record of the per-peer acceptance high-water mark.
    - [Txn_commit]: transaction step 5 — "the completion of this step commits
      the transaction".
    - [Txn_applied]: transaction step 6 — the changes have reached the
      database (bounds the redo work, Section 7).
    - [Ack_progress]: the sender has learned its Vm up to [upto] were
      accepted and will never retransmit them.  Loss of this record is
      harmless (retransmissions are idempotent), so it need not be forced.

    Database actions record absolute fragment values, not deltas, which makes
    log replay idempotent — the redo requirement of Section 7. *)

type db_action = Set_fragment of { item : Ids.item; value : int }

type t =
  | Vm_create of {
      dst : Ids.site;
      seq : int;
      item : Ids.item;
      amount : int;
      reply_to : Ids.txn option;
      actions : db_action list;
    }
  | Vm_accept of {
      peer : Ids.site;
      seq : int;
      item : Ids.item;
      amount : int;
      new_value : int;  (** absolute fragment value after the credit (idempotent replay) *)
    }
  | Txn_commit of { txn : Ids.txn; actions : db_action list }
  | Txn_applied of { txn : Ids.txn }
  | Ack_progress of { dst : Ids.site; upto : int }
  | Vm_channel_reset of { peer : Ids.site; epoch : int }
      (** Membership transition (forced): the Vm channel with [peer] starts
          over at seq 0 under [epoch].  Earlier watermarks for that peer are
          void — replay resets next_seq/acked/accepted and drops any
          outstanding entries toward the peer (the transition drained them
          first, so the drop is value-neutral). *)
  | Checkpoint of {
      fragments : (Ids.item * int) list;
      accepted : (Ids.site * int) list;  (** per-peer acceptance watermark *)
      next_seq : (Ids.site * int) list;  (** per-destination Vm counter *)
      acked : (Ids.site * int) list;  (** per-destination cumulative ack *)
      outbox : (Ids.site * int * Ids.item * int * Ids.txn option) list;
          (** still-outstanding Vm: (dst, seq, item, amount, reply_to) *)
      max_counter : int;
    }
      (** A full-state snapshot (Section 7's checkpointing): replay restarts
          here, and everything before it can be truncated.  Outstanding Vm
          are carried inside the snapshot so truncation never loses one. *)

val pp : Format.formatter -> t -> unit

val apply_action : Dvp_storage.Local_db.t -> db_action -> unit
(** Idempotent application of one database action. *)

val encode : t -> string
(** Compact single-line textual encoding; {!decode} inverts it.  The
    simulator keeps records typed, but the codec documents that every record
    is serialisable and is round-trip tested. *)

val decode : string -> t option
