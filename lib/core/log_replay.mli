(** Shared stable-log replay logic.

    Three consumers reconstruct state from a site's log: the site's own
    recovery (database + clock), the Vm engine's recovery (sequence
    counters, outbox, watermarks), and the omniscient invariant checker
    (which must read a *crashed* site's stable state without touching the
    live structures).  This module is the single definition of what a log
    means, so the three can never disagree — including across {!Log_event.t}
    [Checkpoint] records, which reset the scan to a snapshot (Section 7's
    "checkpointing mechanisms" that bound the redo work). *)

type vm_outstanding = { item : Ids.item; amount : int; reply_to : Ids.txn option }

type vm_view = {
  vm_next_seq : int array;  (** per destination *)
  vm_acked : int array;  (** cumulative acks learned, per destination *)
  vm_accepted : int array;  (** acceptance watermark, per peer *)
  vm_outbox : (Ids.site * int, vm_outstanding) Hashtbl.t;
      (** (dst, seq) → payload still owed delivery *)
  vm_cum_sent : (Ids.item, int) Hashtbl.t;
      (** cumulative value shipped per item, reconstructed from [Vm_create]
          records (duplicate images deduplicated by sequence number) *)
  vm_cum_recv : (Ids.item, int) Hashtbl.t;
      (** cumulative value accepted per item, from in-order [Vm_accept]s *)
}

val vm_view : n:int -> Log_event.t Dvp_storage.Wal.t -> vm_view
(** The cumulative ledgers ([vm_cum_sent]/[vm_cum_recv], and [db_view]'s
    [deltas]/[installed]) are exact since birth only while the log has never
    been checkpoint-truncated — a [Checkpoint] snapshot does not carry them,
    so on a truncated log they cover the retained suffix.  The wall-clock
    runtime, whose crash-restart conservation cut depends on them, never
    checkpoints; the DES uses the omniscient network ledger instead. *)

type db_view = {
  db : Dvp_storage.Local_db.t;
  redo : int;  (** committed transactions lacking an applied record *)
  max_counter : int;  (** highest transaction counter seen *)
  deltas : (Ids.item, int) Hashtbl.t;
      (** cumulative committed operator delta per item (excludes installs) *)
  installed : (Ids.item, int) Hashtbl.t;
      (** value provisioned by [Ids.ts_zero] install records per item *)
}

val db_view : ?into:Dvp_storage.Local_db.t -> Log_event.t Dvp_storage.Wal.t -> db_view
(** [into] defaults to a fresh store; pass the site's live store during
    recovery. *)
