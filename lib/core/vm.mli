(** The virtual-message engine (Section 4.2).

    One instance lives in every site.  A virtual message is a value in
    transit between two fragments of the same data item:

    - it is *born* when the sender forces a [Vm_create] record (carrying the
      database action that debits the local fragment, and the message to be
      sent) to its stable log — before any real message leaves the site;
    - it *lives* through any number of real-message transmissions: the engine
      retransmits every unacknowledged Vm on a fixed period, and the
      receiver discards duplicates and out-of-order arrivals (go-back-N
      style: per-pair sequence numbers, cumulative acks);
    - it *dies* when the receiver forces a [Vm_accept] record, credits its
      local fragment, and acknowledges.

    Crashes on either side cannot destroy a Vm: the sender rebuilds its
    outbox and the receiver its acceptance watermark from their stable logs
    ({!recover}).  The conserved quantity N = Σᵢ Nᵢ + N_M of Section 3 is
    checkable from the accessors here.

    The engine knows nothing about transactions.  The [try_credit] callback
    lets the owning site apply the paper's acceptance rule: credit now (item
    unlocked, or locked by a transaction that incorporates the credit
    itself), or refuse for the moment (locked otherwise) — a refused Vm is
    simply delivered again by a later retransmission. *)

type t

val create :
  Dvp_substrate.Substrate.t ->
  n:int ->
  self:Ids.site ->
  wal:Log_event.t Dvp_storage.Wal.t ->
  send:(dst:Ids.site -> Proto.t -> unit) ->
  try_credit:
    (peer:Ids.site -> item:Ids.item -> amount:int -> reply_to:Ids.txn option -> int option) ->
  ts_counter:(unit -> int) ->
  ?epoch:(unit -> int) ->
  metrics:Metrics.t ->
  ?trace:Dvp_sim.Trace.t ->
  ?retransmit_every:float ->
  ?ack_delay:float ->
  ?batch:bool ->
  ?backoff_mult:float ->
  ?backoff_max:float ->
  ?rng:Dvp_util.Rng.t ->
  ?outbox_warn:int ->
  ?on_inflight:(Ids.item -> int -> unit) ->
  unit ->
  t
(** [try_credit] must either apply the credit to the local database and
    return [Some new_fragment_value], or return [None] to defer acceptance.
    [ts_counter] supplies the Lamport counter piggybacked on data messages.
    [epoch] supplies the current membership epoch, stamped into every wire
    message *at transmit time* (default: constantly 0) — a Vm created under
    an old membership view is retransmitted with a fresh stamp, so epoch
    fencing at the receiver never destroys value.
    [ack_delay] > 0 holds standalone acknowledgements for that long, hoping
    a reverse data message will piggyback them (Section 4.2); 0 (default)
    acknowledges immediately.

    [batch] (default true) coalesces all due fragments to a destination into
    one {!Proto.constructor:Vm_batch} real message per retransmission scan.
    [backoff_mult] (default 2.0) multiplies a destination's retransmission
    timeout after each fruitless rescan, up to [backoff_max] (default
    4 × [retransmit_every]); acknowledgement progress resets it.  [rng], when
    given, jitters the backed-off retry times by ±10% so senders do not
    re-synchronise their retransmissions after a partition heals.

    [outbox_warn] > 0 arms a one-shot {!Dvp_sim.Trace.constructor:Outbox_high}
    warning when the total outbox depth (across all destinations, parked
    included) crosses it; the warning re-arms once the depth falls back to
    half the mark.  0 (default) disables the check.

    [on_inflight item delta] is called with [+amount] when a [Vm_create] is
    forced here and [-amount] when a [Vm_accept] is forced here.  Summed
    across all sites this tracks the log-derived in-flight value N_M
    incrementally, which is what lets {!System}'s conservation probe sample
    in O(items) instead of replaying every site's log.  The hook fires only
    on live log appends, never during {!recover} replay, so it stays
    consistent with the stable logs across crashes. *)

val start : t -> unit
(** Arm the periodic retransmission scan. *)

val stop : t -> unit

(** {2 Sender side} *)

val send_value :
  t ->
  dst:Ids.site ->
  item:Ids.item ->
  amount:int ->
  ?reply_to:Ids.txn ->
  new_local:int ->
  unit ->
  unit
(** Create a Vm carrying [amount] of [item] to [dst]: force the [Vm_create]
    record (with the debit to [new_local] as its database action), then
    transmit the first real message.  The caller updates the local database
    to [new_local] after this returns — log first, database second, exactly
    the order of Section 3.  [amount] may be 0 (a drain response from an
    empty fragment still informs the reader). *)

val handle_ack : t -> src:Ids.site -> upto:int -> unit

val outstanding_to : t -> Ids.site -> (int * Ids.item * int) list
(** Unacknowledged (seq, item, amount) for one destination, ascending seq. *)

val outbox_depth : t -> int
(** Total unacknowledged Vm across all destinations, parked included — the
    quantity the [outbox_warn] high-water mark watches. *)

val outbox_depth_to : t -> dst:Ids.site -> int
(** Unacknowledged Vm queued toward one destination.  The wall-clock
    quiesce loop uses this to discount backlog owed to a permanently dead
    site, which can never drain. *)

val park : t -> dst:Ids.site -> unit
(** Open the circuit breaker towards [dst]: stop transmitting and
    retransmitting to it.  Vm keep being created and queued (they must
    survive for unparking or evacuation); only the real messages stop. *)

val unpark : t -> dst:Ids.site -> unit
(** Close the breaker: reset [dst]'s backoff to the base period and mark its
    whole backlog due, so the next retransmission scan (at most one period
    away) resends it in order.  No-op if not parked. *)

val is_parked : t -> dst:Ids.site -> bool

val outstanding_amount : t -> item:Ids.item -> int
(** Total unacknowledged value of an item leaving this site (sender view —
    an accepted-but-unacked Vm still counts, conservatively). *)

val has_outstanding : t -> item:Ids.item -> bool
(** The drain-honoring test of Section 5. *)

val value_sent : t -> item:Ids.item -> int
(** Cumulative value ever shipped from this site as Vm of [item], since
    creation.  Monotone; together with {!value_received} and the site's
    committed delta it forms the conservation ledger the runtime watchdog
    samples ([value_sent - value_received] summed over a consistent cut is
    exactly the in-flight mailbox/outbox Vm value).  Rebuilt from the stable
    log by {!recover} (every contributing record is forced when created), so
    the cut identity survives hard kills and respawns. *)

val value_received : t -> item:Ids.item -> int
(** Cumulative value ever accepted at this site as Vm of [item]. *)

val next_seq : t -> dst:Ids.site -> int

(** {2 Receiver side} *)

val handle_data :
  t ->
  src:Ids.site ->
  seq:int ->
  item:Ids.item ->
  amount:int ->
  reply_to:Ids.txn option ->
  ack_upto:int ->
  unit
(** [ack_upto] is the piggybacked cumulative acknowledgement carried on the
    data message. *)

val handle_batch : t -> src:Ids.site -> frags:Proto.vm_frag list -> ack_upto:int -> unit
(** Decode one {!Proto.constructor:Vm_batch}: process the piggybacked ack
    once, apply the in-order / duplicate acceptance rules to each fragment
    in order, and send at most one acknowledgement back for the whole
    batch. *)

val accepted_upto : t -> peer:Ids.site -> int
(** Highest sequence number accepted from [peer]; -1 initially. *)

(** {2 Failure handling} *)

val crash : t -> unit
(** Wipe all volatile state and halt retransmission. *)

val recover : t -> unit
(** Rebuild sender outbox, sequence counters, and acceptance watermarks from
    the stable log, then restart retransmission. *)

val reset_channel : t -> peer:Ids.site -> epoch:int -> unit
(** Membership transition: restart the channel with [peer] at seq 0 under
    [epoch], forcing a [Vm_channel_reset] record so recovery (and the
    exactly-once oracle) see the watermark reset.  The caller must ensure
    the channel is quiescent — no outstanding value in either direction —
    or in-flight value would be destroyed. *)

val snapshot :
  t -> fragments:(Ids.item * int) list -> max_counter:int -> Log_event.t
(** A [Checkpoint] record capturing the live Vm state plus the given
    database fragments — what {!Site.checkpoint} forces before truncating
    the log. *)
