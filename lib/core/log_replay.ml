module Wal = Dvp_storage.Wal
module Db = Dvp_storage.Local_db

type vm_outstanding = { item : Ids.item; amount : int; reply_to : Ids.txn option }

type vm_view = {
  vm_next_seq : int array;
  vm_acked : int array;
  vm_accepted : int array;
  vm_outbox : (Ids.site * int, vm_outstanding) Hashtbl.t;
  vm_cum_sent : (Ids.item, int) Hashtbl.t;
  vm_cum_recv : (Ids.item, int) Hashtbl.t;
}

let tbl_add tbl key amount =
  Hashtbl.replace tbl key (amount + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let vm_view ~n wal =
  let v =
    {
      vm_next_seq = Array.make n 0;
      vm_acked = Array.make n (-1);
      vm_accepted = Array.make n (-1);
      vm_outbox = Hashtbl.create 32;
      vm_cum_sent = Hashtbl.create 16;
      vm_cum_recv = Hashtbl.create 16;
    }
  in
  Wal.iter wal (fun record ->
      match record with
      | Log_event.Vm_create { dst; seq; item; amount; reply_to; _ } ->
        (* [seq < next_seq] means a duplicate record image (e.g. a file
           mirror that re-offered a batch after a torn write); the first
           image already counted toward the sent ledger. *)
        if seq >= v.vm_next_seq.(dst) then begin
          v.vm_next_seq.(dst) <- seq + 1;
          tbl_add v.vm_cum_sent item amount
        end;
        Hashtbl.replace v.vm_outbox (dst, seq) { item; amount; reply_to }
      | Log_event.Ack_progress { dst; upto } ->
        if upto > v.vm_acked.(dst) then v.vm_acked.(dst) <- upto
      | Log_event.Vm_channel_reset { peer; _ } ->
        (* Membership transition: the channel with [peer] starts over at seq 0.
           Outstanding entries toward [peer] were drained before the reset was
           logged, so dropping them is value-neutral. *)
        v.vm_next_seq.(peer) <- 0;
        v.vm_acked.(peer) <- -1;
        v.vm_accepted.(peer) <- -1;
        Hashtbl.iter
          (fun (dst, seq) _ ->
            if dst = peer then Hashtbl.remove v.vm_outbox (dst, seq))
          (Hashtbl.copy v.vm_outbox)
      | Log_event.Vm_accept { peer; seq; item; amount; _ } ->
        (* The acceptance watermark filters duplicates, so only in-order
           accepts feed the cumulative-received ledger — same rule the live
           receiver applies before logging. *)
        if seq > v.vm_accepted.(peer) then begin
          v.vm_accepted.(peer) <- seq;
          tbl_add v.vm_cum_recv item amount
        end
      | Log_event.Checkpoint { accepted; next_seq; acked; outbox; _ } ->
        (* Snapshot: replace everything reconstructed so far. *)
        Array.fill v.vm_next_seq 0 n 0;
        Array.fill v.vm_acked 0 n (-1);
        Array.fill v.vm_accepted 0 n (-1);
        Hashtbl.reset v.vm_outbox;
        List.iter (fun (dst, s) -> v.vm_next_seq.(dst) <- s) next_seq;
        List.iter (fun (dst, s) -> v.vm_acked.(dst) <- s) acked;
        List.iter (fun (peer, s) -> v.vm_accepted.(peer) <- s) accepted;
        List.iter
          (fun (dst, seq, item, amount, reply_to) ->
            Hashtbl.replace v.vm_outbox (dst, seq) { item; amount; reply_to })
          outbox
      | Log_event.Txn_commit _ | Log_event.Txn_applied _ -> ());
  (* Drop outbox entries already covered by a learned cumulative ack. *)
  Hashtbl.iter
    (fun (dst, seq) _ ->
      if seq <= v.vm_acked.(dst) then Hashtbl.remove v.vm_outbox (dst, seq))
    (Hashtbl.copy v.vm_outbox);
  v

type db_view = {
  db : Db.t;
  redo : int;
  max_counter : int;
  deltas : (Ids.item, int) Hashtbl.t;
  installed : (Ids.item, int) Hashtbl.t;
}

let db_view ?into wal =
  let db = match into with Some db -> db | None -> Db.create () in
  let committed = Hashtbl.create 16 and applied = Hashtbl.create 16 in
  let deltas = Hashtbl.create 16 and installed = Hashtbl.create 16 in
  let max_counter = ref 0 in
  Wal.iter wal (fun record ->
      match record with
      | Log_event.Vm_create { actions; _ } ->
        List.iter (Log_event.apply_action db) actions
      | Log_event.Vm_accept { item; new_value; _ } -> Db.set_value db ~item new_value
      | Log_event.Txn_commit { txn; actions } ->
        (* Commit actions carry absolute values, so the operator's semantic
           delta is recoverable as (new - current): records replay in the
           exact order the serial site appended them, making "current" here
           equal to the live pre-commit value.  Installs (the pseudo-txn
           [Ids.ts_zero]) are provisioning, not operator work — they feed the
           installed ledger instead.  Both reads are idempotent under
           duplicate record images (the delta is 0 the second time). *)
        let ledger = if txn = Ids.ts_zero then installed else deltas in
        List.iter
          (fun (Log_event.Set_fragment { item; value }) ->
            tbl_add ledger item (value - Db.value db ~item))
          actions;
        List.iter (Log_event.apply_action db) actions;
        if txn <> Ids.ts_zero then begin
          Hashtbl.replace committed txn ();
          if fst txn > !max_counter then max_counter := fst txn
        end
      | Log_event.Txn_applied { txn } -> Hashtbl.replace applied txn ()
      | Log_event.Checkpoint { fragments; max_counter = mc; _ } ->
        Db.wipe db;
        Hashtbl.reset committed;
        Hashtbl.reset applied;
        List.iter (fun (item, value) -> Db.set_value db ~item value) fragments;
        if mc > !max_counter then max_counter := mc
      | Log_event.Ack_progress _ | Log_event.Vm_channel_reset _ -> ());
  let redo =
    Hashtbl.fold
      (fun txn () acc -> if Hashtbl.mem applied txn then acc else acc + 1)
      committed 0
  in
  { db; redo; max_counter = !max_counter; deltas; installed }
