(** Experiment accounting, shared by the DvP system and the baselines.

    Everything the evaluation reports — commits, aborts by reason, latency
    percentiles, lock-hold times (the non-blocking claim is "max hold/blocked
    time is bounded by the timeout"), message and log-force overheads,
    recovery costs — flows through one of these records so the bench harness
    can print uniform tables. *)

type abort_reason =
  | Lock_busy  (** a needed local lock was held (Conc1 pessimism) *)
  | Cc_reject  (** timestamp gate TS(t) > TS(d) failed *)
  | Timeout  (** the step-3 timeout fired before enough value arrived *)
  | Vm_outstanding
      (** a drain read found the site's own outbound Vm unacknowledged *)
  | Crashed  (** the executing site failed mid-transaction *)
  | Ineffective
      (** baseline: the operator would drive the (whole) value negative — a
          business-rule abort, not an availability failure *)
  | Deadlock  (** baseline lock manager chose this txn as victim *)
  | No_quorum  (** baseline quorum was unreachable *)
  | Blocked_failure
      (** baseline: coordinator/participant unreachable → aborted after its
          blocking episode (2PC/3PC accounting) *)
  | Not_member
      (** the submitting site is not currently a full member (joining,
          leaving, or detached) — elastic membership refuses new work *)

val abort_reason_label : abort_reason -> string

val all_abort_reasons : abort_reason list

type t

val create : unit -> t

(** {2 Recording} *)

val txn_committed : t -> latency:float -> unit

val txn_aborted : t -> reason:abort_reason -> latency:float -> unit

val lock_held : t -> float -> unit
(** Duration between a transaction's lock acquisition and release. *)

val blocked_episode : t -> float -> unit
(** Duration a baseline participant spent holding locks while unable to
    learn a commit decision (the paper's "blocking" behaviour; always 0 for
    DvP). *)

val vm_created : t -> amount:int -> unit

val vm_accepted : t -> amount:int -> unit

val vm_retransmitted : t -> unit

val vm_duplicate_discarded : t -> unit

val vm_stale_epoch : t -> unit
(** A Vm-protocol message stamped with an outdated membership epoch was
    fenced off at the receiver (it will be retransmitted with a fresh
    stamp). *)

val request_honored : t -> unit

val request_ignored : t -> unit

val recovery_event : t -> messages:int -> redo:int -> duration:float -> unit

val add_messages : t -> int -> unit
(** Fold in transport-level message counts (from [Network.stats]). *)

val add_log_forces : t -> int -> unit

val add_drops : t -> loss:int -> partition:int -> down:int -> inflight:int -> unit
(** Fold in the transport's message-loss counts, split by cause (from
    [Network.stats]): per-link loss, send-time partition refusals, down
    senders, and in-flight discards at delivery time. *)

val storage_force_error : t -> unit
(** Count one storage-sink force failure (the backing file of a file-mirrored
    WAL refused a write — ENOSPC, EIO, ...).  The in-memory stable log is
    unaffected; see [Wal.set_on_force_error]. *)

val set_trace_dropped : t -> int -> unit
(** Record how many trace-ring events were evicted ([Trace.drop_count]) so
    offline consumers of the JSON can tell analyses over a clipped trace
    from complete ones.  [System.metrics] sets this automatically when the
    system carries a trace. *)

(** {2 Reading} *)

val committed : t -> int

val aborted : t -> int

val aborted_by : t -> abort_reason -> int

val submitted : t -> int

val commit_ratio : t -> float
(** committed / submitted; [nan] when nothing ran. *)

val latency_p50 : t -> float

val latency_p90 : t -> float

val latency_p99 : t -> float

val latency_max : t -> float

val latency_mean : t -> float

val latency_samples : t -> float array
(** Sorted copy of the committed-transaction latencies (for histograms). *)

val max_lock_hold : t -> float

val max_blocked : t -> float

val total_blocked_time : t -> float

val vm_created_count : t -> int

val vm_accepted_count : t -> int

val vm_retransmissions : t -> int

val vm_duplicates : t -> int

val vm_stale_epochs : t -> int

val requests_honored : t -> int

val requests_ignored : t -> int

val recovery_count : t -> int

val recovery_messages : t -> int

val recovery_redos : t -> int

val messages : t -> int

val log_forces : t -> int

val drops_loss : t -> int

val drops_partition : t -> int

val drops_down : t -> int

val drops_inflight : t -> int

val drops_total : t -> int

val trace_dropped : t -> int

val storage_force_errors : t -> int

val messages_per_commit : t -> float

val forces_per_commit : t -> float

val merge : t -> t -> t
(** Combine per-site metrics into a system view. *)

val summary_rows : t -> (string * string) list
(** Key/value rows for report printing. *)

val to_json : t -> Dvp_util.Json.t
(** Every counter and statistic as one JSON object: totals, the abort
    breakdown by reason (zero-count reasons omitted), the latency
    percentiles (p50/p90/p99/max/mean — [null] until a commit happens),
    lock/blocking extrema, Vm traffic, request-handling counts, recovery
    costs, message and log-force totals, the message-drop breakdown by cause
    (the ["drops"] object), and the per-commit overhead ratios. *)
