(** Tunable protocol parameters and policies.

    The paper leaves open "the best ways to distribute the data, to design
    the transactions and to reduce the message traffic" (Section 9); these
    policies are the knobs the ablation experiments (E6) sweep. *)

(** Substrate-facing cadence knobs, grouped in one record: the Vm
    retransmission scan, ack piggyback delay, real-message batching and
    backoff, and the failure detector's probe cadence.  These tune how value
    and liveness evidence move over the wire — the execution substrate's
    domain — as opposed to the protocol policies around them. *)
module Transport : sig
  type t = {
    vm_retransmit : float;
        (** period of the Vm retransmission scan (seconds; default 0.15) *)
    ack_delay : float;
        (** how long to hold a standalone Vm acknowledgement hoping to
            piggyback it on reverse traffic (seconds; default 0 =
            immediate) *)
    vm_batch : bool;
        (** coalesce all due fragments to a destination into a single
            {!Proto.constructor:Vm_batch} real message (Section 4.2: "a
            single real message may carry several virtual messages"; default
            true) *)
    vm_backoff_mult : float;
        (** per-destination retransmission backoff multiplier: each fruitless
            retransmission to a destination multiplies its timeout by this,
            acknowledgement progress resets it (default 2.0; 1.0 disables
            backoff) *)
    vm_backoff_max : float;
        (** cap on the backed-off per-destination retransmission timeout
            (seconds; default 0.6) *)
    probe_every : float;
        (** failure-detector scan (and probe rate-limit) period (seconds;
            default 0.1); only meaningful with [health = Some _] *)
    probe_idle : float;
        (** probe a peer silent for longer than this (seconds; default
            0.25) *)
  }

  val default : t

  val v :
    ?vm_retransmit:float ->
    ?ack_delay:float ->
    ?vm_batch:bool ->
    ?vm_backoff_mult:float ->
    ?vm_backoff_max:float ->
    ?probe_every:float ->
    ?probe_idle:float ->
    unit ->
    t
  (** Smart constructor: defaults plus validation ([vm_retransmit] and
      [probe_every] positive, [vm_backoff_mult >= 1],
      [vm_backoff_max >= vm_retransmit], no negative delays). *)

  val of_flat :
    vm_retransmit:float ->
    ack_delay:float ->
    vm_batch:bool ->
    vm_backoff_mult:float ->
    vm_backoff_max:float ->
    probe_every:float ->
    probe_idle:float ->
    t
  (** Compatibility constructor from the flat per-knob arguments (CLI
      flags).  Same validation as {!v}. *)
end

(** Whom to ask, and for how much, when the local fragment is inadequate
    (transaction step 2). *)
type request_policy =
  | Ask_all_full  (** ask every other site for the full shortfall *)
  | Ask_all_split
      (** ask every other site for an equal share (ceiling) of the
          shortfall *)
  | Ask_one_random  (** ask a single random site for the full shortfall *)
  | Ask_k of int  (** ask [k] random sites, each for the full shortfall *)

(** How much a site grants when honoring a [Need n] request for an item whose
    local fragment is [f]. *)
type grant_policy =
  | Grant_requested  (** min(n, f) — ship exactly what was asked *)
  | Grant_all  (** ship the whole fragment (aggressive rebalancing) *)
  | Grant_double  (** min(2n, f) — over-ship to prefetch future demand *)
  | Grant_half_keep
      (** ship min(n, f/2) — never give away more than half; conservative *)

(** Concurrency-control scheme (Section 6). *)
type cc_mode =
  | Conc1
      (** timestamp gating: honor a request / take a lock only if
          TS(txn) > TS(data value); conflicts abort *)
  | Conc2
      (** strict two-phase locking per site with totally-ordered broadcast
          of requests; conflicts wait (bounded by the transaction timeout) *)

(** Proactive redistribution (Section 9's "best ways to distribute the
    data", as a demand-following daemon): a site that has recently been
    asked for an item and holds a comfortable surplus ships part of it to
    the recent askers ahead of their next shortfall. *)
type proactive = {
  every : float;  (** scan period (seconds) *)
  min_surplus : int;  (** only share fragments at least this large *)
  share_fraction : float;  (** portion of the fragment shipped per scan *)
  asker_window : float;  (** how recent a request must be to count *)
}

val default_proactive : proactive

(** Policy-driven auto-rebalancing (elastic membership): on a cadence, move
    fragment value from hot member sites (above the per-item even-split
    target by more than [slack]) to cold ones, via ordinary Rds/push_value
    Vms. *)
type rebalance = {
  every : float;  (** rebalance pass period (seconds) *)
  slack : int;
      (** tolerated per-item deviation above the even-split target before a
          site is considered hot *)
}

val default_rebalance : rebalance
(** 0.5 s cadence, slack 8. *)

type t = {
  cc : cc_mode;
  request_policy : request_policy;
  grant_policy : grant_policy;
  proactive : proactive option;  (** [None] = purely reactive (the paper's base scheme) *)
  request_retries : int;
      (** Section 5's variation: "the requests could be re-tried a few more
          times" — how many times a waiting transaction re-sends requests
          for its *remaining* shortfall, spread across the timeout window
          (default 0: one shot, the paper's base pessimism) *)
  txn_timeout : float;
      (** transaction step 3's timeout: abort if the needed Vm have not
          arrived (seconds; default 0.5) *)
  transport : Transport.t;
      (** substrate cadence knobs: Vm retransmission, ack piggyback delay,
          batching, backoff, probe intervals (see {!Transport}) *)
  health : Dvp_health.Health.config option;
      (** [Some cfg] arms a per-site failure detector (Up / Suspected /
          Condemned, see {!Dvp_health.Health}); Suspected destinations get
          their Vm outbox parked and are skipped by [Ask] strategies.
          [None] (the default) keeps the paper's fault model: every site is
          assumed to eventually recover. *)
  auto_evacuate : bool;
      (** evacuate a site's fragments onto survivors automatically the
          moment its peers condemn it (default false: evacuation is an
          operator action via [System.evacuate]) *)
  rebalance : rebalance option;
      (** [Some policy] arms the periodic auto-rebalancer
          ([System.start_auto_rebalance]); [None] (the default) leaves
          rebalancing to operator action ([System.rebalance]) *)
  vm_outbox_warn : int;
      (** high-water mark on a site's total outstanding/parked Vm outbox
          depth; crossing it emits a one-shot
          {!Dvp_sim.Trace.constructor:Outbox_high} warning (default 512) *)
  mailbox_warn : int;
      (** high-water mark on the control-mailbox batch a runtime site domain
          drains in one loop turn; crossing it emits a one-shot
          {!Dvp_sim.Trace.constructor:Mailbox_high} warning mirroring
          [Outbox_high] (default 1024; <= 0 disables).  DES systems have no
          mailbox, so the knob only matters on the domains substrate. *)
}

val default : t
(** Conc1, [Ask_all_split], [Grant_requested], 0.5 s timeout, 0.15 s
    retransmit. *)

val pp : Format.formatter -> t -> unit

val grant_amount : grant_policy -> requested:int -> fragment:int -> int
(** Amount actually shipped; always in [0, fragment]. *)

val request_targets :
  request_policy ->
  rng:Dvp_util.Rng.t ->
  self:Ids.site ->
  n:int ->
  shortfall:int ->
  (Ids.site * int) list
(** The (site, amount) request fan-out for a shortfall.  Empty when there are
    no other sites to ask. *)

val request_targets_among :
  request_policy ->
  rng:Dvp_util.Rng.t ->
  self:Ids.site ->
  candidates:Ids.site list ->
  shortfall:int ->
  (Ids.site * int) list
(** {!request_targets} restricted to an explicit candidate list — the
    degraded-mode path, where the failure detector has excluded suspected
    and condemned peers.  [Ask_all_split] divides the shortfall across the
    {e remaining} candidates, spreading a dead site's share over healthy
    ones.  [self] is filtered out of [candidates]. *)
