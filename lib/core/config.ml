(* Substrate-facing cadence knobs, grouped: everything that tunes how value
   and liveness evidence move over the wire, as opposed to what the protocol
   decides.  [of_flat] keeps the flat-argument construction used by CLI
   flags. *)
module Transport = struct
  type t = {
    vm_retransmit : float;
    ack_delay : float;
    vm_batch : bool;
    vm_backoff_mult : float;
    vm_backoff_max : float;
    probe_every : float;
    probe_idle : float;
  }

  let default =
    {
      vm_retransmit = 0.15;
      ack_delay = 0.0;
      vm_batch = true;
      vm_backoff_mult = 2.0;
      vm_backoff_max = 0.6;
      probe_every = 0.1;
      probe_idle = 0.25;
    }

  let v ?(vm_retransmit = default.vm_retransmit) ?(ack_delay = default.ack_delay)
      ?(vm_batch = default.vm_batch) ?(vm_backoff_mult = default.vm_backoff_mult)
      ?(vm_backoff_max = default.vm_backoff_max) ?(probe_every = default.probe_every)
      ?(probe_idle = default.probe_idle) () =
    if vm_retransmit <= 0.0 then invalid_arg "Config.Transport.v: vm_retransmit <= 0";
    if ack_delay < 0.0 then invalid_arg "Config.Transport.v: negative ack_delay";
    if vm_backoff_mult < 1.0 then invalid_arg "Config.Transport.v: vm_backoff_mult < 1";
    if vm_backoff_max < vm_retransmit then
      invalid_arg "Config.Transport.v: vm_backoff_max < vm_retransmit";
    if probe_every <= 0.0 then invalid_arg "Config.Transport.v: probe_every <= 0";
    if probe_idle < 0.0 then invalid_arg "Config.Transport.v: negative probe_idle";
    { vm_retransmit; ack_delay; vm_batch; vm_backoff_mult; vm_backoff_max;
      probe_every; probe_idle }

  let of_flat ~vm_retransmit ~ack_delay ~vm_batch ~vm_backoff_mult ~vm_backoff_max
      ~probe_every ~probe_idle =
    v ~vm_retransmit ~ack_delay ~vm_batch ~vm_backoff_mult ~vm_backoff_max
      ~probe_every ~probe_idle ()
end

type request_policy = Ask_all_full | Ask_all_split | Ask_one_random | Ask_k of int

type grant_policy = Grant_requested | Grant_all | Grant_double | Grant_half_keep

type cc_mode = Conc1 | Conc2

type proactive = {
  every : float;
  min_surplus : int;
  share_fraction : float;
  asker_window : float;
}

let default_proactive =
  { every = 0.5; min_surplus = 50; share_fraction = 0.5; asker_window = 2.0 }

type rebalance = { every : float; slack : int }

let default_rebalance = { every = 0.5; slack = 8 }

type t = {
  cc : cc_mode;
  request_policy : request_policy;
  grant_policy : grant_policy;
  proactive : proactive option;
  request_retries : int;
  txn_timeout : float;
  transport : Transport.t;
  health : Dvp_health.Health.config option;
  auto_evacuate : bool;
  rebalance : rebalance option;
  vm_outbox_warn : int;
  mailbox_warn : int;
}

let default =
  {
    cc = Conc1;
    request_policy = Ask_all_split;
    grant_policy = Grant_requested;
    proactive = None;
    request_retries = 0;
    txn_timeout = 0.5;
    transport = Transport.default;
    health = None;
    auto_evacuate = false;
    rebalance = None;
    vm_outbox_warn = 512;
    mailbox_warn = 1024;
  }

let pp_request ppf = function
  | Ask_all_full -> Format.pp_print_string ppf "ask-all-full"
  | Ask_all_split -> Format.pp_print_string ppf "ask-all-split"
  | Ask_one_random -> Format.pp_print_string ppf "ask-one"
  | Ask_k k -> Format.fprintf ppf "ask-%d" k

let pp_grant ppf = function
  | Grant_requested -> Format.pp_print_string ppf "grant-requested"
  | Grant_all -> Format.pp_print_string ppf "grant-all"
  | Grant_double -> Format.pp_print_string ppf "grant-double"
  | Grant_half_keep -> Format.pp_print_string ppf "grant-half-keep"

let pp ppf t =
  Format.fprintf ppf "{%s %a %a timeout=%.3f rto=%.3f}"
    (match t.cc with Conc1 -> "conc1" | Conc2 -> "conc2")
    pp_request t.request_policy pp_grant t.grant_policy t.txn_timeout
    t.transport.Transport.vm_retransmit

let grant_amount policy ~requested ~fragment =
  let granted =
    match policy with
    | Grant_requested -> min requested fragment
    | Grant_all -> fragment
    | Grant_double -> min (2 * requested) fragment
    | Grant_half_keep -> min requested (fragment / 2)
  in
  max 0 granted

let other_sites ~self ~n =
  List.filter (fun s -> s <> self) (List.init n (fun i -> i))

let request_targets_among policy ~rng ~self ~candidates ~shortfall =
  let others = List.filter (fun s -> s <> self) candidates in
  match others with
  | [] -> []
  | _ -> (
    match policy with
    | Ask_all_full -> List.map (fun s -> (s, shortfall)) others
    | Ask_all_split ->
      let k = List.length others in
      let share = (shortfall + k - 1) / k in
      List.map (fun s -> (s, share)) others
    | Ask_one_random -> [ (Dvp_util.Rng.pick rng others, shortfall) ]
    | Ask_k k ->
      let arr = Array.of_list others in
      Dvp_util.Rng.shuffle rng arr;
      let k = max 1 (min k (Array.length arr)) in
      Array.to_list (Array.sub arr 0 k) |> List.map (fun s -> (s, shortfall)))

let request_targets policy ~rng ~self ~n ~shortfall =
  request_targets_among policy ~rng ~self ~candidates:(other_sites ~self ~n) ~shortfall
