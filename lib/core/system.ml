module Engine = Dvp_sim.Engine
module Substrate = Dvp_substrate.Substrate
module Network = Dvp_net.Network
module Broadcast = Dvp_net.Broadcast
module Health = Dvp_health.Health

type evacuation_report = {
  evac_site : Ids.site;
  value_moved : int;
  vms_delivered : int;
  stranded : int;
}

type t = {
  engine : Engine.t; (* the DES driver: [run_until] et al. live here *)
  sub : Substrate.t; (* the same engine behind the substrate interface *)
  net : Proto.t Network.t;
  bcast : Proto.t list Broadcast.t option;
  sites : Site.t array;
  cfg : Config.t;
  expected : (Ids.item, int) Hashtbl.t;
  (* Live in-flight ledger: per item, Σ Vm_create amounts minus Σ Vm_accept
     amounts, fed by every site's [on_inflight] hook.  The probe samples
     this in O(items) instead of replaying each site's log; the oracle
     ([in_flight] below) stays log-derived. *)
  inflight_live : (Ids.item, int) Hashtbl.t;
  item_list : Ids.item list ref;
  trace : Dvp_sim.Trace.t option;
  mutable detectors : Health.t array; (* empty = no failure detector *)
  dead_forever : bool array; (* [kill_forever] victims: recovery refused *)
  evacuated : bool array;
  membership : Membership.state array;
  mutable epoch : int;
      (* global membership epoch, bumped when a join or leave completes;
         stamped into every Vm at transmit time and fenced at receive time *)
}

let emit t ev =
  match t.trace with
  | Some tr -> Dvp_sim.Trace.emit tr ~time:(Substrate.now t.sub) ev
  | None -> ()

(* -------------------------------------------- degraded-mode operation *)

(* [d] is condemned when at least one live peer's detector says so — the
   evacuation precondition (besides the site actually being down). *)
let condemned_by t d =
  t.detectors <> [||]
  && Array.exists
       (fun p -> p <> d && Site.is_up t.sites.(p) && Health.state t.detectors.(p) d = Health.Condemned)
       (Array.init (Array.length t.sites) (fun i -> i))

(* Fragment evacuation (operator action, or [auto_evacuate]).  Every step
   below moves value exclusively through the ordinary Vm lifecycle —
   [push_value] creations and [handle_message] deliveries — so the conserved
   quantity N is untouched at every intermediate point; the oracle can run
   mid-evacuation and still hold.

   The dead site's protocol state is resurrected from its stable log, but
   its network flag stays down: any real message its stack emits is dropped
   at send time, and all transfer happens through direct loss-free delivery
   calls below, entirely within one simulator event. *)
let rec evacuate ?(force = false) t ~site:d () =
  let n = Array.length t.sites in
  let dead = t.sites.(d) in
  if t.evacuated.(d) then
    (* Idempotent: the fragments are already re-homed and the stable log
       already swept; a second invocation has nothing left to move. *)
    Ok { evac_site = d; value_moved = 0; vms_delivered = 0; stranded = 0 }
  else if Site.is_up dead then Error "site is up; evacuation is for long-dead sites"
  else if (not force) && not (condemned_by t d) then
    Error "site is not condemned by any live peer (pass ~force:true to override)"
  else begin
    let live p = p <> d && Site.is_up t.sites.(p) in
    let survivors = List.filter live (List.init n (fun i -> i)) in
    let vms_delivered = ref 0 in
    (* Phase 1: independent recovery from the stable log alone. *)
    Site.recover dead;
    let dvm = Site.vm dead in
    (* Phase 2: flush inbound value.  The resurrected site has no live
       transactions, so every in-order delivery is accepted on the spot; the
       relayed watermark then empties the survivor's (typically parked)
       outbox towards [d]. *)
    List.iter
      (fun p ->
        let sp = t.sites.(p) in
        let pvm = Site.vm sp in
        List.iter
          (fun (seq, item, amount) ->
            let before = Vm.accepted_upto dvm ~peer:p in
            Site.handle_message dead ~src:p
              (Proto.Vm_data
                 {
                   seq;
                   item;
                   amount;
                   ts_counter = Ids.Clock.current_counter (Site.clock sp);
                   reply_to = None;
                   ack_upto = Vm.accepted_upto pvm ~peer:d;
                   epoch = t.epoch;
                 });
            if Vm.accepted_upto dvm ~peer:p > before then incr vms_delivered)
          (Vm.outstanding_to pvm d);
        Site.handle_message sp ~src:d
          (Proto.Vm_ack { upto = Vm.accepted_upto dvm ~peer:p; epoch = t.epoch }))
      survivors;
    (* Phase 3: re-home the fragments — plain Rds redistribution, split
       evenly across the survivors, logged as ordinary Vm creations at [d]. *)
    let value_moved = ref 0 in
    (match survivors with
    | [] -> ()
    | _ ->
      List.iter
        (fun item ->
          let frag = Site.fragment dead ~item in
          if frag > 0 then
            List.iter2
              (fun p amount ->
                if amount > 0 && Site.push_value dead ~dst:p ~item ~amount then
                  value_moved := !value_moved + amount)
              survivors
              (Value.split_even frag ~parts:(List.length survivors)))
        (Site.items dead));
    (* Phase 4: deliver the dead site's whole outbox — stranded old Vm plus
       the evacuation Vm just created — into each survivor in sequence
       order, then relay the survivor's watermark back.  At an event
       boundary any lock held at a survivor belongs to a transaction that is
       awaiting value, and such transactions accept Vm themselves, so
       deliveries into live survivors always stick. *)
    List.iter
      (fun p ->
        let sp = t.sites.(p) in
        let pvm = Site.vm sp in
        List.iter
          (fun (seq, item, amount) ->
            let before = Vm.accepted_upto pvm ~peer:d in
            Site.handle_message sp ~src:d
              (Proto.Vm_data
                 {
                   seq;
                   item;
                   amount;
                   ts_counter = Ids.Clock.current_counter (Site.clock dead);
                   reply_to = None;
                   ack_upto = Vm.accepted_upto dvm ~peer:p;
                   epoch = t.epoch;
                 });
            if Vm.accepted_upto pvm ~peer:d > before then incr vms_delivered)
          (Vm.outstanding_to dvm p);
        Site.handle_message dead ~src:p
          (Proto.Vm_ack { upto = Vm.accepted_upto pvm ~peer:d; epoch = t.epoch }))
      survivors;
    (* Vm towards peers that are themselves down right now stay stranded in
       the stable log; the sweep below re-delivers them if those peers come
       back. *)
    let stranded = ref 0 in
    for p = 0 to n - 1 do
      if p <> d then stranded := !stranded + List.length (Vm.outstanding_to dvm p)
    done;
    (* Persist the unforced ack-progress records before crashing [d] again —
       losing them is harmless for conservation but would leave
       already-accepted Vm listed in the stable outbox. *)
    Dvp_storage.Wal.force (Site.wal dead);
    Site.crash dead;
    t.evacuated.(d) <- true;
    emit t
      (Dvp_sim.Trace.Evacuation
         { site = d; value_moved = !value_moved; vms_delivered = !vms_delivered;
           stranded = !stranded });
    if !stranded > 0 then start_sweep t d;
    Ok
      {
        evac_site = d;
        value_moved = !value_moved;
        vms_delivered = !vms_delivered;
        stranded = !stranded;
      }
  end

(* Periodic safety net for Vm stranded by an evacuation whose receiver was
   down at the time: re-deliver from the dead site's stable log whenever the
   receiver is back, until nothing is left. *)
and start_sweep t d =
  let n = Array.length t.sites in
  let dead = t.sites.(d) in
  let rec sweep () =
    let remaining = ref 0 in
    for p = 0 to n - 1 do
      if p <> d then begin
        let sp = t.sites.(p) in
        let acked =
          if Site.is_up sp then Vm.accepted_upto (Site.vm sp) ~peer:d
          else Site.stable_accepted_upto sp ~peer:d
        in
        let pending =
          List.filter (fun (seq, _, _) -> seq > acked) (Site.stable_outstanding_to dead ~dst:p)
        in
        if pending <> [] then
          if Site.is_up sp then begin
            List.iter
              (fun (seq, item, amount) ->
                Site.handle_message sp ~src:d
                  (Proto.Vm_data
                     {
                       seq;
                       item;
                       amount;
                       ts_counter = Ids.Clock.current_counter (Site.clock dead);
                       reply_to = None;
                       ack_upto = Site.stable_accepted_upto dead ~peer:p;
                       epoch = t.epoch;
                     }))
              pending;
            let acked' = Vm.accepted_upto (Site.vm sp) ~peer:d in
            remaining :=
              !remaining + List.length (List.filter (fun (seq, _, _) -> seq > acked') pending)
          end
          else remaining := !remaining + List.length pending
      end
    done;
    if !remaining > 0 then ignore (Substrate.schedule t.sub ~delay:0.5 sweep)
  in
  ignore (Substrate.schedule t.sub ~delay:0.5 sweep)

and maybe_auto_evacuate t d =
  if t.cfg.Config.auto_evacuate && (not t.evacuated.(d)) && not (Site.is_up t.sites.(d)) then
    (* Defer one engine step: the condemnation fires inside a detector scan
       or a message delivery, and evacuation must run at an event boundary. *)
    ignore
      (Substrate.schedule t.sub ~delay:0.0 (fun () ->
           if (not t.evacuated.(d)) && not (Site.is_up t.sites.(d)) then
             ignore (evacuate t ~site:d ())))

(* A detector verdict changed at site [i]: trace it and drive the circuit
   breaker (parked outbox) on the request/Vm path. *)
and handle_transition t i ~peer st =
  emit t (Dvp_sim.Trace.Health { site = i; peer; state = Health.state_to_string st });
  let vm = Site.vm t.sites.(i) in
  (match st with
  | Health.Up -> Vm.unpark vm ~dst:peer
  | Health.Suspected -> Vm.park vm ~dst:peer
  | Health.Condemned ->
    Vm.park vm ~dst:peer;
    maybe_auto_evacuate t peer)

and arm_detectors t hcfg =
  let n = Array.length t.sites in
  let tr = t.cfg.Config.transport in
  let dets =
    Array.init n (fun i ->
        Health.create hcfg ~sub:t.sub ~self:i ~n
          ~probe_every:tr.Config.Transport.probe_every
          ~probe_idle:tr.Config.Transport.probe_idle
          ~send_probe:(fun dst ->
            if Site.is_up t.sites.(i) then Network.send t.net ~src:i ~dst Proto.Probe)
          ~on_transition:(fun ~peer st -> handle_transition t i ~peer st))
  in
  t.detectors <- dets;
  (* Piggyback tap: every successful delivery is liveness evidence about its
     sender — heartbeats ride the existing Vm/request traffic for free. *)
  Network.set_observer t.net (fun ~src ~dst -> Health.note_alive dets.(dst) ~peer:src);
  Array.iteri
    (fun i site -> Site.set_health_view site (fun peer -> Health.state dets.(i) peer))
    t.sites;
  Array.iter Health.start dets

(* ------------------------------------------------- elastic membership *)

let member_state t i = t.membership.(i)

let epoch t = t.epoch

let members t =
  let acc = ref [] in
  for i = Array.length t.sites - 1 downto 0 do
    if t.membership.(i) = Membership.Member then acc := i :: !acc
  done;
  !acc

let up_members t = List.filter (fun i -> Site.is_up t.sites.(i)) (members t)

(* One auto-rebalance pass: for every item, members holding more than the
   even-split target plus [slack] pour their excess into members below the
   target, through ordinary Rds/[push_value] Vm — so conservation holds at
   every intermediate step, exactly as for evacuation.  An item locked at a
   hot site is simply skipped this pass; the next pass retries. *)
let rebalance ?(slack = Config.default_rebalance.Config.slack) t =
  let moved = ref 0 in
  let ms = up_members t in
  let m = List.length ms in
  if m >= 2 then
    List.iter
      (fun item ->
        let frags = List.map (fun s -> (s, Site.fragment t.sites.(s) ~item)) ms in
        let total = List.fold_left (fun acc (_, f) -> acc + f) 0 frags in
        let target = total / m in
        let cold =
          ref
            (List.filter_map
               (fun (s, f) -> if f < target then Some (s, target - f) else None)
               frags)
        in
        List.iter
          (fun (s, f) ->
            if f > target + slack then begin
              let surplus = ref (f - target) in
              let continue = ref true in
              while !continue && !surplus > 0 do
                match !cold with
                | [] -> continue := false
                | (c, deficit) :: rest ->
                  let amount = min !surplus deficit in
                  if amount > 0 && Site.push_value t.sites.(s) ~dst:c ~item ~amount
                  then begin
                    moved := !moved + amount;
                    surplus := !surplus - amount;
                    cold := if deficit > amount then (c, deficit - amount) :: rest else rest
                  end
                  else continue := false (* locked at the source: next pass *)
              done
            end)
          frags)
      (List.rev !(t.item_list));
  if !moved > 0 then emit t (Dvp_sim.Trace.Rebalance { moved = !moved });
  !moved

let start_auto_rebalance t ~every ~slack =
  let rec tick () =
    ignore (rebalance ~slack t);
    ignore (Substrate.schedule t.sub ~delay:every tick)
  in
  ignore (Substrate.schedule t.sub ~delay:every tick)

(* Keep every detector's world consistent with the membership array: a slot
   is monitored iff it is not Detached.  [Health.set_monitored] is a no-op
   when the flag is unchanged, so this is cheap to call after any
   transition. *)
let sync_health t =
  let n = Array.length t.sites in
  Array.iter
    (fun det ->
      for p = 0 to n - 1 do
        Health.set_monitored det ~peer:p (t.membership.(p) <> Membership.Detached)
      done)
    t.detectors

let create ?(seed = 42) ?(config = Config.default) ?link ?trace ?capacity ?queue ~n () =
  if n <= 0 then invalid_arg "System.create: need at least one site";
  let capacity = match capacity with None -> n | Some c -> c in
  if capacity < n then invalid_arg "System.create: capacity < n";
  let engine = Engine.create ?queue () in
  let sub = Dvp_sim.Substrate_des.of_engine engine in
  let rng = Dvp_util.Rng.create seed in
  let net_rng = Dvp_util.Rng.split rng in
  let net = Network.create sub ~rng:net_rng ~n:capacity ?default:link ?trace () in
  let inflight_live = Hashtbl.create 8 in
  let on_inflight item delta =
    Hashtbl.replace inflight_live item
      (delta + Option.value ~default:0 (Hashtbl.find_opt inflight_live item))
  in
  let sites =
    Array.init capacity (fun i ->
        let site_rng = Dvp_util.Rng.split rng in
        Site.create sub ~self:i ~n:capacity
          ~send:(fun ~dst msg -> Network.send net ~src:i ~dst msg)
          ~config ~rng:site_rng ?trace ~on_inflight ())
  in
  Array.iteri
    (fun i site -> Network.set_handler net i (fun ~src msg -> Site.handle_message site ~src msg))
    sites;
  let bcast =
    match config.Config.cc with
    | Config.Conc2 ->
      let b = Broadcast.create sub ~n:capacity () in
      Array.iteri
        (fun i site ->
          Broadcast.set_handler b i (fun ~src ~seq:_ msgs ->
              Site.handle_broadcast site ~src msgs);
          Site.set_broadcast site (fun msgs -> ignore (Broadcast.broadcast b ~src:i msgs)))
        sites;
      Some b
    | Config.Conc1 -> None
  in
  let t =
    {
      engine;
      sub;
      net;
      bcast;
      sites;
      cfg = config;
      expected = Hashtbl.create 8;
      inflight_live;
      item_list = ref [];
      trace;
      detectors = [||];
      dead_forever = Array.make capacity false;
      evacuated = Array.make capacity false;
      membership =
        Array.init capacity (fun i ->
            if i < n then Membership.Member else Membership.Detached);
      epoch = 0;
    }
  in
  (* Every site reads the shared membership array and epoch through these
     views: Ask/drain candidate filtering, submission gating, and the
     transmit-time epoch stamp all flow from here. *)
  Array.iter
    (fun site ->
      Site.set_membership_view site (fun peer -> t.membership.(peer));
      Site.set_epoch_view site (fun () -> t.epoch))
    sites;
  (* Spare slots [n, capacity) start detached: crashed, off the network, and
     (below) outside every detector's world. *)
  for i = n to capacity - 1 do
    Network.set_site_up net i false;
    Network.set_member net i false;
    Site.crash sites.(i)
  done;
  (match config.Config.health with
  | None -> ()
  | Some hcfg ->
    arm_detectors t hcfg;
    for i = n to capacity - 1 do
      Health.pause t.detectors.(i)
    done;
    sync_health t);
  (match config.Config.rebalance with
  | None -> ()
  | Some policy -> start_auto_rebalance t ~every:policy.Config.every ~slack:policy.Config.slack);
  t

let engine t = t.engine

let sub t = t.sub

let now t = Engine.now t.engine

let run_until t horizon = Engine.run_until t.engine horizon

let run_for t d = Engine.run_until t.engine (Engine.now t.engine +. d)

let n_sites t = Array.length t.sites

let site t i = t.sites.(i)

let config t = t.cfg

let network t = t.net

let trace t = t.trace

let items t = List.rev !(t.item_list)

let add_item t ~item ~total ?(split = `Even) () =
  if Hashtbl.mem t.expected item then invalid_arg "System.add_item: item already exists";
  if total < 0 then invalid_arg "System.add_item: negative total";
  (* Initial placement goes to the current members only; detached spare
     slots receive value later, through the join seeding handshake. *)
  let ms = members t in
  let m = List.length ms in
  let fragments =
    match split with
    | `Even -> Value.split_even total ~parts:m
    | `Weights w ->
      if List.length w <> m then invalid_arg "System.add_item: need one weight per member";
      Value.split_weighted total ~weights:w
    | `Explicit parts ->
      if List.length parts <> m then
        invalid_arg "System.add_item: need one fragment per member";
      if Value.pi parts <> total then invalid_arg "System.add_item: fragments must sum to total";
      if not (Value.valid_multiset parts) then
        invalid_arg "System.add_item: negative fragment";
      parts
  in
  List.iter2 (fun i v -> Site.install_fragment t.sites.(i) ~item v) ms fragments;
  Hashtbl.replace t.expected item total;
  t.item_list := item :: !(t.item_list)

(* Track committed deltas so the conservation check knows the current
   expected aggregate. *)
let wrap_delta t ops on_done result =
  (match result with
  | Site.Committed _ ->
    List.iter
      (fun (item, op) ->
        match Hashtbl.find_opt t.expected item with
        | Some total -> Hashtbl.replace t.expected item (total + Op.delta op)
        | None -> ())
      ops
  | Site.Aborted _ -> ());
  on_done result

(* One attempt of a request, whatever its kind, reported as a Txn.outcome. *)
let exec_once t (req : Txn.t) on_result =
  match req.Txn.kind with
  | Txn.Update ->
    Site.submit t.sites.(req.Txn.site) ~ops:req.Txn.ops
      ~on_done:
        (wrap_delta t req.Txn.ops (fun r ->
             on_result
               (match r with
               | Site.Committed _ -> Txn.Committed { reads = [] }
               | Site.Aborted reason -> Txn.Aborted reason)))
  | Txn.Read item ->
    Site.submit_read t.sites.(req.Txn.site) ~item ~on_done:(fun r ->
        on_result
          (match r with
          | Site.Committed { read_value = Some v } -> Txn.Committed { reads = [ (item, v) ] }
          | Site.Committed { read_value = None } -> Txn.Committed { reads = [] }
          | Site.Aborted reason -> Txn.Aborted reason))
  | Txn.Snapshot items ->
    Site.submit_read_many t.sites.(req.Txn.site) ~items ~on_done:(fun r ->
        on_result
          (match r with
          | Ok reads -> Txn.Committed { reads }
          | Error reason -> Txn.Aborted reason))

let exec t (req : Txn.t) ~on_done =
  match req.Txn.retry with
  | None -> exec_once t req on_done
  | Some { Txn.retries; backoff } ->
    (* Each retry is a fresh transaction with a fresh, higher timestamp. *)
    let rec attempt k =
      exec_once t req (fun result ->
          match result with
          | Txn.Committed _ -> on_done result
          | Txn.Aborted _ when k < retries ->
            ignore
              (Substrate.schedule t.sub
                 ~delay:(backoff *. float_of_int (k + 1))
                 (fun () -> attempt (k + 1)))
          | Txn.Aborted _ -> on_done result)
    in
    attempt 0

(* -------------------------------------------------------------- faults *)

let partition t groups = Network.set_partition t.net groups

let heal t = Network.heal_partition t.net

let crash_site t i =
  (* A crash aborts an in-flight graceful leave: the site reverts to plain
     membership and, on recovery, rejoins the ordinary traffic flow with its
     remaining fragments (the shed value already pushed stays shed). *)
  if t.membership.(i) = Membership.Leaving then t.membership.(i) <- Membership.Member;
  Network.set_site_up t.net i false;
  Site.crash t.sites.(i);
  (* The crashed site's own detector must not condemn the whole world while
     it cannot hear anyone. *)
  if t.detectors <> [||] then Health.pause t.detectors.(i)

let recover_site t i =
  (* A detached slot has no membership: it comes back only through [join].
     A crash mid-join leaves the slot [Joining]; recovery is allowed and the
     pending join completes once the seed value lands. *)
  if (not t.dead_forever.(i)) && t.membership.(i) <> Membership.Detached then begin
    Network.set_site_up t.net i true;
    Site.recover t.sites.(i);
    t.evacuated.(i) <- false;
    if t.detectors <> [||] then begin
      (* Resume this site's own view with fresh deadlines, and re-open its
         breakers toward peers it still distrusts (resume revives Suspected
         verdicts, Condemned ones stay until reinstated below won't apply). *)
      Health.resume t.detectors.(i);
      let vm = Site.vm t.sites.(i) in
      Array.iteri
        (fun peer st -> if st <> Health.Up then Vm.park vm ~dst:peer)
        (Health.states t.detectors.(i));
      (* Tell the survivors: a returning site is alive again.  Reinstating a
         Condemned or Suspected verdict fires the Up transition, which
         unparks the peer's outbox toward [i] and marks the backlog due —
         retransmission resumes within one window. *)
      Array.iteri
        (fun p det ->
          if p <> i && Site.is_up t.sites.(p) then
            match Health.state det i with
            | Health.Up -> ()
            | Health.Suspected -> Health.note_alive det ~peer:i
            | Health.Condemned -> Health.reinstate det ~peer:i)
        t.detectors
    end
  end

let kill_forever t i =
  t.dead_forever.(i) <- true;
  crash_site t i

let site_up t i = Site.is_up t.sites.(i)

let set_all_links t params = Network.set_all_links t.net params

let inject_wal_fault t i fault = Site.inject_wal_fault t.sites.(i) fault

let checkpoint_site t i = Site.checkpoint t.sites.(i)

let detector t i = if t.detectors = [||] then None else Some t.detectors.(i)

let health_state t ~observer ~peer =
  if t.detectors = [||] then Health.Up else Health.state t.detectors.(observer) peer

let evacuated t i = t.evacuated.(i)

let dead_forever t i = t.dead_forever.(i)

(* Online join: bring a detached slot up, seed it with value from the
   members through ordinary [push_value] Vm, and promote it to [Member]
   (bumping the epoch) once the seed value has landed.  Until the promotion
   the joiner is not Ask-eligible and refuses submissions, but it accepts
   and acknowledges Vm like any site — so conservation holds throughout. *)
let join t i =
  let n = Array.length t.sites in
  if i < 0 || i >= n then Error "site index out of range"
  else if t.dead_forever.(i) then Error "slot was killed forever"
  else if t.membership.(i) <> Membership.Detached then
    Error
      (Printf.sprintf "site is %s; join needs a detached slot"
         (Membership.to_string t.membership.(i)))
  else begin
    let ms = members t in
    let m = List.length ms in
    t.membership.(i) <- Membership.Joining;
    Network.set_member t.net i true;
    Network.set_site_up t.net i true;
    Site.recover t.sites.(i);
    t.evacuated.(i) <- false;
    if t.detectors <> [||] then begin
      Health.resume t.detectors.(i);
      sync_health t
    end;
    emit t (Dvp_sim.Trace.Note { category = "member"; message = Printf.sprintf "site %d joining" i });
    (* Seed: every up member ships the joiner a 1/(m+1) share of each of its
       fragments, so the joiner arrives holding roughly an even slice.
       Locked items and down members are skipped — the auto-rebalancer
       evens those out later. *)
    let seeded = ref 0 in
    List.iter
      (fun p ->
        let sp = t.sites.(p) in
        if Site.is_up sp then
          List.iter
            (fun item ->
              let amount = Site.fragment sp ~item / (m + 1) in
              if amount > 0 && Site.push_value sp ~dst:i ~item ~amount then
                seeded := !seeded + amount)
            (Site.items sp))
      ms;
    (* Promote once the handshake has settled: the joiner is up and no up
       member still has unacknowledged Vm toward it.  A member that crashed
       mid-seed is excused — its stranded Vm retransmit after it recovers,
       stamped with whatever epoch is then current, and land normally. *)
    let rec poll () =
      if t.membership.(i) = Membership.Joining then begin
        let settled =
          Site.is_up t.sites.(i)
          && List.for_all
               (fun p ->
                 (not (Site.is_up t.sites.(p)))
                 || Vm.outstanding_to (Site.vm t.sites.(p)) i = [])
               ms
        in
        if settled then begin
          t.membership.(i) <- Membership.Member;
          t.epoch <- t.epoch + 1;
          emit t (Dvp_sim.Trace.Join { site = i; epoch = t.epoch; seeded = !seeded })
        end
        else ignore (Substrate.schedule t.sub ~delay:0.05 poll)
      end
    in
    ignore (Substrate.schedule t.sub ~delay:0.05 poll);
    Ok ()
  end

(* Graceful voluntary leave, the counterpart of [evacuate] for a site that
   is still alive: stop taking new work, drain obligations, shed every
   fragment onto the surviving members through ordinary [push_value] Vm,
   and only then detach — bumping the epoch and restarting the Vm channels
   between the leaver and every up peer at sequence zero.  Channels to down
   peers keep their watermarks on both sides, so they re-converge normally
   if those peers return.  A crash during the drain aborts the leave (the
   slot reverts to [Member], see [crash_site]). *)
let leave t i =
  let n = Array.length t.sites in
  if i < 0 || i >= n then Error "site index out of range"
  else if t.membership.(i) <> Membership.Member then Error "site is not a member"
  else if not (Site.is_up t.sites.(i)) then
    Error "site is down; evacuation, not leave, re-homes a dead site's value"
  else if List.length (members t) <= 2 then
    Error "refusing: fewer than two members would remain"
  else begin
    t.membership.(i) <- Membership.Leaving;
    emit t (Dvp_sim.Trace.Note { category = "member"; message = Printf.sprintf "site %d leaving" i });
    let leaver = t.sites.(i) in
    let lvm = Site.vm leaver in
    let shed_total = ref 0 in
    let rec tick () =
      (* [crash_site] reverts Leaving to Member; a stale tick then just
         stops.  (The site cannot be down while still Leaving.) *)
      if t.membership.(i) = Membership.Leaving && not (Site.is_up leaver) then
        (* Crashed outside [crash_site] while draining: abort the leave. *)
        t.membership.(i) <- Membership.Member
      else if t.membership.(i) = Membership.Leaving then begin
        (* Shed whatever is currently unlocked, split evenly over the up
           members; locked fragments wait for the next tick. *)
        let ms =
          List.filter
            (fun p ->
              p <> i && t.membership.(p) = Membership.Member && Site.is_up t.sites.(p))
            (List.init n (fun p -> p))
        in
        (match ms with
        | [] -> ()
        | _ ->
          List.iter
            (fun item ->
              let frag = Site.fragment leaver ~item in
              if frag > 0 then
                List.iter2
                  (fun p amount ->
                    if amount > 0 && Site.push_value leaver ~dst:p ~item ~amount then
                      shed_total := !shed_total + amount)
                  ms
                  (Value.split_even frag ~parts:(List.length ms)))
            (Site.items leaver));
        (* Drained when nothing is held here and nothing is owed in either
           direction: fragments zero, outbox empty, no live transactions,
           and no peer — live (checked directly) or down (checked against
           its stable outbox minus our acceptance watermark) — still has
           unaccepted Vm toward us. *)
        let drained =
          List.for_all (fun item -> Site.fragment leaver ~item = 0) (Site.items leaver)
          && Vm.outbox_depth lvm = 0
          && Site.active_txns leaver = 0
          && List.for_all
               (fun p ->
                 p = i
                 || t.membership.(p) = Membership.Detached
                 ||
                 if Site.is_up t.sites.(p) then
                   Vm.outstanding_to (Site.vm t.sites.(p)) i = []
                 else
                   List.for_all
                     (fun (seq, _, _) -> seq <= Vm.accepted_upto lvm ~peer:p)
                     (Site.stable_outstanding_to t.sites.(p) ~dst:i))
               (List.init n (fun p -> p))
        in
        if drained then begin
          t.epoch <- t.epoch + 1;
          (* Pairwise channel restart under the new epoch, both directions,
             with every up attached peer.  Any Vm still in flight on the
             wire carries the old epoch stamp and is fenced at the receiver
             — but the drain above guarantees there is no such value, so
             the fence only ever rejects duplicates and stale acks. *)
          for p = 0 to n - 1 do
            if
              p <> i
              && t.membership.(p) <> Membership.Detached
              && Site.is_up t.sites.(p)
            then begin
              Vm.reset_channel (Site.vm t.sites.(p)) ~peer:i ~epoch:t.epoch;
              Vm.reset_channel lvm ~peer:p ~epoch:t.epoch
            end
          done;
          Dvp_storage.Wal.force (Site.wal leaver);
          Site.crash leaver;
          Network.set_site_up t.net i false;
          Network.set_member t.net i false;
          t.membership.(i) <- Membership.Detached;
          if t.detectors <> [||] then begin
            Health.pause t.detectors.(i);
            sync_health t
          end;
          emit t (Dvp_sim.Trace.Leave { site = i; epoch = t.epoch; shed = !shed_total })
        end
        else ignore (Substrate.schedule t.sub ~delay:0.05 tick)
      end
    in
    ignore (Substrate.schedule t.sub ~delay:0.05 tick);
    Ok ()
  end

(* --------------------------------------------------------- observation *)

let fragments t ~item =
  Array.map
    (fun s -> if Site.is_up s then Site.fragment s ~item else Site.stable_fragment s ~item)
    t.sites

let total_at_sites t ~item = Array.fold_left ( + ) 0 (fragments t ~item)

(* A Vm is in flight iff its sender logged the creation and its receiver has
   not logged the acceptance.  One (cached) replayed view per site — the
   outbox entries of src's view are checked against dst's acceptance
   watermark directly — rather than one replay per (src, dst) pair, so the
   oracle costs O(sites + outstanding Vm), not O(sites²) replays. *)
let in_flight t ~item =
  let n = Array.length t.sites in
  let total = ref 0 in
  for src = 0 to n - 1 do
    let view = Site.stable_vm_view t.sites.(src) in
    Hashtbl.iter
      (fun (dst, seq) (o : Log_replay.vm_outstanding) ->
        if
          o.Log_replay.item = item && dst <> src
          && seq > Site.stable_accepted_upto t.sites.(dst) ~peer:src
        then total := !total + o.Log_replay.amount)
      view.Log_replay.vm_outbox
  done;
  !total

let expected_total t ~item =
  match Hashtbl.find_opt t.expected item with
  | Some v -> v
  | None -> invalid_arg "System.expected_total: unknown item"

let conserved t ~item = total_at_sites t ~item + in_flight t ~item = expected_total t ~item

let conserved_all t = List.for_all (fun item -> conserved t ~item) (items t)

let checkpoint_all t =
  Array.iter (fun s -> if Site.is_up s then Site.checkpoint s) t.sites

let start_periodic_checkpoints t ~every =
  (* Skip sites whose stable log has not grown since their last checkpoint:
     an idle site's snapshot would be identical to the previous one, and at
     scale most sites are idle on any given tick. *)
  let last = Array.make (Array.length t.sites) (-1) in
  let rec tick () =
    Array.iteri
      (fun i s ->
        if Site.is_up s && Dvp_storage.Wal.end_index (Site.wal s) <> last.(i) then begin
          Site.checkpoint s;
          last.(i) <- Dvp_storage.Wal.end_index (Site.wal s)
        end)
      t.sites;
    ignore (Substrate.schedule t.sub ~delay:every tick)
  in
  ignore (Substrate.schedule t.sub ~delay:every tick)

let recalibrate_expected t =
  List.iter
    (fun item -> Hashtbl.replace t.expected item (total_at_sites t ~item + in_flight t ~item))
    (items t)

let stable_log_length t =
  Array.fold_left (fun acc s -> acc + Dvp_storage.Wal.stable_length (Site.wal s)) 0 t.sites

let metrics t =
  let m =
    Array.fold_left
      (fun acc s -> Metrics.merge acc (Site.metrics s))
      (Metrics.create ()) t.sites
  in
  let stats = Network.stats t.net in
  Metrics.add_messages m stats.Network.sent;
  (* Membership drops are a site-unavailability flavour: fold them into the
     down bucket rather than widening the metrics schema. *)
  Metrics.add_drops m ~loss:stats.Network.dropped_loss
    ~partition:stats.Network.dropped_partition
    ~down:(stats.Network.dropped_down + stats.Network.dropped_membership)
    ~inflight:stats.Network.dropped_inflight;
  (match t.bcast with
  | Some b -> Metrics.add_messages m (Broadcast.messages_sent b)
  | None -> ());
  Array.iter
    (fun s -> Metrics.add_log_forces m (Dvp_storage.Wal.forces (Site.wal s)))
    t.sites;
  (match t.trace with
  | Some tr -> Metrics.set_trace_dropped m (Dvp_sim.Trace.drop_count tr)
  | None -> ());
  m

(* --------------------------------------------------------------- probes *)

module Json = Dvp_util.Json

type probe_sample = {
  fragments : (Ids.item * int array) list;
  in_flight : (Ids.item * int) list;
  active_txns : int;
  log_length : int;
}

let probe_sample t =
  let its = items t in
  {
    fragments = List.map (fun item -> (item, fragments t ~item)) its;
    (* The live ledger, not the log-derived oracle: O(items) per sample.
       The two agree whenever the logs are consistent (the hooks fire
       exactly on the forced Vm_create/Vm_accept appends). *)
    in_flight =
      List.map
        (fun item ->
          (item, Option.value ~default:0 (Hashtbl.find_opt t.inflight_live item)))
        its;
    active_txns =
      Array.fold_left
        (fun acc s -> if Site.is_up s then acc + Site.active_txns s else acc)
        0 t.sites;
    log_length = stable_log_length t;
  }

let start_probe t ~every =
  Dvp_sim.Probe.start t.engine ~period:every ~sample:(fun _ -> probe_sample t)

let probe_sample_to_json s =
  Json.Obj
    [
      ( "fragments",
        Json.Obj
          (List.map
             (fun (item, frags) ->
               ( string_of_int item,
                 Json.List (Array.to_list (Array.map (fun v -> Json.Int v) frags)) ))
             s.fragments) );
      ( "in_flight",
        Json.Obj
          (List.map (fun (item, v) -> (string_of_int item, Json.Int v)) s.in_flight) );
      ("active_txns", Json.Int s.active_txns);
      ("log_length", Json.Int s.log_length);
    ]

let probe_series_to_json p =
  Json.Obj
    [
      ("period", Json.Float (Dvp_sim.Probe.period p));
      ( "samples",
        Json.List
          (List.map
             (fun (time, s) ->
               match probe_sample_to_json s with
               | Json.Obj fields -> Json.Obj (("time", Json.Float time) :: fields)
               | j -> j)
             (Dvp_sim.Probe.series p)) );
    ]
