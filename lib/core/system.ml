module Engine = Dvp_sim.Engine
module Substrate = Dvp_substrate.Substrate
module Network = Dvp_net.Network
module Broadcast = Dvp_net.Broadcast
module Health = Dvp_health.Health

type evacuation_report = {
  evac_site : Ids.site;
  value_moved : int;
  vms_delivered : int;
  stranded : int;
}

type t = {
  engine : Engine.t; (* the DES driver: [run_until] et al. live here *)
  sub : Substrate.t; (* the same engine behind the substrate interface *)
  net : Proto.t Network.t;
  bcast : Proto.t list Broadcast.t option;
  sites : Site.t array;
  cfg : Config.t;
  expected : (Ids.item, int) Hashtbl.t;
  item_list : Ids.item list ref;
  trace : Dvp_sim.Trace.t option;
  mutable detectors : Health.t array; (* empty = no failure detector *)
  dead_forever : bool array; (* [kill_forever] victims: recovery refused *)
  evacuated : bool array;
}

let emit t ev =
  match t.trace with
  | Some tr -> Dvp_sim.Trace.emit tr ~time:(Substrate.now t.sub) ev
  | None -> ()

(* -------------------------------------------- degraded-mode operation *)

(* [d] is condemned when at least one live peer's detector says so — the
   evacuation precondition (besides the site actually being down). *)
let condemned_by t d =
  t.detectors <> [||]
  && Array.exists
       (fun p -> p <> d && Site.is_up t.sites.(p) && Health.state t.detectors.(p) d = Health.Condemned)
       (Array.init (Array.length t.sites) (fun i -> i))

(* Fragment evacuation (operator action, or [auto_evacuate]).  Every step
   below moves value exclusively through the ordinary Vm lifecycle —
   [push_value] creations and [handle_message] deliveries — so the conserved
   quantity N is untouched at every intermediate point; the oracle can run
   mid-evacuation and still hold.

   The dead site's protocol state is resurrected from its stable log, but
   its network flag stays down: any real message its stack emits is dropped
   at send time, and all transfer happens through direct loss-free delivery
   calls below, entirely within one simulator event. *)
let rec evacuate ?(force = false) t ~site:d () =
  let n = Array.length t.sites in
  let dead = t.sites.(d) in
  if Site.is_up dead then Error "site is up; evacuation is for long-dead sites"
  else if (not force) && not (condemned_by t d) then
    Error "site is not condemned by any live peer (pass ~force:true to override)"
  else begin
    let live p = p <> d && Site.is_up t.sites.(p) in
    let survivors = List.filter live (List.init n (fun i -> i)) in
    let vms_delivered = ref 0 in
    (* Phase 1: independent recovery from the stable log alone. *)
    Site.recover dead;
    let dvm = Site.vm dead in
    (* Phase 2: flush inbound value.  The resurrected site has no live
       transactions, so every in-order delivery is accepted on the spot; the
       relayed watermark then empties the survivor's (typically parked)
       outbox towards [d]. *)
    List.iter
      (fun p ->
        let sp = t.sites.(p) in
        let pvm = Site.vm sp in
        List.iter
          (fun (seq, item, amount) ->
            let before = Vm.accepted_upto dvm ~peer:p in
            Site.handle_message dead ~src:p
              (Proto.Vm_data
                 {
                   seq;
                   item;
                   amount;
                   ts_counter = Ids.Clock.current_counter (Site.clock sp);
                   reply_to = None;
                   ack_upto = Vm.accepted_upto pvm ~peer:d;
                 });
            if Vm.accepted_upto dvm ~peer:p > before then incr vms_delivered)
          (Vm.outstanding_to pvm d);
        Site.handle_message sp ~src:d (Proto.Vm_ack { upto = Vm.accepted_upto dvm ~peer:p }))
      survivors;
    (* Phase 3: re-home the fragments — plain Rds redistribution, split
       evenly across the survivors, logged as ordinary Vm creations at [d]. *)
    let value_moved = ref 0 in
    (match survivors with
    | [] -> ()
    | _ ->
      List.iter
        (fun item ->
          let frag = Site.fragment dead ~item in
          if frag > 0 then
            List.iter2
              (fun p amount ->
                if amount > 0 && Site.push_value dead ~dst:p ~item ~amount then
                  value_moved := !value_moved + amount)
              survivors
              (Value.split_even frag ~parts:(List.length survivors)))
        (Site.items dead));
    (* Phase 4: deliver the dead site's whole outbox — stranded old Vm plus
       the evacuation Vm just created — into each survivor in sequence
       order, then relay the survivor's watermark back.  At an event
       boundary any lock held at a survivor belongs to a transaction that is
       awaiting value, and such transactions accept Vm themselves, so
       deliveries into live survivors always stick. *)
    List.iter
      (fun p ->
        let sp = t.sites.(p) in
        let pvm = Site.vm sp in
        List.iter
          (fun (seq, item, amount) ->
            let before = Vm.accepted_upto pvm ~peer:d in
            Site.handle_message sp ~src:d
              (Proto.Vm_data
                 {
                   seq;
                   item;
                   amount;
                   ts_counter = Ids.Clock.current_counter (Site.clock dead);
                   reply_to = None;
                   ack_upto = Vm.accepted_upto dvm ~peer:p;
                 });
            if Vm.accepted_upto pvm ~peer:d > before then incr vms_delivered)
          (Vm.outstanding_to dvm p);
        Site.handle_message dead ~src:p (Proto.Vm_ack { upto = Vm.accepted_upto pvm ~peer:d }))
      survivors;
    (* Vm towards peers that are themselves down right now stay stranded in
       the stable log; the sweep below re-delivers them if those peers come
       back. *)
    let stranded = ref 0 in
    for p = 0 to n - 1 do
      if p <> d then stranded := !stranded + List.length (Vm.outstanding_to dvm p)
    done;
    (* Persist the unforced ack-progress records before crashing [d] again —
       losing them is harmless for conservation but would leave
       already-accepted Vm listed in the stable outbox. *)
    Dvp_storage.Wal.force (Site.wal dead);
    Site.crash dead;
    t.evacuated.(d) <- true;
    emit t
      (Dvp_sim.Trace.Evacuation
         { site = d; value_moved = !value_moved; vms_delivered = !vms_delivered;
           stranded = !stranded });
    if !stranded > 0 then start_sweep t d;
    Ok
      {
        evac_site = d;
        value_moved = !value_moved;
        vms_delivered = !vms_delivered;
        stranded = !stranded;
      }
  end

(* Periodic safety net for Vm stranded by an evacuation whose receiver was
   down at the time: re-deliver from the dead site's stable log whenever the
   receiver is back, until nothing is left. *)
and start_sweep t d =
  let n = Array.length t.sites in
  let dead = t.sites.(d) in
  let rec sweep () =
    let remaining = ref 0 in
    for p = 0 to n - 1 do
      if p <> d then begin
        let sp = t.sites.(p) in
        let acked =
          if Site.is_up sp then Vm.accepted_upto (Site.vm sp) ~peer:d
          else Site.stable_accepted_upto sp ~peer:d
        in
        let pending =
          List.filter (fun (seq, _, _) -> seq > acked) (Site.stable_outstanding_to dead ~dst:p)
        in
        if pending <> [] then
          if Site.is_up sp then begin
            List.iter
              (fun (seq, item, amount) ->
                Site.handle_message sp ~src:d
                  (Proto.Vm_data
                     {
                       seq;
                       item;
                       amount;
                       ts_counter = Ids.Clock.current_counter (Site.clock dead);
                       reply_to = None;
                       ack_upto = Site.stable_accepted_upto dead ~peer:p;
                     }))
              pending;
            let acked' = Vm.accepted_upto (Site.vm sp) ~peer:d in
            remaining :=
              !remaining + List.length (List.filter (fun (seq, _, _) -> seq > acked') pending)
          end
          else remaining := !remaining + List.length pending
      end
    done;
    if !remaining > 0 then ignore (Substrate.schedule t.sub ~delay:0.5 sweep)
  in
  ignore (Substrate.schedule t.sub ~delay:0.5 sweep)

and maybe_auto_evacuate t d =
  if t.cfg.Config.auto_evacuate && (not t.evacuated.(d)) && not (Site.is_up t.sites.(d)) then
    (* Defer one engine step: the condemnation fires inside a detector scan
       or a message delivery, and evacuation must run at an event boundary. *)
    ignore
      (Substrate.schedule t.sub ~delay:0.0 (fun () ->
           if (not t.evacuated.(d)) && not (Site.is_up t.sites.(d)) then
             ignore (evacuate t ~site:d ())))

(* A detector verdict changed at site [i]: trace it and drive the circuit
   breaker (parked outbox) on the request/Vm path. *)
and handle_transition t i ~peer st =
  emit t (Dvp_sim.Trace.Health { site = i; peer; state = Health.state_to_string st });
  let vm = Site.vm t.sites.(i) in
  (match st with
  | Health.Up -> Vm.unpark vm ~dst:peer
  | Health.Suspected -> Vm.park vm ~dst:peer
  | Health.Condemned ->
    Vm.park vm ~dst:peer;
    maybe_auto_evacuate t peer)

and arm_detectors t hcfg =
  let n = Array.length t.sites in
  let tr = t.cfg.Config.transport in
  let dets =
    Array.init n (fun i ->
        Health.create hcfg ~sub:t.sub ~self:i ~n
          ~probe_every:tr.Config.Transport.probe_every
          ~probe_idle:tr.Config.Transport.probe_idle
          ~send_probe:(fun dst ->
            if Site.is_up t.sites.(i) then Network.send t.net ~src:i ~dst Proto.Probe)
          ~on_transition:(fun ~peer st -> handle_transition t i ~peer st))
  in
  t.detectors <- dets;
  (* Piggyback tap: every successful delivery is liveness evidence about its
     sender — heartbeats ride the existing Vm/request traffic for free. *)
  Network.set_observer t.net (fun ~src ~dst -> Health.note_alive dets.(dst) ~peer:src);
  Array.iteri
    (fun i site -> Site.set_health_view site (fun peer -> Health.state dets.(i) peer))
    t.sites;
  Array.iter Health.start dets

let create ?(seed = 42) ?(config = Config.default) ?link ?trace ~n () =
  if n <= 0 then invalid_arg "System.create: need at least one site";
  let engine = Engine.create () in
  let sub = Dvp_sim.Substrate_des.of_engine engine in
  let rng = Dvp_util.Rng.create seed in
  let net_rng = Dvp_util.Rng.split rng in
  let net = Network.create sub ~rng:net_rng ~n ?default:link ?trace () in
  let sites =
    Array.init n (fun i ->
        let site_rng = Dvp_util.Rng.split rng in
        Site.create sub ~self:i ~n
          ~send:(fun ~dst msg -> Network.send net ~src:i ~dst msg)
          ~config ~rng:site_rng ?trace ())
  in
  Array.iteri
    (fun i site -> Network.set_handler net i (fun ~src msg -> Site.handle_message site ~src msg))
    sites;
  let bcast =
    match config.Config.cc with
    | Config.Conc2 ->
      let b = Broadcast.create sub ~n () in
      Array.iteri
        (fun i site ->
          Broadcast.set_handler b i (fun ~src ~seq:_ msgs ->
              Site.handle_broadcast site ~src msgs);
          Site.set_broadcast site (fun msgs -> ignore (Broadcast.broadcast b ~src:i msgs)))
        sites;
      Some b
    | Config.Conc1 -> None
  in
  let t =
    {
      engine;
      sub;
      net;
      bcast;
      sites;
      cfg = config;
      expected = Hashtbl.create 8;
      item_list = ref [];
      trace;
      detectors = [||];
      dead_forever = Array.make n false;
      evacuated = Array.make n false;
    }
  in
  (match config.Config.health with
  | None -> ()
  | Some hcfg -> arm_detectors t hcfg);
  t

let engine t = t.engine

let sub t = t.sub

let now t = Engine.now t.engine

let run_until t horizon = Engine.run_until t.engine horizon

let run_for t d = Engine.run_until t.engine (Engine.now t.engine +. d)

let n_sites t = Array.length t.sites

let site t i = t.sites.(i)

let config t = t.cfg

let network t = t.net

let trace t = t.trace

let items t = List.rev !(t.item_list)

let add_item t ~item ~total ?(split = `Even) () =
  if Hashtbl.mem t.expected item then invalid_arg "System.add_item: item already exists";
  if total < 0 then invalid_arg "System.add_item: negative total";
  let n = Array.length t.sites in
  let fragments =
    match split with
    | `Even -> Value.split_even total ~parts:n
    | `Weights w ->
      if List.length w <> n then invalid_arg "System.add_item: need one weight per site";
      Value.split_weighted total ~weights:w
    | `Explicit parts ->
      if List.length parts <> n then
        invalid_arg "System.add_item: need one fragment per site";
      if Value.pi parts <> total then invalid_arg "System.add_item: fragments must sum to total";
      if not (Value.valid_multiset parts) then
        invalid_arg "System.add_item: negative fragment";
      parts
  in
  List.iteri (fun i v -> Site.install_fragment t.sites.(i) ~item v) fragments;
  Hashtbl.replace t.expected item total;
  t.item_list := item :: !(t.item_list)

(* Track committed deltas so the conservation check knows the current
   expected aggregate. *)
let wrap_delta t ops on_done result =
  (match result with
  | Site.Committed _ ->
    List.iter
      (fun (item, op) ->
        match Hashtbl.find_opt t.expected item with
        | Some total -> Hashtbl.replace t.expected item (total + Op.delta op)
        | None -> ())
      ops
  | Site.Aborted _ -> ());
  on_done result

(* One attempt of a request, whatever its kind, reported as a Txn.outcome. *)
let exec_once t (req : Txn.t) on_result =
  match req.Txn.kind with
  | Txn.Update ->
    Site.submit t.sites.(req.Txn.site) ~ops:req.Txn.ops
      ~on_done:
        (wrap_delta t req.Txn.ops (fun r ->
             on_result
               (match r with
               | Site.Committed _ -> Txn.Committed { reads = [] }
               | Site.Aborted reason -> Txn.Aborted reason)))
  | Txn.Read item ->
    Site.submit_read t.sites.(req.Txn.site) ~item ~on_done:(fun r ->
        on_result
          (match r with
          | Site.Committed { read_value = Some v } -> Txn.Committed { reads = [ (item, v) ] }
          | Site.Committed { read_value = None } -> Txn.Committed { reads = [] }
          | Site.Aborted reason -> Txn.Aborted reason))
  | Txn.Snapshot items ->
    Site.submit_read_many t.sites.(req.Txn.site) ~items ~on_done:(fun r ->
        on_result
          (match r with
          | Ok reads -> Txn.Committed { reads }
          | Error reason -> Txn.Aborted reason))

let exec t (req : Txn.t) ~on_done =
  match req.Txn.retry with
  | None -> exec_once t req on_done
  | Some { Txn.retries; backoff } ->
    (* Each retry is a fresh transaction with a fresh, higher timestamp. *)
    let rec attempt k =
      exec_once t req (fun result ->
          match result with
          | Txn.Committed _ -> on_done result
          | Txn.Aborted _ when k < retries ->
            ignore
              (Substrate.schedule t.sub
                 ~delay:(backoff *. float_of_int (k + 1))
                 (fun () -> attempt (k + 1)))
          | Txn.Aborted _ -> on_done result)
    in
    attempt 0

(* -------------------------------------------------------------- faults *)

let partition t groups = Network.set_partition t.net groups

let heal t = Network.heal_partition t.net

let crash_site t i =
  Network.set_site_up t.net i false;
  Site.crash t.sites.(i);
  (* The crashed site's own detector must not condemn the whole world while
     it cannot hear anyone. *)
  if t.detectors <> [||] then Health.pause t.detectors.(i)

let recover_site t i =
  if not t.dead_forever.(i) then begin
    Network.set_site_up t.net i true;
    Site.recover t.sites.(i);
    t.evacuated.(i) <- false;
    if t.detectors <> [||] then begin
      (* Resume this site's own view with fresh deadlines, and re-open its
         breakers toward peers it still distrusts (resume revives Suspected
         verdicts, Condemned ones stay until reinstated below won't apply). *)
      Health.resume t.detectors.(i);
      let vm = Site.vm t.sites.(i) in
      Array.iteri
        (fun peer st -> if st <> Health.Up then Vm.park vm ~dst:peer)
        (Health.states t.detectors.(i));
      (* Tell the survivors: a returning site is alive again.  Reinstating a
         Condemned or Suspected verdict fires the Up transition, which
         unparks the peer's outbox toward [i] and marks the backlog due —
         retransmission resumes within one window. *)
      Array.iteri
        (fun p det ->
          if p <> i && Site.is_up t.sites.(p) then
            match Health.state det i with
            | Health.Up -> ()
            | Health.Suspected -> Health.note_alive det ~peer:i
            | Health.Condemned -> Health.reinstate det ~peer:i)
        t.detectors
    end
  end

let kill_forever t i =
  t.dead_forever.(i) <- true;
  crash_site t i

let site_up t i = Site.is_up t.sites.(i)

let set_all_links t params = Network.set_all_links t.net params

let inject_wal_fault t i fault = Site.inject_wal_fault t.sites.(i) fault

let checkpoint_site t i = Site.checkpoint t.sites.(i)

let detector t i = if t.detectors = [||] then None else Some t.detectors.(i)

let health_state t ~observer ~peer =
  if t.detectors = [||] then Health.Up else Health.state t.detectors.(observer) peer

let evacuated t i = t.evacuated.(i)

let dead_forever t i = t.dead_forever.(i)

(* --------------------------------------------------------- observation *)

let fragments t ~item =
  Array.map
    (fun s -> if Site.is_up s then Site.fragment s ~item else Site.stable_fragment s ~item)
    t.sites

let total_at_sites t ~item = Array.fold_left ( + ) 0 (fragments t ~item)

let in_flight t ~item =
  let n = Array.length t.sites in
  let total = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        (* A Vm is in flight iff its sender logged the creation and its
           receiver has not logged the acceptance. *)
        let accepted = Site.stable_accepted_upto t.sites.(dst) ~peer:src in
        List.iter
          (fun (seq, it, amount) -> if it = item && seq > accepted then total := !total + amount)
          (Site.stable_outstanding_to t.sites.(src) ~dst)
      end
    done
  done;
  !total

let expected_total t ~item =
  match Hashtbl.find_opt t.expected item with
  | Some v -> v
  | None -> invalid_arg "System.expected_total: unknown item"

let conserved t ~item = total_at_sites t ~item + in_flight t ~item = expected_total t ~item

let conserved_all t = List.for_all (fun item -> conserved t ~item) (items t)

let checkpoint_all t =
  Array.iter (fun s -> if Site.is_up s then Site.checkpoint s) t.sites

let start_periodic_checkpoints t ~every =
  let rec tick () =
    checkpoint_all t;
    ignore (Substrate.schedule t.sub ~delay:every tick)
  in
  ignore (Substrate.schedule t.sub ~delay:every tick)

let recalibrate_expected t =
  List.iter
    (fun item -> Hashtbl.replace t.expected item (total_at_sites t ~item + in_flight t ~item))
    (items t)

let stable_log_length t =
  Array.fold_left (fun acc s -> acc + Dvp_storage.Wal.stable_length (Site.wal s)) 0 t.sites

let metrics t =
  let m =
    Array.fold_left
      (fun acc s -> Metrics.merge acc (Site.metrics s))
      (Metrics.create ()) t.sites
  in
  let stats = Network.stats t.net in
  Metrics.add_messages m stats.Network.sent;
  Metrics.add_drops m ~loss:stats.Network.dropped_loss
    ~partition:stats.Network.dropped_partition ~down:stats.Network.dropped_down
    ~inflight:stats.Network.dropped_inflight;
  (match t.bcast with
  | Some b -> Metrics.add_messages m (Broadcast.messages_sent b)
  | None -> ());
  Array.iter
    (fun s -> Metrics.add_log_forces m (Dvp_storage.Wal.forces (Site.wal s)))
    t.sites;
  (match t.trace with
  | Some tr -> Metrics.set_trace_dropped m (Dvp_sim.Trace.drop_count tr)
  | None -> ());
  m

(* --------------------------------------------------------------- probes *)

module Json = Dvp_util.Json

type probe_sample = {
  fragments : (Ids.item * int array) list;
  in_flight : (Ids.item * int) list;
  active_txns : int;
  log_length : int;
}

let probe_sample t =
  let its = items t in
  {
    fragments = List.map (fun item -> (item, fragments t ~item)) its;
    in_flight = List.map (fun item -> (item, in_flight t ~item)) its;
    active_txns =
      Array.fold_left
        (fun acc s -> if Site.is_up s then acc + Site.active_txns s else acc)
        0 t.sites;
    log_length = stable_log_length t;
  }

let start_probe t ~every =
  Dvp_sim.Probe.start t.engine ~period:every ~sample:(fun _ -> probe_sample t)

let probe_sample_to_json s =
  Json.Obj
    [
      ( "fragments",
        Json.Obj
          (List.map
             (fun (item, frags) ->
               ( string_of_int item,
                 Json.List (Array.to_list (Array.map (fun v -> Json.Int v) frags)) ))
             s.fragments) );
      ( "in_flight",
        Json.Obj
          (List.map (fun (item, v) -> (string_of_int item, Json.Int v)) s.in_flight) );
      ("active_txns", Json.Int s.active_txns);
      ("log_length", Json.Int s.log_length);
    ]

let probe_series_to_json p =
  Json.Obj
    [
      ("period", Json.Float (Dvp_sim.Probe.period p));
      ( "samples",
        Json.List
          (List.map
             (fun (time, s) ->
               match probe_sample_to_json s with
               | Json.Obj fields -> Json.Obj (("time", Json.Float time) :: fields)
               | j -> j)
             (Dvp_sim.Probe.series p)) );
    ]
