(* Membership state of a site slot.

   A [System] is created with [capacity] slots of which the first [n] start
   as members; the rest start [Detached] (powered off, ineligible for
   routing, workload, and health verdicts).  Slots move through

     Detached --join--> Joining --seeded--> Member
     Member --leave--> Leaving --drained--> Detached

   Every completed transition bumps the system-wide membership epoch, which
   is stamped into every Vm wire message at transmit time; receivers reject
   messages from a stale epoch so fragments shipped under an old membership
   view are retransmitted (with a fresh stamp) rather than double-counted. *)

type state = Detached | Joining | Member | Leaving

let to_string = function
  | Detached -> "detached"
  | Joining -> "joining"
  | Member -> "member"
  | Leaving -> "leaving"

let active = function Detached -> false | Joining | Member | Leaving -> true
