type t = { sys : System.t; value_item : Ids.item; headroom_item : Ids.item; cap : int }

let create sys ~value_item ~headroom_item ~cap ?initial () =
  if cap < 0 then invalid_arg "Capped.create: negative cap";
  let initial = match initial with Some i -> i | None -> cap / 2 in
  if initial < 0 || initial > cap then invalid_arg "Capped.create: initial out of range";
  System.add_item sys ~item:value_item ~total:initial ();
  System.add_item sys ~item:headroom_item ~total:(cap - initial) ();
  { sys; value_item; headroom_item; cap }

let cap t = t.cap

let decr t ~site ~amount ~on_done =
  System.exec t.sys
    (Txn.write ~site [ (t.value_item, Op.Decr amount); (t.headroom_item, Op.Incr amount) ])
    ~on_done:(fun o -> on_done (Txn.to_result o))

let incr t ~site ~amount ~on_done =
  System.exec t.sys
    (Txn.write ~site [ (t.value_item, Op.Incr amount); (t.headroom_item, Op.Decr amount) ])
    ~on_done:(fun o -> on_done (Txn.to_result o))

let read t ~site ~on_done =
  System.exec t.sys (Txn.read ~site t.value_item) ~on_done:(fun o -> on_done (Txn.to_result o))

let expected_value t = System.expected_total t.sys ~item:t.value_item

let invariant t =
  let total item = System.total_at_sites t.sys ~item + System.in_flight t.sys ~item in
  total t.value_item + total t.headroom_item = t.cap
  && System.conserved t.sys ~item:t.value_item
  && System.conserved t.sys ~item:t.headroom_item
