(** A DvP site: the per-site transaction executor (Sections 3, 5, 6, 7).

    Each site owns its quota fragments (a {!Dvp_storage.Local_db.t}), an
    exclusive lock table, a stable log, a {!Vm} engine, and a Lamport clock.
    Transactions execute entirely here:

    + lock all local data values atomically;
    + for each item whose local fragment is inadequate, send requests to
      remote sites (per {!Config.request_policy}) and start a timeout;
    + await replies as Vm — a timeout aborts the transaction;
    + apply the partitionable operators;
    + force the commit log record (the commit point — no rollback exists);
    + update the local database and log that fact;
    + release all locks.

    Incoming requests from other sites are honored or ignored per Section 5
    and the concurrency-control mode: under {!Config.Conc1} a request is
    ignored if the value is locked or the timestamp gate fails; under
    {!Config.Conc2} it waits in a FIFO queue for the lock.

    The site never detects remote failures: a silent peer simply means
    timeouts and aborts — the non-blocking property. *)

type t

(** Outcome delivered to the submitter. *)
type txn_result =
  | Committed of { read_value : int option }
      (** [read_value] is the full item value for drain reads, [None]
          otherwise *)
  | Aborted of Metrics.abort_reason

val create :
  Dvp_substrate.Substrate.t ->
  self:Ids.site ->
  n:int ->
  send:(dst:Ids.site -> Proto.t -> unit) ->
  config:Config.t ->
  rng:Dvp_util.Rng.t ->
  ?trace:Dvp_sim.Trace.t ->
  ?on_inflight:(Ids.item -> int -> unit) ->
  unit ->
  t
(** [on_inflight] is forwarded to {!Vm.create}: called with [+amount] on each
    [Vm_create] forced here and [-amount] on each [Vm_accept] — the system
    layer's incremental in-flight ledger. *)

val set_broadcast : t -> (Proto.t list -> unit) -> unit
(** Conc2 transport: how a transaction's request set leaves the site as one
    totally-ordered broadcast.  Unused under Conc1. *)

val set_health_view : t -> (Ids.site -> Dvp_health.Health.state) -> unit
(** Wire the failure detector's verdict into request routing (degraded-mode
    operation): [Ask] strategies only target peers judged [Up], spreading a
    dead site's share of a shortfall across healthy ones, and drain reads
    stop waiting for [Condemned] peers (whose fragments are evacuation
    property).  Without this, every peer is presumed [Up] — the paper's
    original fault model. *)

val set_membership_view : t -> (Ids.site -> Membership.state) -> unit
(** Wire the system's membership view into routing and admission (elastic
    membership): [Ask] strategies only target full [Member] peers (a
    [Joining] site is unseeded, a [Leaving] one is shedding), drains wait on
    everyone except [Detached] slots, the proactive daemon only pushes to
    members, and a site that is not itself a [Member] refuses new
    transactions with [Not_member].  Without this, every slot is presumed a
    permanent [Member] — the paper's fixed site set. *)

val set_epoch_view : t -> (unit -> int) -> unit
(** Wire the system-wide membership epoch in.  It is stamped into every
    outgoing Vm wire message at transmit time, and incoming Vm messages
    carrying an older stamp are rejected (no credit, no ack) — see
    {!Vm.reset_channel}.  Without this the epoch is constantly 0. *)

val member_state : t -> Ids.site -> Membership.state
(** This site's view of a peer's membership ([Member] when no view wired). *)

val current_epoch : t -> int

val self : t -> Ids.site

val config : t -> Config.t

val is_up : t -> bool

(** {2 Data placement} *)

val install_fragment : t -> item:Ids.item -> int -> unit
(** Give this site an initial quota of an item.  Logged (as a [Txn_commit]
    with the zero timestamp) so recovery can rebuild it. *)

val fragment : t -> item:Ids.item -> int

val items : t -> Ids.item list

val committed_delta : t -> item:Ids.item -> int
(** Cumulative committed operator delta on [item] at this site since
    creation (Σ {!Dvp_core.Op.delta} over the ops of every committed
    transaction).  One term of the per-site conservation ledger:
    [fragment = installed + value_received + committed_delta - value_sent]
    holds at every instant of the site's serial execution — the identity
    the runtime's conservation watchdog folds across a consistent cut. *)

val value_sent : t -> item:Ids.item -> int
(** The Vm layer's cumulative shipped value ({!Dvp_core.Vm.value_sent}). *)

val value_received : t -> item:Ids.item -> int
(** The Vm layer's cumulative accepted value
    ({!Dvp_core.Vm.value_received}). *)

(** {2 Transactions} *)

val submit :
  t -> ops:(Ids.item * Op.t) list -> on_done:(txn_result -> unit) -> unit
(** Run a general transaction at this site.  [on_done] fires exactly once —
    possibly synchronously (write-only transactions and transactions whose
    local fragments suffice commit without waiting). *)

val submit_read : t -> item:Ids.item -> on_done:(txn_result -> unit) -> unit
(** A read in the traditional sense: drain every other site's fragment here
    (Section 5's read requests), succeed only when all of Π⁻¹(d) has been
    gathered. *)

val submit_read_many :
  t ->
  items:Ids.item list ->
  on_done:(((Ids.item * int) list, Metrics.abort_reason) result -> unit) ->
  unit
(** Read several items in one transaction (all drained here, all locked for
    the duration): an atomic multi-item snapshot. *)

val active_txns : t -> int

val push_value : t -> dst:Ids.site -> item:Ids.item -> amount:int -> bool
(** Explicit redistribution (an Rds transaction): debit the local fragment
    and ship [amount] to [dst] as a virtual message.  Returns [false]
    without side effects if the item is locked, the fragment is smaller
    than [amount], or the site is down.  Used by the proactive daemon and
    the hybrid mode manager. *)

(** {2 Message plumbing} *)

val handle_message : t -> src:Ids.site -> Proto.t -> unit
(** Network receive handler (wired by [System]). *)

val handle_broadcast : t -> src:Ids.site -> Proto.t list -> unit
(** Conc2 totally-ordered request delivery. *)

(** {2 Failure and recovery (Section 7)} *)

val crash : t -> unit
(** Lose all volatile state.  In-progress transactions at this site abort
    with [Crashed]; stable log survives. *)

val recover : t -> unit
(** Independent recovery: rebuild the database and Vm state from the local
    stable log, release (forget) all locks, resume.  Sends no messages. *)

val checkpoint : t -> unit
(** Force a snapshot record (fragments + full Vm state, including
    outstanding virtual messages) and truncate the log before it — Section
    7's mechanism for bounding the redo work.  A no-op while crashed. *)

val inject_wal_fault : t -> Dvp_storage.Wal.fault -> unit
(** Arm a storage fault on this site's log: the next {!crash} tears or
    corrupts the unforced buffer's flush (see {!Dvp_storage.Wal.fault}).
    Emits a [Storage_fault] trace event; the matching [Wal_repair] event
    appears when {!recover} truncates the resulting bad tail. *)

(** {2 Introspection} *)

val metrics : t -> Metrics.t

val wal : t -> Log_event.t Dvp_storage.Wal.t

val vm : t -> Vm.t

val clock : t -> Ids.Clock.t

val locked : t -> item:Ids.item -> bool

val timestamp_of : t -> item:Ids.item -> Ids.ts

(** {2 Stable-state oracles (for invariant checking and tests)}

    These replay the stable log into scratch structures without touching the
    live site, so the conservation invariant can be evaluated even while the
    site is crashed.  The replayed views are cached against the WAL's
    stable-contents version ({!Dvp_storage.Wal.version}), so repeated oracle
    calls over a quiet log replay it at most once. *)

val stable_vm_view : t -> Log_replay.vm_view
(** The site's full replayed Vm view (cached).  The system-wide in-flight
    oracle folds one of these per site instead of one per (src, dst) pair. *)

val stable_fragment : t -> item:Ids.item -> int

val stable_accepted_upto : t -> peer:Ids.site -> int

val stable_outstanding_to :
  t -> dst:Ids.site -> (int * Ids.item * int) list
(** (seq, item, amount) of Vm created, minus those known accepted via logged
    ack progress; ascending seq. *)
