(** Transaction requests: the single submission surface of {!System.exec}.

    A request bundles everything the four legacy entry points ([submit],
    [submit_read], [submit_read_many], [submit_retrying]) took separately:
    the home site, the kind of transaction, its operations, and an optional
    client-side retry policy.  Build one with {!write}, {!read} or
    {!snapshot}, optionally wrap it with {!with_retry}, and hand it to
    [System.exec]. *)

type retry_policy = { retries : int; backoff : float }
(** Resubmit an aborted request as a fresh transaction (fresh, higher
    timestamp) after [backoff * attempt] seconds, up to [retries] times —
    Section 8's livelock-avoidance mechanism. *)

type kind =
  | Update  (** apply partitionable operators; commits return no values *)
  | Read of Ids.item  (** drain read of one item's full value *)
  | Snapshot of Ids.item list  (** atomic multi-item drain read *)

type t = {
  site : Ids.site;  (** where the transaction executes *)
  kind : kind;
  ops : (Ids.item * Op.t) list;  (** empty for reads *)
  retry : retry_policy option;
}

val write : site:Ids.site -> (Ids.item * Op.t) list -> t

val read : site:Ids.site -> Ids.item -> t

val snapshot : site:Ids.site -> Ids.item list -> t

val with_retry : ?retries:int -> ?backoff:float -> t -> t
(** Defaults: 3 retries, 0.2 s backoff — the values [submit_retrying]
    used. *)

(** The request's result.  [reads] carries the drained values for [Read]
    (one pair) and [Snapshot] (one per item); it is empty for [Update]. *)
type outcome =
  | Committed of { reads : (Ids.item * int) list }
  | Aborted of Metrics.abort_reason

val committed : outcome -> bool

(** {2 Legacy conversions} — used by the deprecated [System] wrappers. *)

val to_result : outcome -> Site.txn_result
(** [Committed { reads = [(_, v)] }] becomes
    [Site.Committed { read_value = Some v }]; any other read shape maps to
    [read_value = None]. *)

val to_reads : outcome -> ((Ids.item * int) list, Metrics.abort_reason) result

val pp_outcome : Format.formatter -> outcome -> unit
