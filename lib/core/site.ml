module Substrate = Dvp_substrate.Substrate
module Trace = Dvp_sim.Trace
module Wal = Dvp_storage.Wal
module Db = Dvp_storage.Local_db

type txn_result = Committed of { read_value : int option } | Aborted of Metrics.abort_reason

type txn_kind = General | Drain_read of Ids.item list

type live_txn = {
  id : Ids.txn;
  kind : txn_kind;
  ops : (Ids.item * Op.t) list;
  started : float;
  mutable lock_time : float option; (* when the local locks were acquired *)
  mutable timer : Substrate.timer option;
  mutable awaiting : bool; (* in the redistribution (steps 2-3) phase *)
  drain_heard : (Ids.item * Ids.site, unit) Hashtbl.t;
  mutable drain_expect : int;
      (* peers expected to answer each drain, snapshot at request time — a
         peer condemned mid-drain still counts (the txn times out), but one
         condemned *before* is excluded so drains complete without it *)
  on_done : txn_result -> unit;
  mutable finished : bool;
}

type t = {
  sub : Substrate.t;
  self : Ids.site;
  n : int;
  send : dst:Ids.site -> Proto.t -> unit;
  mutable broadcast : (Proto.t list -> unit) option;
  cfg : Config.t;
  rng : Dvp_util.Rng.t;
  trace : Trace.t option;
  wal : Log_event.t Wal.t;
  db : Db.t;
  locks : Lock_table.t;
  clock : Ids.Clock.t;
  metrics : Metrics.t;
  mutable vm : Vm.t option;
  live : (Ids.txn, live_txn) Hashtbl.t;
  (* Transactions credited by a Vm acceptance during the current message
     dispatch; their completion check runs after the Vm layer has logged the
     acceptance, keeping the stable log in causal order. *)
  mutable pending_progress : Ids.txn list;
  (* item -> (asker site -> time of last request); feeds the proactive
     redistribution daemon *)
  askers : (Ids.item, (Ids.site, float) Hashtbl.t) Hashtbl.t;
  mutable up : bool;
  (* The failure detector's verdict on each peer, wired by the system layer;
     [None] = no detector, everyone presumed Up (the paper's fault model). *)
  mutable health : (Ids.site -> Dvp_health.Health.state) option;
  (* The membership view, wired by the system layer; [None] = the paper's
     fixed site set, everyone a Member forever. *)
  mutable membership : (Ids.site -> Membership.state) option;
  (* The current membership epoch, wired by the system layer; [None] = no
     elastic membership, epoch constantly 0. *)
  mutable epoch_view : (unit -> int) option;
  (* Cumulative committed operator delta per item, maintained at the commit
     point.  Together with the Vm layer's cumulative shipped/accepted value
     it gives each site an instantaneous local conservation identity
     (fragment = installed + received + delta - sent), which the runtime's
     watchdog folds across a consistent cut. *)
  cum_delta : (Ids.item, int) Hashtbl.t;
  (* Shared, permanently-empty drain ledger handed to General transactions —
     only Drain_read transactions ever write one, so the common commit path
     allocates no per-txn table. *)
  no_drain : (Ids.item * Ids.site, unit) Hashtbl.t;
  (* Stable-view caches keyed on the WAL's stable-contents version: the
     conservation oracle probes every site's replayed state after each fault,
     and without the cache each probe costs a full log replay per call. *)
  mutable vm_view_cache : (int * Log_replay.vm_view) option;
  mutable db_view_cache : (int * Log_replay.db_view) option;
}

let vm_exn t = match t.vm with Some v -> v | None -> assert false

let tracef t category fmt =
  match t.trace with
  | Some tr -> Trace.recordf tr ~time:(Substrate.now t.sub) ~category fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let emit t ev =
  match t.trace with
  | Some tr -> Trace.emit tr ~time:(Substrate.now t.sub) ev
  | None -> ()

(* ------------------------------------------------------------ accessors *)

let self t = t.self

let config t = t.cfg

let is_up t = t.up

let metrics t = t.metrics

let wal t = t.wal

let vm = vm_exn

let clock t = t.clock

let fragment t ~item = Db.value t.db ~item

let items t = Db.items t.db

let committed_delta t ~item =
  Option.value ~default:0 (Hashtbl.find_opt t.cum_delta item)

let value_sent t ~item = Vm.value_sent (vm_exn t) ~item

let value_received t ~item = Vm.value_received (vm_exn t) ~item

let locked t ~item = Lock_table.is_locked t.locks ~item

let timestamp_of t ~item = Db.timestamp t.db ~item

let active_txns t = Hashtbl.length t.live

let set_broadcast t b = t.broadcast <- Some b

let set_health_view t f = t.health <- Some f

let set_membership_view t f = t.membership <- Some f

let set_epoch_view t f = t.epoch_view <- Some f

let peer_state t peer =
  match t.health with None -> Dvp_health.Health.Up | Some f -> f peer

let member_state t peer =
  match t.membership with None -> Membership.Member | Some f -> f peer

let current_epoch t = match t.epoch_view with None -> 0 | Some f -> f ()

(* Whom to ask for value: only peers the detector calls Up, and only full
   Members — a Joining site has not been seeded yet (asking it yields
   nothing) and a Leaving site is shedding what it has. *)
let ask_candidates t =
  List.filter
    (fun p ->
      p <> t.self
      && peer_state t p = Dvp_health.Health.Up
      && member_state t p = Membership.Member)
    (List.init t.n (fun i -> i))

(* Whom a drain must hear from: everyone not Condemned.  A Suspected peer may
   well be alive and holding value — excluding it would silently misread the
   total — so the drain still waits on it (and times out if it really is
   gone).  A Condemned peer's fragments are evacuation property; its stable
   value is (or will be) zero, so reads complete without it.  Likewise a
   Joining or Leaving site may hold value mid-transfer and must answer, but
   a Detached slot holds nothing by construction. *)
let drain_peers t =
  List.filter
    (fun p ->
      p <> t.self
      && peer_state t p <> Dvp_health.Health.Condemned
      && member_state t p <> Membership.Detached)
    (List.init t.n (fun i -> i))

(* ------------------------------------------------------- Vm integration *)

(* Section 5's acceptance rule.  Returns the new absolute fragment value when
   the credit is applied now; [None] defers (the Vm will be retransmitted). *)
let try_credit t ~peer ~item ~amount ~reply_to =
  match Lock_table.holder t.locks ~item with
  | None ->
    (* An Rds transaction accepts the Vm. *)
    Db.add t.db ~item amount;
    Some (Db.value t.db ~item)
  | Some owner -> (
    match Hashtbl.find_opt t.live owner with
    | Some txn when txn.awaiting ->
      (* The locking transaction is waiting for values: it accepts the Vm
         itself, "without requiring to acquire locks" (Section 5). *)
      Db.add t.db ~item amount;
      (match (txn.kind, reply_to) with
      | Drain_read items, Some r when List.mem item items && Ids.ts_compare r txn.id = 0 ->
        Hashtbl.replace txn.drain_heard (item, peer) ()
      | _ -> ());
      t.pending_progress <- owner :: t.pending_progress;
      Some (Db.value t.db ~item)
    | Some _ | None -> None)

(* ----------------------------------------------------------- completion *)

let release_and_account t txn =
  (match txn.lock_time with
  | Some since ->
    Metrics.lock_held t.metrics (Substrate.now t.sub -. since);
    emit t (Trace.Lock_release { site = t.self; txn = txn.id })
  | None -> ());
  ignore (Lock_table.release_all t.locks ~txn:txn.id)

let finish t txn result =
  if not txn.finished then begin
    txn.finished <- true;
    (match txn.timer with
    | Some h ->
      ignore (Substrate.cancel h);
      txn.timer <- None
    | None -> ());
    Hashtbl.remove t.live txn.id;
    release_and_account t txn;
    let latency = Substrate.now t.sub -. txn.started in
    (match result with
    | Committed _ ->
      Metrics.txn_committed t.metrics ~latency;
      emit t (Trace.Txn_commit { site = t.self; txn = txn.id })
    | Aborted reason ->
      Metrics.txn_aborted t.metrics ~reason ~latency;
      emit t
        (Trace.Txn_abort
           { site = t.self; txn = txn.id; reason = Metrics.abort_reason_label reason }));
    txn.on_done result
  end

(* Transaction steps 4-6: apply the partitionable operators, force the
   commit record (the commit point), update the database, log the
   application. *)
let commit t txn =
  let actions =
    List.map
      (fun (item, op) ->
        match Op.apply op ~fragment:(Db.value t.db ~item) with
        | Some value -> Log_event.Set_fragment { item; value }
        | None ->
          (* Completion only triggers once every operator is effective. *)
          assert false)
      txn.ops
  in
  Wal.append t.wal (Log_event.Txn_commit { txn = txn.id; actions });
  List.iter (Log_event.apply_action t.db) actions;
  List.iter
    (fun (item, op) ->
      let d = Op.delta op in
      if d <> 0 then
        Hashtbl.replace t.cum_delta item
          (d + Option.value ~default:0 (Hashtbl.find_opt t.cum_delta item)))
    txn.ops;
  Wal.append ~forced:false t.wal (Log_event.Txn_applied { txn = txn.id });
  let read_value =
    match txn.kind with
    | Drain_read [ item ] -> Some (Db.value t.db ~item)
    | Drain_read _ | General -> None
  in
  finish t txn (Committed { read_value })

let ops_all_effective t txn =
  List.for_all (fun (item, op) -> Op.effective op ~fragment:(Db.value t.db ~item)) txn.ops

let check_progress t id =
  match Hashtbl.find_opt t.live id with
  | None -> ()
  | Some txn ->
    if txn.awaiting && not txn.finished then begin
      match txn.kind with
      | General -> if ops_all_effective t txn then commit t txn
      | Drain_read items ->
        if Hashtbl.length txn.drain_heard >= txn.drain_expect * List.length items then
          commit t txn
    end

let run_pending_progress t =
  let rec drain () =
    match t.pending_progress with
    | [] -> ()
    | pending ->
      t.pending_progress <- [];
      List.iter (check_progress t) pending;
      drain ()
  in
  drain ()

(* -------------------------------------------------------------- timeout *)

let timeout_abort t id () =
  match Hashtbl.find_opt t.live id with
  | Some txn when not txn.finished ->
    txn.timer <- None;
    finish t txn (Aborted Metrics.Timeout)
  | Some _ | None -> ()

let arm_timeout t txn =
  txn.timer <- Some (Substrate.schedule t.sub ~delay:t.cfg.txn_timeout (timeout_abort t txn.id))

(* ------------------------------------------------------ request sending *)

(* Step 2: fan requests out for every inadequate item.  Returns [false] when
   no request could be sent (single-site system), in which case the caller
   aborts at once rather than waiting for a pointless timeout. *)
let send_requests t txn shortfalls =
  if t.n <= 1 then false
  else
    match t.cfg.cc with
    | Config.Conc2 ->
      (* Conc2 broadcasts the whole request set atomically; every other site
         sees it in the same total order.  The per-site ask follows the
         request policy: equal shares by default, the full shortfall under
         the aggressive policies. *)
      let msgs =
        (* The broadcast still reaches every site; the detector only informs
           the per-site ask — dividing the shortfall by the *healthy* peer
           count keeps the asked total >= the shortfall when some peers are
           out. *)
        let healthy = max 1 (List.length (ask_candidates t)) in
        List.map
          (fun (item, shortfall) ->
            let share =
              match t.cfg.request_policy with
              | Config.Ask_all_split -> (shortfall + healthy - 1) / healthy
              | Config.Ask_all_full | Config.Ask_one_random | Config.Ask_k _ -> shortfall
            in
            (* dst = -1: the request goes to every other site at once. *)
            emit t
              (Trace.Request_sent { site = t.self; dst = -1; txn = txn.id; item; amount = share });
            Proto.Request { txn = txn.id; item; kind = Proto.Need share })
          shortfalls
      in
      (match t.broadcast with
      | Some b -> b msgs
      | None ->
        (* No broadcast transport wired: degrade to direct fan-out. *)
        List.iter
          (fun msg ->
            for dst = 0 to t.n - 1 do
              if dst <> t.self then t.send ~dst msg
            done)
          msgs);
      true
    | Config.Conc1 ->
      let sent = ref false in
      List.iter
        (fun (item, shortfall) ->
          List.iter
            (fun (dst, amount) ->
              sent := true;
              emit t (Trace.Request_sent { site = t.self; dst; txn = txn.id; item; amount });
              t.send ~dst (Proto.Request { txn = txn.id; item; kind = Proto.Need amount }))
            (Config.request_targets_among t.cfg.request_policy ~rng:t.rng ~self:t.self
               ~candidates:(ask_candidates t) ~shortfall))
        shortfalls;
      !sent

let send_drain_requests t txn items =
  let peers = drain_peers t in
  txn.drain_expect <- List.length peers;
  if peers = [] then true (* nothing to gather; trivially complete *)
  else begin
    let msgs =
      List.map (fun item -> Proto.Request { txn = txn.id; item; kind = Proto.Drain }) items
    in
    (match (t.cfg.cc, t.broadcast) with
    | Config.Conc2, Some b -> b msgs
    | _ ->
      List.iter (fun msg -> List.iter (fun dst -> t.send ~dst msg) peers) msgs);
    false
  end

(* -------------------------------------------------------- transactions *)

let current_shortfalls t txn =
  List.filter_map
    (fun (item, op) ->
      let s = Op.shortfall op ~fragment:(Db.value t.db ~item) in
      if s > 0 then Some (item, s) else None)
    txn.ops

(* Section 5's variation: re-send requests for whatever is *still* missing,
   [request_retries] times spread across the timeout window.  Lost requests
   and stingy grants get further chances without extending the timeout. *)
let arm_request_retries t txn =
  let retries = t.cfg.request_retries in
  if retries > 0 then begin
    let gap = t.cfg.txn_timeout /. float_of_int (retries + 1) in
    for k = 1 to retries do
      ignore
        (Substrate.schedule t.sub ~delay:(gap *. float_of_int k) (fun () ->
             if (not txn.finished) && txn.awaiting then begin
               match current_shortfalls t txn with
               | [] -> ()
               | shortfalls -> ignore (send_requests t txn shortfalls)
             end))
    done
  end

(* Steps 2-7 once the local locks are held. *)
let proceed_locked t txn =
  txn.lock_time <- Some (Substrate.now t.sub);
  emit t (Trace.Lock_acquire { site = t.self; txn = txn.id; items = List.map fst txn.ops });
  match txn.kind with
  | General ->
    let shortfalls = current_shortfalls t txn in
    if shortfalls = [] then commit t txn
    else begin
      txn.awaiting <- true;
      if not (send_requests t txn shortfalls) then finish t txn (Aborted Metrics.Timeout)
      else arm_request_retries t txn
    end
  | Drain_read items ->
    txn.awaiting <- true;
    if send_drain_requests t txn items then commit t txn

(* Step 1 under Conc1: atomic lock acquisition with the timestamp gate; any
   delay aborts (the paper's pessimism). *)
let start_conc1 t txn item_list =
  if not (Lock_table.try_acquire_all t.locks ~items:item_list ~txn:txn.id) then
    finish t txn (Aborted Metrics.Lock_busy)
  else if
    not (List.for_all (fun item -> Ids.ts_lt (Db.timestamp t.db ~item) txn.id) item_list)
  then begin
    ignore (Lock_table.release_all t.locks ~txn:txn.id);
    finish t txn (Aborted Metrics.Cc_reject)
  end
  else begin
    (* Locking and timestamp update are one atomic step (Section 6.1). *)
    List.iter (fun item -> Db.set_timestamp t.db ~item txn.id) item_list;
    proceed_locked t txn
  end

(* Step 1 under Conc2: strict 2PL — wait (bounded by the transaction's
   timeout) instead of aborting. *)
let rec start_conc2 t txn item_list =
  if txn.finished then ()
  else if Lock_table.try_acquire_all t.locks ~items:item_list ~txn:txn.id then begin
    List.iter (fun item -> Db.set_timestamp t.db ~item txn.id) item_list;
    proceed_locked t txn
  end
  else begin
    let busy = List.find (fun item -> Lock_table.is_locked t.locks ~item) item_list in
    Lock_table.enqueue_waiter t.locks ~item:busy (fun () ->
        if t.up && not txn.finished then start_conc2 t txn item_list)
  end

let begin_txn t ~kind ~ops ~on_done =
  (* The "standard unique time-stamping mechanism" of Section 6.1: local
     clocks are loosely synchronised (here: derived from simulated time at
     microsecond granularity), with Lamport witnessing on message receipt and
     the site id in the low-order bits.  Without this an idle site's counter
     would lag and all its requests would fail the Conc1 gate at busier
     sites. *)
  Ids.Clock.witness_counter t.clock (int_of_float (Substrate.now t.sub *. 1_000_000.0));
  let id = Ids.Clock.next t.clock in
  let txn =
    {
      id;
      kind;
      ops;
      started = Substrate.now t.sub;
      lock_time = None;
      timer = None;
      awaiting = false;
      drain_heard =
        (match kind with Drain_read _ -> Hashtbl.create 4 | General -> t.no_drain);
      drain_expect = t.n - 1;
      on_done;
      finished = false;
    }
  in
  Hashtbl.replace t.live id txn;
  emit t (Trace.Txn_begin { site = t.self; txn = id; n_ops = List.length ops });
  arm_timeout t txn;
  txn

let submit t ~ops ~on_done =
  if not t.up then on_done (Aborted Metrics.Crashed)
  else if member_state t t.self <> Membership.Member then
    (* A Leaving site refuses new work (it is shedding its fragments); a
       Joining one has no seeded value to serve yet. *)
    on_done (Aborted Metrics.Not_member)
  else begin
    let item_list = List.map fst ops in
    let txn = begin_txn t ~kind:General ~ops ~on_done in
    match t.cfg.cc with
    | Config.Conc1 -> start_conc1 t txn item_list
    | Config.Conc2 -> start_conc2 t txn item_list
  end

let submit_read_many t ~items ~on_done =
  if not t.up then on_done (Error Metrics.Crashed)
  else if member_state t t.self <> Membership.Member then
    on_done (Error Metrics.Not_member)
  else begin
    let ops = List.map (fun item -> (item, Op.Incr 0)) items in
    let wrapped = function
      | Committed _ -> on_done (Ok (List.map (fun item -> (item, Db.value t.db ~item)) items))
      | Aborted reason -> on_done (Error reason)
    in
    let txn = begin_txn t ~kind:(Drain_read items) ~ops ~on_done:wrapped in
    (* A drain cannot represent the full value while the site's own outbound
       Vm on any of the items are unacknowledged. *)
    if List.exists (fun item -> Vm.has_outstanding (vm_exn t) ~item) items then
      finish t txn (Aborted Metrics.Vm_outstanding)
    else
      match t.cfg.cc with
      | Config.Conc1 -> start_conc1 t txn items
      | Config.Conc2 -> start_conc2 t txn items
  end

let submit_read t ~item ~on_done =
  (* The single-item read is the one-element case of the snapshot read,
     reported through the ordinary transaction result. *)
  submit_read_many t ~items:[ item ] ~on_done:(fun result ->
      match result with
      | Ok [ (_, v) ] -> on_done (Committed { read_value = Some v })
      | Ok _ -> assert false
      | Error reason -> on_done (Aborted reason))

(* ------------------------------------------------------ request serving *)

(* The remote side of step 2 (Section 5): an Rds transaction that locks the
   value momentarily, creates a Vm, and updates the database. *)
let honor_request t ~src ~txn_id ~item ~kind =
  let frag = Db.value t.db ~item in
  match kind with
  | Proto.Drain ->
    if Vm.has_outstanding (vm_exn t) ~item then Metrics.request_ignored t.metrics
    else begin
      Db.set_timestamp t.db ~item txn_id;
      Vm.send_value (vm_exn t) ~dst:src ~item ~amount:frag ~reply_to:txn_id ~new_local:0 ();
      Db.set_value t.db ~item 0;
      Metrics.request_honored t.metrics;
      emit t (Trace.Request_honored { site = t.self; src; txn = txn_id; item; amount = frag })
    end
  | Proto.Need requested ->
    let amount = Config.grant_amount t.cfg.grant_policy ~requested ~fragment:frag in
    if amount <= 0 then Metrics.request_ignored t.metrics
    else begin
      Db.set_timestamp t.db ~item txn_id;
      Vm.send_value (vm_exn t) ~dst:src ~item ~amount ~reply_to:txn_id
        ~new_local:(frag - amount) ();
      Db.set_value t.db ~item (frag - amount);
      Metrics.request_honored t.metrics;
      emit t (Trace.Request_honored { site = t.self; src; txn = txn_id; item; amount })
    end

let note_asker t ~src ~item =
  let m =
    match Hashtbl.find_opt t.askers item with
    | Some m -> m
    | None ->
      let m = Hashtbl.create 4 in
      Hashtbl.replace t.askers item m;
      m
  in
  Hashtbl.replace m src (Substrate.now t.sub)

let rec handle_request t ~src ~txn_id ~item ~kind =
  note_asker t ~src ~item;
  match t.cfg.cc with
  | Config.Conc1 ->
    if Lock_table.is_locked t.locks ~item then Metrics.request_ignored t.metrics
    else if not (Ids.ts_lt (Db.timestamp t.db ~item) txn_id) then begin
      (* Timestamp gate: TS(t) > TS(d_j) required (Section 6.1). *)
      Metrics.request_ignored t.metrics;
      emit t
        (Trace.Request_ignored
           {
             site = t.self;
             src;
             txn = txn_id;
             item;
             reason = Format.asprintf "stale request from txn %a" Ids.pp_txn txn_id;
           })
    end
    else honor_request t ~src ~txn_id ~item ~kind
  | Config.Conc2 ->
    if Lock_table.is_locked t.locks ~item then
      (* Strict 2PL: wait for the lock, then re-evaluate. *)
      Lock_table.enqueue_waiter t.locks ~item (fun () ->
          if t.up then handle_request t ~src ~txn_id ~item ~kind)
    else honor_request t ~src ~txn_id ~item ~kind

(* ------------------------------------------------------------ messaging *)

(* Epoch fencing: a Vm-protocol message stamped with an older membership
   epoch is rejected outright — no credit, no ack processing, no ack back.
   After a membership transition resets a channel's watermarks, a stale
   in-flight duplicate (or a stale cumulative ack that would pop fresh
   outbox entries) could otherwise double-count or destroy value.  Nothing
   is lost: the sender retransmits with a fresh stamp. *)
let stale_epoch t ~src ~epoch ~what =
  epoch < current_epoch t
  && begin
       Metrics.vm_stale_epoch t.metrics;
       tracef t "epoch" "rejected stale %s from site %d (epoch %d < %d)" what src epoch
         (current_epoch t);
       true
     end

let handle_message t ~src msg =
  if t.up then begin
    match msg with
    | Proto.Request { txn; item; kind } ->
      Ids.Clock.witness t.clock txn;
      handle_request t ~src ~txn_id:txn ~item ~kind
    | Proto.Vm_data { seq; item; amount; ts_counter; reply_to; ack_upto; epoch } ->
      if not (stale_epoch t ~src ~epoch ~what:"vm_data") then begin
        Ids.Clock.witness_counter t.clock ts_counter;
        Vm.handle_data (vm_exn t) ~src ~seq ~item ~amount ~reply_to ~ack_upto;
        run_pending_progress t
      end
    | Proto.Vm_batch { frags; ts_counter; ack_upto; epoch } ->
      if not (stale_epoch t ~src ~epoch ~what:"vm_batch") then begin
        Ids.Clock.witness_counter t.clock ts_counter;
        Vm.handle_batch (vm_exn t) ~src ~frags ~ack_upto;
        run_pending_progress t
      end
    | Proto.Vm_ack { upto; epoch } ->
      if not (stale_epoch t ~src ~epoch ~what:"vm_ack") then
        Vm.handle_ack (vm_exn t) ~src ~upto
    | Proto.Probe ->
      (* The reply's delivery is the liveness evidence; nothing to log. *)
      t.send ~dst:src Proto.Probe_reply
    | Proto.Probe_reply ->
      (* The network delivery observer already fed the detector. *)
      ()
  end

let handle_broadcast t ~src msgs =
  if t.up && src <> t.self then
    List.iter
      (fun msg ->
        match msg with
        | Proto.Request { txn; item; kind } ->
          Ids.Clock.witness t.clock txn;
          handle_request t ~src ~txn_id:txn ~item ~kind
        | Proto.Vm_data _ | Proto.Vm_batch _ | Proto.Vm_ack _ | Proto.Probe
        | Proto.Probe_reply -> ())
      msgs

(* -------------------------------------------------------- redistribution *)

let push_value t ~dst ~item ~amount =
  if
    t.up && dst <> t.self && amount >= 0
    && (not (Lock_table.is_locked t.locks ~item))
    && Db.value t.db ~item >= amount
  then begin
    let frag = Db.value t.db ~item in
    Vm.send_value (vm_exn t) ~dst ~item ~amount ~new_local:(frag - amount) ();
    Db.set_value t.db ~item (frag - amount);
    true
  end
  else false

(* -------------------------------------------------- proactive sharing *)

(* The demand-following redistribution daemon (Config.proactive): ship part
   of a comfortable surplus to the sites that recently asked for the item,
   ahead of their next shortfall.  Pure redistribution — Rds transactions in
   the paper's terms — so it can never affect any item's value. *)
let proactive_scan t (p : Config.proactive) =
  let now = Substrate.now t.sub in
  Hashtbl.iter
    (fun item m ->
      if (not (Lock_table.is_locked t.locks ~item)) && Db.mem t.db ~item then begin
        let frag = Db.value t.db ~item in
        if frag >= p.Config.min_surplus then begin
          let recent =
            Hashtbl.fold
              (fun site time acc ->
                if
                  now -. time <= p.Config.asker_window
                  && site <> t.self
                  && member_state t site = Membership.Member
                then site :: acc
                else acc)
              m []
            |> List.sort compare
          in
          match recent with
          | [] -> ()
          | _ ->
            let to_share = int_of_float (float_of_int frag *. p.Config.share_fraction) in
            let per = to_share / List.length recent in
            if per > 0 then
              List.iter
                (fun dst ->
                  if push_value t ~dst ~item ~amount:per then
                    tracef t "proactive" "item %d: pushed %d to site %d" item per dst)
                recent
        end
      end)
    t.askers

let start_proactive t p =
  let rec tick () =
    if t.up then proactive_scan t p;
    ignore (Substrate.schedule t.sub ~delay:p.Config.every tick)
  in
  ignore (Substrate.schedule t.sub ~delay:p.Config.every tick)

(* --------------------------------------------------------------- layout *)

let install_fragment t ~item value =
  Wal.append t.wal
    (Log_event.Txn_commit
       { txn = Ids.ts_zero; actions = [ Log_event.Set_fragment { item; value } ] });
  Db.set_value t.db ~item value;
  Wal.append ~forced:false t.wal (Log_event.Txn_applied { txn = Ids.ts_zero })

(* ------------------------------------------------------ crash, recovery *)

let wal_fault_kind = function
  | Wal.Torn _ -> "torn"
  | Wal.Corrupt_tail -> "corrupt-tail"

let inject_wal_fault t fault =
  Wal.inject_fault t.wal fault;
  emit t (Trace.Storage_fault { site = t.self; kind = wal_fault_kind fault })

let crash t =
  if t.up then begin
    t.up <- false;
    let victims = Hashtbl.fold (fun _ txn acc -> txn :: acc) t.live [] in
    List.iter
      (fun txn ->
        (match txn.timer with
        | Some h -> ignore (Substrate.cancel h)
        | None -> ());
        txn.timer <- None;
        if not txn.finished then begin
          txn.finished <- true;
          Metrics.txn_aborted t.metrics ~reason:Metrics.Crashed
            ~latency:(Substrate.now t.sub -. txn.started);
          txn.on_done (Aborted Metrics.Crashed)
        end)
      victims;
    Hashtbl.reset t.live;
    t.pending_progress <- [];
    Lock_table.clear t.locks;
    Db.wipe t.db;
    Hashtbl.reset t.askers;
    Vm.crash (vm_exn t);
    Wal.crash t.wal;
    emit t (Trace.Crash { site = t.self })
  end

(* Independent recovery (Section 7): rebuild everything from the local
   stable log alone. *)
let recover t =
  if not t.up then begin
    let started = Substrate.now t.sub in
    (* A torn or corrupted flush leaves bad records at the stable tail; drop
       them before replaying (and before anything new is appended, or the new
       records would sit invisibly beyond the bad tail).  Torn records were
       never forced, so no externalized effect depended on them. *)
    let dropped = Wal.repair t.wal in
    if dropped > 0 then emit t (Trace.Wal_repair { site = t.self; dropped });
    Db.wipe t.db;
    let view = Log_replay.db_view ~into:t.db t.wal in
    Ids.Clock.reset_to t.clock view.Log_replay.max_counter;
    (* Rebuild the cumulative committed-delta ledger alongside the database:
       commit records are forced, so the replayed sums equal the live
       counters at the moment of the last force, and the conservation cut
       identity (fragment = installed + received + delta - sent) holds again
       the instant the site rejoins. *)
    Hashtbl.reset t.cum_delta;
    Hashtbl.iter (fun item d -> Hashtbl.replace t.cum_delta item d)
      view.Log_replay.deltas;
    Vm.recover (vm_exn t);
    t.up <- true;
    (* Independent recovery: zero messages to other sites (Section 7). *)
    Metrics.recovery_event t.metrics ~messages:0 ~redo:view.Log_replay.redo
      ~duration:(Substrate.now t.sub -. started);
    emit t (Trace.Recover { site = t.self; redo = view.Log_replay.redo })
  end

(* Section 7's checkpointing: force one snapshot record carrying the
   database fragments and the full Vm state (including outstanding virtual
   messages, so truncation can never lose one), then drop the log prefix. *)
let checkpoint t =
  if t.up then begin
    let fragments = List.map (fun item -> (item, Db.value t.db ~item)) (Db.items t.db) in
    let record =
      Vm.snapshot (vm_exn t) ~fragments ~max_counter:(Ids.Clock.current_counter t.clock)
    in
    Wal.append t.wal record;
    Wal.truncate_before t.wal ~keep_from:(Wal.end_index t.wal - 1);
    emit t (Trace.Checkpoint { site = t.self; log_length = Wal.stable_length t.wal })
  end

(* ------------------------------------------------- stable-state oracles *)

(* The oracles below replay the stable log, which the invariant checker does
   for every site after every fault — and, pairwise, for every (src, dst)
   edge.  Both views are cached against the WAL's stable-contents version,
   so a burst of oracle calls over a quiet log replays it at most once. *)

let stable_vm_view t =
  let v = Wal.version t.wal in
  match t.vm_view_cache with
  | Some (v', view) when v' = v -> view
  | _ ->
    let view = Log_replay.vm_view ~n:t.n t.wal in
    t.vm_view_cache <- Some (v, view);
    view

let stable_db_view t =
  let v = Wal.version t.wal in
  match t.db_view_cache with
  | Some (v', view) when v' = v -> view
  | _ ->
    let view = Log_replay.db_view t.wal in
    t.db_view_cache <- Some (v, view);
    view

let stable_fragment t ~item = Db.value (stable_db_view t).Log_replay.db ~item

let stable_accepted_upto t ~peer = (stable_vm_view t).Log_replay.vm_accepted.(peer)

let stable_outstanding_to t ~dst =
  let view = stable_vm_view t in
  Hashtbl.fold
    (fun (d, seq) o acc ->
      if d = dst then (seq, o.Log_replay.item, o.Log_replay.amount) :: acc else acc)
    view.Log_replay.vm_outbox []
  |> List.sort compare

(* --------------------------------------------------------------- create *)

let create sub ~self ~n ~send ~config ~rng ?trace ?on_inflight () =
  (* No explicit sink: inherit the substrate's (the runtime installs each
     domain's trace shard there, so wall-mode sites emit unchanged). *)
  let trace = match trace with Some _ -> trace | None -> Substrate.trace sub in
  let t =
    {
      sub;
      self;
      n;
      send;
      broadcast = None;
      cfg = config;
      rng;
      trace;
      wal = Wal.create ();
      db = Db.create ();
      locks = Lock_table.create ();
      clock = Ids.Clock.create self;
      metrics = Metrics.create ();
      vm = None;
      live = Hashtbl.create 16;
      pending_progress = [];
      askers = Hashtbl.create 8;
      up = true;
      health = None;
      membership = None;
      epoch_view = None;
      cum_delta = Hashtbl.create 8;
      no_drain = Hashtbl.create 1;
      vm_view_cache = None;
      db_view_cache = None;
    }
  in
  let vm =
    Vm.create sub ~n ~self ~wal:t.wal ~send
      ~try_credit:(fun ~peer ~item ~amount ~reply_to -> try_credit t ~peer ~item ~amount ~reply_to)
      ~ts_counter:(fun () -> Ids.Clock.current_counter t.clock)
      ~epoch:(fun () -> current_epoch t)
      ~metrics:t.metrics ?trace
      ~retransmit_every:config.Config.transport.Config.Transport.vm_retransmit
      ~ack_delay:config.Config.transport.Config.Transport.ack_delay
      ~batch:config.Config.transport.Config.Transport.vm_batch
      ~backoff_mult:config.Config.transport.Config.Transport.vm_backoff_mult
      ~backoff_max:config.Config.transport.Config.Transport.vm_backoff_max
      ~rng:(Dvp_util.Rng.split t.rng) ~outbox_warn:config.Config.vm_outbox_warn
      ?on_inflight ()
  in
  t.vm <- Some vm;
  Vm.start vm;
  (match config.Config.proactive with Some p -> start_proactive t p | None -> ());
  t
