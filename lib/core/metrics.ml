module Dstats = Dvp_util.Dstats

type abort_reason =
  | Lock_busy
  | Cc_reject
  | Timeout
  | Vm_outstanding
  | Crashed
  | Ineffective
  | Deadlock
  | No_quorum
  | Blocked_failure
  | Not_member

let abort_reason_label = function
  | Lock_busy -> "lock-busy"
  | Cc_reject -> "cc-reject"
  | Timeout -> "timeout"
  | Vm_outstanding -> "vm-outstanding"
  | Crashed -> "crashed"
  | Ineffective -> "ineffective"
  | Deadlock -> "deadlock"
  | No_quorum -> "no-quorum"
  | Blocked_failure -> "blocked-failure"
  | Not_member -> "not-member"

let all_abort_reasons =
  [
    Lock_busy;
    Cc_reject;
    Timeout;
    Vm_outstanding;
    Crashed;
    Ineffective;
    Deadlock;
    No_quorum;
    Blocked_failure;
    Not_member;
  ]

type t = {
  mutable committed : int;
  mutable aborted : int;
  reasons : (abort_reason, int) Hashtbl.t;
  latencies : Dstats.Sample.s;
  lock_holds : Dstats.Sample.s;
  mutable max_lock_hold : float;
  mutable max_blocked : float;
  mutable total_blocked : float;
  mutable blocked_episodes : int;
  mutable vm_created : int;
  mutable vm_created_amount : int;
  mutable vm_accepted : int;
  mutable vm_accepted_amount : int;
  mutable vm_retrans : int;
  mutable vm_dups : int;
  mutable vm_stale : int;
  mutable req_honored : int;
  mutable req_ignored : int;
  mutable recoveries : int;
  mutable recovery_msgs : int;
  mutable recovery_redo : int;
  mutable recovery_time : float;
  mutable messages : int;
  mutable log_forces : int;
  mutable drops_loss : int;
  mutable drops_partition : int;
  mutable drops_down : int;
  mutable drops_inflight : int;
  mutable trace_dropped : int;
  mutable storage_force_errors : int;
}

let create () =
  {
    committed = 0;
    aborted = 0;
    reasons = Hashtbl.create 8;
    latencies = Dstats.Sample.create ();
    lock_holds = Dstats.Sample.create ();
    max_lock_hold = 0.0;
    max_blocked = 0.0;
    total_blocked = 0.0;
    blocked_episodes = 0;
    vm_created = 0;
    vm_created_amount = 0;
    vm_accepted = 0;
    vm_accepted_amount = 0;
    vm_retrans = 0;
    vm_dups = 0;
    vm_stale = 0;
    req_honored = 0;
    req_ignored = 0;
    recoveries = 0;
    recovery_msgs = 0;
    recovery_redo = 0;
    recovery_time = 0.0;
    messages = 0;
    log_forces = 0;
    drops_loss = 0;
    drops_partition = 0;
    drops_down = 0;
    drops_inflight = 0;
    trace_dropped = 0;
    storage_force_errors = 0;
  }

let txn_committed t ~latency =
  t.committed <- t.committed + 1;
  Dstats.Sample.add t.latencies latency

let txn_aborted t ~reason ~latency =
  t.aborted <- t.aborted + 1;
  ignore latency;
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.reasons reason) in
  Hashtbl.replace t.reasons reason (cur + 1)

let lock_held t d =
  Dstats.Sample.add t.lock_holds d;
  if d > t.max_lock_hold then t.max_lock_hold <- d

let blocked_episode t d =
  t.blocked_episodes <- t.blocked_episodes + 1;
  t.total_blocked <- t.total_blocked +. d;
  if d > t.max_blocked then t.max_blocked <- d

let vm_created t ~amount =
  t.vm_created <- t.vm_created + 1;
  t.vm_created_amount <- t.vm_created_amount + amount

let vm_accepted t ~amount =
  t.vm_accepted <- t.vm_accepted + 1;
  t.vm_accepted_amount <- t.vm_accepted_amount + amount

let vm_retransmitted t = t.vm_retrans <- t.vm_retrans + 1

let vm_duplicate_discarded t = t.vm_dups <- t.vm_dups + 1

let vm_stale_epoch t = t.vm_stale <- t.vm_stale + 1

let request_honored t = t.req_honored <- t.req_honored + 1

let request_ignored t = t.req_ignored <- t.req_ignored + 1

let recovery_event t ~messages ~redo ~duration =
  t.recoveries <- t.recoveries + 1;
  t.recovery_msgs <- t.recovery_msgs + messages;
  t.recovery_redo <- t.recovery_redo + redo;
  t.recovery_time <- t.recovery_time +. duration

let add_messages t n = t.messages <- t.messages + n

let add_log_forces t n = t.log_forces <- t.log_forces + n

let add_drops t ~loss ~partition ~down ~inflight =
  t.drops_loss <- t.drops_loss + loss;
  t.drops_partition <- t.drops_partition + partition;
  t.drops_down <- t.drops_down + down;
  t.drops_inflight <- t.drops_inflight + inflight

let storage_force_error t = t.storage_force_errors <- t.storage_force_errors + 1

let storage_force_errors t = t.storage_force_errors

let set_trace_dropped t n = t.trace_dropped <- n

let trace_dropped t = t.trace_dropped

let drops_loss t = t.drops_loss

let drops_partition t = t.drops_partition

let drops_down t = t.drops_down

let drops_inflight t = t.drops_inflight

let drops_total t = t.drops_loss + t.drops_partition + t.drops_down + t.drops_inflight

let committed t = t.committed

let aborted t = t.aborted

let aborted_by t reason = Option.value ~default:0 (Hashtbl.find_opt t.reasons reason)

let submitted t = t.committed + t.aborted

let commit_ratio t =
  let n = submitted t in
  if n = 0 then nan else float_of_int t.committed /. float_of_int n

let latency_p50 t = Dstats.Sample.percentile t.latencies 50.0

let latency_p90 t = Dstats.Sample.percentile t.latencies 90.0

let latency_p99 t = Dstats.Sample.percentile t.latencies 99.0

let latency_max t = Dstats.Sample.max_value t.latencies

let latency_mean t = Dstats.Sample.mean t.latencies

let latency_samples t = Dstats.Sample.to_array t.latencies

let max_lock_hold t = t.max_lock_hold

let max_blocked t = t.max_blocked

let total_blocked_time t = t.total_blocked

let vm_created_count t = t.vm_created

let vm_accepted_count t = t.vm_accepted

let vm_retransmissions t = t.vm_retrans

let vm_duplicates t = t.vm_dups

let vm_stale_epochs t = t.vm_stale

let requests_honored t = t.req_honored

let requests_ignored t = t.req_ignored

let recovery_count t = t.recoveries

let recovery_messages t = t.recovery_msgs

let recovery_redos t = t.recovery_redo

let messages t = t.messages

let log_forces t = t.log_forces

let per_commit t n =
  if t.committed = 0 then nan else float_of_int n /. float_of_int t.committed

let messages_per_commit t = per_commit t t.messages

let forces_per_commit t = per_commit t t.log_forces

let merge a b =
  let t = create () in
  t.committed <- a.committed + b.committed;
  t.aborted <- a.aborted + b.aborted;
  List.iter
    (fun r ->
      let n = aborted_by a r + aborted_by b r in
      if n > 0 then Hashtbl.replace t.reasons r n)
    all_abort_reasons;
  Array.iter (Dstats.Sample.add t.latencies) (Dstats.Sample.to_array a.latencies);
  Array.iter (Dstats.Sample.add t.latencies) (Dstats.Sample.to_array b.latencies);
  Array.iter (Dstats.Sample.add t.lock_holds) (Dstats.Sample.to_array a.lock_holds);
  Array.iter (Dstats.Sample.add t.lock_holds) (Dstats.Sample.to_array b.lock_holds);
  t.max_lock_hold <- Float.max a.max_lock_hold b.max_lock_hold;
  t.max_blocked <- Float.max a.max_blocked b.max_blocked;
  t.total_blocked <- a.total_blocked +. b.total_blocked;
  t.blocked_episodes <- a.blocked_episodes + b.blocked_episodes;
  t.vm_created <- a.vm_created + b.vm_created;
  t.vm_created_amount <- a.vm_created_amount + b.vm_created_amount;
  t.vm_accepted <- a.vm_accepted + b.vm_accepted;
  t.vm_accepted_amount <- a.vm_accepted_amount + b.vm_accepted_amount;
  t.vm_retrans <- a.vm_retrans + b.vm_retrans;
  t.vm_dups <- a.vm_dups + b.vm_dups;
  t.vm_stale <- a.vm_stale + b.vm_stale;
  t.req_honored <- a.req_honored + b.req_honored;
  t.req_ignored <- a.req_ignored + b.req_ignored;
  t.recoveries <- a.recoveries + b.recoveries;
  t.recovery_msgs <- a.recovery_msgs + b.recovery_msgs;
  t.recovery_redo <- a.recovery_redo + b.recovery_redo;
  t.recovery_time <- a.recovery_time +. b.recovery_time;
  t.messages <- a.messages + b.messages;
  t.log_forces <- a.log_forces + b.log_forces;
  t.drops_loss <- a.drops_loss + b.drops_loss;
  t.drops_partition <- a.drops_partition + b.drops_partition;
  t.drops_down <- a.drops_down + b.drops_down;
  t.drops_inflight <- a.drops_inflight + b.drops_inflight;
  t.storage_force_errors <- a.storage_force_errors + b.storage_force_errors;
  (* Sites sharing one trace would double-count its evictions; max keeps the
     invariant "evictions of the busiest trace seen". *)
  t.trace_dropped <- max a.trace_dropped b.trace_dropped;
  t

let to_json t =
  let module Json = Dvp_util.Json in
  (* Percentiles over zero samples are [nan]; JSON has no nan, so absent
     statistics serialize as null. *)
  let num f = if Float.is_finite f then Json.Float f else Json.Null in
  Json.Obj
    [
      ("committed", Json.Int t.committed);
      ("aborted", Json.Int t.aborted);
      ("submitted", Json.Int (submitted t));
      ("commit_ratio", num (commit_ratio t));
      ( "aborts",
        Json.Obj
          (List.filter_map
             (fun r ->
               let n = aborted_by t r in
               if n = 0 then None else Some (abort_reason_label r, Json.Int n))
             all_abort_reasons) );
      ( "latency",
        Json.Obj
          [
            ("p50", num (latency_p50 t));
            ("p90", num (latency_p90 t));
            ("p99", num (latency_p99 t));
            ("max", num (latency_max t));
            ("mean", num (latency_mean t));
          ] );
      ("max_lock_hold", num t.max_lock_hold);
      ("max_blocked", num t.max_blocked);
      ("total_blocked", num t.total_blocked);
      ("blocked_episodes", Json.Int t.blocked_episodes);
      ("vm_created", Json.Int t.vm_created);
      ("vm_created_amount", Json.Int t.vm_created_amount);
      ("vm_accepted", Json.Int t.vm_accepted);
      ("vm_accepted_amount", Json.Int t.vm_accepted_amount);
      ("vm_retransmissions", Json.Int t.vm_retrans);
      ("vm_duplicates", Json.Int t.vm_dups);
      ("vm_stale_epoch", Json.Int t.vm_stale);
      ("requests_honored", Json.Int t.req_honored);
      ("requests_ignored", Json.Int t.req_ignored);
      ("recoveries", Json.Int t.recoveries);
      ("recovery_messages", Json.Int t.recovery_msgs);
      ("recovery_redo", Json.Int t.recovery_redo);
      ("recovery_time", num t.recovery_time);
      ("messages", Json.Int t.messages);
      ("log_forces", Json.Int t.log_forces);
      ( "drops",
        Json.Obj
          [
            ("loss", Json.Int t.drops_loss);
            ("partition", Json.Int t.drops_partition);
            ("down", Json.Int t.drops_down);
            ("inflight", Json.Int t.drops_inflight);
            ("total", Json.Int (drops_total t));
          ] );
      ("storage_force_errors", Json.Int t.storage_force_errors);
      ("messages_per_commit", num (messages_per_commit t));
      ("forces_per_commit", num (forces_per_commit t));
      ("trace_dropped", Json.Int t.trace_dropped);
    ]

let summary_rows t =
  let f = Printf.sprintf "%.4f" in
  [
    ("committed", string_of_int t.committed);
    ("aborted", string_of_int t.aborted);
    ("commit-ratio", f (commit_ratio t));
    ("latency-p50", f (latency_p50 t));
    ("latency-p99", f (latency_p99 t));
    ("max-lock-hold", f t.max_lock_hold);
    ("max-blocked", f t.max_blocked);
    ("vm-created", string_of_int t.vm_created);
    ("vm-retransmissions", string_of_int t.vm_retrans);
    ("messages", string_of_int t.messages);
    ("log-forces", string_of_int t.log_forces);
  ]
