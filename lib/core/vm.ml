module Engine = Dvp_sim.Engine
module Trace = Dvp_sim.Trace
module Wal = Dvp_storage.Wal

type outstanding = Log_replay.vm_outstanding = {
  item : Ids.item;
  amount : int;
  reply_to : Ids.txn option;
}

(* Outbox entries track their last transmission so the periodic scan only
   resends messages that have actually gone unacknowledged for a full
   period (not ones that happen to be seconds-old acks away). *)
type outbox_entry = { payload : outstanding; mutable last_sent : float }

type t = {
  engine : Engine.t;
  n : int;
  self : Ids.site;
  wal : Log_event.t Wal.t;
  send : dst:Ids.site -> Proto.t -> unit;
  try_credit :
    peer:Ids.site -> item:Ids.item -> amount:int -> reply_to:Ids.txn option -> int option;
  ts_counter : unit -> int;
  metrics : Metrics.t;
  trace : Trace.t option;
  retransmit_every : float;
  ack_delay : float;
      (* 0 = acknowledge immediately with a standalone message; > 0 = hold
         the ack hoping to piggyback it on reverse data *)
  (* Volatile sender state (rebuilt from the log on recovery). *)
  mutable next_seq : int array; (* per destination *)
  mutable acked_upto : int array; (* per destination, cumulative *)
  outbox : (int * int, outbox_entry) Hashtbl.t; (* (dst, seq) -> payload *)
  (* Volatile receiver state (rebuilt from the log on recovery). *)
  mutable accepted : int array; (* per peer, highest in-order accepted seq *)
  mutable timer : Engine.timer option;
  mutable running : bool;
  (* Per-peer pending standalone-ack timers (delayed-ack mode). *)
  mutable ack_timers : Engine.timer option array;
}

let create engine ~n ~self ~wal ~send ~try_credit ~ts_counter ~metrics ?trace
    ?(retransmit_every = 0.15) ?(ack_delay = 0.0) () =
  {
    engine;
    n;
    self;
    wal;
    send;
    try_credit;
    ts_counter;
    metrics;
    trace;
    retransmit_every;
    ack_delay;
    next_seq = Array.make n 0;
    acked_upto = Array.make n (-1);
    outbox = Hashtbl.create 32;
    accepted = Array.make n (-1);
    timer = None;
    running = false;
    ack_timers = Array.make n None;
  }

let emit t ev =
  match t.trace with
  | Some tr -> Trace.emit tr ~time:(Engine.now t.engine) ev
  | None -> ()

let outstanding_to t dst =
  let out = ref [] in
  Hashtbl.iter
    (fun (d, seq) e ->
      if d = dst then out := (seq, e.payload.item, e.payload.amount) :: !out)
    t.outbox;
  List.sort compare !out

let outstanding_full t dst =
  let out = ref [] in
  Hashtbl.iter (fun (d, seq) e -> if d = dst then out := (seq, e) :: !out) t.outbox;
  List.sort compare !out

let outstanding_amount t ~item =
  Hashtbl.fold
    (fun _ e acc -> if e.payload.item = item then acc + e.payload.amount else acc)
    t.outbox 0

let has_outstanding t ~item =
  Hashtbl.fold (fun _ e acc -> acc || e.payload.item = item) t.outbox false

let next_seq t ~dst = t.next_seq.(dst)

let accepted_upto t ~peer = t.accepted.(peer)

let cancel_ack_timer t peer =
  match t.ack_timers.(peer) with
  | Some h ->
    ignore (Engine.cancel t.engine h);
    t.ack_timers.(peer) <- None
  | None -> ()

let transmit t ~dst ~seq ~item ~amount ~reply_to =
  (* Every real message carries the piggybacked cumulative ack, which also
     satisfies any ack we were holding back for this peer. *)
  cancel_ack_timer t dst;
  t.send ~dst
    (Proto.Vm_data
       { seq; item; amount; ts_counter = t.ts_counter (); reply_to; ack_upto = t.accepted.(dst) })

(* Retransmission scan: every outstanding Vm is sent again, lowest sequence
   numbers first so the receiver's in-order rule makes progress. *)
let rec on_retransmit t =
  t.timer <- None;
  if t.running then begin
    let now = Engine.now t.engine in
    for dst = 0 to t.n - 1 do
      List.iter
        (fun (seq, e) ->
          (* Only resend what has gone a full period without an ack. *)
          if now -. e.last_sent >= t.retransmit_every *. 0.9 then begin
            Metrics.vm_retransmitted t.metrics;
            emit t
              (Trace.Vm_retransmit
                 { site = t.self; dst; seq; item = e.payload.item; amount = e.payload.amount });
            e.last_sent <- now;
            transmit t ~dst ~seq ~item:e.payload.item ~amount:e.payload.amount
              ~reply_to:e.payload.reply_to
          end)
        (outstanding_full t dst)
    done;
    arm t
  end

and arm t =
  if t.running && t.timer = None then
    t.timer <- Some (Engine.schedule t.engine ~delay:t.retransmit_every (fun () -> on_retransmit t))

let start t =
  t.running <- true;
  arm t

let stop t =
  t.running <- false;
  match t.timer with
  | Some h ->
    ignore (Engine.cancel t.engine h);
    t.timer <- None
  | None -> ()

let send_value t ~dst ~item ~amount ?reply_to ~new_local () =
  if dst = t.self then invalid_arg "Vm.send_value: destination is self";
  if amount < 0 then invalid_arg "Vm.send_value: negative amount";
  let seq = t.next_seq.(dst) in
  t.next_seq.(dst) <- seq + 1;
  (* The Vm is born here: [database-actions, message-sequence] forced to the
     stable log before the real message leaves. *)
  Wal.append t.wal
    (Log_event.Vm_create
       {
         dst;
         seq;
         item;
         amount;
         reply_to;
         actions = [ Log_event.Set_fragment { item; value = new_local } ];
       });
  Hashtbl.replace t.outbox (dst, seq)
    { payload = { item; amount; reply_to }; last_sent = Engine.now t.engine };
  Metrics.vm_created t.metrics ~amount;
  emit t (Trace.Vm_created { site = t.self; dst; seq; item; amount });
  transmit t ~dst ~seq ~item ~amount ~reply_to;
  arm t

let handle_ack t ~src ~upto =
  if upto > t.acked_upto.(src) then begin
    for seq = t.acked_upto.(src) + 1 to upto do
      Hashtbl.remove t.outbox (src, seq)
    done;
    t.acked_upto.(src) <- upto;
    (* Not forced: losing this record only causes harmless retransmission
       (the receiver discards duplicates and re-acks). *)
    Wal.append ~forced:false t.wal (Log_event.Ack_progress { dst = src; upto })
  end

(* Acknowledge [src] — immediately, or after a grace period during which a
   reverse data message may carry the ack for free. *)
let schedule_ack t src =
  if t.ack_delay <= 0.0 then t.send ~dst:src (Proto.Vm_ack { upto = t.accepted.(src) })
  else if t.ack_timers.(src) = None then
    t.ack_timers.(src) <-
      Some
        (Engine.schedule t.engine ~delay:t.ack_delay (fun () ->
             t.ack_timers.(src) <- None;
             t.send ~dst:src (Proto.Vm_ack { upto = t.accepted.(src) })))

let handle_data t ~src ~seq ~item ~amount ~reply_to ~ack_upto =
  (* Process the piggybacked acknowledgement first. *)
  handle_ack t ~src ~upto:ack_upto;
  let expected = t.accepted.(src) + 1 in
  if seq < expected then begin
    (* Duplicate of an already-accepted Vm: discard, re-ack so the sender can
       advance if our earlier ack was lost. *)
    Metrics.vm_duplicate_discarded t.metrics;
    emit t (Trace.Vm_dup { site = t.self; src; seq });
    schedule_ack t src
  end
  else if seq > expected then
    (* Out of order: ignore; retransmission will present the gap first.  The
       paper: "The messages will never be accepted if they are out-of-order". *)
    ()
  else
    match t.try_credit ~peer:src ~item ~amount ~reply_to with
    | None ->
      (* Item locked by a transaction that is not waiting for values: "the
         message can be ignored; it will eventually be sent again anyway". *)
      ()
    | Some new_value ->
      (* The Vm dies here: [database-actions] forced at the receiver. *)
      Wal.append t.wal (Log_event.Vm_accept { peer = src; seq; item; amount; new_value });
      t.accepted.(src) <- seq;
      Metrics.vm_accepted t.metrics ~amount;
      emit t (Trace.Vm_accepted { site = t.self; src; seq; item; amount });
      schedule_ack t src

let crash t =
  stop t;
  for peer = 0 to t.n - 1 do
    cancel_ack_timer t peer
  done;
  t.next_seq <- Array.make t.n 0;
  t.acked_upto <- Array.make t.n (-1);
  t.accepted <- Array.make t.n (-1);
  Hashtbl.reset t.outbox

let recover t =
  (* Rebuild exactly the protocol state from the stable log (including any
     checkpoint snapshot): per-destination sequence counters, the outbox of
     still-outstanding Vm, cumulative acks, and acceptance watermarks. *)
  let view = Log_replay.vm_view ~n:t.n t.wal in
  t.next_seq <- view.Log_replay.vm_next_seq;
  t.acked_upto <- view.Log_replay.vm_acked;
  t.accepted <- view.Log_replay.vm_accepted;
  Hashtbl.reset t.outbox;
  Hashtbl.iter
    (fun k v -> Hashtbl.replace t.outbox k { payload = v; last_sent = neg_infinity })
    view.Log_replay.vm_outbox;
  start t

(* A state snapshot for checkpointing (Section 7): everything [recover]
   would need, as one log record. *)
let snapshot t ~fragments ~max_counter =
  let pairs arr skip =
    Array.to_list (Array.mapi (fun i v -> (i, v)) arr)
    |> List.filter (fun (_, v) -> v <> skip)
  in
  let outbox =
    Hashtbl.fold
      (fun (dst, seq) e acc ->
        (dst, seq, e.payload.item, e.payload.amount, e.payload.reply_to) :: acc)
      t.outbox []
    |> List.sort compare
  in
  Log_event.Checkpoint
    {
      fragments;
      accepted = pairs t.accepted (-1);
      next_seq = pairs t.next_seq 0;
      acked = pairs t.acked_upto (-1);
      outbox;
      max_counter;
    }
