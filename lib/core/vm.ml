module Substrate = Dvp_substrate.Substrate
module Trace = Dvp_sim.Trace
module Wal = Dvp_storage.Wal

type outstanding = Log_replay.vm_outstanding = {
  item : Ids.item;
  amount : int;
  reply_to : Ids.txn option;
}

(* Outbox entries track their last transmission so the periodic scan only
   resends messages that have actually gone unacknowledged for a full
   period (not ones that happen to be seconds-old acks away). *)
type outbox_entry = { payload : outstanding; mutable last_sent : float }

(* Per-destination sender state.  Cumulative acks only ever remove a prefix
   of the outstanding set, and sequence numbers are handed out monotonically,
   so a FIFO queue keyed by seq stays sorted by construction: push at the
   tail on send, pop from the head on ack — never sort on read. *)
type dst_state = {
  q : (int * outbox_entry) Queue.t; (* ascending seq *)
  mutable rto : float; (* current (possibly backed-off) retransmission timeout *)
  mutable next_retry : float; (* substrate time before which this dst is not rescanned *)
  mutable parked : bool;
      (* circuit breaker: a suspected destination gets no (re)transmissions;
         entries keep queueing (bounded by the high-water warning) until the
         destination is unparked or the queue is drained by evacuation *)
}

(* Per-item tally of unacknowledged value leaving this site, so the Section 5
   drain test ([has_outstanding]) is O(1) instead of a full outbox scan. *)
type item_tally = { mutable count : int; mutable amount_sum : int }

type t = {
  sub : Substrate.t;
  n : int;
  self : Ids.site;
  wal : Log_event.t Wal.t;
  send : dst:Ids.site -> Proto.t -> unit;
  try_credit :
    peer:Ids.site -> item:Ids.item -> amount:int -> reply_to:Ids.txn option -> int option;
  ts_counter : unit -> int;
  epoch : unit -> int;
      (* current membership epoch, stamped into every wire message at
         transmit time — so retransmissions of a Vm created under an older
         membership view self-heal with a fresh stamp *)
  metrics : Metrics.t;
  trace : Trace.t option;
  retransmit_every : float;
  ack_delay : float;
      (* 0 = acknowledge immediately with a standalone message; > 0 = hold
         the ack hoping to piggyback it on reverse data *)
  batch : bool; (* coalesce due fragments per destination into one Vm_batch *)
  backoff_mult : float; (* 1.0 disables backoff *)
  backoff_max : float;
  rng : Dvp_util.Rng.t option; (* jitter for backed-off retry times *)
  on_inflight : (Ids.item -> int -> unit) option;
      (* +amount at Vm_create, -amount at Vm_accept: the system-wide
         incremental N_M ledger the conservation probe samples *)
  outbox_warn : int; (* high-water mark on total outbox depth; <= 0 disables *)
  mutable warned : bool; (* one-shot latch for the Outbox_high warning *)
  (* Volatile sender state (rebuilt from the log on recovery). *)
  mutable next_seq : int array; (* per destination *)
  mutable acked_upto : int array; (* per destination, cumulative *)
  dsts : dst_state option array;
      (* lazily created on first traffic to a destination: most site pairs
         in a large installation never exchange Vm, and an eager n-queue
         array per site made the fleet O(sites^2) in memory *)
  (* Activity index over [dsts]: the destinations with a non-empty outbox,
     unordered, with O(1) insert/remove (swap-with-last).  The retransmission
     scan walks this — O(active destinations) — instead of all [n] queues,
     and the scan timer is only armed while something is actually owed.
     [scratch] holds the ascending-dst copy the scan sorts into, so the scan
     order (and therefore the trace and RNG draw order) is identical to the
     old full sweep's. *)
  active : int array;
  active_pos : int array; (* dst -> index in [active], or -1 *)
  mutable n_active : int;
  scratch : int array;
  mutable depth : int; (* total queued entries across all destinations *)
  items_out : (Ids.item, item_tally) Hashtbl.t;
  (* Cumulative per-item value ever shipped (Vm created) / ever accepted,
     since creation.  Unlike [items_out] these never roll back — together
     with the site's cumulative committed delta they form the local
     conservation ledger the runtime watchdog folds on a consistent cut:
     fragment = installed + received + delta - sent, at every instant of the
     owning domain's serial loop.  [recover] rebuilds them from the stable
     log (every contributing record is forced at the point it is created),
     so the cut identity survives a hard kill and respawn — which is what
     lets the wall-clock supervisor check conservation across restarts. *)
  cum_sent : (Ids.item, int) Hashtbl.t;
  cum_recv : (Ids.item, int) Hashtbl.t;
  (* Volatile receiver state (rebuilt from the log on recovery). *)
  mutable accepted : int array; (* per peer, highest in-order accepted seq *)
  mutable timer : Substrate.timer option;
  mutable running : bool;
  (* Per-peer pending standalone-ack timers (delayed-ack mode). *)
  mutable ack_timers : Substrate.timer option array;
}

let create sub ~n ~self ~wal ~send ~try_credit ~ts_counter ?(epoch = fun () -> 0) ~metrics
    ?trace ?(retransmit_every = 0.15) ?(ack_delay = 0.0) ?(batch = true)
    ?(backoff_mult = 2.0) ?backoff_max ?rng ?(outbox_warn = 0) ?on_inflight () =
  let backoff_max =
    match backoff_max with Some m -> m | None -> 4.0 *. retransmit_every
  in
  {
    sub;
    n;
    self;
    wal;
    send;
    try_credit;
    ts_counter;
    epoch;
    metrics;
    trace;
    retransmit_every;
    ack_delay;
    batch;
    backoff_mult;
    backoff_max;
    rng;
    on_inflight;
    outbox_warn;
    warned = false;
    next_seq = Array.make n 0;
    acked_upto = Array.make n (-1);
    dsts = Array.make n None;
    active = Array.make n 0;
    active_pos = Array.make n (-1);
    n_active = 0;
    scratch = Array.make n 0;
    depth = 0;
    items_out = Hashtbl.create 16;
    cum_sent = Hashtbl.create 16;
    cum_recv = Hashtbl.create 16;
    accepted = Array.make n (-1);
    timer = None;
    running = false;
    ack_timers = Array.make n None;
  }

let emit t ev =
  match t.trace with
  | Some tr -> Trace.emit tr ~time:(Substrate.now t.sub) ev
  | None -> ()

let tally_add t ~item ~amount =
  match Hashtbl.find_opt t.items_out item with
  | Some tl ->
    tl.count <- tl.count + 1;
    tl.amount_sum <- tl.amount_sum + amount
  | None -> Hashtbl.replace t.items_out item { count = 1; amount_sum = amount }

let tally_remove t ~item ~amount =
  match Hashtbl.find_opt t.items_out item with
  | Some tl ->
    tl.count <- tl.count - 1;
    tl.amount_sum <- tl.amount_sum - amount;
    if tl.count <= 0 then Hashtbl.remove t.items_out item
  | None -> ()

let mark_active t dst =
  if t.active_pos.(dst) < 0 then begin
    t.active.(t.n_active) <- dst;
    t.active_pos.(dst) <- t.n_active;
    t.n_active <- t.n_active + 1
  end

let mark_inactive t dst =
  let i = t.active_pos.(dst) in
  if i >= 0 then begin
    let last = t.n_active - 1 in
    let moved = t.active.(last) in
    t.active.(i) <- moved;
    t.active_pos.(moved) <- i;
    t.n_active <- last;
    t.active_pos.(dst) <- -1
  end

(* The per-destination sender state, created on first use. *)
let dst_st t dst =
  match t.dsts.(dst) with
  | Some st -> st
  | None ->
    let st =
      { q = Queue.create (); rto = t.retransmit_every; next_retry = 0.0; parked = false }
    in
    t.dsts.(dst) <- Some st;
    st

let outstanding_to t dst =
  match t.dsts.(dst) with
  | None -> []
  | Some st ->
    Queue.fold
      (fun acc (seq, e) -> (seq, e.payload.item, e.payload.amount) :: acc)
      [] st.q
    |> List.rev

let outbox_depth t = t.depth

let outbox_depth_to t ~dst =
  match t.dsts.(dst) with None -> 0 | Some st -> Queue.length st.q

(* One-shot high-water warning: fires once when the total outbox crosses the
   mark (typically because a parked destination keeps accumulating), re-arms
   only after the depth has fallen back to half of it. *)
let check_depth t =
  if t.outbox_warn > 0 then begin
    let depth = outbox_depth t in
    if depth > t.outbox_warn && not t.warned then begin
      t.warned <- true;
      emit t (Trace.Outbox_high { site = t.self; depth; limit = t.outbox_warn })
    end
    else if t.warned && depth <= t.outbox_warn / 2 then t.warned <- false
  end

let outstanding_amount t ~item =
  match Hashtbl.find_opt t.items_out item with Some tl -> tl.amount_sum | None -> 0

let ledger_add tbl ~item ~amount =
  Hashtbl.replace tbl item (amount + Option.value ~default:0 (Hashtbl.find_opt tbl item))

let value_sent t ~item = Option.value ~default:0 (Hashtbl.find_opt t.cum_sent item)

let value_received t ~item = Option.value ~default:0 (Hashtbl.find_opt t.cum_recv item)

let has_outstanding t ~item = Hashtbl.mem t.items_out item

let next_seq t ~dst = t.next_seq.(dst)

let accepted_upto t ~peer = t.accepted.(peer)

let cancel_ack_timer t peer =
  match t.ack_timers.(peer) with
  | Some h ->
    ignore (Substrate.cancel h);
    t.ack_timers.(peer) <- None
  | None -> ()

let transmit t ~dst ~seq ~item ~amount ~reply_to =
  (* Every real message carries the piggybacked cumulative ack, which also
     satisfies any ack we were holding back for this peer. *)
  cancel_ack_timer t dst;
  t.send ~dst
    (Proto.Vm_data
       {
         seq;
         item;
         amount;
         ts_counter = t.ts_counter ();
         reply_to;
         ack_upto = t.accepted.(dst);
         epoch = t.epoch ();
       })

(* Ship the due fragments for one destination: one Vm_batch real message when
   batching is on and there are several, plain Vm_data otherwise.  Either way
   the envelope carries the piggybacked cumulative ack. *)
let send_due t ~dst frags =
  match frags with
  | [] -> ()
  | [ (seq, (e : outbox_entry)) ] ->
    transmit t ~dst ~seq ~item:e.payload.item ~amount:e.payload.amount
      ~reply_to:e.payload.reply_to
  | _ :: _ when t.batch ->
    cancel_ack_timer t dst;
    let frags =
      List.map
        (fun (seq, (e : outbox_entry)) ->
          { Proto.seq; item = e.payload.item; amount = e.payload.amount;
            reply_to = e.payload.reply_to })
        frags
    in
    t.send ~dst
      (Proto.Vm_batch
         { frags; ts_counter = t.ts_counter (); ack_upto = t.accepted.(dst);
           epoch = t.epoch () })
  | _ ->
    List.iter
      (fun (seq, (e : outbox_entry)) ->
        transmit t ~dst ~seq ~item:e.payload.item ~amount:e.payload.amount
          ~reply_to:e.payload.reply_to)
      frags

(* After a fruitless rescan of [dst], widen its retry interval (capped);
   acknowledgement progress narrows it back to the base period.  Jitter keeps
   a fleet of senders from re-synchronising their storms after a partition. *)
let backoff t dst ~now =
  let st = dst_st t dst in
  st.rto <- Float.min (st.rto *. t.backoff_mult) (Float.max t.backoff_max t.retransmit_every);
  let jittered =
    match t.rng with
    | Some rng -> st.rto *. (0.9 +. Dvp_util.Rng.float rng 0.2)
    | None -> st.rto
  in
  st.next_retry <- now +. jittered

let reset_backoff t dst =
  let st = dst_st t dst in
  st.rto <- t.retransmit_every;
  st.next_retry <- 0.0

let park t ~dst = (dst_st t dst).parked <- true

let is_parked t ~dst =
  match t.dsts.(dst) with Some st -> st.parked | None -> false

(* Retransmission scan: every outstanding Vm to a due destination is sent
   again, lowest sequence numbers first so the receiver's in-order rule makes
   progress.  Destinations that keep not answering are rescanned on their
   (backed-off) schedule, not every period.

   The scan walks only the active (non-empty) destinations — sorted into
   [scratch] so transmissions, trace events, and jitter draws happen in the
   same ascending-dst order as the old O(n) sweep — and re-arms its timer
   only while some unparked destination still owes value.  An idle site pays
   nothing: no timer, no sweep. *)
let rec on_retransmit t =
  t.timer <- None;
  if t.running then begin
    let now = Substrate.now t.sub in
    let k = t.n_active in
    Array.blit t.active 0 t.scratch 0 k;
    (* Insertion sort: [k] is the handful of busy peers, not [n]. *)
    for i = 1 to k - 1 do
      let v = t.scratch.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && t.scratch.(!j) > v do
        t.scratch.(!j + 1) <- t.scratch.(!j);
        decr j
      done;
      t.scratch.(!j + 1) <- v
    done;
    let live_work = ref false in
    for i = 0 to k - 1 do
      let dst = t.scratch.(i) in
      let st = dst_st t dst in
      if not st.parked then begin
        live_work := true;
        if (not (Queue.is_empty st.q)) && now >= st.next_retry then begin
          let due = ref [] in
          Queue.iter
            (fun (seq, e) ->
              (* Only resend what has gone a full period without an ack. *)
              if now -. e.last_sent >= t.retransmit_every *. 0.9 then begin
                Metrics.vm_retransmitted t.metrics;
                emit t
                  (Trace.Vm_retransmit
                     { site = t.self; dst; seq; item = e.payload.item; amount = e.payload.amount });
                e.last_sent <- now;
                due := (seq, e) :: !due
              end)
            st.q;
          let due = List.rev !due in
          send_due t ~dst due;
          if due <> [] then backoff t dst ~now
        end
      end
    done;
    (* Destinations that are all parked wake the scan again via [unpark];
       re-arming for them would just spin a no-op timer. *)
    if !live_work then arm t
  end

and arm t =
  if t.running && t.timer = None then
    t.timer <- Some (Substrate.schedule t.sub ~delay:t.retransmit_every (fun () -> on_retransmit t))

let start t =
  t.running <- true;
  if t.n_active > 0 then arm t

(* Re-opening the breaker: reset the backoff to the base period and mark
   every queued entry stale, so the very next retransmission scan (at most
   one period away) resends the whole backlog in order. *)
let unpark t ~dst =
  match t.dsts.(dst) with
  | None -> ()
  | Some st ->
  if st.parked then begin
    st.parked <- false;
    reset_backoff t dst;
    Queue.iter (fun (_, (e : outbox_entry)) -> e.last_sent <- neg_infinity) st.q;
    check_depth t;
    (* The scan timer may have gone quiet while everything was parked. *)
    if not (Queue.is_empty st.q) then arm t
  end

let stop t =
  t.running <- false;
  match t.timer with
  | Some h ->
    ignore (Substrate.cancel h);
    t.timer <- None
  | None -> ()

let send_value t ~dst ~item ~amount ?reply_to ~new_local () =
  if dst = t.self then invalid_arg "Vm.send_value: destination is self";
  if amount < 0 then invalid_arg "Vm.send_value: negative amount";
  let seq = t.next_seq.(dst) in
  t.next_seq.(dst) <- seq + 1;
  (* The Vm is born here: [database-actions, message-sequence] forced to the
     stable log before the real message leaves. *)
  Wal.append t.wal
    (Log_event.Vm_create
       {
         dst;
         seq;
         item;
         amount;
         reply_to;
         actions = [ Log_event.Set_fragment { item; value = new_local } ];
       });
  (match t.on_inflight with Some f -> f item amount | None -> ());
  let st = dst_st t dst in
  (* A parked destination still gets the Vm queued (it must survive for
     evacuation or unparking), just no real message. *)
  let last_sent = if st.parked then neg_infinity else Substrate.now t.sub in
  Queue.push (seq, { payload = { item; amount; reply_to }; last_sent }) st.q;
  t.depth <- t.depth + 1;
  mark_active t dst;
  tally_add t ~item ~amount;
  ledger_add t.cum_sent ~item ~amount;
  Metrics.vm_created t.metrics ~amount;
  emit t (Trace.Vm_created { site = t.self; dst; seq; item; amount });
  check_depth t;
  if not st.parked then transmit t ~dst ~seq ~item ~amount ~reply_to;
  arm t

let handle_ack t ~src ~upto =
  if upto > t.acked_upto.(src) then begin
    (* Acks are cumulative, so the acknowledged messages are exactly a prefix
       of the (sorted) queue. *)
    let q = (dst_st t src).q in
    let continue = ref true in
    while !continue do
      match Queue.peek_opt q with
      | Some (seq, e) when seq <= upto ->
        ignore (Queue.pop q);
        t.depth <- t.depth - 1;
        tally_remove t ~item:e.payload.item ~amount:e.payload.amount
      | Some _ | None -> continue := false
    done;
    if Queue.is_empty q then mark_inactive t src;
    t.acked_upto.(src) <- upto;
    check_depth t;
    (* Progress: the peer is reachable again — retry at the base period. *)
    reset_backoff t src;
    (* Not forced: losing this record only causes harmless retransmission
       (the receiver discards duplicates and re-acks). *)
    Wal.append ~forced:false t.wal (Log_event.Ack_progress { dst = src; upto })
  end

(* Acknowledge [src] — immediately, or after a grace period during which a
   reverse data message may carry the ack for free. *)
let schedule_ack t src =
  if t.ack_delay <= 0.0 then
    t.send ~dst:src (Proto.Vm_ack { upto = t.accepted.(src); epoch = t.epoch () })
  else if t.ack_timers.(src) = None then
    t.ack_timers.(src) <-
      Some
        (Substrate.schedule t.sub ~delay:t.ack_delay (fun () ->
             t.ack_timers.(src) <- None;
             t.send ~dst:src (Proto.Vm_ack { upto = t.accepted.(src); epoch = t.epoch () })))

(* The in-order / duplicate / deferred-credit acceptance rules for one
   fragment.  Returns whether the fragment warrants (re-)acknowledging —
   callers coalesce that into one ack per real message received. *)
let handle_fragment t ~src ~seq ~item ~amount ~reply_to =
  let expected = t.accepted.(src) + 1 in
  if seq < expected then begin
    (* Duplicate of an already-accepted Vm: discard, re-ack so the sender can
       advance if our earlier ack was lost. *)
    Metrics.vm_duplicate_discarded t.metrics;
    emit t (Trace.Vm_dup { site = t.self; src; seq });
    true
  end
  else if seq > expected then
    (* Out of order: ignore; retransmission will present the gap first.  The
       paper: "The messages will never be accepted if they are out-of-order". *)
    false
  else
    match t.try_credit ~peer:src ~item ~amount ~reply_to with
    | None ->
      (* Item locked by a transaction that is not waiting for values: "the
         message can be ignored; it will eventually be sent again anyway". *)
      false
    | Some new_value ->
      (* The Vm dies here: [database-actions] forced at the receiver. *)
      Wal.append t.wal (Log_event.Vm_accept { peer = src; seq; item; amount; new_value });
      (match t.on_inflight with Some f -> f item (-amount) | None -> ());
      t.accepted.(src) <- seq;
      ledger_add t.cum_recv ~item ~amount;
      Metrics.vm_accepted t.metrics ~amount;
      emit t (Trace.Vm_accepted { site = t.self; src; seq; item; amount });
      true

let handle_data t ~src ~seq ~item ~amount ~reply_to ~ack_upto =
  (* Process the piggybacked acknowledgement first. *)
  handle_ack t ~src ~upto:ack_upto;
  if handle_fragment t ~src ~seq ~item ~amount ~reply_to then schedule_ack t src

let handle_batch t ~src ~frags ~ack_upto =
  (* One envelope, one piggybacked ack, the per-fragment rules applied in
     order (fragments arrive ascending by seq, so an in-order prefix is
     accepted even if a later fragment must wait) — and at most one
     acknowledgement back for the whole batch. *)
  handle_ack t ~src ~upto:ack_upto;
  let wants_ack =
    List.fold_left
      (fun acc { Proto.seq; item; amount; reply_to } ->
        let r = handle_fragment t ~src ~seq ~item ~amount ~reply_to in
        acc || r)
      false frags
  in
  if wants_ack then schedule_ack t src

let crash t =
  stop t;
  for peer = 0 to t.n - 1 do
    cancel_ack_timer t peer
  done;
  t.next_seq <- Array.make t.n 0;
  t.acked_upto <- Array.make t.n (-1);
  t.accepted <- Array.make t.n (-1);
  (* Volatile per-destination state is simply dropped; [dst_st] recreates a
     fresh one (base rto, unparked, empty queue) on next use. *)
  Array.fill t.dsts 0 t.n None;
  Array.fill t.active_pos 0 t.n (-1);
  t.n_active <- 0;
  t.depth <- 0;
  Hashtbl.reset t.items_out;
  t.warned <- false

let recover t =
  (* Rebuild exactly the protocol state from the stable log (including any
     checkpoint snapshot): per-destination sequence counters, the outbox of
     still-outstanding Vm, cumulative acks, and acceptance watermarks. *)
  let view = Log_replay.vm_view ~n:t.n t.wal in
  t.next_seq <- view.Log_replay.vm_next_seq;
  t.acked_upto <- view.Log_replay.vm_acked;
  t.accepted <- view.Log_replay.vm_accepted;
  Hashtbl.reset t.cum_sent;
  Hashtbl.reset t.cum_recv;
  Hashtbl.iter (fun item v -> Hashtbl.replace t.cum_sent item v)
    view.Log_replay.vm_cum_sent;
  Hashtbl.iter (fun item v -> Hashtbl.replace t.cum_recv item v)
    view.Log_replay.vm_cum_recv;
  Array.fill t.dsts 0 t.n None;
  Array.fill t.active_pos 0 t.n (-1);
  t.n_active <- 0;
  t.depth <- 0;
  Hashtbl.reset t.items_out;
  t.warned <- false;
  (* The replay view is unordered; sort once here so the queues are ascending
     by seq again — the only sort left in the Vm engine. *)
  let entries =
    Hashtbl.fold (fun (dst, seq) v acc -> (dst, seq, v) :: acc) view.Log_replay.vm_outbox []
    |> List.sort compare
  in
  List.iter
    (fun (dst, seq, (v : outstanding)) ->
      Queue.push (seq, { payload = v; last_sent = neg_infinity }) (dst_st t dst).q;
      t.depth <- t.depth + 1;
      mark_active t dst;
      tally_add t ~item:v.item ~amount:v.amount)
    entries;
  start t

(* Membership transition: the channel with [peer] starts over at seq 0 under
   the new epoch.  Callers guarantee the channel is quiescent (no outstanding
   value either way) — anything still queued here would be destroyed, so it
   is removed from the tallies and the reset is forced to the stable log
   before any message of the new epoch can be created. *)
let reset_channel t ~peer ~epoch =
  (match t.dsts.(peer) with
  | None -> ()
  | Some st ->
    Queue.iter
      (fun (_, (e : outbox_entry)) ->
        tally_remove t ~item:e.payload.item ~amount:e.payload.amount)
      st.q;
    t.depth <- t.depth - Queue.length st.q;
    t.dsts.(peer) <- None;
    mark_inactive t peer);
  t.next_seq.(peer) <- 0;
  t.acked_upto.(peer) <- -1;
  t.accepted.(peer) <- -1;
  cancel_ack_timer t peer;
  Wal.append t.wal (Log_event.Vm_channel_reset { peer; epoch })

(* A state snapshot for checkpointing (Section 7): everything [recover]
   would need, as one log record. *)
let snapshot t ~fragments ~max_counter =
  let pairs arr skip =
    Array.to_list (Array.mapi (fun i v -> (i, v)) arr)
    |> List.filter (fun (_, v) -> v <> skip)
  in
  let outbox =
    (* Destinations ascending, each queue already ascending by seq — the
       result is (dst, seq)-sorted without sorting. *)
    let acc = ref [] in
    for dst = 0 to t.n - 1 do
      match t.dsts.(dst) with
      | None -> ()
      | Some st ->
        Queue.iter
          (fun (seq, (e : outbox_entry)) ->
            acc := (dst, seq, e.payload.item, e.payload.amount, e.payload.reply_to) :: !acc)
          st.q
    done;
    List.rev !acc
  in
  Log_event.Checkpoint
    {
      fragments;
      accepted = pairs t.accepted (-1);
      next_seq = pairs t.next_seq 0;
      acked = pairs t.acked_upto (-1);
      outbox;
      max_counter;
    }
