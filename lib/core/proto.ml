type request_kind = Need of int | Drain

type vm_frag = { seq : int; item : Ids.item; amount : int; reply_to : Ids.txn option }

type t =
  | Request of { txn : Ids.txn; item : Ids.item; kind : request_kind }
  | Vm_data of {
      seq : int;
      item : Ids.item;
      amount : int;
      ts_counter : int;
      reply_to : Ids.txn option;
      ack_upto : int;
      epoch : int;
    }
  | Vm_batch of { frags : vm_frag list; ts_counter : int; ack_upto : int; epoch : int }
  | Vm_ack of { upto : int; epoch : int }
  | Probe
  | Probe_reply

let pp ppf = function
  | Request { txn; item; kind } ->
    let k = match kind with Need n -> Printf.sprintf "need %d" n | Drain -> "drain" in
    Format.fprintf ppf "Request(txn=%a item=%d %s)" Ids.pp_txn txn item k
  | Vm_data { seq; item; amount; epoch; _ } ->
    Format.fprintf ppf "Vm_data(seq=%d item=%d amount=%d epoch=%d)" seq item amount epoch
  | Vm_batch { frags; ack_upto; epoch; _ } ->
    let seqs = List.map (fun f -> string_of_int f.seq) frags in
    Format.fprintf ppf "Vm_batch(seqs=[%s] ack_upto=%d epoch=%d)" (String.concat ";" seqs)
      ack_upto epoch
  | Vm_ack { upto; epoch } -> Format.fprintf ppf "Vm_ack(upto=%d epoch=%d)" upto epoch
  | Probe -> Format.pp_print_string ppf "Probe"
  | Probe_reply -> Format.pp_print_string ppf "Probe_reply"

let describe = function
  | Request _ -> "req"
  | Vm_data _ -> "vm"
  | Vm_batch _ -> "vmb"
  | Vm_ack _ -> "ack"
  | Probe -> "probe"
  | Probe_reply -> "pong"
