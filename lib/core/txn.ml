type retry_policy = { retries : int; backoff : float }

type kind = Update | Read of Ids.item | Snapshot of Ids.item list

type t = {
  site : Ids.site;
  kind : kind;
  ops : (Ids.item * Op.t) list;
  retry : retry_policy option;
}

let write ~site ops = { site; kind = Update; ops; retry = None }

let read ~site item = { site; kind = Read item; ops = []; retry = None }

let snapshot ~site items = { site; kind = Snapshot items; ops = []; retry = None }

let with_retry ?(retries = 3) ?(backoff = 0.2) t = { t with retry = Some { retries; backoff } }

type outcome =
  | Committed of { reads : (Ids.item * int) list }
  | Aborted of Metrics.abort_reason

let committed = function Committed _ -> true | Aborted _ -> false

let to_result = function
  | Committed { reads = [ (_, v) ] } -> Site.Committed { read_value = Some v }
  | Committed _ -> Site.Committed { read_value = None }
  | Aborted reason -> Site.Aborted reason

let to_reads = function
  | Committed { reads } -> Ok reads
  | Aborted reason -> Error reason

let pp_outcome ppf = function
  | Committed { reads = [] } -> Format.fprintf ppf "committed"
  | Committed { reads } ->
    Format.fprintf ppf "committed [%s]"
      (String.concat "; "
         (List.map (fun (item, v) -> Printf.sprintf "%d=%d" item v) reads))
  | Aborted reason -> Format.fprintf ppf "aborted: %s" (Metrics.abort_reason_label reason)
