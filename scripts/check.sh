#!/bin/sh
# Repo health check: build, tests, formatting (when ocamlformat is
# available), and a smoke run of the machine-readable bench output.
#
#   scripts/check.sh
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @runtest =="
dune build @runtest

# @fmt needs the ocamlformat binary, which not every environment carries.
if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

# Chaos smoke: seeded fault-schedule fuzzing with the invariant oracle.
# 25 seeds keeps CI fast; nightly runs can widen the sweep with e.g.
#   CHAOS_SEEDS=500 scripts/check.sh
# A nonzero exit here means an invariant violation — the output names the
# reproducing seed and the shrunk fault schedule.
CHAOS_SEEDS="${CHAOS_SEEDS:-25}"
echo "== dvp-cli chaos --seeds $CHAOS_SEEDS =="
dune exec bin/dvp_cli.exe -- chaos --seeds "$CHAOS_SEEDS"

# Degraded-mode chaos: every seed permanently kills one site with the
# failure detector and auto-evacuation armed; the oracle must see
# conservation hold through detection, breaker parking, and evacuation.
KILLER_SEEDS="${KILLER_SEEDS:-15}"
echo "== dvp-cli chaos --profile killer --seeds $KILLER_SEEDS =="
dune exec bin/dvp_cli.exe -- chaos --profile killer --seeds "$KILLER_SEEDS"

# Elastic-membership chaos: seeds mix live joins, graceful leaves, and
# auto-rebalancing on top of crashes, partitions, and loss.  The oracle
# must see conservation and exactly-once delivery hold across every epoch
# bump and Vm channel reset.  Widen with e.g. CHURN_SEEDS=200.
CHURN_SEEDS="${CHURN_SEEDS:-10}"
echo "== dvp-cli chaos --profile churn --seeds $CHURN_SEEDS =="
dune exec bin/dvp_cli.exe -- chaos --profile churn --seeds "$CHURN_SEEDS"

# Analyze smoke: the trace tour writes a JSONL trace into artifacts/, and
# the analyzer must reconstruct non-empty spans from it.
echo "== dvp-cli analyze smoke run =="
dune exec examples/trace_tour.exe >/dev/null
dune exec bin/dvp_cli.exe -- analyze artifacts/trace_tour.jsonl >/dev/null
analyze_out=$(mktemp)
dune exec bin/dvp_cli.exe -- analyze artifacts/trace_tour.jsonl --json >"$analyze_out"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$analyze_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["events"] > 0, "analyzer saw no events"
assert doc["txn_spans"], "no transaction spans reconstructed"
assert doc["vm_lifecycles"], "no vm lifecycles reconstructed"
print(f"analyze ok: {len(doc['txn_spans'])} spans, {len(doc['vm_lifecycles'])} vm lifecycles")
EOF
else
  grep -q '"txn_spans"' "$analyze_out" || {
    echo "analyze --json output lacks txn_spans" >&2
    exit 1
  }
  echo "analyze ok (grep)"
fi
rm -f "$analyze_out"

echo "== bench E1 --json smoke run =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bench/main.exe -- E1 --out "$tmpdir" >/dev/null
test -s "$tmpdir/BENCH_E1.json" || {
  echo "BENCH_E1.json was not written" >&2
  exit 1
}

# Validate the JSON and the fields the acceptance criteria name, with
# whatever JSON tool the environment has.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$tmpdir/BENCH_E1.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["experiment"] == "E1"
assert doc["runs"], "no runs recorded"
run = doc["runs"][0]
for key in ("throughput", "availability"):
    assert key in run, f"missing {key}"
m = run["metrics"]
for key in ("messages_per_commit", "forces_per_commit"):
    assert key in m, f"missing metrics.{key}"
for key in ("p50", "p99"):
    assert key in m["latency"], f"missing latency.{key}"
print(f"BENCH_E1.json ok: {len(doc['runs'])} runs")
EOF
elif command -v jq >/dev/null 2>&1; then
  jq -e '.experiment == "E1" and (.runs | length) > 0
         and (.runs[0] | has("throughput") and has("availability"))
         and (.runs[0].metrics | has("messages_per_commit") and has("forces_per_commit"))
         and (.runs[0].metrics.latency | has("p50") and has("p99"))' \
    "$tmpdir/BENCH_E1.json" >/dev/null
  echo "BENCH_E1.json ok (jq)"
else
  echo "(no python3/jq; checked only that BENCH_E1.json is non-empty)"
fi

# Multicore smoke: a short closed-loop run on the domains runtime, checking
# that commits happen and value is conserved at quiesce.  Parallelism is
# only real with >= 2 cores; single-core hosts (and the DES-only CI lanes)
# skip it.  Width via DOMAINS.
DOMAINS="${DOMAINS:-2}"
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cores" -ge 2 ]; then
  echo "== multicore smoke: bench --wall --domains $DOMAINS =="
  wall_out=$(mktemp)
  dune exec bin/dvp_cli.exe -- bench --wall --domains "$DOMAINS" --duration 0.5 --json \
    >"$wall_out"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$wall_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["conserved"], "multicore run did not conserve value"
assert doc["committed"] > 0, "multicore run committed nothing"
print(f"multicore smoke ok: {doc['domains']} domains, "
      f"{doc['throughput']:.0f} committed txns/s, conserved")
EOF
  else
    grep -q '"conserved":true' "$wall_out" || {
      echo "multicore smoke: value not conserved" >&2
      exit 1
    }
    echo "multicore smoke ok (grep)"
  fi
  rm -f "$wall_out"

  # Wall observability smoke: the same closed loop with the per-domain trace
  # shards, the live stats feed, and the conservation watchdog all armed.
  # The bench exits non-zero on any watchdog alarm; the analyzer must then
  # reconstruct the merged dump to exactly the commit count the bench
  # reported (total order + completeness, end to end).
  echo "== wall observability smoke: tracing + watchdog at $DOMAINS domains =="
  obs_dir=$(mktemp -d)
  dune exec bin/dvp_cli.exe -- bench --wall --domains "$DOMAINS" --duration 0.3 \
    --trace-out "$obs_dir/trace.jsonl" --stats-out "$obs_dir/stats.jsonl" \
    --watchdog --json >"$obs_dir/bench.json"
  test -s "$obs_dir/trace.jsonl" || {
    echo "wall smoke: no trace written" >&2
    exit 1
  }
  test -s "$obs_dir/stats.jsonl" || {
    echo "wall smoke: no stats feed written" >&2
    exit 1
  }
  dune exec bin/dvp_cli.exe -- analyze "$obs_dir/trace.jsonl" --json \
    >"$obs_dir/analyze.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$obs_dir/bench.json" "$obs_dir/analyze.json" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
spans = json.load(open(sys.argv[2]))
assert bench["conserved"], "wall smoke did not conserve value"
assert bench["watchdog_alarms"] == 0, "conservation watchdog alarmed"
assert spans["complete"], "merged trace was clipped"
assert spans["txns"]["committed"] == bench["committed"], (
    f"span commits {spans['txns']['committed']} != bench {bench['committed']}")
print(f"wall observability ok: {bench['committed']} commits, spans agree, "
      f"watchdog quiet")
EOF
  else
    grep -q '"watchdog_alarms":0' "$obs_dir/bench.json" || {
      echo "wall smoke: watchdog alarmed" >&2
      exit 1
    }
    echo "wall observability ok (grep)"
  fi
  rm -rf "$obs_dir"
else
  echo "== skipping multicore smoke (host has $cores core(s), need >= 2) =="
fi

# Wall-clock chaos smoke: seeded crash-restart fuzzing on the real domains
# runtime — hard kills mid-traffic, torn WAL tails, WAL sink faults, and
# link storms, with the freeze-barrier cut oracle and the offline log
# replay oracle.  The bounded profile keeps plans small and shrinks on
# failure.  Real parallelism (and a meaningful kill of a *running* domain)
# needs >= 2 cores; below that the stage is skipped with a notice.  Widen
# with e.g. WALL_CHAOS_SEEDS=20.
WALL_CHAOS_SEEDS="${WALL_CHAOS_SEEDS:-2}"
if [ "$cores" -ge 2 ]; then
  echo "== dvp-cli chaos --wall --profile bounded --seeds $WALL_CHAOS_SEEDS =="
  dune exec bin/dvp_cli.exe -- chaos --wall --profile bounded \
    --seeds "$WALL_CHAOS_SEEDS"
else
  echo "== skipping wall chaos smoke (host has $cores core(s), need >= 2) =="
fi

# Scale smoke: 64 sites through the E23 closed loop on a short horizon.
# The experiment itself exits non-zero if value is not conserved or nothing
# commits, so this catches event-core scaling regressions without the full
# (and slower) E23 curve that perf_gate.sh runs.
echo "== scale smoke: bench E23-SMOKE (64 sites) =="
dune exec bench/main.exe -- E23-SMOKE

# Perf smoke: the micro benches in quick mode (shakes out bitrot in the
# bench harness itself), then the regression gate comparing a fresh E18 run
# against the committed baselines.  Tolerances via PERF_TOL / PERF_SLACK.
echo "== perf smoke: micro --quick =="
dune exec bench/main.exe -- micro --quick >/dev/null
scripts/perf_gate.sh

echo "== all checks passed =="
