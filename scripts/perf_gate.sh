#!/bin/sh
# Bench regression gate: re-run the transport experiment (E18) and compare
# against the committed baselines in bench/baselines/.
#
#   scripts/perf_gate.sh
#
# The simulator is deterministic in the seed, so throughput and message
# counts are stable quantities — wall-clock noise does not enter them.  The
# tolerance band (PERF_TOL, default 0.35) absorbs legitimate behavioural
# drift from protocol changes; a real regression (say, batching silently
# disabled) overshoots it by multiples.
#
# Checks, per (sites, scenario, system) run keyed against the baseline:
#   - throughput >= baseline * (1 - PERF_TOL)
#   - messages   <= baseline * (1 + PERF_TOL) + PERF_SLACK
# and, on the current run alone, the tentpole claim of the batched
# transport: under every lossy scenario dvp-batched sends no more real
# messages than dvp-unbatched, and at least one scenario shows a >= 2x
# reduction.
#
# To refresh the baselines after an intentional change:
#   dune exec bench/main.exe -- E18 --out bench/baselines
set -eu

cd "$(dirname "$0")/.."

PERF_TOL="${PERF_TOL:-0.35}"
PERF_SLACK="${PERF_SLACK:-50}"
baseline="bench/baselines/BENCH_E18.json"

if [ ! -s "$baseline" ]; then
  echo "perf gate: no baseline at $baseline" >&2
  exit 1
fi

if ! command -v python3 >/dev/null 2>&1; then
  echo "perf gate: skipped (python3 not installed)"
  exit 0
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "== perf gate: bench E18 vs $baseline (tol ${PERF_TOL}) =="
dune exec bench/main.exe -- E18 --out "$tmpdir" >/dev/null

python3 - "$baseline" "$tmpdir/BENCH_E18.json" "$PERF_TOL" "$PERF_SLACK" <<'EOF'
import json, sys

base_doc = json.load(open(sys.argv[1]))
cur_doc = json.load(open(sys.argv[2]))
tol = float(sys.argv[3])
slack = float(sys.argv[4])

def key(run):
    return (run["sites"], run["scenario"], run["system"])

base = {key(r): r for r in base_doc["runs"]}
cur = {key(r): r for r in cur_doc["runs"]}

failures = []

missing = set(base) - set(cur)
if missing:
    failures.append(f"runs missing from current output: {sorted(missing)}")

for k, b in base.items():
    c = cur.get(k)
    if c is None:
        continue
    name = "/".join(str(p) for p in k)
    b_tput, c_tput = b["throughput"], c["throughput"]
    if c_tput < b_tput * (1.0 - tol):
        failures.append(
            f"{name}: throughput {c_tput:.1f} < baseline {b_tput:.1f} - {tol:.0%}")
    b_msgs = b["metrics"]["messages"]
    c_msgs = c["metrics"]["messages"]
    if c_msgs > b_msgs * (1.0 + tol) + slack:
        failures.append(
            f"{name}: messages {c_msgs} > baseline {b_msgs} + {tol:.0%}")

# The tentpole claim, on the current run alone: batching never costs
# messages under faults, and somewhere it pays off by >= 2x.
best_ratio = 0.0
for (sites, scenario, system), c in cur.items():
    if system != "dvp-batched" or scenario == "clean":
        continue
    u = cur.get((sites, scenario, "dvp-unbatched"))
    if u is None:
        continue
    batched = c["metrics"]["messages"]
    unbatched = u["metrics"]["messages"]
    if batched > unbatched * 1.05 + slack:
        failures.append(
            f"{sites}/{scenario}: batched sends more messages than unbatched "
            f"({batched} vs {unbatched})")
    if batched > 0:
        best_ratio = max(best_ratio, unbatched / batched)
if best_ratio < 2.0:
    failures.append(
        f"no faulty scenario shows >= 2x message reduction from batching "
        f"(best {best_ratio:.2f}x)")

if failures:
    print("perf gate FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)

print(f"perf gate ok: {len(base)} runs within {tol:.0%} of baseline, "
      f"best batching reduction {best_ratio:.1f}x")
EOF

baseline19="bench/baselines/BENCH_E19.json"

if [ ! -s "$baseline19" ]; then
  echo "perf gate: no baseline at $baseline19" >&2
  exit 1
fi

echo "== perf gate: bench E19 vs $baseline19 (tol ${PERF_TOL}) =="
dune exec bench/main.exe -- E19 --out "$tmpdir" >/dev/null

python3 - "$baseline19" "$tmpdir/BENCH_E19.json" "$PERF_TOL" <<'EOF'
import json, sys

base_doc = json.load(open(sys.argv[1]))
cur_doc = json.load(open(sys.argv[2]))
tol = float(sys.argv[3])

base = {r["scenario"]: r for r in base_doc["runs"]}
cur = {r["scenario"]: r for r in cur_doc["runs"]}

failures = []

missing = set(base) - set(cur)
if missing:
    failures.append(f"runs missing from current output: {sorted(missing)}")

for k, b in base.items():
    c = cur.get(k)
    if c is None:
        continue
    for field in ("throughput", "late_throughput"):
        if c[field] < b[field] * (1.0 - tol):
            failures.append(
                f"{k}: {field} {c[field]:.1f} < baseline {b[field]:.1f} - {tol:.0%}")

# The degraded-mode claim, on the current run alone: once the detector
# condemns the dead site, the survivors recover to within 10% of their
# pro-rata share of the no-fault rate, and detection never does worse than
# no detection.
on = cur.get("kill, detector on")
off = cur.get("kill, detector off")
if on is not None:
    if on["late_vs_share"] < 0.90:
        failures.append(
            f"detector-on late throughput is {on['late_vs_share']:.0%} of the "
            f"survivors' pro-rata no-fault share (need >= 90%)")
    if off is not None and on["late_throughput"] < off["late_throughput"] * 0.97:
        failures.append(
            f"detector-on late throughput {on['late_throughput']:.1f} below "
            f"detector-off {off['late_throughput']:.1f}")

if failures:
    print("perf gate FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)

print(f"perf gate ok: {len(base)} E19 runs within {tol:.0%} of baseline, "
      f"detector-on at {cur['kill, detector on']['late_vs_share']:.0%} of pro-rata share")
EOF

# --- E20-wall: the multicore runtime's speedup contract -----------------
#
# Wall-clock throughput is host-dependent, so absolute rates are NOT
# compared against the baseline.  What the gate enforces:
#   - every run conserves value at quiesce (always);
#   - with >= 4 real cores, 4 domains beat 1 domain by the contract factor
#     recorded in the baseline (min_speedup_4v1).  On smaller hosts the
#     domains time-slice one core and the contract is skipped with a notice.
# Refresh the baseline with:
#   dune exec bench/main.exe -- E20-wall --out bench/baselines

baseline20="bench/baselines/BENCH_E20_wall.json"

if [ ! -s "$baseline20" ]; then
  echo "perf gate: no baseline at $baseline20" >&2
  exit 1
fi

echo "== perf gate: bench E20-wall (contract from $baseline20) =="
dune exec bench/main.exe -- E20-wall --out "$tmpdir" >/dev/null

python3 - "$baseline20" "$tmpdir/BENCH_E20_wall.json" <<'EOF'
import json, sys

base_doc = json.load(open(sys.argv[1]))
cur_doc = json.load(open(sys.argv[2]))

def contract(doc):
    for r in doc["runs"]:
        if "contract" in r:
            return r["contract"]
    return {}

min_speedup = contract(base_doc).get("min_speedup_4v1", 1.5)
runs = {r["domains"]: r for r in cur_doc["runs"] if "domains" in r}

failures = []

for d, r in sorted(runs.items()):
    if not r["conserved"]:
        failures.append(f"{d} domain(s): value NOT conserved at quiesce")
    if r["committed"] <= 0:
        failures.append(f"{d} domain(s): committed nothing")

cores = next(iter(runs.values()))["cores"] if runs else 0
if cores >= 4:
    s4 = runs.get(4, {}).get("speedup_vs_1", 0.0)
    if s4 < min_speedup:
        failures.append(
            f"4 domains at {s4:.2f}x vs 1 domain (contract: >= {min_speedup:.2f}x "
            f"on a {cores}-core host)")
    verdict = f"4 domains at {s4:.2f}x (contract >= {min_speedup:.2f}x)"
else:
    verdict = (f"speedup contract skipped: host has {cores} core(s), "
               f"need >= 4 for a meaningful 4v1 measurement")

if failures:
    print("perf gate FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)

print(f"perf gate ok: {len(runs)} E20-wall runs conserved; {verdict}")
EOF

# --- E21-elastic: the elastic-membership throughput contract ------------
#
# Deterministic DES quantities, compared per scenario against the committed
# baseline, plus the tentpole claims on the current run alone:
#   - every row conserves value at end of run;
#   - auto-rebalancing restores the hot-site workload to >= 90% of the
#     balanced late-window rate (and beats no-rebalance by >= 1.5x);
#   - the join row ends with one more member, the leave row with one
#     fewer, both past at least one epoch bump.
# Refresh the baseline with:
#   dune exec bench/main.exe -- E21-elastic --out bench/baselines

baseline21="bench/baselines/BENCH_E21_elastic.json"

if [ ! -s "$baseline21" ]; then
  echo "perf gate: no baseline at $baseline21" >&2
  exit 1
fi

echo "== perf gate: bench E21-elastic vs $baseline21 (tol ${PERF_TOL}) =="
dune exec bench/main.exe -- E21-elastic --out "$tmpdir" >/dev/null

python3 - "$baseline21" "$tmpdir/BENCH_E21_elastic.json" "$PERF_TOL" <<'EOF'
import json, sys

base_doc = json.load(open(sys.argv[1]))
cur_doc = json.load(open(sys.argv[2]))
tol = float(sys.argv[3])

base = {r["scenario"]: r for r in base_doc["runs"]}
cur = {r["scenario"]: r for r in cur_doc["runs"]}

failures = []

missing = set(base) - set(cur)
if missing:
    failures.append(f"runs missing from current output: {sorted(missing)}")

for k, b in base.items():
    c = cur.get(k)
    if c is None:
        continue
    for field in ("throughput", "late_throughput"):
        if c[field] < b[field] * (1.0 - tol):
            failures.append(
                f"{k}: {field} {c[field]:.1f} < baseline {b[field]:.1f} - {tol:.0%}")

for k, c in cur.items():
    if not c.get("end_conserved", False):
        failures.append(f"{k}: value NOT conserved at end of run")

balanced = cur.get("balanced")
skewed = cur.get("skewed")
reb = cur.get("skewed, rebalanced")
if balanced and skewed and reb:
    if reb["late_throughput"] < balanced["late_throughput"] * 0.90:
        failures.append(
            f"rebalanced late throughput {reb['late_throughput']:.1f} below 90% "
            f"of balanced {balanced['late_throughput']:.1f}")
    if reb["late_throughput"] < skewed["late_throughput"] * 1.5:
        failures.append(
            f"rebalancing buys only "
            f"{reb['late_throughput'] / max(skewed['late_throughput'], 1e-9):.2f}x "
            f"over the skewed row (need >= 1.5x)")

join = cur.get("join mid-run")
if join is not None and (join["members"] != 5 or join["epoch"] < 1):
    failures.append(
        f"join row ended with {join['members']} members at epoch {join['epoch']} "
        f"(want 5 members past an epoch bump)")
leave = cur.get("leave mid-run")
if leave is not None and (leave["members"] != 3 or leave["epoch"] < 1):
    failures.append(
        f"leave row ended with {leave['members']} members at epoch {leave['epoch']} "
        f"(want 3 members past an epoch bump)")

if failures:
    print("perf gate FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)

ratio = reb["late_throughput"] / max(skewed["late_throughput"], 1e-9)
print(f"perf gate ok: {len(base)} E21 runs within {tol:.0%} of baseline, "
      f"rebalancing restores {ratio:.1f}x over the skewed row")
EOF

# --- E22-trace: the observability plane's overhead contract -------------
#
# Wall-clock rates are host-dependent, so nothing is compared against the
# baseline's absolute numbers.  What the gate enforces on the current run:
#   - both modes conserve value at quiesce (always);
#   - with tracing on, the merged shard stream reconstructs to exactly the
#     commit count Metrics reports (always — completeness, not speed);
#   - with >= 2 real cores, tracing costs < max_overhead_pct committed/s
#     (the contract recorded in the committed baseline).  On a single-core
#     host the 4 domains time-slice and tracing work is serialised onto the
#     same core, inflating the measurement, so the contract is skipped.
# Refresh the baseline with:
#   dune exec bench/main.exe -- E22-trace --out bench/baselines

baseline22="bench/baselines/BENCH_E22_trace.json"

if [ ! -s "$baseline22" ]; then
  echo "perf gate: no baseline at $baseline22" >&2
  exit 1
fi

echo "== perf gate: bench E22-trace (contract from $baseline22) =="
dune exec bench/main.exe -- E22-trace --out "$tmpdir" >/dev/null

python3 - "$baseline22" "$tmpdir/BENCH_E22_trace.json" <<'EOF'
import json, sys

base_doc = json.load(open(sys.argv[1]))
cur_doc = json.load(open(sys.argv[2]))

def pick(doc, key):
    for r in doc["runs"]:
        if key in r:
            return r[key]
    return None

max_overhead = (pick(base_doc, "contract") or {}).get("max_overhead_pct", 5.0)
modes = {r["mode"]: r for r in cur_doc["runs"] if "mode" in r}
overhead = pick(cur_doc, "overhead_pct")

failures = []

for mode, r in sorted(modes.items()):
    if not r["conserved"]:
        failures.append(f"tracing {mode}: value NOT conserved at quiesce")
    if r["committed"] <= 0:
        failures.append(f"tracing {mode}: committed nothing")

on = modes.get("on")
if on is None or "off" not in modes:
    failures.append("expected one 'on' and one 'off' mode row")
elif not on["spans_match_metrics"]:
    failures.append("merged trace spans disagree with Metrics commit counts")

cores = next(iter(modes.values()))["cores"] if modes else 0
if cores >= 2 and overhead is not None:
    if overhead > max_overhead:
        failures.append(
            f"tracing overhead {overhead:.1f}% exceeds contract "
            f"{max_overhead:.1f}% on a {cores}-core host")
    verdict = f"tracing overhead {overhead:.1f}% (contract <= {max_overhead:.1f}%)"
else:
    verdict = (f"overhead contract skipped: host has {cores} core(s), need >= 2 "
               f"for a meaningful tracing-overhead measurement "
               f"(measured {overhead:.1f}%)")

if failures:
    print("perf gate FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)

print(f"perf gate ok: E22-trace spans match metrics; {verdict}")
EOF

# --- E23-scale: the DES core's scalability contract ---------------------
#
# DES-side quantities (committed, events, conservation) are deterministic
# in the seed and compared per row; wall-clock throughput and RSS are
# host-dependent, so the gate gives them a wide band (E23_TOL, default
# 0.5) and anchors it at the 256-site row — small enough to be stable,
# large enough that an O(sites) regression in the event core shows up as
# multiples.  The 1024-site row is gated only on the tentpole claim
# itself: it completes, conserves value, and commits > min_committed_1024.
# Refresh the baseline with:
#   dune exec bench/main.exe -- E23-SCALE --out bench/baselines

baseline23="bench/baselines/BENCH_E23_scale.json"
E23_TOL="${E23_TOL:-0.5}"

if [ ! -s "$baseline23" ]; then
  echo "perf gate: no baseline at $baseline23" >&2
  exit 1
fi

echo "== perf gate: bench E23-scale vs $baseline23 (tol ${E23_TOL}) =="
dune exec bench/main.exe -- E23-SCALE --out "$tmpdir" >/dev/null

python3 - "$baseline23" "$tmpdir/BENCH_E23_scale.json" "$E23_TOL" <<'EOF'
import json, sys

base_doc = json.load(open(sys.argv[1]))
cur_doc = json.load(open(sys.argv[2]))
tol = float(sys.argv[3])

def contract(doc):
    for r in doc["runs"]:
        if "contract" in r:
            return r["contract"]
    return {}

c = contract(base_doc)
min_committed = c.get("min_committed_1024", 1_000_000)
gate_sites = c.get("gate_sites", 256)

base = {r["sites"]: r for r in base_doc["runs"] if "sites" in r}
cur = {r["sites"]: r for r in cur_doc["runs"] if "sites" in r}

failures = []

missing = set(base) - set(cur)
if missing:
    failures.append(f"rows missing from current output: {sorted(missing)}")

for sites, b in sorted(base.items()):
    r = cur.get(sites)
    if r is None:
        continue
    if not r["conserved"]:
        failures.append(f"{sites} sites: value NOT conserved at end of run")
    # Deterministic DES quantities: must match the baseline exactly.
    for field in ("submitted", "committed", "events"):
        if r[field] != b[field]:
            failures.append(
                f"{sites} sites: {field} {r[field]} != baseline {b[field]} "
                f"(DES quantities are seed-deterministic)")

g, bg = cur.get(gate_sites), base.get(gate_sites)
if g is not None and bg is not None:
    if g["events_per_sec"] < bg["events_per_sec"] * (1.0 - tol):
        failures.append(
            f"{gate_sites} sites: events/s {g['events_per_sec']:.0f} < baseline "
            f"{bg['events_per_sec']:.0f} - {tol:.0%}")
    if g["committed_per_sec"] < bg["committed_per_sec"] * (1.0 - tol):
        failures.append(
            f"{gate_sites} sites: committed/s {g['committed_per_sec']:.0f} < baseline "
            f"{bg['committed_per_sec']:.0f} - {tol:.0%}")
    if g["peak_rss_kb"] > bg["peak_rss_kb"] * (1.0 + tol):
        failures.append(
            f"{gate_sites} sites: peak RSS {g['peak_rss_kb']} kB > baseline "
            f"{bg['peak_rss_kb']} kB + {tol:.0%}")

big = cur.get(1024)
if big is None:
    failures.append("no 1024-site row in current output")
elif big["committed"] < min_committed:
    failures.append(
        f"1024 sites: committed {big['committed']} < contract {min_committed}")

if failures:
    print("perf gate FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)

print(f"perf gate ok: {len(base)} E23 rows conserved and seed-exact; "
      f"1024 sites committed {big['committed']} in {big['wall_s']:.1f}s wall "
      f"({big['committed_per_sec']:.0f}/s)")
EOF

# --- E24-wallchaos: crash-restart recovery on the domains runtime -------
#
# Wall-clock rates and recovery latency are host-dependent, so absolute
# numbers are NOT compared against the baseline.  What the gate enforces
# on the current run:
#   - every seed conserves value at quiesce after a hard kill with a torn
#     WAL tail (always);
#   - every revival provably replays the stable log and the run commits
#     traffic (always);
#   - with >= 2 real cores, revival completes within max_revive_ms and the
#     post-recovery commit rate holds >= min_post_frac of the pre-kill
#     rate (the contract recorded in the committed baseline).  On a
#     single-core host the recovering domain time-slices against the bg
#     load, inflating both measurements, so the timing band is skipped.
# Refresh the baseline with:
#   dune exec bench/main.exe -- E24-WALLCHAOS --out bench/baselines

baseline24="bench/baselines/BENCH_E24_wallchaos.json"

if [ ! -s "$baseline24" ]; then
  echo "perf gate: no baseline at $baseline24" >&2
  exit 1
fi

echo "== perf gate: bench E24-wallchaos (contract from $baseline24) =="
dune exec bench/main.exe -- E24-WALLCHAOS --out "$tmpdir" >/dev/null

python3 - "$baseline24" "$tmpdir/BENCH_E24_wallchaos.json" <<'EOF'
import json, sys

base_doc = json.load(open(sys.argv[1]))
cur_doc = json.load(open(sys.argv[2]))

def contract(doc):
    for r in doc["runs"]:
        if "contract" in r:
            return r["contract"]
    return {}

c = contract(base_doc)
max_revive_ms = c.get("max_revive_ms", 1500.0)
min_post_frac = c.get("min_post_frac", 0.4)

runs = [r for r in cur_doc["runs"] if "seed" in r]

failures = []

for r in runs:
    s = r["seed"]
    if not r["conserved"]:
        failures.append(f"seed {s}: value NOT conserved at quiesce")
    if r["committed"] <= 0:
        failures.append(f"seed {s}: committed nothing")
    if r["replayed"] <= 0:
        failures.append(f"seed {s}: revival replayed no stable records")

cores = runs[0]["cores"] if runs else 0
if cores >= 2:
    for r in runs:
        s = r["seed"]
        if r["revive_ms"] > max_revive_ms:
            failures.append(
                f"seed {s}: revive took {r['revive_ms']:.0f} ms "
                f"(contract <= {max_revive_ms:.0f} ms on a {cores}-core host)")
        if r["post_rate"] < r["pre_rate"] * min_post_frac:
            failures.append(
                f"seed {s}: post-recovery rate {r['post_rate']:.0f}/s below "
                f"{min_post_frac:.0%} of pre-kill {r['pre_rate']:.0f}/s")
    worst = max((r["revive_ms"] for r in runs), default=0.0)
    verdict = f"worst revive {worst:.0f} ms (contract <= {max_revive_ms:.0f} ms)"
else:
    worst = max((r["revive_ms"] for r in runs), default=0.0)
    verdict = (f"timing band skipped: host has {cores} core(s), need >= 2 for "
               f"a meaningful recovery measurement (worst revive {worst:.0f} ms)")

if failures:
    print("perf gate FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)

replayed = sum(r["replayed"] for r in runs)
print(f"perf gate ok: {len(runs)} E24 seeds conserved through kill+torn-tail, "
      f"{replayed} records replayed; {verdict}")
EOF
