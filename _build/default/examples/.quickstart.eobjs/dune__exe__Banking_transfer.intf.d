examples/banking_transfer.mli:
