examples/partition_survival.ml: Dvp_baseline Dvp_workload Faultplan Float List Printf Runner Setup Spec String
