examples/settlement_audit.ml: Dvp Dvp_sim Dvp_util Filename List Printf
