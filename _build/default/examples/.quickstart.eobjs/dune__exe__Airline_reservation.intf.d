examples/airline_reservation.mli:
