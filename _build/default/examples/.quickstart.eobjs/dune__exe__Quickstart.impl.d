examples/quickstart.ml: Array Dvp Printf String
