examples/airline_reservation.ml: Array Dvp Dvp_sim List Printf
