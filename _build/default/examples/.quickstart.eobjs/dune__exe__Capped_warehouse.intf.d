examples/capped_warehouse.mli:
