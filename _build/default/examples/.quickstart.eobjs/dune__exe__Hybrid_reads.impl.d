examples/hybrid_reads.ml: Dvp Dvp_sim Dvp_util Printf
