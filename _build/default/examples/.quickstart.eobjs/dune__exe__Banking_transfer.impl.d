examples/banking_transfer.ml: Dvp Dvp_net Dvp_sim Dvp_util Printf
