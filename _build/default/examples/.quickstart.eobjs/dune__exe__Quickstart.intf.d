examples/quickstart.mli:
