examples/settlement_audit.mli:
