examples/partition_survival.mli:
