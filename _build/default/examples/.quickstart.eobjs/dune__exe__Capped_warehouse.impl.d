examples/capped_warehouse.ml: Dvp Dvp_sim Dvp_util Printf
