examples/inventory_hotspot.mli:
