examples/inventory_hotspot.ml: Array Dvp Dvp_baseline Dvp_net Dvp_sim Dvp_util Printf
