examples/hybrid_reads.mli:
