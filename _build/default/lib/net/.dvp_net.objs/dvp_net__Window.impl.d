lib/net/window.ml: Dvp_sim Hashtbl Queue
