lib/net/window.mli: Dvp_sim
