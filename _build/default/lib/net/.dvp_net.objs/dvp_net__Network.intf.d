lib/net/network.mli: Dvp_sim Dvp_util Linkstate
