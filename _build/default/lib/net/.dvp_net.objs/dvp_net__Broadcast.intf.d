lib/net/broadcast.mli: Dvp_sim
