lib/net/linkstate.ml: Dvp_util Float
