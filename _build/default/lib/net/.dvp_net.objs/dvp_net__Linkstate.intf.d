lib/net/linkstate.mli: Dvp_util
