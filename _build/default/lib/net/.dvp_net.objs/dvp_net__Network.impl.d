lib/net/network.ml: Array Dvp_sim Dvp_util Linkstate List
