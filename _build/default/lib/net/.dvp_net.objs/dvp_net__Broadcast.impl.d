lib/net/broadcast.ml: Array Dvp_sim
