type params = {
  delay_mean : float;
  delay_jitter : float;
  loss_prob : float;
  dup_prob : float;
}

let default =
  { delay_mean = 0.005; delay_jitter = 0.002; loss_prob = 0.0; dup_prob = 0.0 }

let lossy p = { default with loss_prob = p }

type t = { mutable p : params; mutable up : bool }

let create p = { p; up = true }

let params t = t.p

let set_params t p = t.p <- p

let is_up t = t.up

let set_up t v = t.up <- v

let sample_delay t rng =
  let jitter =
    if t.p.delay_jitter <= 0.0 then 0.0 else Dvp_util.Rng.float rng t.p.delay_jitter
  in
  Float.max 1e-6 (t.p.delay_mean +. jitter)

let drops t rng = (not t.up) || Dvp_util.Rng.bernoulli rng t.p.loss_prob

let duplicates t rng = t.p.dup_prob > 0.0 && Dvp_util.Rng.bernoulli rng t.p.dup_prob
