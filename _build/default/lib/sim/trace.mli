(** Structured event trace.

    Sites and protocol layers append human-readable trace entries tagged with
    simulated time and a category; tests assert on the trace, and examples
    print it to narrate a run.  The buffer is bounded to keep long experiment
    runs cheap: once full, the oldest entries are dropped. *)

type t

type entry = { time : float; category : string; message : string }

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 65536 entries. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Disabled traces drop entries without formatting cost. *)

val record : t -> time:float -> category:string -> string -> unit

val recordf :
  t -> time:float -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format is only evaluated when the trace is
    enabled. *)

val entries : t -> entry list
(** Oldest first. *)

val find : t -> category:string -> entry list

val count : t -> category:string -> int

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit

val dump : t -> string
