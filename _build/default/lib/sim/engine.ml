type timer = Dvp_util.Heap.handle

type t = {
  queue : (unit -> unit) Dvp_util.Heap.t;
  mutable clock : float;
  mutable stopping : bool;
}

exception Stopped

let create () = { queue = Dvp_util.Heap.create (); clock = 0.0; stopping = false }

let now t = t.clock

let schedule_at t ~at f =
  let at = if at < t.clock then t.clock else at in
  Dvp_util.Heap.add t.queue ~priority:at f

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~at:(t.clock +. delay) f

let cancel t timer = Dvp_util.Heap.cancel t.queue timer

let pending t = Dvp_util.Heap.length t.queue

let step t =
  match Dvp_util.Heap.pop t.queue with
  | None -> false
  | Some (at, f) ->
    t.clock <- at;
    f ();
    true

let run_until t horizon =
  let rec loop () =
    if t.stopping then t.stopping <- false
    else
      match Dvp_util.Heap.peek t.queue with
      | Some (at, _) when at <= horizon ->
        ignore (step t);
        loop ()
      | Some _ | None -> t.clock <- Float.max t.clock horizon
  in
  loop ()

let run t =
  let rec loop () =
    if t.stopping then t.stopping <- false else if step t then loop ()
  in
  loop ()

let stop t = t.stopping <- true
