lib/sim/engine.ml: Dvp_util Float
