lib/sim/engine.mli:
