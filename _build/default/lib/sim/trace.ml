type entry = { time : float; category : string; message : string }

type t = {
  capacity : int;
  buf : entry option array;
  mutable next : int; (* next write slot *)
  mutable count : int;
  mutable on : bool;
}

let create ?(capacity = 65536) () =
  { capacity; buf = Array.make capacity None; next = 0; count = 0; on = true }

let enabled t = t.on

let set_enabled t v = t.on <- v

let record t ~time ~category message =
  if t.on then begin
    t.buf.(t.next) <- Some { time; category; message };
    t.next <- (t.next + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1
  end

let recordf t ~time ~category fmt =
  Format.kasprintf
    (fun s -> if t.on then record t ~time ~category s)
    fmt

let entries t =
  let start = if t.count < t.capacity then 0 else t.next in
  let out = ref [] in
  for i = t.count - 1 downto 0 do
    match t.buf.((start + i) mod t.capacity) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let find t ~category = List.filter (fun e -> e.category = category) (entries t)

let count t ~category = List.length (find t ~category)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let pp_entry ppf e =
  Format.fprintf ppf "[%10.4f] %-12s %s" e.time e.category e.message

let dump t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" pp_entry e))
    (entries t);
  Buffer.contents buf
