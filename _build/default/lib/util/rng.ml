type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: mix the incremented state. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: 62 random bits (fits OCaml's native
     63-bit int) reduced mod n.  Bias is negligible (< 2^-40) for every bound
     used in the simulator. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits into [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let poisson t lambda =
  if lambda <= 0.0 then 0
  else if lambda < 30.0 then begin
    let limit = exp (-.lambda) in
    let rec loop k prod =
      let prod = prod *. float t 1.0 in
      if prod <= limit then k else loop (k + 1) prod
    in
    loop 0 1.0
  end
  else begin
    (* Normal approximation with continuity correction; adequate for
       workload arrival counts. *)
    let u1 = float t 1.0 and u2 = float t 1.0 in
    let u1 = if u1 <= 0.0 then 1e-300 else u1 in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    let v = lambda +. (sqrt lambda *. z) +. 0.5 in
    if v < 0.0 then 0 else int_of_float v
  end

(* Zipf CDF tables are memoised: experiments repeatedly draw from the same
   (n, s) distribution. *)
let zipf_tables : (int * float, float array) Hashtbl.t = Hashtbl.create 16

let zipf_table n s =
  match Hashtbl.find_opt zipf_tables (n, s) with
  | Some c -> c
  | None ->
    let c = Array.make n 0.0 in
    let total = ref 0.0 in
    for k = 1 to n do
      total := !total +. (1.0 /. Float.pow (float_of_int k) s);
      c.(k - 1) <- !total
    done;
    for k = 0 to n - 1 do
      c.(k) <- c.(k) /. !total
    done;
    Hashtbl.replace zipf_tables (n, s) c;
    c

let zipf t n s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if s < 0.0 then invalid_arg "Rng.zipf: exponent must be nonnegative";
  if s = 0.0 then 1 + int t n
  else begin
    let table = zipf_table n s in
    let u = float t 1.0 in
    (* Binary search for the first index with cdf >= u. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if table.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    1 + search 0 (n - 1)
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))
