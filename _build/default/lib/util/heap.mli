(** Binary min-heap with stable handles, used as the simulator event queue.

    Entries are ordered by a float priority with an integer sequence number as
    tie-breaker, which makes simulation runs fully deterministic: two events
    scheduled for the same instant fire in insertion order.  Handles permit
    O(log n) cancellation of pending timers. *)

type 'a t

type handle
(** A ticket identifying an inserted element.  Handles are never reused within
    one heap. *)

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> priority:float -> 'a -> handle
(** Insert an element; smaller priorities pop first, ties pop in insertion
    order. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element with its priority. *)

val peek : 'a t -> (float * 'a) option

val cancel : 'a t -> handle -> bool
(** [cancel t h] removes the element named by [h] if it is still queued.
    Returns [true] if something was removed. *)

val mem : 'a t -> handle -> bool
(** Whether the handle still names a queued element. *)

val clear : 'a t -> unit

val to_list : 'a t -> (float * 'a) list
(** Snapshot in pop order (non-destructive; O(n log n)). *)
