(** ASCII table rendering for the benchmark harness.

    All experiment output in [bench/main.exe] goes through this module so the
    tables look uniform and can be diffed between runs. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create columns] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; raises [Invalid_argument] if the arity differs from the
    header. *)

val add_sep : t -> unit
(** Append a horizontal separator row. *)

val render : t -> string

val print : t -> unit
(** [render] followed by [print_string], with a trailing newline. *)

(** Cell formatting helpers. *)

val fint : int -> string

val ffloat : ?dec:int -> float -> string
(** Fixed-decimal float ([dec] defaults to 2); [nan] renders as ["-"]. *)

val fpct : ?dec:int -> float -> string
(** Fraction rendered as a percentage, e.g. [fpct 0.25 = "25.0%"]. *)
