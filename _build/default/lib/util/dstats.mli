(** Descriptive statistics accumulators for experiment metrics.

    Two flavours are provided: a constant-space online accumulator for
    mean/variance/extrema ({!t}), and a sample reservoir for exact percentiles
    ({!Sample}).  Experiment runs are small enough (≤ a few million
    observations) that exact percentiles over the full sample are practical. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** Mean of the observations; [nan] if empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] if fewer than two observations. *)

val stddev : t -> float

val min_value : t -> float
(** Smallest observation; [nan] if empty. *)

val max_value : t -> float

val total : t -> float
(** Sum of all observations. *)

val merge : t -> t -> t
(** Combine two accumulators (parallel-variance formula). *)

(** Exact-percentile sample store. *)
module Sample : sig
  type s

  val create : unit -> s

  val add : s -> float -> unit

  val count : s -> int

  val percentile : s -> float -> float
  (** [percentile s p] with [p] in [0,100]; nearest-rank with linear
      interpolation.  [nan] if empty. *)

  val median : s -> float

  val mean : s -> float

  val max_value : s -> float

  val to_array : s -> float array
  (** Sorted copy of the observations. *)
end

(** Fixed-bucket histogram (for latency distributions in reports). *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  (** Values below [lo] land in the first bucket, above [hi] in the last. *)

  val add : h -> float -> unit

  val counts : h -> int array

  val bucket_bounds : h -> (float * float) array

  val render : h -> width:int -> string
  (** ASCII bar rendering, one line per non-empty bucket. *)
end
