type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean_acc = 0.0; m2 = 0.0; minv = infinity; maxv = neg_infinity; sum = 0.0 }

(* Welford's online update. *)
let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean_acc

let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t = if t.n = 0 then nan else t.minv

let max_value t = if t.n = 0 then nan else t.maxv

let total t = t.sum

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean_acc -. a.mean_acc in
    let mean_acc =
      a.mean_acc +. (delta *. float_of_int b.n /. float_of_int n)
    in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean_acc;
      m2;
      minv = Float.min a.minv b.minv;
      maxv = Float.max a.maxv b.maxv;
      sum = a.sum +. b.sum;
    }
  end

module Sample = struct
  type s = { mutable data : float array; mutable len : int; mutable sorted : bool }

  let create () = { data = Array.make 64 0.0; len = 0; sorted = true }

  let add s x =
    if s.len = Array.length s.data then begin
      let fresh = Array.make (2 * s.len) 0.0 in
      Array.blit s.data 0 fresh 0 s.len;
      s.data <- fresh
    end;
    s.data.(s.len) <- x;
    s.len <- s.len + 1;
    s.sorted <- false

  let count s = s.len

  let ensure_sorted s =
    if not s.sorted then begin
      let sub = Array.sub s.data 0 s.len in
      Array.sort compare sub;
      Array.blit sub 0 s.data 0 s.len;
      s.sorted <- true
    end

  let percentile s p =
    if s.len = 0 then nan
    else begin
      ensure_sorted s;
      let rank = p /. 100.0 *. float_of_int (s.len - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let lo = max 0 (min lo (s.len - 1)) and hi = max 0 (min hi (s.len - 1)) in
      let frac = rank -. Float.floor rank in
      s.data.(lo) +. (frac *. (s.data.(hi) -. s.data.(lo)))
    end

  let median s = percentile s 50.0

  let mean s =
    if s.len = 0 then nan
    else begin
      let sum = ref 0.0 in
      for i = 0 to s.len - 1 do
        sum := !sum +. s.data.(i)
      done;
      !sum /. float_of_int s.len
    end

  let max_value s =
    if s.len = 0 then nan
    else begin
      ensure_sorted s;
      s.data.(s.len - 1)
    end

  let to_array s =
    ensure_sorted s;
    Array.sub s.data 0 s.len
end

module Histogram = struct
  type h = { lo : float; hi : float; buckets : int array }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 then invalid_arg "Histogram.create: need at least one bucket";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; buckets = Array.make buckets 0 }

  let bucket_index h x =
    let n = Array.length h.buckets in
    if x < h.lo then 0
    else if x >= h.hi then n - 1
    else
      let w = (h.hi -. h.lo) /. float_of_int n in
      min (n - 1) (int_of_float ((x -. h.lo) /. w))

  let add h x =
    let i = bucket_index h x in
    h.buckets.(i) <- h.buckets.(i) + 1

  let counts h = Array.copy h.buckets

  let bucket_bounds h =
    let n = Array.length h.buckets in
    let w = (h.hi -. h.lo) /. float_of_int n in
    Array.init n (fun i ->
        (h.lo +. (float_of_int i *. w), h.lo +. (float_of_int (i + 1) *. w)))

  let render h ~width =
    let bounds = bucket_bounds h in
    let maxc = Array.fold_left max 1 h.buckets in
    let buf = Buffer.create 256 in
    Array.iteri
      (fun i count ->
        if count > 0 then begin
          let lo, hi = bounds.(i) in
          let bar = count * width / maxc in
          Buffer.add_string buf
            (Printf.sprintf "[%8.3f, %8.3f) %6d %s\n" lo hi count (String.make bar '#'))
        end)
      h.buckets;
    Buffer.contents buf
end
