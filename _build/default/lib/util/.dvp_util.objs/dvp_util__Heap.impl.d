lib/util/heap.ml: Array Hashtbl List
