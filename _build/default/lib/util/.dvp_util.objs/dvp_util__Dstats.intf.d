lib/util/dstats.mli:
