lib/util/table.mli:
