lib/util/dstats.ml: Array Buffer Float Printf String
