lib/util/rng.mli:
