lib/util/heap.mli:
