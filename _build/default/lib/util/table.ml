type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun acc row ->
        match row with
        | Sep -> acc
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) acc cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  let hline () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit_cells aligns cells =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        let a = List.nth aligns i in
        Buffer.add_string buf ("| " ^ pad a w c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title -> Buffer.add_string buf (title ^ "\n")
  | None -> ());
  hline ();
  emit_cells (List.map (fun _ -> Left) t.headers) t.headers;
  hline ();
  List.iter
    (fun row -> match row with Sep -> hline () | Cells cells -> emit_cells t.aligns cells)
    rows;
  hline ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fint = string_of_int

let ffloat ?(dec = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" dec x

let fpct ?(dec = 1) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f%%" dec (100.0 *. x)
