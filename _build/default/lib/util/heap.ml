type handle = int

type 'a entry = { prio : float; seq : int; value : 'a; id : handle }

type 'a t = {
  mutable data : 'a entry array;
  (* data.(0 .. size-1) is a valid binary heap. *)
  mutable size : int;
  mutable next_seq : int;
  mutable next_id : int;
  (* handle -> current index in [data]; absent once popped or cancelled. *)
  positions : (handle, int) Hashtbl.t;
}

let create () =
  { data = [||]; size = 0; next_seq = 0; next_id = 0; positions = Hashtbl.create 64 }

let length t = t.size

let is_empty t = t.size = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let set t i e =
  t.data.(i) <- e;
  Hashtbl.replace t.positions e.id i

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let a = t.data.(i) and b = t.data.(parent) in
      set t i b;
      set t parent a;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let a = t.data.(i) and b = t.data.(!smallest) in
    set t i b;
    set t !smallest a;
    sift_down t !smallest
  end

(* Grow the backing array, using [fill] (the entry about to be inserted) for
   the fresh slots so no dummy value is ever needed. *)
let grow t fill =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else 2 * cap in
  let fresh = Array.make new_cap fill in
  Array.blit t.data 0 fresh 0 t.size;
  t.data <- fresh

let add t ~priority value =
  let id = t.next_id in
  t.next_id <- id + 1;
  let e = { prio = priority; seq = t.next_seq; value; id } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.data then grow t e;
  set t t.size e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  id

let remove_at t i =
  let removed = t.data.(i) in
  Hashtbl.remove t.positions removed.id;
  t.size <- t.size - 1;
  if i <> t.size then begin
    set t i t.data.(t.size);
    (* The moved element may need to travel either direction. *)
    sift_up t i;
    sift_down t i
  end;
  removed

let pop t =
  if t.size = 0 then None
  else
    let e = remove_at t 0 in
    Some (e.prio, e.value)

let peek t = if t.size = 0 then None else Some (t.data.(0).prio, t.data.(0).value)

let cancel t h =
  match Hashtbl.find_opt t.positions h with
  | None -> false
  | Some i ->
    ignore (remove_at t i);
    true

let mem t h = Hashtbl.mem t.positions h

let clear t =
  t.size <- 0;
  Hashtbl.reset t.positions

let to_list t =
  let entries = Array.sub t.data 0 t.size in
  let l = Array.to_list entries in
  let sorted = List.sort (fun a b -> if less a b then -1 else 1) l in
  List.map (fun e -> (e.prio, e.value)) sorted
