(** Deterministic pseudo-random number generation for the simulator.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    SplitMix64 (Steele, Lea & Flood 2014): tiny state, excellent statistical
    quality for simulation purposes, and cheap {!split}ting into independent
    streams — one stream per site / per link keeps fault schedules independent
    of workload draws. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy sharing the current state (diverges after next draw). *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n-1].  [n] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean (not rate). *)

val poisson : t -> float -> int
(** [poisson t lambda] draws a Poisson-distributed count (Knuth's method for
    small lambda, normal approximation above 30). *)

val zipf : t -> int -> float -> int
(** [zipf t n s] draws from a Zipf distribution over [1..n] with exponent
    [s >= 0] ([s = 0] is uniform).  Uses an inverted-CDF table cached per
    [(n, s)] pair. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  @raise Invalid_argument on []. *)
