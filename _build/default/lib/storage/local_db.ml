type ts = int * int

let ts_zero = (0, -1)

let ts_compare (c1, s1) (c2, s2) =
  let c = compare c1 c2 in
  if c <> 0 then c else compare s1 s2

type row = { mutable v : int; mutable ts : ts }

type t = { rows : (int, row) Hashtbl.t }

let create () = { rows = Hashtbl.create 32 }

let find t item = Hashtbl.find_opt t.rows item

let ensure t ~item =
  if not (Hashtbl.mem t.rows item) then
    Hashtbl.replace t.rows item { v = 0; ts = ts_zero }

let mem t ~item = Hashtbl.mem t.rows item

let value t ~item = match find t item with Some r -> r.v | None -> 0

let set_value t ~item v =
  if v < 0 then invalid_arg "Local_db.set_value: fragments are nonnegative";
  ensure t ~item;
  match find t item with Some r -> r.v <- v | None -> assert false

let add t ~item delta =
  ensure t ~item;
  match find t item with
  | Some r ->
    let v = r.v + delta in
    if v < 0 then invalid_arg "Local_db.add: fragment would go negative";
    r.v <- v
  | None -> assert false

let timestamp t ~item = match find t item with Some r -> r.ts | None -> ts_zero

let set_timestamp t ~item ts =
  ensure t ~item;
  match find t item with Some r -> r.ts <- ts | None -> assert false

let items t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.rows [] |> List.sort compare

let total t = Hashtbl.fold (fun _ r acc -> acc + r.v) t.rows 0

let wipe t = Hashtbl.reset t.rows
