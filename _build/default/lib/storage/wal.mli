(** Simulated write-ahead log on stable storage.

    The paper's protocols hinge on the distinction between what survives a
    site crash (the stable log) and what does not (the in-memory database,
    lock table, and timers).  This module models exactly that boundary:

    - {!append} places a record in a volatile buffer;
    - {!force} pushes the buffer to stable storage (counted, because forced
      writes are the expensive operation a real system pays for);
    - {!crash} discards the volatile buffer — stable records survive;
    - {!records} scans the stable prefix, which is what recovery replays.

    [append ~forced:true] (the default) models the paper's "write one log
    record to stable storage" steps.  Tests inject crashes between append and
    force to check that the protocols only depend on forced records. *)

type 'r t

val create : unit -> 'r t

val append : ?forced:bool -> 'r t -> 'r -> unit
(** Append a record.  With [forced = true] (default) the record and any
    earlier buffered records hit stable storage atomically. *)

val force : 'r t -> unit
(** Flush the volatile buffer to stable storage. *)

val crash : 'r t -> unit
(** Lose the volatile buffer (site crash). *)

val records : 'r t -> 'r list
(** Stable records, oldest first.  Buffered-but-unforced records are not
    included. *)

val buffered : 'r t -> int
(** Records appended but not yet forced. *)

val stable_length : 'r t -> int

val forces : 'r t -> int
(** Number of force operations performed (metric: log-force cost). *)

val appended : 'r t -> int
(** Total records ever appended (including any later lost to crashes). *)

val iter : 'r t -> ('r -> unit) -> unit
(** Iterate stable records oldest-first. *)

val fold : 'r t -> init:'a -> f:('a -> 'r -> 'a) -> 'a

val end_index : 'r t -> int
(** Absolute index one past the newest stable record (monotone across
    truncations). *)

val truncate_before : 'r t -> keep_from:int -> unit
(** Checkpointing support: drop stable records with index < [keep_from].
    Subsequent {!records} still yields oldest-first with original order. *)
