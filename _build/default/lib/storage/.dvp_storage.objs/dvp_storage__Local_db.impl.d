lib/storage/local_db.ml: Hashtbl List
