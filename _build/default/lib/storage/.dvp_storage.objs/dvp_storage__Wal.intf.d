lib/storage/wal.mli:
