lib/storage/stable.mli:
