lib/storage/wal.ml: List
