lib/storage/local_db.mli:
