lib/storage/stable.ml: List
