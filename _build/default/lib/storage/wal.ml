type 'r t = {
  mutable stable : 'r list; (* newest first *)
  mutable stable_len : int;
  mutable buffer : 'r list; (* newest first *)
  mutable buffer_len : int;
  mutable force_count : int;
  mutable append_count : int;
  mutable base_index : int; (* index of the oldest retained stable record *)
}

let create () =
  {
    stable = [];
    stable_len = 0;
    buffer = [];
    buffer_len = 0;
    force_count = 0;
    append_count = 0;
    base_index = 0;
  }

let force t =
  if t.buffer_len > 0 then begin
    (* Both lists are newest-first, so the flushed log is buffer @ stable. *)
    t.stable <- t.buffer @ t.stable;
    t.stable_len <- t.stable_len + t.buffer_len;
    t.buffer <- [];
    t.buffer_len <- 0
  end;
  t.force_count <- t.force_count + 1

let append ?(forced = true) t r =
  t.buffer <- r :: t.buffer;
  t.buffer_len <- t.buffer_len + 1;
  t.append_count <- t.append_count + 1;
  if forced then force t

let crash t =
  t.buffer <- [];
  t.buffer_len <- 0

let records t = List.rev t.stable

let buffered t = t.buffer_len

let stable_length t = t.stable_len

let forces t = t.force_count

let appended t = t.append_count

let iter t f = List.iter f (records t)

let fold t ~init ~f = List.fold_left f init (records t)

let end_index t = t.base_index + t.stable_len

let truncate_before t ~keep_from =
  let drop = keep_from - t.base_index in
  if drop > 0 then begin
    let keep = max 0 (t.stable_len - drop) in
    (* stable is newest-first; keep the newest [keep] records. *)
    let rec take n l acc =
      if n = 0 then List.rev acc
      else match l with [] -> List.rev acc | x :: rest -> take (n - 1) rest (x :: acc)
    in
    t.stable <- take keep t.stable [];
    t.stable_len <- keep;
    t.base_index <- keep_from
  end
