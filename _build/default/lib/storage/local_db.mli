(** Per-site volatile database of data-value fragments.

    Each site stores, for every data item it participates in, a fragment
    record: the locally-held portion of the item's value and the timestamp of
    the last transaction that locked it (Section 6.1).  The store itself is
    volatile — on a crash it is wiped and rebuilt by replaying the stable log
    (Section 7) — which the recovery tests rely on.

    Values are non-negative integers: every domain the paper considers
    (seats, inventory units, money) is an integer quantity, and Π is
    summation.  See [Dvp.Value] for the algebra and its laws. *)

type ts = int * int
(** Timestamp [(counter, site)] with lexicographic order; unique across sites
    (Section 7's "site identifier in the low order bits"). *)

val ts_zero : ts

val ts_compare : ts -> ts -> int

type t

val create : unit -> t

val ensure : t -> item:int -> unit
(** Make sure a fragment row exists (initial value 0, timestamp zero). *)

val mem : t -> item:int -> bool

val value : t -> item:int -> int
(** Current fragment value; 0 if the row does not exist. *)

val set_value : t -> item:int -> int -> unit
(** @raise Invalid_argument on negative values: fragments are quantities. *)

val add : t -> item:int -> int -> unit
(** [add t ~item delta] adjusts the fragment; the result must stay ≥ 0. *)

val timestamp : t -> item:int -> ts

val set_timestamp : t -> item:int -> ts -> unit

val items : t -> int list
(** All item ids with rows, ascending. *)

val total : t -> int
(** Sum of all fragment values at this site. *)

val wipe : t -> unit
(** Crash: drop everything.  Recovery replays the log into a fresh store. *)
