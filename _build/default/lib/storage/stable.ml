type region = { mutable write_count : int; mutable resets : (unit -> unit) list }

let region () = { write_count = 0; resets = [] }

type 'a cell = { reg : region; mutable v : 'a }

let cell reg v = { reg; v }

let get c = c.v

let set c v =
  c.reg.write_count <- c.reg.write_count + 1;
  c.v <- v

let writes reg = reg.write_count

type 'a volatile = { init : unit -> 'a; mutable cur : 'a }

let volatile reg init =
  let t = { init; cur = init () } in
  reg.resets <- (fun () -> t.cur <- t.init ()) :: reg.resets;
  t

let vget t = t.cur

let vset t v = t.cur <- v

let crash_volatile reg = List.iter (fun f -> f ()) reg.resets
