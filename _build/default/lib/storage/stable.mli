(** Individual stable-storage cells.

    Besides the WAL, sites keep a handful of small stable variables (for
    example the per-peer acknowledgement high-water marks of the Vm engine can
    be checkpointed here).  A [Stable.cell] survives {!crash_volatile} calls
    on the owning {!region}; paired volatile shadows do not.

    This module is a thin abstraction, but making the stable/volatile split
    explicit in types keeps crash-handling code honest: a site's crash
    handler resets exactly the volatile region and nothing else. *)

type region

val region : unit -> region

type 'a cell

val cell : region -> 'a -> 'a cell
(** A stable cell with an initial value. *)

val get : 'a cell -> 'a

val set : 'a cell -> 'a -> unit
(** Synchronous stable write (counted). *)

val writes : region -> int
(** Number of stable writes in this region (metric). *)

type 'a volatile

val volatile : region -> (unit -> 'a) -> 'a volatile
(** A volatile variable with a reinitialisation thunk, re-run on crash. *)

val vget : 'a volatile -> 'a

val vset : 'a volatile -> 'a -> unit

val crash_volatile : region -> unit
(** Reset every volatile variable in the region to its initial value. *)
