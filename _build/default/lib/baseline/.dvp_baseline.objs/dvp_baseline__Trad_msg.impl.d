lib/baseline/trad_msg.ml: Dvp Format
