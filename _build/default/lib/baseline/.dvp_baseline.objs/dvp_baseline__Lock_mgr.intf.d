lib/baseline/lock_mgr.mli: Dvp Dvp_sim
