lib/baseline/trad_system.mli: Dvp Dvp_net Dvp_sim Trad_site
