lib/baseline/escrow.mli: Dvp Dvp_sim
