lib/baseline/trad_msg.mli: Dvp Format
