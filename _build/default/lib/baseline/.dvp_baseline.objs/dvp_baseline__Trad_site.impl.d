lib/baseline/trad_site.ml: Dvp Dvp_sim Dvp_storage Hashtbl List Lock_mgr Trad_msg
