lib/baseline/lock_mgr.ml: Dvp Dvp_sim Hashtbl List Option Queue
