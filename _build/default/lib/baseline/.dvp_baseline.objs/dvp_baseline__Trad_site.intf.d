lib/baseline/trad_site.mli: Dvp Dvp_sim Trad_msg
