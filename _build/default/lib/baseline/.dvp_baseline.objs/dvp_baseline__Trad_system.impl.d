lib/baseline/trad_system.ml: Array Dvp Dvp_net Dvp_sim Dvp_util Queue Trad_msg Trad_site
