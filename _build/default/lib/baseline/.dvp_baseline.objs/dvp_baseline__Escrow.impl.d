lib/baseline/escrow.ml: Dvp Dvp_sim Hashtbl List Queue
