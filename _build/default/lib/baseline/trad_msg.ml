type write = { item : Dvp.Ids.item; value : int; version : int }

type read_result = { item : Dvp.Ids.item; value : int; version : int }

type t =
  | Exec of { txn : Dvp.Ids.txn; coordinator : Dvp.Ids.site; items : Dvp.Ids.item list }
  | Exec_ack of { txn : Dvp.Ids.txn; ok : bool; reads : read_result list }
  | Prepare of { txn : Dvp.Ids.txn; writes : write list }
  | Vote of { txn : Dvp.Ids.txn; yes : bool }
  | Precommit of { txn : Dvp.Ids.txn }
  | Precommit_ack of { txn : Dvp.Ids.txn }
  | Decision of { txn : Dvp.Ids.txn; commit : bool }
  | Decision_ack of { txn : Dvp.Ids.txn }
  | Status_query of { txn : Dvp.Ids.txn }
  | Status_reply of { txn : Dvp.Ids.txn; decision : bool option }

let pp ppf m =
  let txn_of = function
    | Exec { txn; _ }
    | Exec_ack { txn; _ }
    | Prepare { txn; _ }
    | Vote { txn; _ }
    | Precommit { txn }
    | Precommit_ack { txn }
    | Decision { txn; _ }
    | Decision_ack { txn }
    | Status_query { txn }
    | Status_reply { txn; _ } -> txn
  in
  let tag = function
    | Exec _ -> "Exec"
    | Exec_ack { ok; _ } -> if ok then "Exec_ack(+)" else "Exec_ack(-)"
    | Prepare _ -> "Prepare"
    | Vote { yes; _ } -> if yes then "Vote(yes)" else "Vote(no)"
    | Precommit _ -> "Precommit"
    | Precommit_ack _ -> "Precommit_ack"
    | Decision { commit; _ } -> if commit then "Decision(commit)" else "Decision(abort)"
    | Decision_ack _ -> "Decision_ack"
    | Status_query _ -> "Status_query"
    | Status_reply { decision; _ } -> (
      match decision with
      | Some true -> "Status_reply(commit)"
      | Some false -> "Status_reply(abort)"
      | None -> "Status_reply(?)")
  in
  Format.fprintf ppf "%s[%a]" (tag m) Dvp.Ids.pp_txn (txn_of m)
