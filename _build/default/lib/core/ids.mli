(** Identifiers and timestamps.

    Transactions are identified by their timestamp (Section 6.1: "Every
    transaction t is given a (unique) timestamp TS(t) which also serves as its
    identifier").  Timestamps are Lamport-style pairs [(counter, site)]: the
    site identifier occupies "the low order bits" (Section 7) so timestamps
    are globally unique, and counters are bumped on message receipt so a
    recovering site's clock catches up. *)

type site = int

type item = int

type ts = int * int
(** [(counter, site)], ordered lexicographically. *)

val ts_zero : ts

val ts_compare : ts -> ts -> int

val ts_lt : ts -> ts -> bool

val ts_max : ts -> ts -> ts

val pp_ts : Format.formatter -> ts -> unit

type txn = ts
(** Transaction id = its timestamp. *)

val pp_txn : Format.formatter -> txn -> unit

(** Per-site Lamport clock. *)
module Clock : sig
  type t

  val create : site -> t

  val site : t -> site

  val next : t -> ts
  (** Fresh, strictly increasing timestamp for a new transaction. *)

  val witness : t -> ts -> unit
  (** Advance past an observed remote timestamp (Lamport receive rule). *)

  val witness_counter : t -> int -> unit

  val current_counter : t -> int

  val reset_to : t -> int -> unit
  (** Recovery: restart the counter at the given value (typically the highest
      counter found in the stable log). *)
end
