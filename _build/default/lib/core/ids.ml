type site = int

type item = int

type ts = int * int

let ts_zero = (0, -1)

let ts_compare (c1, s1) (c2, s2) =
  let c = compare c1 c2 in
  if c <> 0 then c else compare s1 s2

let ts_lt a b = ts_compare a b < 0

let ts_max a b = if ts_compare a b >= 0 then a else b

let pp_ts ppf (c, s) = Format.fprintf ppf "%d.%d" c s

type txn = ts

let pp_txn = pp_ts

module Clock = struct
  type t = { site : site; mutable counter : int }

  let create site = { site; counter = 0 }

  let site t = t.site

  let next t =
    t.counter <- t.counter + 1;
    (t.counter, t.site)

  let witness t (c, _) = if c > t.counter then t.counter <- c

  let witness_counter t c = if c > t.counter then t.counter <- c

  let current_counter t = t.counter

  let reset_to t c = t.counter <- c
end
