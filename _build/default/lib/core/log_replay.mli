(** Shared stable-log replay logic.

    Three consumers reconstruct state from a site's log: the site's own
    recovery (database + clock), the Vm engine's recovery (sequence
    counters, outbox, watermarks), and the omniscient invariant checker
    (which must read a *crashed* site's stable state without touching the
    live structures).  This module is the single definition of what a log
    means, so the three can never disagree — including across {!Log_event.t}
    [Checkpoint] records, which reset the scan to a snapshot (Section 7's
    "checkpointing mechanisms" that bound the redo work). *)

type vm_outstanding = { item : Ids.item; amount : int; reply_to : Ids.txn option }

type vm_view = {
  vm_next_seq : int array;  (** per destination *)
  vm_acked : int array;  (** cumulative acks learned, per destination *)
  vm_accepted : int array;  (** acceptance watermark, per peer *)
  vm_outbox : (Ids.site * int, vm_outstanding) Hashtbl.t;
      (** (dst, seq) → payload still owed delivery *)
}

val vm_view : n:int -> Log_event.t Dvp_storage.Wal.t -> vm_view

type db_view = {
  db : Dvp_storage.Local_db.t;
  redo : int;  (** committed transactions lacking an applied record *)
  max_counter : int;  (** highest transaction counter seen *)
}

val db_view : ?into:Dvp_storage.Local_db.t -> Log_event.t Dvp_storage.Wal.t -> db_view
(** [into] defaults to a fresh store; pass the site's live store during
    recovery. *)
