(** The data-value partitioning algebra (Section 4.1).

    A data item [d] from domain Γ is represented as a multiset
    [b ∈ Γ⁺] of fragments with a surjective aggregation map [Π : Γ⁺ → Γ].
    Every domain the paper considers — seats on a flight, units in an
    inventory, money in an account — is a non-negative integer quantity with
    Π = summation, so fragments here are [int]s ≥ 0 and {!pi} is [sum].

    The functions in this module are the algebra plus the *laws* the paper
    states for it; the laws are exported as boolean checkers so the
    property-test suite can exercise them directly:

    - partitionable property: regrouping a multiset and replacing each group
      by its Π-image preserves Π ({!law_partitionable});
    - partitionable operators commute with Π on any fragment
      ({!law_operator_commutes}, via {!Op});
    - concurrent partitionable operators on disjoint fragments commute with
      each other ([g (h d) = h (g d)], {!law_operators_commute_pairwise}). *)

type fragment = int
(** A fragment is a non-negative quantity. *)

val pi : fragment list -> int
(** The aggregation map Π: summation. *)

val valid_fragment : fragment -> bool
(** Non-negativity. *)

val valid_multiset : fragment list -> bool

val split_even : int -> parts:int -> fragment list
(** [split_even v ~parts] partitions [v] into [parts] fragments differing by
    at most one, preserving Π.  @raise Invalid_argument if [parts <= 0] or
    [v < 0]. *)

val split_weighted : int -> weights:float list -> fragment list
(** Split proportionally to [weights] (non-negative, not all zero); rounding
    residue goes to the largest weight.  Π is preserved exactly. *)

val split_random : Dvp_util.Rng.t -> int -> parts:int -> fragment list
(** A uniformly random composition of [v] into [parts] non-negative
    fragments; preserves Π.  Used by property tests and workload setup. *)

(** {2 Law checkers (for qcheck)} *)

val law_partitionable : fragment list -> int list -> bool
(** [law_partitionable b cut_points] regroups [b] at the given boundaries,
    maps each group through Π and checks Π is preserved. *)

val law_split_preserves_pi : int -> parts:int -> bool

val law_operator_commutes : Op.t -> fragment list -> bool
(** Applying an operator to one fragment changes Π by exactly the operator's
    effect on the aggregate — when the application is effective. *)

val law_operators_commute_pairwise : Op.t -> Op.t -> int -> bool
(** [g (h d)] = [h (g d)] whenever both orders are effective. *)
