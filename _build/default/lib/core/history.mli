(** Serializability checking over recorded histories (Section 6).

    The paper's correctness criterion is serializability *subject to
    redistribution*: a concurrent execution must be equivalent to some
    serial execution of the committed transactions.  For partitionable
    operators the updates commute, so the observable constraints all come
    from full reads: each committed read of item [d] must have returned
    [initial + Σ deltas] of exactly the updates serialized before it, and
    the serial order must respect real time (an operation that committed
    before another *started* must serialize first).

    {!check} decides a sound approximation: for every read it requires

    - every update that committed before the read started is included;
    - every update that started after the read committed is excluded;
    - some subset of the remaining (time-overlapping) updates makes the
      arithmetic work (a subset-sum over their deltas);

    and that the must-include sets grow monotonically along the real-time
    order of reads.  Any history rejected by this check is certainly not
    serializable; acceptance is sound for the workloads the test-suite
    generates (reads that do not overlap each other). *)

type t

val create : initial:int -> t

val record_update : t -> delta:int -> start_time:float -> commit_time:float -> unit
(** A committed update transaction's signed effect on the aggregate. *)

val record_read : t -> value:int -> start_time:float -> commit_time:float -> unit
(** A committed full read and the value it returned. *)

val events : t -> int
(** Number of recorded committed events. *)

val check : t -> bool
(** Whether the recorded history passes the serializability conditions
    above. *)

val explain : t -> string option
(** [None] if the history checks out; otherwise a description of the first
    violated read. *)
