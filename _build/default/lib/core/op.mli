(** Partitionable operators (Section 4.1).

    The paper's two canonical examples are "increment the argument by m" and
    "decrement the argument by m if the result does not fall below 0".  The
    latter shows why applications can be *ineffective*: applied to a fragment
    smaller than [m] the operation is a no-op, and the transaction must first
    gather value from other sites ({!Decr} is exactly the airline-seat
    allocation).

    Operators apply to a single fragment of an item's multiset; by the
    partitionable property the effect on Π is the same as applying them to
    the aggregate value. *)

type t =
  | Incr of int  (** increment by m; always effective.  [m >= 0]. *)
  | Decr of int
      (** decrement by m if the result stays ≥ 0; ineffective otherwise.
          [m >= 0]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val amount : t -> int

val delta : t -> int
(** Signed effect on Π of an effective application: [+m] or [-m]. *)

val effective : t -> fragment:int -> bool
(** Can the operator be applied effectively to this fragment? *)

val apply : t -> fragment:int -> int option
(** [apply op ~fragment] returns the new fragment value, or [None] if the
    application would be ineffective. *)

val shortfall : t -> fragment:int -> int
(** How much additional value the fragment needs before the operator becomes
    effective; 0 if already effective. *)

val is_read_only : t -> bool
(** [Incr 0] / [Decr 0] act as pure reads of availability. *)
