type t = {
  holders : (Ids.item, Ids.txn) Hashtbl.t;
  waiters : (Ids.item, (unit -> unit) Queue.t) Hashtbl.t;
}

let create () = { holders = Hashtbl.create 32; waiters = Hashtbl.create 8 }

let holder t ~item = Hashtbl.find_opt t.holders item

let is_locked t ~item = Hashtbl.mem t.holders item

let try_acquire t ~item ~txn =
  match Hashtbl.find_opt t.holders item with
  | None ->
    Hashtbl.replace t.holders item txn;
    true
  | Some owner -> Ids.ts_compare owner txn = 0

let try_acquire_all t ~items ~txn =
  let free item =
    match Hashtbl.find_opt t.holders item with
    | None -> true
    | Some owner -> Ids.ts_compare owner txn = 0
  in
  if List.for_all free items then begin
    List.iter (fun item -> Hashtbl.replace t.holders item txn) items;
    true
  end
  else false

(* Fire every queued waiter: waiters re-check state themselves (an honored
   request does not hold the lock, so popping one at a time would starve the
   rest; a waiter that finds the item locked again simply re-enqueues). *)
let fire_waiter t item =
  match Hashtbl.find_opt t.waiters item with
  | None -> ()
  | Some q ->
    Hashtbl.remove t.waiters item;
    Queue.iter (fun thunk -> thunk ()) q

let release t ~item ~txn =
  match Hashtbl.find_opt t.holders item with
  | Some owner when Ids.ts_compare owner txn = 0 ->
    Hashtbl.remove t.holders item;
    fire_waiter t item
  | Some _ | None -> ()

let release_all t ~txn =
  let mine =
    Hashtbl.fold
      (fun item owner acc -> if Ids.ts_compare owner txn = 0 then item :: acc else acc)
      t.holders []
  in
  List.iter (fun item -> release t ~item ~txn) mine;
  List.sort compare mine

let enqueue_waiter t ~item thunk =
  if is_locked t ~item then begin
    let q =
      match Hashtbl.find_opt t.waiters item with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.waiters item q;
        q
    in
    Queue.add thunk q
  end
  else thunk ()

let clear t =
  Hashtbl.reset t.holders;
  Hashtbl.reset t.waiters

let locked_items t =
  Hashtbl.fold (fun item _ acc -> item :: acc) t.holders [] |> List.sort compare
