type fragment = int

let pi = List.fold_left ( + ) 0

let valid_fragment f = f >= 0

let valid_multiset b = List.for_all valid_fragment b

let split_even v ~parts =
  if parts <= 0 then invalid_arg "Value.split_even: parts must be positive";
  if v < 0 then invalid_arg "Value.split_even: value must be nonnegative";
  let q = v / parts and r = v mod parts in
  List.init parts (fun i -> if i < r then q + 1 else q)

let split_weighted v ~weights =
  if v < 0 then invalid_arg "Value.split_weighted: value must be nonnegative";
  if weights = [] then invalid_arg "Value.split_weighted: no weights";
  if List.exists (fun w -> w < 0.0) weights then
    invalid_arg "Value.split_weighted: negative weight";
  let total = List.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Value.split_weighted: weights sum to zero";
  let floors = List.map (fun w -> int_of_float (float_of_int v *. w /. total)) weights in
  let assigned = pi floors in
  let residue = v - assigned in
  (* Give the rounding residue to the largest weight (first such index). *)
  let max_w = List.fold_left Float.max neg_infinity weights in
  let max_idx =
    let rec find i = function
      | [] -> 0
      | w :: _ when w = max_w -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 weights
  in
  List.mapi (fun i f -> if i = max_idx then f + residue else f) floors

let split_random rng v ~parts =
  if parts <= 0 then invalid_arg "Value.split_random: parts must be positive";
  if v < 0 then invalid_arg "Value.split_random: value must be nonnegative";
  (* Stars-and-bars: draw parts-1 cut points in [0, v] with replacement. *)
  let cuts = Array.init (parts - 1) (fun _ -> Dvp_util.Rng.int rng (v + 1)) in
  Array.sort compare cuts;
  let prev = ref 0 and out = ref [] in
  Array.iter
    (fun c ->
      out := (c - !prev) :: !out;
      prev := c)
    cuts;
  List.rev ((v - !prev) :: !out)

(* --------------------------------------------------------------- laws *)

(* Regroup [b] at ascending cut points (indices into the list), replace each
   group by Π(group), and check the overall Π is unchanged — the paper's
   "partitionable" property of the mapping. *)
let law_partitionable b cut_points =
  let n = List.length b in
  let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < n) cut_points) in
  let arr = Array.of_list b in
  let groups =
    let bounds = (0 :: cuts) @ [ n ] in
    let rec pairs = function
      | a :: (c :: _ as rest) -> (a, c) :: pairs rest
      | _ -> []
    in
    List.map
      (fun (lo, hi) -> Array.to_list (Array.sub arr lo (hi - lo)))
      (pairs bounds)
  in
  let b' = List.map pi groups in
  pi b' = pi b

let law_split_preserves_pi v ~parts = v < 0 || parts <= 0 || pi (split_even v ~parts) = v

let law_operator_commutes op b =
  match b with
  | [] -> true
  | x :: rest ->
    (match Op.apply op ~fragment:x with
    | None -> true (* ineffective applications are no-ops; nothing to check *)
    | Some x' ->
      (* Π(g(x), rest) = g(Π(x, rest)) for an effective application. *)
      pi (x' :: rest) = pi (x :: rest) + Op.delta op)

let law_operators_commute_pairwise g h d =
  let apply2 first second v =
    match Op.apply first ~fragment:v with
    | None -> None
    | Some v' -> Op.apply second ~fragment:v'
  in
  match (apply2 g h d, apply2 h g d) with
  | Some a, Some b -> a = b
  | _ -> true (* only claimed when both orders are effective *)
