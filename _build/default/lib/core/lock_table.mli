(** Exclusive locks on local data values.

    "Locks are required on the data values to be able to access them.  The
    lock for a data value is obtained at the same site at which the data
    value is resident" (Section 3).  All locks are exclusive (Section 5).

    The table is volatile: Section 7 argues lock state need not survive a
    failure, and recovery simply starts from an empty table.

    For Conc2, requests that find an item locked wait in a FIFO queue rather
    than being refused; {!enqueue_waiter} supports that mode. *)

type t

val create : unit -> t

val holder : t -> item:Ids.item -> Ids.txn option

val is_locked : t -> item:Ids.item -> bool

val try_acquire : t -> item:Ids.item -> txn:Ids.txn -> bool
(** Take the lock if free (or already held by the same transaction). *)

val try_acquire_all : t -> items:Ids.item list -> txn:Ids.txn -> bool
(** Atomic acquisition of a set of locks (transaction step 1: "these locks
    are obtained atomically").  Either all are taken or none. *)

val release : t -> item:Ids.item -> txn:Ids.txn -> unit
(** Release one lock; no-op if not held by [txn].  Fires the next queued
    waiter, if any. *)

val release_all : t -> txn:Ids.txn -> Ids.item list
(** Release every lock held by the transaction; returns the items freed. *)

val enqueue_waiter : t -> item:Ids.item -> (unit -> unit) -> unit
(** Register a thunk to run when the item's lock is next released (Conc2
    honored-request queueing).  Runs immediately if the item is free. *)

val clear : t -> unit
(** Crash: locks do not survive. *)

val locked_items : t -> Ids.item list
