lib/core/ids.ml: Format
