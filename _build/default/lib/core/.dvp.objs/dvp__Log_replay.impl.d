lib/core/log_replay.ml: Array Dvp_storage Hashtbl Ids List Log_event
