lib/core/backup.mli: Log_event Site System
