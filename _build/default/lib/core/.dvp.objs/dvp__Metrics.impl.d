lib/core/metrics.ml: Array Dvp_util Float Hashtbl List Option Printf
