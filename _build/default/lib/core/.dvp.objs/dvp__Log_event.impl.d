lib/core/log_event.ml: Dvp_storage Format Ids List Printf String
