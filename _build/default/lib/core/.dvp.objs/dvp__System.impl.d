lib/core/system.ml: Array Config Dvp_net Dvp_sim Dvp_storage Dvp_util Hashtbl Ids List Metrics Op Proto Site Value
