lib/core/site.ml: Array Config Dvp_sim Dvp_storage Dvp_util Format Hashtbl Ids List Lock_table Log_event Log_replay Metrics Op Proto Vm
