lib/core/capped.ml: Ids Op System
