lib/core/value.mli: Dvp_util Op
