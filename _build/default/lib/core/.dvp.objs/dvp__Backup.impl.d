lib/core/backup.ml: Dvp_storage Filename List Log_event Printf Site String Sys System
