lib/core/ids.mli: Format
