lib/core/log_replay.mli: Dvp_storage Hashtbl Ids Log_event
