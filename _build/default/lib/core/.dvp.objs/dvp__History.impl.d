lib/core/history.ml: Hashtbl List Printf
