lib/core/lock_table.ml: Hashtbl Ids List Queue
