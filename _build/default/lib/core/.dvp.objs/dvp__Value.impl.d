lib/core/value.ml: Array Dvp_util Float List Op
