lib/core/hybrid.mli: Ids Op Site System
