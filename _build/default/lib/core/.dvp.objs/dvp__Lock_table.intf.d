lib/core/lock_table.mli: Ids
