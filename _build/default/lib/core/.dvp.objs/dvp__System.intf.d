lib/core/system.mli: Config Dvp_net Dvp_sim Ids Metrics Op Proto Site
