lib/core/config.mli: Dvp_util Format Ids
