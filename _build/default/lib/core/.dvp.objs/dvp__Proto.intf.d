lib/core/proto.mli: Format Ids
