lib/core/site.mli: Config Dvp_sim Dvp_storage Dvp_util Ids Log_event Metrics Op Proto Vm
