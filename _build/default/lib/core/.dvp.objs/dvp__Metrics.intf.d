lib/core/metrics.mli:
