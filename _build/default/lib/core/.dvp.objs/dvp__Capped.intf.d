lib/core/capped.mli: Ids Site System
