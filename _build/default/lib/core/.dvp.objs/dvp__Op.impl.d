lib/core/op.ml: Format
