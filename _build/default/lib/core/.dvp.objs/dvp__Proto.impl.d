lib/core/proto.ml: Format Ids Printf
