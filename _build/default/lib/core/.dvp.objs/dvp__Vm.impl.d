lib/core/vm.ml: Array Dvp_sim Dvp_storage Hashtbl Ids List Log_event Log_replay Metrics Proto
