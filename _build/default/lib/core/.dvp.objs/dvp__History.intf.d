lib/core/history.mli:
