lib/core/log_event.mli: Dvp_storage Format Ids
