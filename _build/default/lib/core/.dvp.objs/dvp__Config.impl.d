lib/core/config.ml: Array Dvp_util Format List
