lib/core/hybrid.ml: Dvp_sim Hashtbl Ids List Site System
