lib/core/vm.mli: Dvp_sim Dvp_storage Ids Log_event Metrics Proto
