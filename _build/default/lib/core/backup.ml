module Wal = Dvp_storage.Wal

let export_site site ~path =
  let oc = open_out path in
  let n = ref 0 in
  (try
     Wal.iter (Site.wal site) (fun record ->
         output_string oc (Log_event.encode record);
         output_char oc '\n';
         incr n)
   with e ->
     close_out oc;
     raise e);
  close_out oc;
  !n

let import_records ~path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> (
      if String.trim line = "" then go acc
      else
        match Log_event.decode line with
        | Some record -> go (record :: acc)
        | None -> Error line)
    | exception End_of_file -> Ok (List.rev acc)
  in
  let result = go [] in
  close_in ic;
  result

let restore_site site ~path =
  match import_records ~path with
  | Error line -> Error (Printf.sprintf "malformed log line: %s" line)
  | Ok records ->
    (* Crash the site (dropping volatile state), swap in the backup as its
       entire stable log, and let ordinary recovery rebuild everything. *)
    Site.crash site;
    let wal = Site.wal site in
    Wal.truncate_before wal ~keep_from:(Wal.end_index wal);
    List.iter (fun r -> Wal.append ~forced:false wal r) records;
    Wal.force wal;
    Site.recover site;
    Ok (List.length records)

let export_system sys ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let total = ref 0 in
  for i = 0 to System.n_sites sys - 1 do
    total := !total + export_site (System.site sys i) ~path:(Filename.concat dir (Printf.sprintf "site-%d.log" i))
  done;
  !total

let restore_system sys ~dir =
  let rec go i acc =
    if i >= System.n_sites sys then Ok acc
    else
      match
        restore_site (System.site sys i)
          ~path:(Filename.concat dir (Printf.sprintf "site-%d.log" i))
      with
      | Ok n -> go (i + 1) (acc + n)
      | Error e -> Error (Printf.sprintf "site %d: %s" i e)
  in
  let result = go 0 0 in
  (match result with Ok _ -> System.recalibrate_expected sys | Error _ -> ());
  result
