type t = Incr of int | Decr of int

let pp ppf = function
  | Incr m -> Format.fprintf ppf "+%d" m
  | Decr m -> Format.fprintf ppf "-%d" m

let to_string t = Format.asprintf "%a" pp t

let amount = function Incr m | Decr m -> m

let delta = function Incr m -> m | Decr m -> -m

let effective op ~fragment =
  match op with Incr _ -> true | Decr m -> fragment >= m

let apply op ~fragment =
  match op with
  | Incr m -> Some (fragment + m)
  | Decr m -> if fragment >= m then Some (fragment - m) else None

let shortfall op ~fragment =
  match op with Incr _ -> 0 | Decr m -> max 0 (m - fragment)

let is_read_only op = amount op = 0
