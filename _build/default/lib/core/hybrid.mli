(** Dynamic interchange between DvP and a primary-copy regime (Section 8).

    "To make the best of both approaches, it may be preferable to design
    systems that can respond to different situations by dynamically
    interchanging between a DvP scheme and some traditional scheme."

    This manager watches the per-item operation mix over a sliding window
    and flips each item between two modes:

    - {b Partitioned} (the DvP default): value spread across sites, updates
      local, full reads expensive;
    - {b Centralized}: all value gathered at the item's home site.  Full
      reads are then served *at the home* — the drain trivially completes
      with zero-value responses and the value never moves — while updates
      from other sites pay one round trip for their shortfall, exactly like
      a primary-copy system.

    Switching uses only DvP primitives, so every safety property
    (conservation, non-blocking, independent recovery) is untouched:
    centralizing is a drain read at the home; re-partitioning is a set of
    explicit redistribution pushes ({!Site.push_value}).

    Route work through {!submit} and {!submit_read}; reads are redirected
    to the home site while an item is centralized. *)

type mode = Partitioned | Centralized

type t

val create :
  System.t ->
  ?hi:float ->
  ?lo:float ->
  ?window:float ->
  ?check_every:float ->
  unit ->
  t
(** Flip an item to Centralized when its read share over the last [window]
    seconds exceeds [hi] (default 0.10), back to Partitioned when it drops
    below [lo] (default 0.02).  The mix is re-evaluated every [check_every]
    seconds (default 1.0).  Hysteresis ([lo] < [hi]) prevents flapping. *)

val mode : t -> item:Ids.item -> mode

val home : t -> item:Ids.item -> Ids.site
(** The designated home site ([item mod n]). *)

val submit :
  t ->
  site:Ids.site ->
  ops:(Ids.item * Op.t) list ->
  on_done:(Site.txn_result -> unit) ->
  unit

val submit_read :
  t -> site:Ids.site -> item:Ids.item -> on_done:(Site.txn_result -> unit) -> unit

val centralizations : t -> int
(** How many mode flips to Centralized have happened (for reports). *)

val repartitions : t -> int
