type update = { delta : int; u_start : float; u_commit : float }

type read = { value : int; r_start : float; r_commit : float }

type t = { initial : int; mutable updates : update list; mutable reads : read list }

let create ~initial = { initial; updates = []; reads = [] }

let record_update t ~delta ~start_time ~commit_time =
  t.updates <- { delta; u_start = start_time; u_commit = commit_time } :: t.updates

let record_read t ~value ~start_time ~commit_time =
  t.reads <- { value; r_start = start_time; r_commit = commit_time } :: t.reads

let events t = List.length t.updates + List.length t.reads

(* Subset-sum over a small list of signed deltas: can some subset sum to
   [target]?  The sums are bounded by the workload sizes, so a set-of-sums
   sweep is fine. *)
let subset_sum deltas target =
  let sums = Hashtbl.create 64 in
  Hashtbl.replace sums 0 ();
  List.iter
    (fun d ->
      let current = Hashtbl.fold (fun s () acc -> s :: acc) sums [] in
      List.iter (fun s -> Hashtbl.replace sums (s + d) ()) current)
    deltas;
  Hashtbl.mem sums target

let classify t read =
  (* Partition the updates against the read's real-time interval. *)
  let must, optional =
    List.fold_left
      (fun (must, optional) u ->
        if u.u_commit < read.r_start then (u :: must, optional)
        else if u.u_start > read.r_commit then (must, optional)
        else (must, u :: optional))
      ([], []) t.updates
  in
  (must, optional)

let read_violation t read =
  let must, optional = classify t read in
  let base = t.initial + List.fold_left (fun acc u -> acc + u.delta) 0 must in
  let target = read.value - base in
  if subset_sum (List.map (fun u -> u.delta) optional) target then None
  else
    Some
      (Printf.sprintf
         "read of %d committed at %.4f cannot be explained: %d certain updates give %d, \
          and no subset of the %d overlapping updates bridges the gap of %d"
         read.value read.r_commit (List.length must) base (List.length optional) target)

(* Reads that do not overlap must observe monotonically growing histories:
   a later read's certain set contains the earlier one's, and its value must
   be reachable from the earlier read's value using only updates not already
   forced into the earlier read. *)
let chain_violation t =
  let reads = List.sort (fun a b -> compare a.r_commit b.r_commit) t.reads in
  let rec pairs = function
    | r1 :: (r2 :: _ as rest) when r1.r_commit < r2.r_start ->
      let _, optional1 = classify t r1 in
      let between =
        List.filter (fun u -> u.u_commit >= r1.r_start && u.u_start <= r2.r_commit) t.updates
      in
      (* From r1's value, r2 must be reachable by adding a subset of the
         updates that could serialize between them (optional for r1, plus
         anything overlapping or after r1 up to r2). *)
      let candidates =
        (* Union of the two record lists without duplicating shared
           elements (dedup by identity, never by delta value: two distinct
           +5 updates are two separate candidates). *)
        let extras = List.filter (fun u -> not (List.memq u optional1)) between in
        List.map (fun u -> u.delta) (optional1 @ extras)
      in
      if subset_sum candidates (r2.value - r1.value) then pairs rest
      else
        Some
          (Printf.sprintf
             "reads %d -> %d (committed %.4f -> %.4f) are not connected by any subset of \
              intervening updates"
             r1.value r2.value r1.r_commit r2.r_commit)
    | _ :: rest -> pairs rest
    | [] -> None
  in
  pairs reads

let explain t =
  let rec first_violation = function
    | [] -> None
    | r :: rest -> ( match read_violation t r with Some e -> Some e | None -> first_violation rest)
  in
  match first_violation t.reads with
  | Some e -> Some e
  | None -> chain_violation t

let check t = explain t = None
