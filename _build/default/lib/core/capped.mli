(** Capped quantities — a second partitionable data type (Section 9's
    "there is a need to find ways to extend the methods to handle more data
    types").

    A capped quantity is a value [v] with an upper bound: [0 ≤ v ≤ cap]
    (warehouse stock with finite shelf space, a bank account with an
    overdraft ceiling, a flight that cannot be overbooked by cancellations
    re-adding seats).  "Increment by m if the result stays ≤ cap" is *not* a
    partitionable operator over [v] alone — a site cannot check the bound
    against its fragment.

    The paper's machinery still covers it, by reduction: store the
    *headroom* [h = cap − v] as a second partitioned item, and express each
    operation as a two-item transaction of plain partitionable operators:

    - [decr m] (consume): [Decr m] on value, [Incr m] on headroom;
    - [incr m] (replenish): [Incr m] on value, [Decr m] on headroom.

    Bounded decrement on the headroom item is exactly the cap check, and
    conservation of both items gives the cap invariant
    [v + h = cap] globally, at all times, under any failures.  No new
    protocol machinery is needed — which is itself the point. *)

type t

val create :
  System.t ->
  value_item:Ids.item ->
  headroom_item:Ids.item ->
  cap:int ->
  ?initial:int ->
  unit ->
  t
(** Register the two underlying items on the system ([initial] defaults to
    [cap/2]), both split evenly.  The item ids must be fresh. *)

val cap : t -> int

val decr :
  t -> site:Ids.site -> amount:int -> on_done:(Site.txn_result -> unit) -> unit
(** Consume [amount] (fails — by timeout — if the global value would go
    negative). *)

val incr :
  t -> site:Ids.site -> amount:int -> on_done:(Site.txn_result -> unit) -> unit
(** Replenish [amount] (fails if the global value would exceed the cap). *)

val read :
  t -> site:Ids.site -> on_done:(Site.txn_result -> unit) -> unit
(** Full read of the current value (a drain of the value item). *)

val expected_value : t -> int
(** Aggregate value implied by committed operations. *)

val invariant : t -> bool
(** [v + h = cap] from the stable state (fragments + in-flight of both
    items); meaningful between simulator events. *)
