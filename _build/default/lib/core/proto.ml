type request_kind = Need of int | Drain

type t =
  | Request of { txn : Ids.txn; item : Ids.item; kind : request_kind }
  | Vm_data of {
      seq : int;
      item : Ids.item;
      amount : int;
      ts_counter : int;
      reply_to : Ids.txn option;
      ack_upto : int;
    }
  | Vm_ack of { upto : int }

let pp ppf = function
  | Request { txn; item; kind } ->
    let k = match kind with Need n -> Printf.sprintf "need %d" n | Drain -> "drain" in
    Format.fprintf ppf "Request(txn=%a item=%d %s)" Ids.pp_txn txn item k
  | Vm_data { seq; item; amount; _ } ->
    Format.fprintf ppf "Vm_data(seq=%d item=%d amount=%d)" seq item amount
  | Vm_ack { upto } -> Format.fprintf ppf "Vm_ack(upto=%d)" upto

let describe = function Request _ -> "req" | Vm_data _ -> "vm" | Vm_ack _ -> "ack"
