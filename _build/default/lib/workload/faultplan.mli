(** Declarative fault schedules.

    A plan is a list of timed actions applied to a {!Driver.t}; experiments
    build plans with the combinators below and hand them to {!Runner.run}. *)

type action =
  | Partition of Dvp.Ids.site list list
  | Heal
  | Crash of Dvp.Ids.site
  | Recover of Dvp.Ids.site
  | Set_links of Dvp_net.Linkstate.params

type event = { at : float; action : action }

type t = event list

val empty : t

val at : float -> action -> event

val partition_window : start:float -> len:float -> Dvp.Ids.site list list -> t
(** One partition episode: split at [start], heal at [start +. len]. *)

val repeated_partitions :
  period:float -> len:float -> until:float -> Dvp.Ids.site list list -> t
(** A partition of length [len] at the start of every [period], up to
    [until] — "flapping" connectivity. *)

val crash_cycle : site:Dvp.Ids.site -> first:float -> downtime:float -> t
(** Crash the site at [first], recover it [downtime] later. *)

val lossy_window : start:float -> len:float -> loss:float -> t
(** Degrade every link to the given loss probability for a window, then
    restore defaults. *)

val merge : t -> t -> t

val schedule : Driver.t -> t -> unit
(** Install every event on the driver's engine. *)
