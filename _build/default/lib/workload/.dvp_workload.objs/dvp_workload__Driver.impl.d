lib/workload/driver.ml: Dvp Dvp_baseline Dvp_net Dvp_sim
