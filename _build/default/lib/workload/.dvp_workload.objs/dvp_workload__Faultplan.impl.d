lib/workload/faultplan.ml: Driver Dvp Dvp_net Dvp_sim List
