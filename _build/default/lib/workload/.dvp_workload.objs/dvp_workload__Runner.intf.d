lib/workload/runner.mli: Driver Dvp Faultplan Format Spec
