lib/workload/driver.mli: Dvp Dvp_baseline Dvp_net Dvp_sim
