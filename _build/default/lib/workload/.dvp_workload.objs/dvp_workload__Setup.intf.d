lib/workload/setup.mli: Driver Dvp Dvp_baseline Dvp_net Spec
