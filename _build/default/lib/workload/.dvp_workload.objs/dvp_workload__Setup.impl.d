lib/workload/setup.ml: Driver Dvp Dvp_baseline List Spec
