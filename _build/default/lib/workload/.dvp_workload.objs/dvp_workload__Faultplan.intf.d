lib/workload/faultplan.mli: Driver Dvp Dvp_net
