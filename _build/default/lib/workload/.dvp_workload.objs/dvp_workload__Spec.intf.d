lib/workload/spec.mli: Dvp
