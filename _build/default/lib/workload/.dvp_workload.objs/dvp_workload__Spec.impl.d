lib/workload/spec.ml: Dvp List
