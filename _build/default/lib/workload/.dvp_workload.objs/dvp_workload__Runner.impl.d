lib/workload/runner.ml: Array Driver Dvp Dvp_sim Dvp_util Faultplan Float Format List Spec
