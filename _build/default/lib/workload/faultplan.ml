type action =
  | Partition of Dvp.Ids.site list list
  | Heal
  | Crash of Dvp.Ids.site
  | Recover of Dvp.Ids.site
  | Set_links of Dvp_net.Linkstate.params

type event = { at : float; action : action }

type t = event list

let empty = []

let at time action = { at = time; action }

let partition_window ~start ~len groups =
  [ at start (Partition groups); at (start +. len) Heal ]

let repeated_partitions ~period ~len ~until groups =
  let rec go start acc =
    if start >= until then List.rev acc
    else
      go (start +. period)
        (at (start +. len) Heal :: at start (Partition groups) :: acc)
  in
  go period []

let crash_cycle ~site ~first ~downtime =
  [ at first (Crash site); at (first +. downtime) (Recover site) ]

let lossy_window ~start ~len ~loss =
  [
    at start (Set_links (Dvp_net.Linkstate.lossy loss));
    at (start +. len) (Set_links Dvp_net.Linkstate.default);
  ]

let merge a b = List.sort (fun x y -> compare x.at y.at) (a @ b)

let apply (d : Driver.t) = function
  | Partition groups -> d.Driver.partition groups
  | Heal -> d.Driver.heal ()
  | Crash s -> d.Driver.crash s
  | Recover s -> d.Driver.recover s
  | Set_links p -> d.Driver.set_links p

let schedule d plan =
  List.iter
    (fun { at = time; action } ->
      ignore
        (Dvp_sim.Engine.schedule_at d.Driver.engine ~at:time (fun () -> apply d action)))
    plan
