bench/experiments.ml: Array Dvp Dvp_baseline Dvp_net Dvp_sim Dvp_storage Dvp_util Dvp_workload Float List Printf String
