bench/main.mli:
