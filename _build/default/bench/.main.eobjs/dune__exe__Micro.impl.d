bench/micro.ml: Analyze Bechamel Benchmark Dvp Dvp_storage Dvp_util Hashtbl Instance List Measure Printf Staged Test Time Toolkit
