(* Tests for the dvp_sim engine and trace. *)

open Dvp_sim

let test_empty_engine () =
  let e = Engine.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Engine.now e);
  Alcotest.(check bool) "no step" false (Engine.step e);
  Engine.run_until e 10.0;
  Alcotest.(check (float 0.0)) "clock advances to horizon" 10.0 (Engine.now e)

let test_schedule_order () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule e ~delay:3.0 (note "c"));
  ignore (Engine.schedule e ~delay:1.0 (note "a"));
  ignore (Engine.schedule e ~delay:2.0 (note "b"));
  Engine.run e;
  Alcotest.(check (list string)) "fired in time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule e ~delay:2.5 (fun () -> seen := Engine.now e :: !seen));
  ignore (Engine.schedule e ~delay:5.0 (fun () -> seen := Engine.now e :: !seen));
  Engine.run e;
  Alcotest.(check (list (float 1e-12))) "timestamps" [ 2.5; 5.0 ] (List.rev !seen)

let test_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         fired := "outer" :: !fired;
         ignore
           (Engine.schedule e ~delay:1.0 (fun () ->
                fired := "inner" :: !fired))));
  Engine.run e;
  Alcotest.(check (list string)) "chain" [ "outer"; "inner" ] (List.rev !fired);
  Alcotest.(check (float 1e-12)) "final time" 2.0 (Engine.now e)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let t = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Alcotest.(check bool) "cancelled" true (Engine.cancel e t);
  Engine.run e;
  Alcotest.(check bool) "did not fire" false !fired;
  Alcotest.(check bool) "cancel again" false (Engine.cancel e t)

let test_run_until_horizon () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule e ~delay:10.0 (fun () -> fired := 10 :: !fired));
  Engine.run_until e 5.0;
  Alcotest.(check (list int)) "only early event" [ 1 ] !fired;
  Alcotest.(check (float 1e-12)) "clock at horizon" 5.0 (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Engine.run_until e 20.0;
  Alcotest.(check (list int)) "late event fired" [ 10; 1 ] !fired

let test_negative_delay_clamped () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> ()));
  Engine.run e;
  let fired_at = ref nan in
  ignore (Engine.schedule e ~delay:(-3.0) (fun () -> fired_at := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 1e-12)) "clamped to now" 5.0 !fired_at

let test_schedule_at_past () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:4.0 (fun () -> ()));
  Engine.run e;
  let fired_at = ref nan in
  ignore (Engine.schedule_at e ~at:1.0 (fun () -> fired_at := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 1e-12)) "past clamped to now" 4.0 !fired_at

let test_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count = 3 then Engine.stop e;
    ignore (Engine.schedule e ~delay:1.0 tick)
  in
  ignore (Engine.schedule e ~delay:1.0 tick);
  Engine.run e;
  Alcotest.(check int) "stopped after three" 3 !count

let test_periodic_pattern () =
  (* A self-rescheduling event ticks exactly floor(horizon/period) times. *)
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule e ~delay:0.5 tick)
  in
  ignore (Engine.schedule e ~delay:0.5 tick);
  Engine.run_until e 10.0;
  Alcotest.(check int) "20 ticks" 20 !count

(* ---------------------------------------------------------------- Trace *)

let test_trace_basic () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~category:"msg" "hello";
  Trace.record t ~time:2.0 ~category:"txn" "commit";
  Trace.record t ~time:3.0 ~category:"msg" "world";
  Alcotest.(check int) "all entries" 3 (List.length (Trace.entries t));
  Alcotest.(check int) "msg count" 2 (Trace.count t ~category:"msg");
  let msgs = Trace.find t ~category:"msg" in
  Alcotest.(check (list string))
    "messages in order" [ "hello"; "world" ]
    (List.map (fun e -> e.Trace.message) msgs)

let test_trace_disabled () =
  let t = Trace.create () in
  Trace.set_enabled t false;
  Trace.record t ~time:1.0 ~category:"x" "dropped";
  Trace.recordf t ~time:2.0 ~category:"x" "also %s" "dropped";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.entries t))

let test_trace_recordf () =
  let t = Trace.create () in
  Trace.recordf t ~time:1.5 ~category:"fmt" "value=%d site=%s" 42 "X";
  match Trace.entries t with
  | [ e ] ->
    Alcotest.(check string) "formatted" "value=42 site=X" e.Trace.message;
    Alcotest.(check (float 0.0)) "time kept" 1.5 e.Trace.time
  | _ -> Alcotest.fail "expected exactly one entry"

let test_trace_ring_overflow () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record t ~time:(float_of_int i) ~category:"n" (string_of_int i)
  done;
  let kept = List.map (fun e -> e.Trace.message) (Trace.entries t) in
  Alcotest.(check (list string)) "last four kept" [ "7"; "8"; "9"; "10" ] kept

let test_trace_clear () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~category:"c" "x";
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.entries t));
  Trace.record t ~time:2.0 ~category:"c" "y";
  Alcotest.(check int) "usable after clear" 1 (List.length (Trace.entries t))

let test_trace_dump () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~category:"cat" "something happened";
  let s = Trace.dump t in
  Alcotest.(check bool) "nonempty dump" true (String.length s > 0)

(* Property: engine fires every scheduled event exactly once, in
   nondecreasing time order, for random schedules. *)
let prop_engine_fires_all =
  QCheck.Test.make ~name:"engine fires all events in order" ~count:100
    QCheck.(list (float_bound_inclusive 100.0))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d -> ignore (Engine.schedule e ~delay:d (fun () -> fired := Engine.now e :: !fired)))
        delays;
      Engine.run e;
      let fired = List.rev !fired in
      List.length fired = List.length delays
      && fired = List.sort compare fired)

let () =
  Alcotest.run "dvp_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "empty" `Quick test_empty_engine;
          Alcotest.test_case "schedule order" `Quick test_schedule_order;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "run_until horizon" `Quick test_run_until_horizon;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_clamped;
          Alcotest.test_case "schedule_at past" `Quick test_schedule_at_past;
          Alcotest.test_case "stop" `Quick test_stop;
          Alcotest.test_case "periodic" `Quick test_periodic_pattern;
          QCheck_alcotest.to_alcotest prop_engine_fires_all;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "recordf" `Quick test_trace_recordf;
          Alcotest.test_case "ring overflow" `Quick test_trace_ring_overflow;
          Alcotest.test_case "clear" `Quick test_trace_clear;
          Alcotest.test_case "dump" `Quick test_trace_dump;
        ] );
    ]
