(* Tests for dvp_storage: WAL crash semantics, stable cells, local DB. *)

open Dvp_storage

(* ------------------------------------------------------------------ Wal *)

let test_wal_append_force () =
  let w = Wal.create () in
  Wal.append w "a";
  Wal.append w "b";
  Alcotest.(check (list string)) "stable order" [ "a"; "b" ] (Wal.records w);
  Alcotest.(check int) "forces counted" 2 (Wal.forces w)

let test_wal_unforced_lost_on_crash () =
  let w = Wal.create () in
  Wal.append w "durable";
  Wal.append ~forced:false w "volatile";
  Alcotest.(check int) "buffered" 1 (Wal.buffered w);
  Wal.crash w;
  Alcotest.(check (list string)) "only forced survives" [ "durable" ] (Wal.records w);
  Alcotest.(check int) "buffer gone" 0 (Wal.buffered w)

let test_wal_force_flushes_batch () =
  let w = Wal.create () in
  Wal.append ~forced:false w 1;
  Wal.append ~forced:false w 2;
  Wal.append ~forced:false w 3;
  Alcotest.(check (list int)) "nothing stable yet" [] (Wal.records w);
  Wal.force w;
  Alcotest.(check (list int)) "batch in order" [ 1; 2; 3 ] (Wal.records w)

let test_wal_forced_append_flushes_earlier () =
  (* A forced append makes everything buffered before it durable too (the
     log is sequential). *)
  let w = Wal.create () in
  Wal.append ~forced:false w "early";
  Wal.append w "forced";
  Wal.crash w;
  Alcotest.(check (list string)) "both stable" [ "early"; "forced" ] (Wal.records w)

let test_wal_records_survive_crash () =
  let w = Wal.create () in
  for i = 1 to 100 do
    Wal.append w i
  done;
  Wal.crash w;
  Alcotest.(check int) "all stable" 100 (Wal.stable_length w);
  Alcotest.(check (list int)) "order kept" (List.init 100 (fun i -> i + 1)) (Wal.records w)

let test_wal_iter_fold () =
  let w = Wal.create () in
  List.iter (Wal.append w) [ 1; 2; 3; 4 ];
  let sum = Wal.fold w ~init:0 ~f:( + ) in
  Alcotest.(check int) "fold sum" 10 sum;
  let count = ref 0 in
  Wal.iter w (fun _ -> incr count);
  Alcotest.(check int) "iter count" 4 !count

let test_wal_appended_counter () =
  let w = Wal.create () in
  Wal.append w "a";
  Wal.append ~forced:false w "b";
  Wal.crash w;
  Alcotest.(check int) "appended counts lost ones" 2 (Wal.appended w)

let test_wal_truncate () =
  let w = Wal.create () in
  for i = 0 to 9 do
    Wal.append w i
  done;
  Wal.truncate_before w ~keep_from:6;
  Alcotest.(check (list int)) "suffix kept in order" [ 6; 7; 8; 9 ] (Wal.records w);
  (* Truncating to an already-dropped point is a no-op. *)
  Wal.truncate_before w ~keep_from:3;
  Alcotest.(check int) "idempotent-ish" 4 (Wal.stable_length w)

let test_wal_truncate_then_append () =
  let w = Wal.create () in
  for i = 0 to 4 do
    Wal.append w i
  done;
  Wal.truncate_before w ~keep_from:3;
  Wal.append w 99;
  Alcotest.(check (list int)) "append after truncate" [ 3; 4; 99 ] (Wal.records w)

(* Property: for a random interleaving of appends (forced/unforced), forces
   and crashes, the stable log is always a prefix-closed subsequence of the
   appended sequence, and equals it if every append was forced. *)
let prop_wal_stability =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (4, map (fun b -> `Append b) bool);
          (1, return `Force);
          (1, return `Crash);
        ])
  in
  QCheck.Test.make ~name:"wal stable log is a faithful prefix under crashes" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 60) op_gen))
    (fun ops ->
      let w = Wal.create () in
      let produced = ref [] in
      (* reference: track which appends must be stable *)
      let stable_ref = ref [] and buffer_ref = ref [] in
      let n = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Append forced ->
            incr n;
            let v = !n in
            produced := v :: !produced;
            Wal.append ~forced w v;
            buffer_ref := v :: !buffer_ref;
            if forced then begin
              stable_ref := !buffer_ref @ !stable_ref;
              buffer_ref := []
            end
          | `Force ->
            Wal.force w;
            stable_ref := !buffer_ref @ !stable_ref;
            buffer_ref := []
          | `Crash ->
            Wal.crash w;
            buffer_ref := [])
        ops;
      Wal.records w = List.rev !stable_ref)

(* --------------------------------------------------------------- Stable *)

let test_stable_cell_survives () =
  let reg = Stable.region () in
  let c = Stable.cell reg 10 in
  Stable.set c 42;
  Stable.crash_volatile reg;
  Alcotest.(check int) "stable survives" 42 (Stable.get c)

let test_volatile_resets () =
  let reg = Stable.region () in
  let v = Stable.volatile reg (fun () -> 0) in
  Stable.vset v 99;
  Alcotest.(check int) "set works" 99 (Stable.vget v);
  Stable.crash_volatile reg;
  Alcotest.(check int) "reset on crash" 0 (Stable.vget v)

let test_stable_write_count () =
  let reg = Stable.region () in
  let c = Stable.cell reg 0 in
  Stable.set c 1;
  Stable.set c 2;
  Alcotest.(check int) "writes counted" 2 (Stable.writes reg)

let test_multiple_volatiles () =
  let reg = Stable.region () in
  let a = Stable.volatile reg (fun () -> "init-a") in
  let b = Stable.volatile reg (fun () -> "init-b") in
  Stable.vset a "x";
  Stable.vset b "y";
  Stable.crash_volatile reg;
  Alcotest.(check string) "a reset" "init-a" (Stable.vget a);
  Alcotest.(check string) "b reset" "init-b" (Stable.vget b)

(* ------------------------------------------------------------- Local_db *)

let test_db_defaults () =
  let db = Local_db.create () in
  Alcotest.(check int) "missing value is 0" 0 (Local_db.value db ~item:7);
  Alcotest.(check bool) "not mem" false (Local_db.mem db ~item:7);
  Local_db.ensure db ~item:7;
  Alcotest.(check bool) "mem after ensure" true (Local_db.mem db ~item:7)

let test_db_set_add () =
  let db = Local_db.create () in
  Local_db.set_value db ~item:1 25;
  Local_db.add db ~item:1 (-10);
  Alcotest.(check int) "after ops" 15 (Local_db.value db ~item:1);
  Local_db.add db ~item:1 5;
  Alcotest.(check int) "incr" 20 (Local_db.value db ~item:1)

let test_db_nonnegative () =
  let db = Local_db.create () in
  Alcotest.check_raises "negative set"
    (Invalid_argument "Local_db.set_value: fragments are nonnegative") (fun () ->
      Local_db.set_value db ~item:1 (-1));
  Local_db.set_value db ~item:1 3;
  Alcotest.check_raises "negative add"
    (Invalid_argument "Local_db.add: fragment would go negative") (fun () ->
      Local_db.add db ~item:1 (-4))

let test_db_timestamps () =
  let db = Local_db.create () in
  Alcotest.(check bool) "default ts zero" true
    (Local_db.ts_compare (Local_db.timestamp db ~item:2) Local_db.ts_zero = 0);
  Local_db.set_timestamp db ~item:2 (5, 1);
  Alcotest.(check bool) "updated" true
    (Local_db.ts_compare (Local_db.timestamp db ~item:2) (5, 1) = 0)

let test_ts_ordering () =
  Alcotest.(check bool) "counter dominates" true (Local_db.ts_compare (1, 9) (2, 0) < 0);
  Alcotest.(check bool) "site breaks ties" true (Local_db.ts_compare (1, 0) (1, 1) < 0);
  Alcotest.(check bool) "equal" true (Local_db.ts_compare (3, 2) (3, 2) = 0)

let test_db_items_total () =
  let db = Local_db.create () in
  Local_db.set_value db ~item:3 10;
  Local_db.set_value db ~item:1 5;
  Local_db.set_value db ~item:2 0;
  Alcotest.(check (list int)) "items sorted" [ 1; 2; 3 ] (Local_db.items db);
  Alcotest.(check int) "total" 15 (Local_db.total db)

let test_db_wipe () =
  let db = Local_db.create () in
  Local_db.set_value db ~item:1 5;
  Local_db.wipe db;
  Alcotest.(check (list int)) "empty" [] (Local_db.items db);
  Alcotest.(check int) "no value" 0 (Local_db.value db ~item:1)

let () =
  Alcotest.run "dvp_storage"
    [
      ( "wal",
        [
          Alcotest.test_case "append+force" `Quick test_wal_append_force;
          Alcotest.test_case "unforced lost on crash" `Quick test_wal_unforced_lost_on_crash;
          Alcotest.test_case "force flushes batch" `Quick test_wal_force_flushes_batch;
          Alcotest.test_case "forced append flushes earlier" `Quick
            test_wal_forced_append_flushes_earlier;
          Alcotest.test_case "records survive crash" `Quick test_wal_records_survive_crash;
          Alcotest.test_case "iter/fold" `Quick test_wal_iter_fold;
          Alcotest.test_case "appended counter" `Quick test_wal_appended_counter;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
          Alcotest.test_case "truncate then append" `Quick test_wal_truncate_then_append;
          QCheck_alcotest.to_alcotest prop_wal_stability;
        ] );
      ( "stable",
        [
          Alcotest.test_case "cell survives crash" `Quick test_stable_cell_survives;
          Alcotest.test_case "volatile resets" `Quick test_volatile_resets;
          Alcotest.test_case "write count" `Quick test_stable_write_count;
          Alcotest.test_case "multiple volatiles" `Quick test_multiple_volatiles;
        ] );
      ( "local_db",
        [
          Alcotest.test_case "defaults" `Quick test_db_defaults;
          Alcotest.test_case "set/add" `Quick test_db_set_add;
          Alcotest.test_case "nonnegative" `Quick test_db_nonnegative;
          Alcotest.test_case "timestamps" `Quick test_db_timestamps;
          Alcotest.test_case "ts ordering" `Quick test_ts_ordering;
          Alcotest.test_case "items/total" `Quick test_db_items_total;
          Alcotest.test_case "wipe" `Quick test_db_wipe;
        ] );
    ]
