test/test_baseline.ml: Alcotest Array Dvp Dvp_baseline Dvp_net Dvp_sim Dvp_util Escrow Format Hashtbl List Lock_mgr Option QCheck QCheck_alcotest Trad_site Trad_system
