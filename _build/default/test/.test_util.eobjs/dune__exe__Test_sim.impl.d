test/test_sim.ml: Alcotest Dvp_sim Engine List QCheck QCheck_alcotest String Trace
