test/test_util.ml: Alcotest Array Dstats Dvp_util Float Gen Heap List Printf QCheck QCheck_alcotest Rng String Table
