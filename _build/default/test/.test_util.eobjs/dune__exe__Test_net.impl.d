test/test_net.ml: Alcotest Array Broadcast Dvp_net Dvp_sim Dvp_util Linkstate List Network QCheck QCheck_alcotest Window
