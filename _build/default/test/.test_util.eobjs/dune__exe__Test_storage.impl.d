test/test_storage.ml: Alcotest Dvp_storage List Local_db QCheck QCheck_alcotest Stable Wal
