test/test_vm.ml: Alcotest Array Dvp Dvp_sim Dvp_storage List Log_event Metrics Proto QCheck QCheck_alcotest Queue Vm
