test/test_workload.ml: Alcotest Driver Dvp Dvp_workload Faultplan List Runner Setup Spec
