(* Tests for dvp_workload: spec presets, fault plans, and the runner driving
   both the DvP system and the traditional baselines. *)

open Dvp_workload

let test_spec_presets () =
  let a = Spec.airline () and b = Spec.banking () and i = Spec.inventory () in
  Alcotest.(check string) "airline label" "airline" a.Spec.label;
  Alcotest.(check bool) "banking many items" true (List.length b.Spec.items >= 16);
  Alcotest.(check bool) "inventory hot item biggest" true
    (snd (List.hd i.Spec.items) > snd (List.nth i.Spec.items 1));
  Alcotest.(check bool) "fractions sane" true
    (List.for_all
       (fun s ->
         s.Spec.read_fraction >= 0.0
         && s.Spec.read_fraction +. s.Spec.incr_fraction +. s.Spec.transfer_fraction <= 1.0)
       [ a; b; i ])

let test_spec_scaling () =
  let s = Spec.default in
  let s2 = Spec.scale_rate s 2.0 in
  Alcotest.(check (float 1e-9)) "rate doubled" (2.0 *. s.Spec.arrival_rate)
    s2.Spec.arrival_rate;
  let s3 = Spec.with_seed s 99 in
  Alcotest.(check int) "seed set" 99 s3.Spec.seed

let test_faultplan_combinators () =
  let p = Faultplan.partition_window ~start:5.0 ~len:3.0 [ [ 0 ]; [ 1 ] ] in
  Alcotest.(check int) "two events" 2 (List.length p);
  let r = Faultplan.repeated_partitions ~period:10.0 ~len:2.0 ~until:35.0 [ [ 0 ]; [ 1 ] ] in
  Alcotest.(check int) "three windows" 6 (List.length r);
  let c = Faultplan.crash_cycle ~site:2 ~first:1.0 ~downtime:4.0 in
  Alcotest.(check int) "crash+recover" 2 (List.length c);
  let merged = Faultplan.merge p c in
  let times = List.map (fun e -> e.Faultplan.at) merged in
  Alcotest.(check (list (float 1e-9))) "sorted" [ 1.0; 5.0; 5.0; 8.0 ]
    (List.filteri (fun i _ -> i < 4) times)

let test_faultplan_lossy_window () =
  (* The lossy window degrades every link for its duration, then restores
     defaults — observable as extra Vm retransmissions during the window. *)
  let spec =
    Spec.with_seed
      {
        Spec.default with
        Spec.duration = 10.0;
        Spec.items = [ (0, 4000) ];
        Spec.op_min = 8;
        Spec.op_max = 16;
        Spec.incr_fraction = 0.1;
      }
      47
  in
  let sys =
    let config =
      { Dvp.Config.default with Dvp.Config.request_policy = Dvp.Config.Ask_all_full }
    in
    let s = Dvp.System.create ~config ~seed:47 ~n:4 () in
    Dvp.System.add_item s ~item:0 ~total:4000 ~split:(`Explicit [ 3940; 20; 20; 20 ]) ();
    s
  in
  let d = Driver.of_dvp sys in
  let faults = Faultplan.lossy_window ~start:3.0 ~len:4.0 ~loss:0.5 in
  let o = Runner.run d spec ~faults () in
  let m = o.Runner.metrics in
  Alcotest.(check bool) "loss forced retransmissions" true
    (Dvp.Metrics.vm_retransmissions m > 0);
  Alcotest.(check bool) "still conserved" true (Dvp.System.conserved sys ~item:0);
  Alcotest.(check bool) "recovers after window" true (o.Runner.availability > 0.5)

let test_runner_dvp_healthy () =
  let spec = Spec.with_seed { Spec.default with Spec.duration = 10.0 } 7 in
  let d = Setup.dvp spec in
  let o = Runner.run d spec () in
  Alcotest.(check bool) "many submitted" true (o.Runner.submitted > 300);
  Alcotest.(check bool) "high availability" true (o.Runner.availability > 0.95);
  Alcotest.(check int) "books balance" o.Runner.submitted
    (o.Runner.committed + o.Runner.aborted);
  Alcotest.(check int) "timeline buckets" 10 (List.length o.Runner.timeline)

let test_runner_determinism () =
  let spec = Spec.with_seed { Spec.default with Spec.duration = 5.0 } 13 in
  let run () =
    let o = Runner.run (Setup.dvp spec) spec () in
    (o.Runner.submitted, o.Runner.committed, o.Runner.aborted)
  in
  Alcotest.(check (triple int int int)) "same seed, same run" (run ()) (run ())

let test_runner_seed_changes_run () =
  let spec = { Spec.default with Spec.duration = 5.0 } in
  let run seed =
    let s = Spec.with_seed spec seed in
    let o = Runner.run (Setup.dvp s) s () in
    o.Runner.submitted
  in
  Alcotest.(check bool) "different seeds differ" true (run 1 <> run 2)

let test_runner_trad_healthy () =
  let spec = Spec.with_seed { Spec.default with Spec.duration = 10.0 } 7 in
  let d = Setup.trad spec in
  let o = Runner.run d spec () in
  Alcotest.(check bool) "trad works when healthy" true (o.Runner.availability > 0.9)

let test_runner_partition_contrast () =
  (* The core comparative claim in miniature: during a partition window, DvP
     availability stays high while the 2PC baseline loses the transactions
     that need the other side. *)
  let spec =
    Spec.with_seed
      { Spec.default with Spec.duration = 12.0; Spec.arrival_rate = 60.0 }
      21
  in
  let groups = [ [ 0; 1 ]; [ 2; 3 ] ] in
  let faults = Faultplan.partition_window ~start:2.0 ~len:8.0 groups in
  let dvp_o = Runner.run (Setup.dvp spec) spec ~faults () in
  let trad_o = Runner.run (Setup.trad spec) spec ~faults () in
  Alcotest.(check bool) "dvp stays available" true (dvp_o.Runner.availability > 0.85);
  Alcotest.(check bool) "dvp beats trad under partition" true
    (dvp_o.Runner.availability > trad_o.Runner.availability +. 0.1)

let test_runner_crash_survival () =
  let spec = Spec.with_seed { Spec.default with Spec.duration = 10.0 } 23 in
  let faults = Faultplan.crash_cycle ~site:1 ~first:3.0 ~downtime:3.0 in
  let sys = Setup.dvp_system spec in
  let d = Driver.of_dvp sys in
  let o = Runner.run d spec ~faults () in
  Alcotest.(check bool) "survives crash" true (o.Runner.availability > 0.6);
  Alcotest.(check bool) "conserved after chaos" true (Dvp.System.conserved_all sys)

let test_timeline_shows_partition_dip_for_trad () =
  let spec =
    Spec.with_seed
      {
        Spec.default with
        Spec.duration = 15.0;
        Spec.arrival_rate = 80.0;
        (* Spread over eight items so the 2PC home-site locks are not the
           bottleneck when the network is healthy. *)
        Spec.items = List.init 8 (fun i -> (i, 500));
      }
      31
  in
  let faults = Faultplan.partition_window ~start:5.0 ~len:5.0 [ [ 0 ]; [ 1; 2; 3 ] ] in
  let o = Runner.run (Setup.trad spec) spec ~faults () in
  let ratio_at t =
    match List.find_opt (fun (te, _) -> te > t && te <= t +. 1.0) o.Runner.timeline with
    | Some (_, r) -> r
    | None -> nan
  in
  let healthy = ratio_at 2.0 and during = ratio_at 7.0 in
  Alcotest.(check bool) "healthy bucket strong" true (healthy > 0.9);
  Alcotest.(check bool) "partition bucket degraded" true (during < healthy)

let test_closed_loop_basic () =
  let spec = Spec.with_seed { Spec.default with Spec.duration = 8.0 } 41 in
  let d = Setup.dvp spec in
  let o = Runner.run_closed d spec ~clients:8 ~think:0.01 () in
  Alcotest.(check bool) "work was done" true (o.Runner.committed > 100);
  Alcotest.(check int) "books balance" o.Runner.submitted
    (o.Runner.committed + o.Runner.aborted);
  Alcotest.(check bool) "high availability" true (o.Runner.availability > 0.9)

let test_closed_loop_client_scaling () =
  (* More clients, more throughput — until something saturates. *)
  let spec = Spec.with_seed { Spec.default with Spec.duration = 5.0 } 43 in
  let tput clients =
    let o = Runner.run_closed (Setup.dvp spec) spec ~clients ~think:0.005 () in
    o.Runner.throughput
  in
  Alcotest.(check bool) "scales with clients" true (tput 16 > 2.0 *. tput 2)

let test_generator_mix () =
  (* Sanity of generated mixes via a run on a spec with all transfer ops. *)
  let spec =
    {
      Spec.default with
      Spec.transfer_fraction = 1.0;
      Spec.items = [ (0, 1000); (1, 1000) ];
      Spec.duration = 5.0;
    }
  in
  let sys = Setup.dvp_system spec in
  let d = Driver.of_dvp sys in
  let o = Runner.run d spec () in
  Alcotest.(check bool) "transfers commit" true (o.Runner.availability > 0.8);
  (* Pure transfers preserve the combined aggregate. *)
  let total =
    Dvp.System.total_at_sites sys ~item:0 + Dvp.System.total_at_sites sys ~item:1
  in
  Alcotest.(check int) "combined total preserved" 2000 total

let () =
  Alcotest.run "dvp_workload"
    [
      ( "spec",
        [
          Alcotest.test_case "presets" `Quick test_spec_presets;
          Alcotest.test_case "scaling" `Quick test_spec_scaling;
        ] );
      ( "faultplan",
        [
          Alcotest.test_case "combinators" `Quick test_faultplan_combinators;
          Alcotest.test_case "lossy window" `Quick test_faultplan_lossy_window;
        ] );
      ( "runner",
        [
          Alcotest.test_case "dvp healthy" `Quick test_runner_dvp_healthy;
          Alcotest.test_case "determinism" `Quick test_runner_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_runner_seed_changes_run;
          Alcotest.test_case "trad healthy" `Quick test_runner_trad_healthy;
          Alcotest.test_case "partition contrast" `Quick test_runner_partition_contrast;
          Alcotest.test_case "crash survival" `Quick test_runner_crash_survival;
          Alcotest.test_case "timeline partition dip" `Quick
            test_timeline_shows_partition_dip_for_trad;
          Alcotest.test_case "generator mix" `Quick test_generator_mix;
          Alcotest.test_case "closed loop basic" `Quick test_closed_loop_basic;
          Alcotest.test_case "closed loop scaling" `Quick test_closed_loop_client_scaling;
        ] );
    ]
