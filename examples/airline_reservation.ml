(* The Section 3 walkthrough, narrated: sites W, X, Y, Z sell seats on
   flight A (N = 100, quota 25 each).

   Run with:  dune exec examples/airline_reservation.exe

   The script follows the paper exactly: customers at W reserve 3, 4 and 5
   seats; local sales drive the fragments to N_W=2, N_X=3, N_Y=10, N_Z=15
   (so N = 30); then a customer needing 5 seats arrives at X, which must
   gather seats from its peers via virtual messages. *)

let site_name = [| "W"; "X"; "Y"; "Z" |]

let flight_a = 0

let print_state sys =
  let frags = Dvp.System.fragments sys ~item:flight_a in
  Printf.printf "   state: N_W=%d N_X=%d N_Y=%d N_Z=%d  (N = %d%s)\n" frags.(0) frags.(1)
    frags.(2) frags.(3)
    (Dvp.System.total_at_sites sys ~item:flight_a)
    (let inflight = Dvp.System.in_flight sys ~item:flight_a in
     if inflight > 0 then Printf.sprintf " + %d in flight" inflight else "")

let reserve sys ~site ~seats =
  Printf.printf "-> customer at %s requests %d seat(s)\n" site_name.(site) seats;
  Dvp.System.exec sys
    (Dvp.Txn.write ~site [ (flight_a, Dvp.Op.Decr seats) ])
    ~on_done:(fun r ->
      match r with
      | Dvp.Txn.Committed _ ->
        Printf.printf "   %s: reservation of %d seat(s) CONFIRMED (t=%.3fs)\n"
          site_name.(site) seats (Dvp.System.now sys)
      | Dvp.Txn.Aborted reason ->
        Printf.printf "   %s: reservation of %d seat(s) DECLINED (%s)\n" site_name.(site)
          seats
          (Dvp.Metrics.abort_reason_label reason));
  Dvp.System.run_for sys 1.0

let () =
  print_endline "== Airline reservations (the paper's Section 3 example) ==";
  let trace = Dvp.Trace.create () in
  let sys = Dvp.System.create ~seed:5 ~trace ~n:4 () in
  Dvp.System.add_item sys ~item:flight_a ~total:100 ();
  print_endline "flight A opens with N = 100 seats, 25 per site:";
  print_state sys;

  print_endline "\n-- customers arrive at site W --";
  reserve sys ~site:0 ~seats:3;
  reserve sys ~site:0 ~seats:4;
  reserve sys ~site:0 ~seats:5;
  print_state sys;

  print_endline "\n-- trading continues at all sites (reaching the paper's state) --";
  reserve sys ~site:0 ~seats:11;
  reserve sys ~site:1 ~seats:22;
  reserve sys ~site:2 ~seats:15;
  reserve sys ~site:3 ~seats:10;
  print_state sys;

  print_endline "\n-- a customer needing 5 seats arrives at X (which holds only 3) --";
  print_endline "   X asks its peers for seats; values arrive as virtual messages:";
  reserve sys ~site:1 ~seats:5;
  print_state sys;

  (* Show the virtual-message traffic from the trace. *)
  let honors = Dvp.Trace.find trace ~category:"honor" in
  List.iter
    (fun e -> Printf.printf "   [t=%.3f] %s\n" e.Dvp.Trace.time e.Dvp.Trace.message)
    honors;

  print_endline "\n-- a cancellation at Z returns two seats --";
  Dvp.System.exec sys
    (Dvp.Txn.write ~site:3 [ (flight_a, Dvp.Op.Incr 2) ])
    ~on_done:(fun _ -> print_endline "   Z: cancellation recorded");
  Dvp.System.run_for sys 0.5;
  print_state sys;

  print_endline "\n-- finally, the airline audits the flight (a full read at W) --";
  Dvp.System.exec sys (Dvp.Txn.read ~site:0 flight_a) ~on_done:(fun r ->
      match r with
      | Dvp.Txn.Committed { reads = [ (_, n) ] } ->
        Printf.printf "   audit result: N = %d seats remain\n" n
      | Dvp.Txn.Committed _ -> ()
      | Dvp.Txn.Aborted reason ->
        Printf.printf "   audit failed: %s\n" (Dvp.Metrics.abort_reason_label reason));
  Dvp.System.run_for sys 3.0;
  print_state sys;
  Printf.printf "\nconservation held throughout: %b\n"
    (Dvp.System.conserved sys ~item:flight_a)
