(* Trace tour: the observability layer end to end.

   Run with:  dune exec examples/trace_tour.exe

   We attach a typed trace and a periodic probe to a 4-site system, run a
   short partitioned workload through System.exec, then narrate the run
   from the recorded events and write both export formats into the
   (gitignored) artifacts/ directory:

     artifacts/trace_tour.jsonl        a meta header line, then one JSON
                                       object per event, oldest first —
                                       feed it to `dvp-cli analyze`
     artifacts/trace_tour_chrome.json  Chrome trace_event file — open it at
                                       https://ui.perfetto.dev to see one
                                       track per site, transactions as
                                       slices, and virtual messages as flow
                                       arrows between sites. *)

module Trace = Dvp.Trace

let () =
  print_endline "== trace tour ==";
  let trace = Trace.create () in
  let sys = Dvp.System.create ~seed:11 ~trace ~n:4 () in
  Dvp.System.add_item sys ~item:0 ~total:200 ();

  (* A periodic probe: every 0.5 s, the fragment vector, the value riding
     in unaccepted virtual messages (N_M), and the stable log length. *)
  let probe = Dvp.System.start_probe sys ~every:0.5 in

  (* Load: site 1 repeatedly wants more than its fragment holds, so value
     must be gathered from peers as virtual messages; a mid-run partition
     and a crash give the trace something to show. *)
  let engine = Dvp.System.engine sys in
  for k = 0 to 19 do
    ignore
      (Dvp.Engine.schedule_at engine
         ~at:(0.1 +. (0.2 *. float_of_int k))
         (fun () ->
           (* Sites 0 and 1 carry the demand, so they outrun their own
              fragments and must gather value from 2 and 3. *)
           Dvp.System.exec sys
             (Dvp.Txn.write ~site:(k mod 2) [ (0, Dvp.Op.Decr 8) ])
             ~on_done:(fun _ -> ())))
  done;
  ignore
    (Dvp.Engine.schedule_at engine ~at:1.5 (fun () ->
         Dvp.System.partition sys [ [ 0; 1 ]; [ 2; 3 ] ]));
  ignore (Dvp.Engine.schedule_at engine ~at:2.5 (fun () -> Dvp.System.heal sys));
  ignore (Dvp.Engine.schedule_at engine ~at:3.0 (fun () -> Dvp.System.crash_site sys 3));
  ignore (Dvp.Engine.schedule_at engine ~at:3.6 (fun () -> Dvp.System.recover_site sys 3));
  Dvp.System.run_until sys 6.0;

  (* Narrate the run from the typed events. *)
  let count f = List.length (Trace.find_events trace ~f) in
  Printf.printf "events recorded: %d (dropped: %d)\n"
    (List.length (Trace.events trace))
    (Trace.drop_count trace);
  Printf.printf "  commits:        %d\n" (count (function Trace.Txn_commit _ -> true | _ -> false));
  Printf.printf "  aborts:         %d\n" (count (function Trace.Txn_abort _ -> true | _ -> false));
  Printf.printf "  vm created:     %d\n" (count (function Trace.Vm_created _ -> true | _ -> false));
  Printf.printf "  vm accepted:    %d\n"
    (count (function Trace.Vm_accepted _ -> true | _ -> false));
  Printf.printf "  vm retransmits: %d\n"
    (count (function Trace.Vm_retransmit _ -> true | _ -> false));
  Printf.printf "  net drops:      %d\n" (count (function Trace.Net_drop _ -> true | _ -> false));

  (* The first remote-assisted commit, told event by event. *)
  print_endline "\nfirst virtual message, in order:";
  (match Trace.find_events trace ~f:(function Trace.Vm_created _ -> true | _ -> false) with
  | (t, Trace.Vm_created { site; dst; seq; item; amount }) :: _ ->
    Printf.printf "  t=%.3f  site %d logs Vm #%d: %d units of item %d for site %d\n" t site seq
      amount item dst;
    (match
       Trace.find_events trace ~f:(function
         | Trace.Vm_accepted { src; seq = s; _ } -> src = site && s = seq
         | _ -> false)
     with
    | (t2, Trace.Vm_accepted { site = receiver; _ }) :: _ ->
      Printf.printf "  t=%.3f  site %d accepts it — the value changed hands exactly once\n" t2
        receiver
    | _ -> print_endline "  (still in flight)")
  | _ -> print_endline "  (no remote value was needed)");

  (* The probe series: the conservation terms over time. *)
  print_endline "\nprobe series (fragments | N_M | log length):";
  List.iter
    (fun (t, s) ->
      let frags =
        match s.Dvp.System.fragments with (_, f) :: _ -> f | [] -> [||]
      in
      let nm = match s.Dvp.System.in_flight with (_, v) :: _ -> v | [] -> 0 in
      Printf.printf "  t=%4.1f  [%s] | %3d | %d\n" t
        (String.concat "; " (Array.to_list (Array.map string_of_int frags)))
        nm s.Dvp.System.log_length)
    (Dvp.Probe.series probe);
  Printf.printf "conserved at the end: %b\n" (Dvp.System.conserved_all sys);

  (* Both export formats, into the gitignored artifacts/ directory. *)
  let dir = "artifacts" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write file data =
    let path = Filename.concat dir file in
    let oc = open_out path in
    output_string oc data;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  write "trace_tour.jsonl" (Trace.to_jsonl trace);
  write "trace_tour_chrome.json" (Trace.to_chrome trace);
  print_endline "analyze it:  dune exec bin/dvp_cli.exe -- analyze artifacts/trace_tour.jsonl";
  print_endline "or open artifacts/trace_tour_chrome.json at https://ui.perfetto.dev"
