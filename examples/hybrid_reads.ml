(* Dynamic DvP / primary-copy interchange (Section 8).

   Run with:  dune exec examples/hybrid_reads.exe

   The workload's read/update mix changes over time; the Hybrid manager
   flips the item between partitioned mode (updates local, reads expensive)
   and centralized mode (reads at the home site, updates pay a round trip)
   and we watch the modes and costs follow the workload. *)

let () =
  print_endline "== Hybrid mode manager following the workload ==";
  let sys = Dvp.System.create ~seed:41 ~n:6 () in
  Dvp.System.add_item sys ~item:0 ~total:60_000 ();
  let hybrid = Dvp.Hybrid.create sys ~hi:0.10 ~lo:0.02 ~check_every:0.5 () in
  let rng = Dvp.Util.Rng.create 17 in
  let committed = ref 0 and aborted = ref 0 in
  let record = function
    | Dvp.Site.Committed _ -> incr committed
    | Dvp.Site.Aborted _ -> incr aborted
  in
  (* Phase 1 (t in [0,6)): update-heavy.  Phase 2 ([6,14)): read-heavy
     audits.  Phase 3 ([14,20)): updates again. *)
  let read_share t = if t < 6.0 then 0.01 else if t < 14.0 then 0.5 else 0.01 in
  for i = 1 to 800 do
    let at = 20.0 *. float_of_int i /. 800.0 in
    ignore
      (Dvp.Engine.schedule_at (Dvp.System.engine sys) ~at (fun () ->
           let site = Dvp.Util.Rng.int rng 6 in
           if Dvp.Util.Rng.bernoulli rng (read_share at) then
             Dvp.Hybrid.submit_read hybrid ~site ~item:0 ~on_done:record
           else begin
             let m = 1 + Dvp.Util.Rng.int rng 4 in
             let op = if Dvp.Util.Rng.bool rng then Dvp.Op.Decr m else Dvp.Op.Incr m in
             Dvp.Hybrid.submit hybrid ~site ~ops:[ (0, op) ] ~on_done:record
           end))
  done;
  (* Narrate the mode each second. *)
  for s = 1 to 20 do
    ignore
      (Dvp.Engine.schedule_at (Dvp.System.engine sys)
         ~at:(float_of_int s)
         (fun () ->
           let m =
             match Dvp.Hybrid.mode hybrid ~item:0 with
             | Dvp.Hybrid.Partitioned -> "partitioned"
             | Dvp.Hybrid.Centralized -> "CENTRALIZED at home"
           in
           let phase =
             if float_of_int s < 6.0 then "updates"
             else if float_of_int s < 14.0 then "audit reads"
             else "updates"
           in
           Printf.printf "[t=%2d] workload: %-11s mode: %s\n" s phase m))
  done;
  Dvp.System.run_until sys 25.0;
  Printf.printf
    "\n%d committed, %d aborted; %d centralizations, %d repartitions; conserved: %b\n"
    !committed !aborted
    (Dvp.Hybrid.centralizations hybrid)
    (Dvp.Hybrid.repartitions hybrid)
    (Dvp.System.conserved sys ~item:0)
