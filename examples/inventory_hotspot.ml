(* Inventory hot spot: DvP vs the central alternatives (Section 8).

   Run with:  dune exec examples/inventory_hotspot.exe

   One aggregate field — the stock count of a best-selling product — is
   hammered by every site.  We run the same open-loop demand against three
   designs and print the throughput each sustains:

   - central strict-2PL: every order locks the aggregate at one server;
   - central escrow (O'Neil 1986): concurrent escrows at one server;
   - DvP: the count is value-partitioned, orders run at the local site.  *)

module Rng = Dvp.Util.Rng
module Engine = Dvp.Engine

let n_sites = 8

let demand_rate = 400.0 (* orders per second, whole system *)

let duration = 10.0

let stock = 1_000_000 (* plentiful: we measure contention, not exhaustion *)

let run_central mode label =
  let engine = Engine.create () in
  let rng = Rng.create 3 in
  let net = Dvp.Net.Network.create (Dvp.Substrate_des.of_engine engine) ~rng:(Rng.split rng) ~n:n_sites () in
  let metrics = Dvp.Metrics.create () in
  let server =
    Dvp.Baseline.Escrow.server engine ~mode
      ~send:(fun ~dst msg -> Dvp.Net.Network.send net ~src:0 ~dst msg)
      ()
  in
  Dvp.Baseline.Escrow.install server ~item:0 stock;
  Dvp.Net.Network.set_handler net 0 (fun ~src msg ->
      Dvp.Baseline.Escrow.handle_server server ~src msg);
  let clients =
    Array.init n_sites (fun i ->
        if i = 0 then None
        else
          Some
            (Dvp.Baseline.Escrow.client engine ~self:i
               ~send:(fun msg -> Dvp.Net.Network.send net ~src:i ~dst:0 msg)
               ~metrics ()))
  in
  Array.iteri
    (fun i c ->
      match c with
      | Some client ->
        Dvp.Net.Network.set_handler net i (fun ~src:_ msg ->
            Dvp.Baseline.Escrow.handle_client client msg)
      | None -> ())
    clients;
  let rec arrivals () =
    if Engine.now engine < duration then begin
      let i = 1 + Rng.int rng (n_sites - 1) in
      (match clients.(i) with
      | Some client ->
        Dvp.Baseline.Escrow.request client ~item:0 ~op:(Dvp.Op.Decr 1) ~on_done:(fun _ -> ())
      | None -> ());
      ignore (Engine.schedule engine ~delay:(Rng.exponential rng (1.0 /. demand_rate)) arrivals)
    end
  in
  ignore (Engine.schedule engine ~delay:0.001 arrivals);
  Engine.run_until engine (duration +. 3.0);
  Printf.printf "%-18s %6d committed  %7.1f orders/s  p99 latency %5.1f ms\n" label
    (Dvp.Metrics.committed metrics)
    (float_of_int (Dvp.Metrics.committed metrics) /. duration)
    (1000.0 *. Dvp.Metrics.latency_p99 metrics)

let run_dvp () =
  let sys = Dvp.System.create ~seed:3 ~n:n_sites () in
  Dvp.System.add_item sys ~item:0 ~total:stock ();
  let engine = Dvp.System.engine sys in
  let rng = Rng.create 3 in
  let committed = ref 0 in
  let lat = Dvp.Util.Dstats.Sample.create () in
  let rec arrivals () =
    if Engine.now engine < duration then begin
      let site = Rng.int rng n_sites in
      let t0 = Engine.now engine in
      Dvp.System.exec sys
        (Dvp.Txn.write ~site [ (0, Dvp.Op.Decr 1) ])
        ~on_done:(fun r ->
          match r with
          | Dvp.Txn.Committed _ ->
            incr committed;
            Dvp.Util.Dstats.Sample.add lat (Engine.now engine -. t0)
          | Dvp.Txn.Aborted _ -> ());
      ignore (Engine.schedule engine ~delay:(Rng.exponential rng (1.0 /. demand_rate)) arrivals)
    end
  in
  ignore (Engine.schedule engine ~delay:0.001 arrivals);
  Engine.run_until engine (duration +. 3.0);
  Printf.printf "%-18s %6d committed  %7.1f orders/s  p99 latency %5.1f ms\n"
    "dvp (partitioned)" !committed
    (float_of_int !committed /. duration)
    (1000.0 *. Dvp.Util.Dstats.Sample.percentile lat 99.0)

let () =
  Printf.printf "== Hot-spot aggregate: %d sites, %.0f orders/s for %.0fs ==\n" n_sites
    demand_rate duration;
  run_central Dvp.Baseline.Escrow.Exclusive_locking "central 2PL";
  run_central Dvp.Baseline.Escrow.Escrow_locking "central escrow";
  run_dvp ();
  print_endline
    "\nDvP runs the hot aggregate at memory speed at every site: no round\n\
     trip to a central server, no serialisation on one lock, and the count\n\
     survives partitions that would take the central server offline."
