(* Partition survival, side by side.

   Run with:  dune exec examples/partition_survival.exe

   The same workload and the same 3-way network partition hit three systems:
   DvP, a 2PC single-copy database, and a quorum-replicated database.  A
   per-second availability timeline shows who keeps serving during the
   partition (t in [4, 12)) and what happens after it heals. *)

open Dvp

let spec =
  {
    Spec.default with
    Spec.label = "partition-survival";
    Spec.n_sites = 6;
    Spec.items = List.init 6 (fun i -> (i, 4000));
    Spec.arrival_rate = 120.0;
    Spec.duration = 16.0;
    Spec.incr_fraction = 0.45;
    Spec.seed = 11;
  }

let groups = [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ]

let faults = Faultplan.partition_window ~start:4.0 ~len:8.0 groups

let bar ratio =
  if Float.is_nan ratio then "(no load)"
  else begin
    let n = int_of_float (ratio *. 30.0) in
    String.make (max 0 n) '#' ^ Printf.sprintf " %3.0f%%" (100.0 *. ratio)
  end

let show (o : Runner.outcome) =
  Printf.printf "\n%s — overall availability %.1f%%, throughput %.1f txn/s\n" o.Runner.label
    (100.0 *. o.Runner.availability)
    o.Runner.throughput;
  List.iter
    (fun (t_end, ratio) ->
      let marker =
        if t_end > 4.0 && t_end <= 12.0 then " | PARTITIONED" else ""
      in
      Printf.printf "  t<%5.1fs %s%s\n" t_end (bar ratio) marker)
    o.Runner.timeline

let () =
  print_endline "== The same 3-way partition against three systems ==";
  Printf.printf "%d sites, %.0f txn/s, partition %s during t in [4,12)\n" spec.Spec.n_sites
    spec.Spec.arrival_rate "{0,1}/{2,3}/{4,5}";

  show (Runner.run (Setup.dvp ~name:"DvP (this paper)" spec) spec ~faults ());

  show (Runner.run (Setup.trad ~name:"2PC single-copy" spec) spec ~faults ());

  let quorum_config =
    { Dvp.Baseline.Trad_site.default_config with
      Dvp.Baseline.Trad_site.placement = Dvp.Baseline.Trad_site.Replicated
    }
  in
  show
    (Runner.run
       (Setup.trad ~config:quorum_config ~name:"quorum replication" spec)
       spec ~faults ());

  print_endline
    "\nDvP keeps every group serving from its local fragments.  2PC loses\n\
     every transaction whose home is across the cut; quorum replication\n\
     loses everything (no group of 2 out of 6 has a majority)."
