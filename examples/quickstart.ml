(* Quickstart: a five-minute tour of the DvP public API.

   Run with:  dune exec examples/quickstart.exe

   We build a 4-site system, give it one partitioned data item, run a few
   transactions (local, remote-assisted, and a full read), inject a network
   partition, and watch the conservation invariant hold throughout. *)

let () =
  print_endline "== DvP quickstart ==";
  (* 1. A system of four sites over a simulated network. *)
  let sys = Dvp.System.create ~seed:7 ~n:4 () in

  (* 2. One data item: 100 units of some resource, split 25 per site.
        This is the paper's flight with N = 100 seats. *)
  Dvp.System.add_item sys ~item:0 ~total:100 ();
  Printf.printf "initial fragments: [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int (Dvp.System.fragments sys ~item:0))));

  (* 3. A local transaction: site 0 reserves 10 units.  Its fragment (25)
        suffices, so this commits synchronously with zero messages. *)
  Dvp.System.exec sys
    (Dvp.Txn.write ~site:0 [ (0, Dvp.Op.Decr 10) ])
    ~on_done:(fun r ->
      match r with
      | Dvp.Txn.Committed _ -> print_endline "local reserve(10) at site 0: committed"
      | Dvp.Txn.Aborted reason ->
        Printf.printf "local reserve(10) aborted: %s\n"
          (Dvp.Metrics.abort_reason_label reason));

  (* 4. A remote-assisted transaction: site 1 wants 40 units but holds only
        25.  It asks its peers; their responses travel as virtual messages
        (logged, retransmitted, never lost), and the transaction commits
        once enough value has arrived. *)
  Dvp.System.exec sys
    (Dvp.Txn.write ~site:1 [ (0, Dvp.Op.Decr 40) ])
    ~on_done:(fun r ->
      match r with
      | Dvp.Txn.Committed _ ->
        Printf.printf "remote-assisted reserve(40) at site 1: committed at t=%.3fs\n"
          (Dvp.System.now sys)
      | Dvp.Txn.Aborted reason ->
        Printf.printf "reserve(40) aborted: %s\n" (Dvp.Metrics.abort_reason_label reason));
  Dvp.System.run_for sys 2.0;

  (* 5. The books always balance: fragments + value in flight = initial
        total adjusted by exactly the committed operations. *)
  Printf.printf "fragments now: [%s], in flight: %d, expected total: %d, conserved: %b\n"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int (Dvp.System.fragments sys ~item:0))))
    (Dvp.System.in_flight sys ~item:0)
    (Dvp.System.expected_total sys ~item:0)
    (Dvp.System.conserved sys ~item:0);

  (* 6. Partition the network.  Sites keep serving from their local
        fragments; only transactions that need remote value abort — after a
        bounded timeout, never blocking. *)
  Dvp.System.partition sys [ [ 0; 1 ]; [ 2; 3 ] ];
  Dvp.System.exec sys
    (Dvp.Txn.write ~site:2 [ (0, Dvp.Op.Decr 5) ])
    ~on_done:(fun r ->
      match r with
      | Dvp.Txn.Committed _ ->
        print_endline "during partition: site 2 committed from its local fragment"
      | Dvp.Txn.Aborted _ -> print_endline "during partition: site 2 aborted (unexpected)");
  Dvp.System.run_for sys 2.0;
  Dvp.System.heal sys;
  Dvp.System.run_for sys 2.0;

  (* 7. A read in the traditional sense drains every fragment to the reader
        — correct, but the one expensive operation in this scheme. *)
  Dvp.System.exec sys (Dvp.Txn.read ~site:3 0) ~on_done:(fun r ->
      match r with
      | Dvp.Txn.Committed { reads = [ (_, v) ] } ->
        Printf.printf "full read at site 3: N = %d\n" v
      | Dvp.Txn.Committed _ -> ()
      | Dvp.Txn.Aborted reason ->
        Printf.printf "read aborted: %s\n" (Dvp.Metrics.abort_reason_label reason));
  Dvp.System.run_for sys 3.0;

  Printf.printf "conserved at the end: %b\n" (Dvp.System.conserved sys ~item:0);
  let m = Dvp.System.metrics sys in
  Printf.printf "committed=%d aborted=%d messages=%d log-forces=%d\n"
    (Dvp.Metrics.committed m) (Dvp.Metrics.aborted m) (Dvp.Metrics.messages m)
    (Dvp.Metrics.log_forces m)
