(* Banking: money conservation under crashes and lossy links.

   Run with:  dune exec examples/banking_transfer.exe

   Two accounts (checking and savings, in cents) are value-partitioned over
   six branch sites.  Branches run deposits, withdrawals and transfers
   concurrently while the simulated network loses and duplicates messages
   and one branch crashes mid-run.  The invariant printed at the end is the
   bank's books: no cent is ever created or destroyed — the property the
   virtual-message machinery exists to protect. *)

let checking = 0

let savings = 1

let () =
  print_endline "== Banking under fire ==";
  let link = { Dvp.Net.Linkstate.default with loss_prob = 0.15; dup_prob = 0.05 } in
  let sys = Dvp.System.create ~seed:17 ~link ~n:6 () in
  Dvp.System.add_item sys ~item:checking ~total:600_000 ();
  (* Savings concentrated at two sites — an uneven split is fine. *)
  Dvp.System.add_item sys ~item:savings ~total:300_000
    ~split:(`Explicit [ 150_000; 150_000; 0; 0; 0; 0 ])
    ();
  Printf.printf "opening balances: checking=%d savings=%d (cents)\n"
    (Dvp.System.total_at_sites sys ~item:checking)
    (Dvp.System.total_at_sites sys ~item:savings);

  let rng = Dvp.Util.Rng.create 99 in
  let committed = ref 0 and aborted = ref 0 in
  let engine = Dvp.System.engine sys in
  (* 600 transactions over 12 seconds: deposits, withdrawals, transfers. *)
  for _ = 1 to 600 do
    let at = Dvp.Util.Rng.float rng 12.0 in
    ignore
      (Dvp.Engine.schedule_at engine ~at (fun () ->
           let site = Dvp.Util.Rng.int rng 6 in
           if Dvp.System.site_up sys site then begin
             let cents = 100 * (1 + Dvp.Util.Rng.int rng 500) in
             let ops =
               match Dvp.Util.Rng.int rng 4 with
               | 0 -> [ (checking, Dvp.Op.Incr cents) ] (* deposit *)
               | 1 -> [ (checking, Dvp.Op.Decr cents) ] (* withdrawal *)
               | 2 -> [ (checking, Dvp.Op.Decr cents); (savings, Dvp.Op.Incr cents) ]
               | _ -> [ (savings, Dvp.Op.Decr cents); (checking, Dvp.Op.Incr cents) ]
             in
             Dvp.System.exec sys (Dvp.Txn.write ~site ops) ~on_done:(fun r ->
                 match r with
                 | Dvp.Txn.Committed _ -> incr committed
                 | Dvp.Txn.Aborted _ -> incr aborted)
           end))
  done;
  (* Branch 3 crashes at t=4 and recovers at t=7 — independently, no
     coordination with the other branches. *)
  ignore
    (Dvp.Engine.schedule_at engine ~at:4.0 (fun () ->
         print_endline "[t=4.0] branch 3 crashes";
         Dvp.System.crash_site sys 3));
  ignore
    (Dvp.Engine.schedule_at engine ~at:7.0 (fun () ->
         print_endline "[t=7.0] branch 3 recovers from its log (no messages needed)";
         Dvp.System.recover_site sys 3));

  Dvp.System.run_until sys 25.0;

  Printf.printf "transactions: %d committed, %d aborted\n" !committed !aborted;
  let c = Dvp.System.total_at_sites sys ~item:checking + Dvp.System.in_flight sys ~item:checking in
  let s = Dvp.System.total_at_sites sys ~item:savings + Dvp.System.in_flight sys ~item:savings in
  Printf.printf "closing balances (incl. in flight): checking=%d savings=%d\n" c s;
  Printf.printf "expected from committed txns:       checking=%d savings=%d\n"
    (Dvp.System.expected_total sys ~item:checking)
    (Dvp.System.expected_total sys ~item:savings);
  Printf.printf "books balance: %b\n" (Dvp.System.conserved_all sys);
  let m = Dvp.System.metrics sys in
  Printf.printf
    "virtual messages: %d created, %d accepted, %d retransmissions, %d duplicates discarded\n"
    (Dvp.Metrics.vm_created_count m)
    (Dvp.Metrics.vm_accepted_count m)
    (Dvp.Metrics.vm_retransmissions m)
    (Dvp.Metrics.vm_duplicates m)
