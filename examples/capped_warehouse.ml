(* Capped quantities: a warehouse with finite shelf space.

   Run with:  dune exec examples/capped_warehouse.exe

   Section 9 of the paper asks for "ways to extend the methods to handle
   more data types".  A bounded counter (0 <= stock <= capacity) is such a
   type: "add m if the result stays under the cap" is not partitionable over
   the stock alone.  The Capped module reduces it to two plain partitioned
   quantities — the stock and the *headroom* — so the existing machinery
   (virtual messages, conservation, non-blocking) covers it unchanged. *)

let () =
  print_endline "== Capped warehouse (capacity 1000, 6 depots) ==";
  let sys = Dvp.System.create ~seed:29 ~n:6 () in
  let stock = Dvp.Capped.create sys ~value_item:0 ~headroom_item:1 ~cap:1000 ~initial:600 () in
  Printf.printf "opening stock %d / cap %d\n" (Dvp.Capped.expected_value stock)
    (Dvp.Capped.cap stock);

  let rng = Dvp.Util.Rng.create 5 in
  let sold = ref 0 and restocked = ref 0 and rejected = ref 0 in
  (* Two days of trade: sales and restocks at every depot. *)
  for _ = 1 to 400 do
    let at = Dvp.Util.Rng.float rng 10.0 in
    ignore
      (Dvp.Engine.schedule_at (Dvp.System.engine sys) ~at (fun () ->
           let site = Dvp.Util.Rng.int rng 6 in
           let qty = 1 + Dvp.Util.Rng.int rng 20 in
           if Dvp.Util.Rng.bernoulli rng 0.55 then
             Dvp.Capped.decr stock ~site ~amount:qty ~on_done:(fun r ->
                 match r with
                 | Dvp.Site.Committed _ -> sold := !sold + qty
                 | Dvp.Site.Aborted _ -> incr rejected)
           else
             Dvp.Capped.incr stock ~site ~amount:qty ~on_done:(fun r ->
                 match r with
                 | Dvp.Site.Committed _ -> restocked := !restocked + qty
                 | Dvp.Site.Aborted _ -> incr rejected)))
  done;
  (* A large delivery that would overflow the warehouse must be refused. *)
  ignore
    (Dvp.Engine.schedule_at (Dvp.System.engine sys) ~at:11.0 (fun () ->
         let room = Dvp.Capped.cap stock - Dvp.Capped.expected_value stock in
         let qty = room + 200 in
         Printf.printf "[t=11] oversized delivery of %d units (room for %d)...\n" qty room;
         Dvp.Capped.incr stock ~site:0 ~amount:qty ~on_done:(fun r ->
             match r with
             | Dvp.Site.Committed _ -> print_endline "   accepted (should not happen!)"
             | Dvp.Site.Aborted _ -> print_endline "   refused: no headroom anywhere")));
  Dvp.System.run_until sys 20.0;

  Printf.printf "sold %d, restocked %d, rejected %d operations\n" !sold !restocked !rejected;
  Printf.printf "closing stock: %d (bounds respected: %b, books balance: %b)\n"
    (Dvp.Capped.expected_value stock)
    (Dvp.Capped.expected_value stock >= 0
    && Dvp.Capped.expected_value stock <= Dvp.Capped.cap stock)
    (Dvp.Capped.invariant stock)
