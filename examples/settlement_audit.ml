(* End-of-day settlement: atomic multi-item snapshot + offline backup.

   Run with:  dune exec examples/settlement_audit.exe

   A clearing house runs two partitioned positions all day.  At close it
   needs (a) one atomic snapshot of both positions — a multi-item drain
   read, so the two values are mutually consistent — and (b) a durable
   offline copy of every site's log, from which the whole installation can
   be rebuilt on fresh hardware. *)

let gross = 0 (* item: gross position *)

let reserve = 1 (* item: reserve position *)

let () =
  print_endline "== Settlement and audit ==";
  let sys = Dvp.System.create ~seed:53 ~n:5 () in
  Dvp.System.add_item sys ~item:gross ~total:500_000 ();
  Dvp.System.add_item sys ~item:reserve ~total:200_000 ();

  (* A trading day: moves between gross and reserve at every site. *)
  let rng = Dvp.Util.Rng.create 7 in
  let trades = ref 0 in
  for _ = 1 to 300 do
    let at = Dvp.Util.Rng.float rng 8.0 in
    ignore
      (Dvp.Engine.schedule_at (Dvp.System.engine sys) ~at (fun () ->
           let site = Dvp.Util.Rng.int rng 5 in
           let amt = 100 * (1 + Dvp.Util.Rng.int rng 50) in
           let ops =
             if Dvp.Util.Rng.bool rng then
               [ (gross, Dvp.Op.Decr amt); (reserve, Dvp.Op.Incr amt) ]
             else [ (reserve, Dvp.Op.Decr amt); (gross, Dvp.Op.Incr amt) ]
           in
           Dvp.System.exec sys (Dvp.Txn.write ~site ops) ~on_done:(fun r ->
               match r with Dvp.Txn.Committed _ -> incr trades | _ -> ())))
  done;
  Dvp.System.run_until sys 10.0;
  Printf.printf "%d trades settled during the day\n" !trades;

  (* Close of business: one atomic snapshot of both positions. *)
  Dvp.System.exec sys (Dvp.Txn.snapshot ~site:0 [ gross; reserve ]) ~on_done:(fun r ->
      match Dvp.Txn.to_reads r with
      | Ok values ->
        let v item = List.assoc item values in
        Printf.printf "close-of-day snapshot: gross=%d reserve=%d (sum %d)\n" (v gross)
          (v reserve)
          (v gross + v reserve);
        assert (v gross + v reserve = 700_000)
      | Error reason ->
        Printf.printf "snapshot failed: %s\n" (Dvp.Metrics.abort_reason_label reason));
  Dvp.System.run_until sys 15.0;

  (* Archive the installation and rebuild it from the archive. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dvp-settlement-archive" in
  let records = Dvp.Backup.export_system sys ~dir in
  Printf.printf "archived %d stable log records to %s\n" records dir;

  let fresh = Dvp.System.create ~seed:99 ~n:5 () in
  Dvp.System.add_item fresh ~item:gross ~total:500_000 ();
  Dvp.System.add_item fresh ~item:reserve ~total:200_000 ();
  (match Dvp.Backup.restore_system fresh ~dir with
  | Ok n -> Printf.printf "restored %d records into a fresh installation\n" n
  | Error e -> Printf.printf "restore failed: %s\n" e);
  Printf.printf "rebuilt books balance: %b\n" (Dvp.System.conserved_all fresh);
  Printf.printf "rebuilt gross+reserve = %d\n"
    (Dvp.System.total_at_sites fresh ~item:gross
    + Dvp.System.total_at_sites fresh ~item:reserve)
